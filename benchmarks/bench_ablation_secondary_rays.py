"""Ablation — secondary-ray workloads (the paper's §III-A motivation).

The paper motivates ray tracing with three global-rendering ray types:
shadow rays, reflection rays, and randomly-distributed global-illumination
rays. Secondary batches are progressively less warp-coherent, so PDOM
efficiency decays from primary to GI while dynamic µ-kernels hold steady —
quantifying the claim that µ-kernels matter more as rendering gets more
physically based.
"""

from repro.analysis.report import format_table
from repro.api import simulate

RAY_KINDS = ("primary", "shadow", "reflection", "gi")


def _sweep(workloads):
    rows = []
    efficiency = {}
    for kind in RAY_KINDS:
        workload = workloads("conference", kind)
        for mode in ("pdom_warp", "spawn"):
            result = simulate(workload, mode)
            efficiency[(kind, mode)] = result.simt_efficiency
            rows.append({
                "rays": kind, "mode": mode,
                "efficiency": round(result.simt_efficiency, 3),
                "ipc": round(result.ipc, 1),
                "mrays_per_s": round(result.rays_per_second / 1e6, 1),
                "verified": result.verify(),
            })
    return rows, efficiency


def bench_ablation_secondary_rays(benchmark, workloads, report):
    rows, efficiency = benchmark.pedantic(_sweep, args=(workloads,),
                                          rounds=1, iterations=1)
    report(format_table(rows, title="Ablation — ray kinds (conference)"))
    assert all(row["verified"] for row in rows)
    # µ-kernels beat PDOM occupancy on every batch kind...
    for kind in RAY_KINDS:
        assert efficiency[(kind, "spawn")] > efficiency[(kind, "pdom_warp")]
    # ...and their occupancy degrades less from primary to GI rays.
    pdom_drop = (efficiency[("primary", "pdom_warp")]
                 - efficiency[("gi", "pdom_warp")])
    spawn_drop = (efficiency[("primary", "spawn")]
                  - efficiency[("gi", "spawn")])
    assert spawn_drop < pdom_drop
