"""Ablation — naïve spawning vs the paper's future-work optimization.

Paper §IX: "Development of a more advanced algorithm can improve
performance by allowing branching instead of thread creation when all
threads in a warp follow the same branch." We gate the conversion on
fully-populated warps (a full warp gains nothing from re-forming) and
measure the reduction in dynamic thread creations and spawn-memory
traffic, with and without bank conflicts.
"""

from repro.analysis.report import format_table
from repro.config import scaled_config
from repro.api import launch_for_mode
from repro.kernels.layout import build_memory_image
from repro.simt import GPU


def _run(workload, *, uniform_spawn: bool, conflicts: bool):
    preset = workload.preset
    config = scaled_config(
        preset.num_sms, spawn_enabled=True, max_cycles=preset.max_cycles,
        spawn_bank_conflicts=conflicts,
        spawn_spawn_when_uniform=uniform_spawn)
    image = build_memory_image(workload.tree, workload.origins,
                               workload.directions, workload.t_max)
    launch = launch_for_mode("spawn", workload.num_rays)
    gpu = GPU(config, launch, image.global_mem, image.const_mem,
              divergence_window=preset.divergence_window)
    return gpu.run()


def _sweep(workload):
    rows = []
    for conflicts in (False, True):
        for uniform_spawn in (True, False):
            stats = _run(workload, uniform_spawn=uniform_spawn,
                         conflicts=conflicts)
            rows.append({
                "variant": ("naive" if uniform_spawn else "uniform-branch"),
                "bank_conflicts": conflicts,
                "ipc": round(stats.ipc, 1),
                "rays_done": stats.rays_completed,
                "threads_spawned": stats.sm_stats.threads_spawned,
                "onchip_words": (stats.sm_stats.onchip_read_words
                                 + stats.sm_stats.onchip_write_words),
                "converted": stats.sm_stats.uniform_spawn_branches,
            })
    return rows


def bench_ablation_uniform_spawn(benchmark, workloads, report):
    workload = workloads("conference")
    rows = benchmark.pedantic(_sweep, args=(workload,),
                              rounds=1, iterations=1)
    report(format_table(rows, title="Ablation — naive vs uniform-branch "
                                    "spawning (conference)"))
    naive = rows[0]
    optimized = rows[1]
    assert optimized["converted"] > 0
    # The optimization's purpose: far fewer dynamic thread creations and
    # less spawn-memory traffic for the same work.
    assert optimized["threads_spawned"] < naive["threads_spawned"]
    assert optimized["onchip_words"] < naive["onchip_words"]
