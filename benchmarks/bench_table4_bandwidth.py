"""Table IV — per-frame memory bandwidth, traditional vs dynamic.

Paper shape: dynamic thread creation multiplies read traffic ~4.4x and
total traffic ~7.3x on its scenes; writes grow from ~0.25 MB (results
only) to hundreds of MB (state passing).
"""

from repro.harness import experiments


def bench_table4(benchmark, preset, report):
    data = benchmark.pedantic(experiments.table4, args=(preset,),
                              rounds=1, iterations=1)
    report(data["render"])
    summary = data["summary"]
    assert summary["mean_read_ratio"] > 1.5
    assert summary["mean_total_ratio"] > summary["mean_read_ratio"]
    for row in data["rows"]:
        if row["variant"] == "Dynamic":
            assert row["write_mb"] > 0.0
