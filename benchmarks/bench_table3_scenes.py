"""Table III — benchmark scenes with object counts and tree parameters."""

from repro.harness import experiments


def bench_table3(benchmark, preset, report):
    data = benchmark.pedantic(experiments.table3, args=(preset,),
                              rounds=1, iterations=1)
    report(data["render"])
    rows = {row["scene"]: row for row in data["rows"]}
    assert set(rows) == {"fairyforest", "atrium", "conference"}
    for row in rows.values():
        assert row["tree_nodes"] == 2 * row["tree_leaves"] - 1
    # Scene characters: conference densest object count in the paper's set.
    assert rows["conference"]["paper_triangles"] > rows["atrium"]["paper_triangles"]
