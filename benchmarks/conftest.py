"""Benchmark fixtures: preset selection and cached workloads.

Set ``REPRO_PRESET`` to ``tiny``/``fast``/``paper`` (default ``fast``) to
pick the simulation scale. Each bench prints the regenerated table/figure
(run pytest with ``-s`` to see it live) and appends it to
``benchmarks/_output/report.txt``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.api import prepare_workload
from repro.harness.presets import get_preset

OUTPUT_DIR = pathlib.Path(__file__).parent / "_output"


@pytest.fixture(scope="session")
def preset():
    return get_preset(os.environ.get("REPRO_PRESET", "fast"))


@pytest.fixture(scope="session")
def workloads(preset):
    """Prepared workloads per scene, shared across benches.

    Backed by the persistent workload cache (:mod:`repro.harness.cache`):
    the in-process LRU makes repeated requests within a bench session
    cheap, and a second bench run loads kd-trees and reference traces
    from ``~/.cache/repro`` instead of rebuilding them.
    """

    def get(scene: str, ray_kind: str = "primary"):
        return prepare_workload(scene, preset, ray_kind=ray_kind)

    return get


@pytest.fixture(scope="session")
def report():
    """Append rendered experiment sections to the report file."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "report.txt"
    path.write_text("")

    def emit(section: str) -> None:
        print()
        print(section)
        with path.open("a") as handle:
            handle.write(section + "\n\n")

    return emit
