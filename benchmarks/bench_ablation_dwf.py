"""Ablation — dynamic warp formation (Fung et al.) vs PDOM vs µ-kernels.

The paper positions spawn-based µ-kernels against DWF (its §VIII): DWF
regroups existing threads by PC with no code changes, but needs register-
file flexibility and cannot shed the stack-restart structure of the
kernel. We run an idealized lane-flexible DWF on the traditional kernel
and compare all three mechanisms on the conference scene.
"""

from repro.harness import experiments


def bench_ablation_dwf(benchmark, preset, workloads, report):
    workload = workloads("conference")
    data = benchmark.pedantic(experiments.ablation_dwf,
                              args=(preset, workload),
                              rounds=1, iterations=1)
    report(data["render"])
    assert data["verified"]
    rows = {row["mechanism"]: row for row in data["rows"]}
    # DWF recovers part of the PDOM loss; µ-kernels stay ahead of PDOM.
    assert rows["DWF (idealized)"]["rays_done"] > 0
    assert (rows["dynamic µ-kernels"]["efficiency"]
            > rows["PDOM (stack)"]["efficiency"])
