"""Figure 8 — rays/second per scene and branching/scheduling method.

Paper: dynamic µ-kernels average 67 Mrays/s vs 47 Mrays/s for traditional
hardware (1.4x); PDOM Warp >= PDOM Block. We check the ordering and that
the mean dynamic speedup exceeds 1x (absolute numbers depend on the
scaled-down scenes; see EXPERIMENTS.md).
"""

from repro.analysis.report import format_table
from repro.api import simulate
from repro.rt import BENCHMARK_SCENES

MODES = ("pdom_block", "pdom_warp", "spawn")


def _run_all(workloads):
    rows = []
    for scene in BENCHMARK_SCENES:
        workload = workloads(scene)
        for mode in MODES:
            result = simulate(workload, mode)
            rows.append({
                "scene": scene, "mode": mode,
                "mrays_per_s": round(result.rays_per_second / 1e6, 1),
                "efficiency": round(result.simt_efficiency, 3),
                "completed": round(result.completed_fraction, 2),
                "verified": result.verify(),
            })
    return rows


def bench_fig8(benchmark, workloads, report):
    rows = benchmark.pedantic(_run_all, args=(workloads,),
                              rounds=1, iterations=1)
    speedups = []
    for scene in BENCHMARK_SCENES:
        by_mode = {row["mode"]: row for row in rows if row["scene"] == scene}
        speedups.append(by_mode["spawn"]["mrays_per_s"]
                        / by_mode["pdom_block"]["mrays_per_s"])
    mean_speedup = sum(speedups) / len(speedups)
    report(format_table(rows, title="Figure 8 — rays per second")
           + f"\nmean dynamic speedup vs PDOM block: {mean_speedup:.2f}x "
             f"(paper: 1.4x)")
    assert all(row["verified"] for row in rows)
    # Paper's headline: dynamic µ-kernels beat traditional hardware.
    assert mean_speedup > 1.0
    assert all(s > 0.9 for s in speedups)  # no scene collapses
