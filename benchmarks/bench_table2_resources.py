"""Table II — per-thread kernel resources and occupancy.

Paper: traditional 22 regs / µ-kernel 20 regs + 48 B spawn state,
yielding 512 threads/SM (block scheduling) vs 800 (µ-kernels).
"""

from repro.harness import experiments


def bench_table2(benchmark, report):
    data = benchmark.pedantic(experiments.table2, rounds=3, iterations=1)
    report(data["render"])
    occupancy = data["occupancy"]
    assert occupancy["microkernel_threads_per_sm"] == 800
    assert occupancy["traditional_block_threads_per_sm"] == 512
    assert (occupancy["traditional_warp_threads_per_sm"]
            > occupancy["traditional_block_threads_per_sm"])
