"""Figure 10 — branching performance against the MIMD theoretical ideal.

Paper shape (conference scene, ideal memory for "theoretical" bars):
PDOM gains nothing from an ideal memory system (it is branch-bound);
dynamic µ-kernels reach ~45% of MIMD with real memory and could reach
~60% with ideal memory.
"""

from repro.analysis.report import format_bars
from repro.api import simulate
from repro.harness.runner import mimd_rays_per_second

MODES = ("pdom_warp", "pdom_ideal", "spawn", "spawn_ideal")


def _run_all(workload):
    results = {mode: simulate(workload, mode) for mode in MODES}
    return results


def bench_fig10(benchmark, workloads, report):
    workload = workloads("conference")
    results = benchmark.pedantic(_run_all, args=(workload,),
                                 rounds=1, iterations=1)
    mimd = mimd_rays_per_second(workload)
    bars = [(mode, results[mode].rays_per_second / 1e6) for mode in MODES]
    bars.append(("mimd_theoretical", mimd / 1e6))
    fractions = {mode: value / (mimd / 1e6) for mode, value in bars}
    report(format_bars(bars, title="Figure 10 — Mrays/s vs MIMD "
                                   "(conference)", unit="M")
           + "\nfractions of MIMD: "
           + ", ".join(f"{mode}={fractions[mode]:.2f}"
                       for mode, _ in bars))
    for result in results.values():
        assert result.verify()
    # Shape checks from the paper:
    pdom_gain = fractions["pdom_ideal"] / max(fractions["pdom_warp"], 1e-9)
    spawn_gain = fractions["spawn_ideal"] / max(fractions["spawn"], 1e-9)
    assert pdom_gain < 1.35          # "PDOM has no performance increase"
    assert fractions["spawn"] > fractions["pdom_warp"]
    assert fractions["spawn_ideal"] >= fractions["spawn"]
    assert 0.2 < fractions["spawn"] < 1.0   # a large but real MIMD gap
    assert fractions["mimd_theoretical"] == 1.0
