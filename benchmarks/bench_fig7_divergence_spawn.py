"""Figure 7 — divergence breakdown with dynamic µ-kernels (no conflicts).

Paper: µ-kernels keep far more lanes active; IPC rises from 326 to 615
(1.9x) on the conference scene.
"""

from repro.analysis.divergence import breakdown_from_stats, render_breakdown
from repro.api import simulate


def bench_fig7(benchmark, workloads, report):
    workload = workloads("conference")
    spawn = benchmark.pedantic(simulate, args=(workload, "spawn"),
                               rounds=1, iterations=1)
    pdom = simulate(workload, "pdom_block")
    spawn_breakdown = breakdown_from_stats(spawn.stats)
    pdom_breakdown = breakdown_from_stats(pdom.stats)
    ratio = spawn.ipc / pdom.ipc
    report("Figure 7 — divergence, dynamic µ-kernels (conference)\n"
           + render_breakdown(spawn_breakdown)
           + f"\nIPC: spawn={spawn.ipc:.1f} pdom={pdom.ipc:.1f} "
             f"ratio={ratio:.2f}x (paper: 1.9x)")
    assert spawn.verify()
    # Core claim: µ-kernels recover lane occupancy lost to branching.
    assert spawn.simt_efficiency > pdom.simt_efficiency + 0.1
    assert spawn_breakdown.mean_active_lanes > pdom_breakdown.mean_active_lanes
    assert spawn_breakdown.high_occupancy_share() > pdom_breakdown.high_occupancy_share()
    assert ratio > 1.2
