"""Ablation — persistent threads (Aila & Laine) vs grid launch vs spawn.

The paper's §VIII software baseline: launch just enough threads to fill
the machine and pull ray ids from a global work queue with atomics. It
removes the end-of-grid tail imbalance but cannot fix intra-warp
divergence inside the traversal loops — which is exactly the gap dynamic
µ-kernels close in hardware.
"""

from repro.harness import experiments


def bench_ablation_persistent(benchmark, preset, workloads, report):
    workload = workloads("conference")
    data = benchmark.pedantic(experiments.ablation_persistent,
                              args=(preset, workload),
                              rounds=1, iterations=1)
    report(data["render"])
    assert data["verified"]
    rows = {row["approach"]: row for row in data["rows"]}
    # Persistent threads keep pace with the grid launch, but the
    # intra-warp divergence gap to µ-kernels remains (the paper's point).
    assert (rows["persistent threads"]["rays_done"]
            >= 0.8 * rows["grid launch (PDOM)"]["rays_done"])
    assert (rows["dynamic µ-kernels"]["efficiency"]
            > rows["persistent threads"]["efficiency"] + 0.1)
