"""Ablation — warp coherence from ray launch order.

Traditional SIMT hardware fixes warp membership at launch, so the ray
buffer's order controls coherence: Morton (Z-curve) tiles > row-major >
random shuffle. Dynamic µ-kernels regroup threads at runtime, so their
efficiency should be nearly order-invariant — a direct consequence of the
paper's mechanism and the reason it also wins on incoherent secondary
rays.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.api import config_for_mode, launch_for_mode
from repro.kernels.layout import build_memory_image
from repro.rt.ordering import apply_order, morton_order, shuffled_order
from repro.simt import GPU


def _run(workload, order, mode):
    origins, directions, t_max = apply_order(
        order, workload.origins, workload.directions, workload.t_max)
    config = config_for_mode(mode, workload.preset)
    image = build_memory_image(workload.tree, origins, directions, t_max)
    launch = launch_for_mode(mode, workload.num_rays)
    gpu = GPU(config, launch, image.global_mem, image.const_mem,
              divergence_window=workload.preset.divergence_window)
    return gpu.run()


def _sweep(workload):
    preset = workload.preset
    orders = {
        "morton": morton_order(preset.image_width, preset.image_height),
        "row_major": np.arange(workload.num_rays),
        "shuffled": shuffled_order(workload.num_rays, seed=1),
    }
    rows = []
    efficiency = {}
    for order_name, order in orders.items():
        for mode in ("pdom_warp", "spawn"):
            stats = _run(workload, order, mode)
            efficiency[(order_name, mode)] = stats.simt_efficiency
            rows.append({
                "order": order_name, "mode": mode,
                "efficiency": round(stats.simt_efficiency, 3),
                "ipc": round(stats.ipc, 1),
                "rays_done": stats.rays_completed,
            })
    return rows, efficiency


def bench_ablation_ray_order(benchmark, workloads, report):
    workload = workloads("conference")
    rows, efficiency = benchmark.pedantic(_sweep, args=(workload,),
                                          rounds=1, iterations=1)
    report(format_table(rows, title="Ablation — ray order vs warp "
                                    "coherence (conference)"))
    pdom_swing = (efficiency[("morton", "pdom_warp")]
                  - efficiency[("shuffled", "pdom_warp")])
    spawn_swing = (efficiency[("morton", "spawn")]
                   - efficiency[("shuffled", "spawn")])
    # PDOM leans on launch order; µ-kernels regroup at runtime, so their
    # occupancy barely moves with the ordering.
    assert pdom_swing > 0.02
    assert abs(spawn_swing) < pdom_swing
    for order_name in ("morton", "row_major", "shuffled"):
        assert (efficiency[(order_name, "spawn")]
                > efficiency[(order_name, "pdom_warp")])
