"""Figure 9 — µ-kernel divergence with spawn-memory bank conflicts.

Paper: serialization of conflicting spawn-memory accesses adds pipeline
stalls; IPC drops from 615 to 429 but stays 1.3x above traditional PDOM.
"""

from repro.analysis.divergence import breakdown_from_stats, render_breakdown
from repro.api import simulate


def bench_fig9(benchmark, workloads, report):
    workload = workloads("conference")
    conflicted = benchmark.pedantic(simulate,
                                    args=(workload, "spawn_conflicts"),
                                    rounds=1, iterations=1)
    clean = simulate(workload, "spawn")
    pdom = simulate(workload, "pdom_block")
    breakdown = breakdown_from_stats(conflicted.stats)
    ratio = conflicted.ipc / pdom.ipc
    report("Figure 9 — divergence, µ-kernels with bank conflicts "
           "(conference)\n" + render_breakdown(breakdown)
           + f"\nIPC: conflicts={conflicted.ipc:.1f} clean={clean.ipc:.1f} "
             f"pdom={pdom.ipc:.1f}; ratio vs PDOM={ratio:.2f}x (paper: 1.3x)")
    assert conflicted.verify()
    # Conflicts cost performance but µ-kernels stay ahead of PDOM (paper).
    assert conflicted.stats.sm_stats.bank_conflict_cycles > 0
    assert conflicted.ipc < clean.ipc
    assert ratio > 1.0
    # Warps still maintain more active threads than traditional branching.
    assert conflicted.simt_efficiency > pdom.simt_efficiency
