"""Figure 3 — divergence breakdown under traditional PDOM branching.

Paper: the conference scene leaves most warps far below full occupancy
(loss up to ~65%); the W1:4 category dominates once the initial coherent
phase ends.
"""

from repro.analysis.divergence import breakdown_from_stats, render_breakdown
from repro.api import simulate


def bench_fig3(benchmark, workloads, report):
    workload = workloads("conference")
    result = benchmark.pedantic(simulate, args=(workload, "pdom_block"),
                                rounds=1, iterations=1)
    breakdown = breakdown_from_stats(result.stats)
    report("Figure 3 — divergence, PDOM (conference)\n"
           + render_breakdown(breakdown)
           + f"\nIPC={result.ipc:.1f} efficiency={result.simt_efficiency:.2f}")
    assert result.verify()
    # Traditional branching loses a large share of lanes (paper: ~65% max).
    assert result.simt_efficiency < 0.8
    assert breakdown.mean_active_lanes < 28
