"""Probe overhead — the observability layer must be free when off.

Two contracts from docs/architecture.md ("Cycle attribution probes"):

- **Structurally off**: with no ``TraceSession`` attached, no probe object
  exists anywhere in the machine — every hook site is a dead
  ``if probe is not None`` branch.
- **Cheap when on**: attaching probes may not change any statistic
  (enforced bit-for-bit in tests/obs/) and should cost a bounded factor
  in wall clock; the bench records the measured ratio so regressions in
  the hook placement show up in BENCH output.
"""

from __future__ import annotations

import time

from repro.analysis.report import format_table
from repro.api import simulate
from repro.harness.sweep import run_stats_digest
from repro.obs import TraceSession

SCENE = "conference"
MODES = ("pdom_warp", "spawn")

#: Generous wall-clock ceiling for probes-on vs probes-off; interval
#: accumulation is a handful of numpy scalar adds per simulated cycle.
MAX_OVERHEAD = 3.0


def _time_run(workload, mode: str, probes):
    start = time.perf_counter()
    result = simulate(workload, mode, probes=probes)
    return time.perf_counter() - start, result


def _measure(workloads):
    workload = workloads(SCENE)
    rows = []
    for mode in MODES:
        simulate(workload, mode)  # warm caches/JIT-free but page-warm
        off_s, off = _time_run(workload, mode, None)
        on_s, on = _time_run(workload, mode, TraceSession())
        rows.append({
            "mode": mode,
            "cycles": off.stats.cycles,
            "off_s": round(off_s, 2),
            "on_s": round(on_s, 2),
            "overhead": round(on_s / off_s, 2),
            "identical_stats": (run_stats_digest(on.stats)
                                == run_stats_digest(off.stats)),
            "probe_off_clean": all(sm.probe is None
                                   for sm in _machine(workload, mode).sms),
        })
    return rows


def _machine(workload, mode: str):
    """An uninstrumented GPU, for the structural no-probe assertion."""
    from repro.api import config_for_mode, launch_for_mode
    from repro.kernels.layout import build_memory_image
    from repro.simt import GPU

    image = build_memory_image(workload.tree, workload.origins,
                               workload.directions, workload.t_max)
    return GPU(config_for_mode(mode, workload.preset),
               launch_for_mode(mode, workload.num_rays),
               image.global_mem, image.const_mem)


def bench_probe_overhead(benchmark, workloads, report):
    rows = benchmark.pedantic(_measure, args=(workloads,),
                              rounds=1, iterations=1)
    report(format_table(
        rows, title="Probe overhead — traced vs untraced wall clock"))
    for row in rows:
        assert row["probe_off_clean"], row
        assert row["identical_stats"], row
        assert row["overhead"] < MAX_OVERHEAD, row
