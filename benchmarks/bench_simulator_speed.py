"""Simulator throughput — cycles simulated per wall-clock second.

Tracks the event-driven fast-forward + vectorized issue path (see
docs/architecture.md, "Event-driven fast-forward"): the Figure 8
rays-per-second workload is run in both clock modes and the bench emits
cycles/s for each, so regressions in either the exact cycle loop or the
fast-forward path show up in BENCH output. Correctness of the fast mode
(bit-identical stats) is enforced separately by
tests/simt/test_fastforward_differential.py; this bench only checks that
fast mode is not slower than exact, since jumping idle spans can only
remove work.

The headline speedup of the change itself (measured against the
pre-event-driven simulator on this workload: >= 3x cycles/s across the
Figure 8 modes) is recorded in CHANGES.md; it cannot be re-measured here
because the old cycle loop no longer exists in the tree.
"""

from __future__ import annotations

import time

from repro.analysis.report import format_table
from repro.harness.runner import run_mode

#: The Figure 8 modes (traditional block/warp scheduling + dynamic
#: µ-kernels) on the conference scene — the paper's headline workload.
MODES = ("pdom_block", "pdom_warp", "spawn")
SCENE = "conference"


def _time_mode(mode: str, workload, fast_forward: bool):
    start = time.perf_counter()
    result = run_mode(mode, workload, fast_forward=fast_forward)
    elapsed = time.perf_counter() - start
    return result.stats.cycles / elapsed, result


def _run_all(workloads):
    workload = workloads(SCENE)
    rows = []
    for mode in MODES:
        fast_rate, fast_result = _time_mode(mode, workload, True)
        exact_rate, exact_result = _time_mode(mode, workload, False)
        assert fast_result.stats.cycles == exact_result.stats.cycles
        rows.append({
            "mode": mode,
            "cycles": fast_result.stats.cycles,
            "fast_cyc_per_s": round(fast_rate),
            "exact_cyc_per_s": round(exact_rate),
            "fast_vs_exact": round(fast_rate / exact_rate, 2),
        })
    return rows


def bench_simulator_speed(benchmark, workloads, report):
    rows = benchmark.pedantic(_run_all, args=(workloads,),
                              rounds=1, iterations=1)
    report(format_table(
        rows, title="Simulator speed — cycles simulated per wall second"))
    for row in rows:
        assert row["fast_cyc_per_s"] > 0
        # Fast-forward only skips work; allow generous timing noise.
        assert row["fast_vs_exact"] > 0.7, row
