"""Simulator throughput — cycles simulated per wall-clock second.

Tracks three things on the Figure 8 rays-per-second workload:

- the event-driven fast-forward path (docs/architecture.md,
  "Event-driven fast-forward"): each mode runs in both clock modes and
  the bench emits cycles/s for each, so regressions in either the exact
  cycle loop or the fast-forward path show up in BENCH output;
- the executor backends (docs/architecture.md, "Executor backends"):
  each mode runs under both the reference interpreter and the batched
  structure-of-arrays backend, asserts their ``RunStats`` digests are
  byte-identical, and emits the batched/reference speedup ratio;
- the warp schedulers (docs/architecture.md, "Warp schedulers"): each
  mode runs under both the per-cycle scan and the event-driven calendar
  scheduler — on the preset's own machine and on the paper's 30-SM
  machine, where sleeping whole SMs between wakes is the structural win
  — asserts digest identity, and emits the calendar/scan speedup.
  Scheduler pairs are timed interleaved (scan, calendar, scan, ...) so
  thermal and allocator drift cancels out of the ratio.

Results land in ``BENCH_simulator_speed.json`` at the repo root
(refresh with ``REPRO_UPDATE_BENCH=1``). The ``presets`` section is the
regression baseline: config digest, git revision, and cycles/s per
backend and scheduler at the time it was generated. Each refresh also
*appends* an entry to the ``history`` section (git revision + cycles/s
per scheduler x executor), so the file accumulates a per-revision
performance trajectory instead of overwriting it. On every later run
the bench compares the *speedup ratios* — not absolute cycles/s, which
vary by machine — against the committed baseline for the same preset
and fails on a >20% regression. Absolute timings are provenance only.

Correctness of all three axes (bit-identical stats) is enforced
exhaustively by tests/simt/test_fastforward_differential.py,
test_backend_differential.py, and test_scheduler_differential.py; this
bench re-checks only the cheap digest identity on the workload it
actually times.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import subprocess
import time

import pytest

from repro.analysis.report import format_table
from repro.api import PAPER_SMS, config_for_mode, simulate
from repro.harness.sweep import run_stats_digest
from repro.results.history import upsert_history

#: The Figure 8 modes (traditional block/warp scheduling + dynamic
#: µ-kernels) on the conference scene — the paper's headline workload.
MODES = ("pdom_block", "pdom_warp", "spawn")
SCENE = "conference"

BACKENDS = ("reference", "batched")

SCHEDULERS = ("scan", "calendar")

#: Committed benchmark record, at the repo root next to ROADMAP.md.
BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_simulator_speed.json"

#: A measured batched/reference ratio below committed * (1 - tolerance)
#: fails the bench. Ratios are measured back-to-back in one process, so
#: machine speed cancels; 20% absorbs scheduler jitter.
REGRESSION_TOLERANCE = 0.20


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=BENCH_PATH.parent, capture_output=True, text=True,
            timeout=10, check=True).stdout.strip()
    except Exception:
        return "unknown"


def _git_dirty() -> bool:
    """Whether the tree differs from HEAD (``git status --porcelain``).

    A refresh from a dirty tree is still recorded — it is useful while
    iterating — but flagged, so it can never masquerade as (or replace)
    the committed revision's honest history point.
    """
    try:
        return bool(subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=BENCH_PATH.parent, capture_output=True, text=True,
            timeout=10, check=True).stdout.strip())
    except Exception:
        return False


def _config_digest(preset) -> str:
    """Fingerprint of the benchmark's full GPU configuration, all modes."""
    document = {mode: config_for_mode(mode, preset).to_dict()
                for mode in MODES}
    payload = json.dumps(document, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _time_mode(mode: str, workload, *, fast_forward: bool = True,
               executor: str = "reference", scheduler: str = "scan"):
    """Best-of-2 cycles/s (absorbs one-off warm-up) plus the result."""
    best = float("inf")
    result = None
    for _ in range(2):
        start = time.perf_counter()
        result = simulate(workload, mode, fast_forward=fast_forward,
                          executor=executor, scheduler=scheduler)
        best = min(best, time.perf_counter() - start)
    return result.stats.cycles / best, result


def _with_sms(workload, num_sms: int):
    """The same workload on a machine with ``num_sms`` SMs."""
    preset = dataclasses.replace(workload.preset, num_sms=num_sms)
    return dataclasses.replace(workload, preset=preset)


def _time_scheduler_pair(mode: str, workload, rounds: int = 3) -> dict:
    """Interleaved best-of-``rounds`` cycles/s for scan vs calendar.

    Alternating the schedulers within each round (rather than timing one
    after the other) cancels thermal and allocator drift out of the
    ratio, which is what the regression gate compares. Digest identity
    is asserted as a side effect."""
    best = dict.fromkeys(SCHEDULERS, float("inf"))
    digests = {}
    for _ in range(rounds):
        for scheduler in SCHEDULERS:
            start = time.perf_counter()
            result = simulate(workload, mode, scheduler=scheduler)
            best[scheduler] = min(best[scheduler],
                                  time.perf_counter() - start)
            digests[scheduler] = run_stats_digest(result.stats)
    assert digests["calendar"] == digests["scan"], (
        f"{mode}: schedulers are not byte-identical")
    cycles = digests["scan"]["cycles"]
    return {scheduler: cycles / best[scheduler] for scheduler in SCHEDULERS}


def _run_all(workloads):
    workload = workloads(SCENE)
    rows = []
    for mode in MODES:
        rates = {}
        digests = {}
        for backend in BACKENDS:
            rates[backend], result = _time_mode(mode, workload,
                                                executor=backend)
            digests[backend] = run_stats_digest(result.stats)
        calendar_rate, calendar_result = _time_mode(mode, workload,
                                                    scheduler="calendar")
        exact_rate, exact_result = _time_mode(mode, workload,
                                              fast_forward=False)
        assert digests["batched"] == digests["reference"], (
            f"{mode}: backends are not byte-identical")
        assert run_stats_digest(calendar_result.stats) == \
            digests["reference"], f"{mode}: schedulers are not byte-identical"
        assert exact_result.stats.cycles == digests["reference"]["cycles"]
        rows.append({
            "mode": mode,
            "cycles": digests["reference"]["cycles"],
            "reference_cyc_per_s": round(rates["reference"]),
            "batched_cyc_per_s": round(rates["batched"]),
            "batched_speedup": round(rates["batched"] / rates["reference"],
                                     3),
            "calendar_cyc_per_s": round(calendar_rate),
            "calendar_speedup": round(calendar_rate / rates["reference"], 3),
            "exact_cyc_per_s": round(exact_rate),
            "fast_vs_exact": round(rates["reference"] / exact_rate, 2),
        })
    return {"modes": rows, "scheduler_multi_sm": _run_scheduler_rows(workload)}


def _run_scheduler_rows(workload):
    """Scan vs calendar on the paper's 30-SM machine (same ray batch).

    A single-SM preset is issue-bound — the scan is 2-5 probes per pick
    and the calendar's structural win (sleeping whole SMs between wake
    events) cannot engage — so the scheduler is additionally timed at
    the paper's SM count, where it is the headline number."""
    multi = _with_sms(workload, PAPER_SMS)
    rows = []
    for mode in MODES:
        rates = _time_scheduler_pair(mode, multi)
        rows.append({
            "mode": mode,
            "num_sms": PAPER_SMS,
            "scan_cyc_per_s": round(rates["scan"]),
            "calendar_cyc_per_s": round(rates["calendar"]),
            "calendar_speedup": round(rates["calendar"] / rates["scan"], 3),
        })
    return rows


def _load_committed() -> dict:
    if not BENCH_PATH.exists():
        return {}
    return json.loads(BENCH_PATH.read_text())


def _bench_document(preset, rows, scheduler_rows) -> dict:
    return {
        "git_rev": _git_rev(),
        "config_digest": _config_digest(preset),
        "modes": {
            row["mode"]: {
                "cycles": row["cycles"],
                "reference_cyc_per_s": row["reference_cyc_per_s"],
                "batched_cyc_per_s": row["batched_cyc_per_s"],
                "batched_speedup": row["batched_speedup"],
                "calendar_cyc_per_s": row["calendar_cyc_per_s"],
                "calendar_speedup": row["calendar_speedup"],
                "exact_cyc_per_s": row["exact_cyc_per_s"],
            }
            for row in rows
        },
        "scheduler_multi_sm": {
            "num_sms": PAPER_SMS,
            "modes": {
                row["mode"]: {
                    "scan_cyc_per_s": row["scan_cyc_per_s"],
                    "calendar_cyc_per_s": row["calendar_cyc_per_s"],
                    "calendar_speedup": row["calendar_speedup"],
                }
                for row in scheduler_rows
            },
        },
    }


def _append_history(committed: dict, preset, rows, scheduler_rows) -> None:
    """Append this refresh to the per-revision trajectory.

    One *clean* entry per (git revision, preset): re-refreshing at the
    same committed revision replaces its entry rather than duplicating
    it. A refresh from a dirty tree is recorded with ``dirty: true`` and
    may only replace a previous dirty entry — never the committed
    revision's honest point (the clean-vs-dirty rules live in
    :func:`repro.results.history.upsert_history`, shared with the
    results warehouse)."""
    entry = {
        "git_rev": _git_rev(),
        "dirty": _git_dirty(),
        "preset": preset.name,
        "modes": {
            row["mode"]: {
                "reference_cyc_per_s": row["reference_cyc_per_s"],
                "batched_cyc_per_s": row["batched_cyc_per_s"],
                "calendar_cyc_per_s": row["calendar_cyc_per_s"],
                "exact_cyc_per_s": row["exact_cyc_per_s"],
            }
            for row in rows
        },
        "scheduler_multi_sm": {
            "num_sms": PAPER_SMS,
            "modes": {
                row["mode"]: {
                    "scan_cyc_per_s": row["scan_cyc_per_s"],
                    "calendar_cyc_per_s": row["calendar_cyc_per_s"],
                }
                for row in scheduler_rows
            },
        },
    }
    upsert_history(committed.setdefault("history", []), entry)


def _check_regression(committed: dict, preset_name: str, rows,
                      scheduler_rows) -> None:
    entry = committed.get("presets", {}).get(preset_name)
    if entry is None:
        return  # no committed record at this scale — nothing to compare
    floor = 1.0 - REGRESSION_TOLERANCE

    def gate(mode: str, ratio_name: str, measured, want) -> None:
        if want is None:
            return  # committed file predates this column
        assert measured >= want * floor, (
            f"{mode}: {ratio_name} speedup {measured} regressed more "
            f"than {REGRESSION_TOLERANCE:.0%} from committed {want} "
            f"(preset {preset_name}); if intentional, refresh "
            f"{BENCH_PATH.name} with REPRO_UPDATE_BENCH=1")

    for row in rows:
        modes = entry["modes"].get(row["mode"], {})
        gate(row["mode"], "batched/reference", row["batched_speedup"],
             modes.get("batched_speedup"))
        gate(row["mode"], "calendar/scan", row["calendar_speedup"],
             modes.get("calendar_speedup"))
    committed_multi = entry.get("scheduler_multi_sm", {}).get("modes", {})
    for row in scheduler_rows:
        gate(f"{row['mode']}@{row['num_sms']}sm", "calendar/scan",
             row["calendar_speedup"],
             committed_multi.get(row["mode"], {}).get("calendar_speedup"))


def bench_simulator_speed(benchmark, workloads, preset, report):
    results = benchmark.pedantic(_run_all, args=(workloads,),
                                 rounds=1, iterations=1)
    rows = results["modes"]
    scheduler_rows = results["scheduler_multi_sm"]
    report(format_table(
        rows, title="Simulator speed — cycles simulated per wall second"))
    report(format_table(
        scheduler_rows,
        title=f"Warp schedulers at the paper's {PAPER_SMS}-SM scale"))
    for row in rows:
        assert row["reference_cyc_per_s"] > 0
        # Fast-forward only skips work; allow generous timing noise.
        assert row["fast_vs_exact"] > 0.7, row

    committed = _load_committed()
    _check_regression(committed, preset.name, rows, scheduler_rows)
    if os.environ.get("REPRO_UPDATE_BENCH") == "1":
        committed.setdefault("schema", "repro-bench-simulator-speed/1")
        committed["scene"] = SCENE
        committed.setdefault("presets", {})[preset.name] = \
            _bench_document(preset, rows, scheduler_rows)
        _append_history(committed, preset, rows, scheduler_rows)
        BENCH_PATH.write_text(json.dumps(committed, indent=2,
                                         sort_keys=True) + "\n")
        report(f"updated {BENCH_PATH.name} (preset {preset.name})")


def _sweep_once(jobs, cache):
    """One full sweep; returns (runs/minute, workload builds it needed)."""
    from repro.harness.sweep import run_sweep

    builds_before = cache.stats.builds
    start = time.perf_counter()
    results = run_sweep(jobs, jobs_n=1)
    elapsed = time.perf_counter() - start
    assert all(result.verified for result in results)
    return (len(results) * 60.0 / elapsed,
            cache.stats.builds - builds_before)


def _run_sweep_phases(preset, cache_dir):
    from repro.harness.cache import default_cache
    from repro.harness.sweep import SweepJob

    jobs = [SweepJob(scene=SCENE, mode=mode, preset=preset.name)
            for mode in MODES]
    with pytest.MonkeyPatch.context() as patch:
        patch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        patch.delenv("REPRO_CACHE", raising=False)
        cache = default_cache()
        cache.clear()
        cold_rate, cold_builds = _sweep_once(jobs, cache)
        warm_rate, warm_builds = _sweep_once(jobs, cache)
    return [
        {"cache": "cold", "runs_per_min": round(cold_rate, 1),
         "workload_builds": cold_builds},
        {"cache": "warm", "runs_per_min": round(warm_rate, 1),
         "workload_builds": warm_builds},
    ]


def bench_sweep_throughput(benchmark, preset, report, tmp_path_factory):
    """Sweep runs/minute, cold vs warm workload cache.

    The warm pass must do zero workload builds — every kd-tree and
    reference trace comes from the cache populated by the cold pass.
    """
    cache_dir = tmp_path_factory.mktemp("sweep-cache")
    rows = benchmark.pedantic(_run_sweep_phases, args=(preset, cache_dir),
                              rounds=1, iterations=1)
    report(format_table(
        rows, title="Sweep throughput — simulation runs per minute"))
    warm = rows[1]
    assert warm["workload_builds"] == 0, rows
