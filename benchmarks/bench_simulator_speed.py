"""Simulator throughput — cycles simulated per wall-clock second.

Tracks the event-driven fast-forward + vectorized issue path (see
docs/architecture.md, "Event-driven fast-forward"): the Figure 8
rays-per-second workload is run in both clock modes and the bench emits
cycles/s for each, so regressions in either the exact cycle loop or the
fast-forward path show up in BENCH output. Correctness of the fast mode
(bit-identical stats) is enforced separately by
tests/simt/test_fastforward_differential.py; this bench only checks that
fast mode is not slower than exact, since jumping idle spans can only
remove work.

The headline speedup of the change itself (measured against the
pre-event-driven simulator on this workload: >= 3x cycles/s across the
Figure 8 modes) is recorded in CHANGES.md; it cannot be re-measured here
because the old cycle loop no longer exists in the tree.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.report import format_table
from repro.api import simulate

#: The Figure 8 modes (traditional block/warp scheduling + dynamic
#: µ-kernels) on the conference scene — the paper's headline workload.
MODES = ("pdom_block", "pdom_warp", "spawn")
SCENE = "conference"


def _time_mode(mode: str, workload, fast_forward: bool):
    start = time.perf_counter()
    result = simulate(workload, mode, fast_forward=fast_forward)
    elapsed = time.perf_counter() - start
    return result.stats.cycles / elapsed, result


def _run_all(workloads):
    workload = workloads(SCENE)
    rows = []
    for mode in MODES:
        fast_rate, fast_result = _time_mode(mode, workload, True)
        exact_rate, exact_result = _time_mode(mode, workload, False)
        assert fast_result.stats.cycles == exact_result.stats.cycles
        rows.append({
            "mode": mode,
            "cycles": fast_result.stats.cycles,
            "fast_cyc_per_s": round(fast_rate),
            "exact_cyc_per_s": round(exact_rate),
            "fast_vs_exact": round(fast_rate / exact_rate, 2),
        })
    return rows


def bench_simulator_speed(benchmark, workloads, report):
    rows = benchmark.pedantic(_run_all, args=(workloads,),
                              rounds=1, iterations=1)
    report(format_table(
        rows, title="Simulator speed — cycles simulated per wall second"))
    for row in rows:
        assert row["fast_cyc_per_s"] > 0
        # Fast-forward only skips work; allow generous timing noise.
        assert row["fast_vs_exact"] > 0.7, row


def _sweep_once(jobs, cache):
    """One full sweep; returns (runs/minute, workload builds it needed)."""
    from repro.harness.sweep import run_sweep

    builds_before = cache.stats.builds
    start = time.perf_counter()
    results = run_sweep(jobs, jobs_n=1)
    elapsed = time.perf_counter() - start
    assert all(result.verified for result in results)
    return (len(results) * 60.0 / elapsed,
            cache.stats.builds - builds_before)


def _run_sweep_phases(preset, cache_dir):
    from repro.harness.cache import default_cache
    from repro.harness.sweep import SweepJob

    jobs = [SweepJob(scene=SCENE, mode=mode, preset=preset.name)
            for mode in MODES]
    with pytest.MonkeyPatch.context() as patch:
        patch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        patch.delenv("REPRO_CACHE", raising=False)
        cache = default_cache()
        cache.clear()
        cold_rate, cold_builds = _sweep_once(jobs, cache)
        warm_rate, warm_builds = _sweep_once(jobs, cache)
    return [
        {"cache": "cold", "runs_per_min": round(cold_rate, 1),
         "workload_builds": cold_builds},
        {"cache": "warm", "runs_per_min": round(warm_rate, 1),
         "workload_builds": warm_builds},
    ]


def bench_sweep_throughput(benchmark, preset, report, tmp_path_factory):
    """Sweep runs/minute, cold vs warm workload cache.

    The warm pass must do zero workload builds — every kd-tree and
    reference trace comes from the cache populated by the cold pass.
    """
    cache_dir = tmp_path_factory.mktemp("sweep-cache")
    rows = benchmark.pedantic(_run_sweep_phases, args=(preset, cache_dir),
                              rounds=1, iterations=1)
    report(format_table(
        rows, title="Sweep throughput — simulation runs per minute"))
    warm = rows[1]
    assert warm["workload_builds"] == 0, rows
