"""Simulator throughput — cycles simulated per wall-clock second.

Tracks two things on the Figure 8 rays-per-second workload:

- the event-driven fast-forward path (docs/architecture.md,
  "Event-driven fast-forward"): each mode runs in both clock modes and
  the bench emits cycles/s for each, so regressions in either the exact
  cycle loop or the fast-forward path show up in BENCH output;
- the executor backends (docs/architecture.md, "Executor backends"):
  each mode runs under both the reference interpreter and the batched
  structure-of-arrays backend, asserts their ``RunStats`` digests are
  byte-identical, and emits the batched/reference speedup ratio.

Results land in ``BENCH_simulator_speed.json`` at the repo root
(refresh with ``REPRO_UPDATE_BENCH=1``); the committed file records the
config digest, git revision, and cycles/s per backend at the time it was
generated. On every later run the bench compares the *speedup ratio* —
not absolute cycles/s, which vary by machine — against the committed
entry for the same preset and fails on a >20% regression. Absolute
timings in the committed file are for provenance only.

Correctness of both axes (bit-identical stats) is enforced exhaustively
by tests/simt/test_fastforward_differential.py and
tests/simt/test_backend_differential.py; this bench re-checks only the
cheap digest identity on the workload it actually times.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import subprocess
import time

import pytest

from repro.analysis.report import format_table
from repro.api import config_for_mode, simulate
from repro.harness.sweep import run_stats_digest

#: The Figure 8 modes (traditional block/warp scheduling + dynamic
#: µ-kernels) on the conference scene — the paper's headline workload.
MODES = ("pdom_block", "pdom_warp", "spawn")
SCENE = "conference"

BACKENDS = ("reference", "batched")

#: Committed benchmark record, at the repo root next to ROADMAP.md.
BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_simulator_speed.json"

#: A measured batched/reference ratio below committed * (1 - tolerance)
#: fails the bench. Ratios are measured back-to-back in one process, so
#: machine speed cancels; 20% absorbs scheduler jitter.
REGRESSION_TOLERANCE = 0.20


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=BENCH_PATH.parent, capture_output=True, text=True,
            timeout=10, check=True).stdout.strip()
    except Exception:
        return "unknown"


def _config_digest(preset) -> str:
    """Fingerprint of the benchmark's full GPU configuration, all modes."""
    document = {mode: config_for_mode(mode, preset).to_dict()
                for mode in MODES}
    payload = json.dumps(document, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _time_mode(mode: str, workload, *, fast_forward: bool = True,
               executor: str = "reference"):
    """Best-of-2 cycles/s (absorbs one-off warm-up) plus the result."""
    best = float("inf")
    result = None
    for _ in range(2):
        start = time.perf_counter()
        result = simulate(workload, mode, fast_forward=fast_forward,
                          executor=executor)
        best = min(best, time.perf_counter() - start)
    return result.stats.cycles / best, result


def _run_all(workloads):
    workload = workloads(SCENE)
    rows = []
    for mode in MODES:
        rates = {}
        digests = {}
        for backend in BACKENDS:
            rates[backend], result = _time_mode(mode, workload,
                                                executor=backend)
            digests[backend] = run_stats_digest(result.stats)
        exact_rate, exact_result = _time_mode(mode, workload,
                                              fast_forward=False)
        assert digests["batched"] == digests["reference"], (
            f"{mode}: backends are not byte-identical")
        assert exact_result.stats.cycles == digests["reference"]["cycles"]
        rows.append({
            "mode": mode,
            "cycles": digests["reference"]["cycles"],
            "reference_cyc_per_s": round(rates["reference"]),
            "batched_cyc_per_s": round(rates["batched"]),
            "batched_speedup": round(rates["batched"] / rates["reference"],
                                     3),
            "exact_cyc_per_s": round(exact_rate),
            "fast_vs_exact": round(rates["reference"] / exact_rate, 2),
        })
    return rows


def _load_committed() -> dict:
    if not BENCH_PATH.exists():
        return {}
    return json.loads(BENCH_PATH.read_text())


def _bench_document(preset, rows) -> dict:
    return {
        "git_rev": _git_rev(),
        "config_digest": _config_digest(preset),
        "modes": {
            row["mode"]: {
                "cycles": row["cycles"],
                "reference_cyc_per_s": row["reference_cyc_per_s"],
                "batched_cyc_per_s": row["batched_cyc_per_s"],
                "batched_speedup": row["batched_speedup"],
                "exact_cyc_per_s": row["exact_cyc_per_s"],
            }
            for row in rows
        },
    }


def _check_regression(committed: dict, preset_name: str, rows) -> None:
    entry = committed.get("presets", {}).get(preset_name)
    if entry is None:
        return  # no committed record at this scale — nothing to compare
    floor = 1.0 - REGRESSION_TOLERANCE
    for row in rows:
        want = entry["modes"].get(row["mode"], {}).get("batched_speedup")
        if want is None:
            continue
        assert row["batched_speedup"] >= want * floor, (
            f"{row['mode']}: batched/reference speedup "
            f"{row['batched_speedup']} regressed more than "
            f"{REGRESSION_TOLERANCE:.0%} from committed {want} "
            f"(preset {preset_name}); if intentional, refresh "
            f"{BENCH_PATH.name} with REPRO_UPDATE_BENCH=1")


def bench_simulator_speed(benchmark, workloads, preset, report):
    rows = benchmark.pedantic(_run_all, args=(workloads,),
                              rounds=1, iterations=1)
    report(format_table(
        rows, title="Simulator speed — cycles simulated per wall second"))
    for row in rows:
        assert row["reference_cyc_per_s"] > 0
        # Fast-forward only skips work; allow generous timing noise.
        assert row["fast_vs_exact"] > 0.7, row

    committed = _load_committed()
    _check_regression(committed, preset.name, rows)
    if os.environ.get("REPRO_UPDATE_BENCH") == "1":
        committed.setdefault("schema", "repro-bench-simulator-speed/1")
        committed["scene"] = SCENE
        committed.setdefault("presets", {})[preset.name] = \
            _bench_document(preset, rows)
        BENCH_PATH.write_text(json.dumps(committed, indent=2,
                                         sort_keys=True) + "\n")
        report(f"updated {BENCH_PATH.name} (preset {preset.name})")


def _sweep_once(jobs, cache):
    """One full sweep; returns (runs/minute, workload builds it needed)."""
    from repro.harness.sweep import run_sweep

    builds_before = cache.stats.builds
    start = time.perf_counter()
    results = run_sweep(jobs, jobs_n=1)
    elapsed = time.perf_counter() - start
    assert all(result.verified for result in results)
    return (len(results) * 60.0 / elapsed,
            cache.stats.builds - builds_before)


def _run_sweep_phases(preset, cache_dir):
    from repro.harness.cache import default_cache
    from repro.harness.sweep import SweepJob

    jobs = [SweepJob(scene=SCENE, mode=mode, preset=preset.name)
            for mode in MODES]
    with pytest.MonkeyPatch.context() as patch:
        patch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        patch.delenv("REPRO_CACHE", raising=False)
        cache = default_cache()
        cache.clear()
        cold_rate, cold_builds = _sweep_once(jobs, cache)
        warm_rate, warm_builds = _sweep_once(jobs, cache)
    return [
        {"cache": "cold", "runs_per_min": round(cold_rate, 1),
         "workload_builds": cold_builds},
        {"cache": "warm", "runs_per_min": round(warm_rate, 1),
         "workload_builds": warm_builds},
    ]


def bench_sweep_throughput(benchmark, preset, report, tmp_path_factory):
    """Sweep runs/minute, cold vs warm workload cache.

    The warm pass must do zero workload builds — every kd-tree and
    reference trace comes from the cache populated by the cold pass.
    """
    cache_dir = tmp_path_factory.mktemp("sweep-cache")
    rows = benchmark.pedantic(_run_sweep_phases, args=(preset, cache_dir),
                              rounds=1, iterations=1)
    report(format_table(
        rows, title="Sweep throughput — simulation runs per minute"))
    warm = rows[1]
    assert warm["workload_builds"] == 0, rows
