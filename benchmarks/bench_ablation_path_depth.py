"""Ablation — SIMT efficiency and cycles vs path-tracing bounce depth.

The paper's argument is that divergence gets *worse* as rendering gets
more physically based; multi-bounce path tracing with russian roulette is
the limit case, because every extra bounce multiplies the spread in
per-ray work. This bench sweeps the bounce budget across the machine
modes and records, per ``(depth, mode)``, the SIMT efficiency and the
simulated cycle count — the quantitative version of "µ-kernels matter
more the deeper the paths go".

Each depth is a *different workload* (the roulette reference changes with
the budget), prepared through the persistent cache — the per-depth cache
keys are exactly what tests/harness/test_cache_workloads.py locks down.

Results land in ``BENCH_ablation_path_depth.json`` at the repo root
(refresh with ``REPRO_UPDATE_BENCH=1``). Unlike the throughput benches,
every recorded field here is a *simulation output* — cycles, efficiency,
completed rays — so the committed numbers are machine-independent and are
compared for **exact** equality, like a golden snapshot. Each refresh
also upserts a per-revision ``history`` entry under the shared
clean-vs-dirty rules (:mod:`repro.results.history`), so the file
accumulates the efficiency trajectory across revisions.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import subprocess

from repro.analysis.report import format_table
from repro.api import prepare_workload, simulate
from repro.results.history import upsert_history

SCENE = "conference"

MODES = ("pdom_block", "pdom_warp", "spawn")

#: Bounce budgets swept; the roulette threshold stays at the preset's.
DEPTHS = (1, 2, 4, 8)

#: Deterministic per-run cycle cap: deep budgets need millions of cycles
#: to drain at tiny scale, and efficiency under a fixed cap is exactly as
#: comparable across modes while keeping the grid inside bench time.
MAX_CYCLES = 250_000

#: Committed benchmark record, at the repo root next to ROADMAP.md.
BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_ablation_path_depth.json"


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=BENCH_PATH.parent, capture_output=True, text=True,
            timeout=10, check=True).stdout.strip()
    except Exception:
        return "unknown"


def _git_dirty() -> bool:
    try:
        return bool(subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=BENCH_PATH.parent, capture_output=True, text=True,
            timeout=10, check=True).stdout.strip())
    except Exception:
        return False


def _run_grid(preset):
    """One row per (depth, mode): efficiency, cycles, completion."""
    rows = []
    for depth in DEPTHS:
        deep = dataclasses.replace(preset, path_max_depth=depth)
        workload = prepare_workload(SCENE, deep, ray_kind="path")
        for mode in MODES:
            result = simulate(workload, mode, max_cycles=MAX_CYCLES)
            rows.append({
                "depth": depth,
                "mode": mode,
                "cycles": result.stats.cycles,
                "simt_efficiency": round(result.simt_efficiency, 4),
                "rays_completed": result.stats.rays_completed,
                "verified": result.verify(),
            })
    return rows


def _grid_document(rows) -> dict:
    grid: dict = {}
    for row in rows:
        grid.setdefault(str(row["depth"]), {})[row["mode"]] = {
            "cycles": row["cycles"],
            "simt_efficiency": row["simt_efficiency"],
            "rays_completed": row["rays_completed"],
        }
    return grid


def _append_history(committed: dict, preset, rows) -> None:
    entry = {
        "git_rev": _git_rev(),
        "dirty": _git_dirty(),
        "preset": preset.name,
        "efficiency": {
            f"{row['depth']}/{row['mode']}": row["simt_efficiency"]
            for row in rows
        },
    }
    upsert_history(committed.setdefault("history", []), entry)


def _check_committed(committed: dict, preset_name: str, rows) -> None:
    """Simulation outputs are deterministic: compare exactly."""
    entry = committed.get("presets", {}).get(preset_name)
    if entry is None:
        return  # no committed record at this scale — nothing to compare
    assert entry["max_cycles"] == MAX_CYCLES, (
        "cycle cap changed; refresh with REPRO_UPDATE_BENCH=1")
    measured = _grid_document(rows)
    assert measured == entry["grid"], (
        f"path-depth grid diverged from committed {BENCH_PATH.name} "
        f"(preset {preset_name}); if intentional, refresh with "
        "REPRO_UPDATE_BENCH=1")


def bench_ablation_path_depth(benchmark, preset, report):
    rows = benchmark.pedantic(_run_grid, args=(preset,),
                              rounds=1, iterations=1)
    report(format_table(
        rows, title="Ablation — SIMT efficiency vs path-tracing depth"))
    assert all(row["verified"] for row in rows)
    by_key = {(row["depth"], row["mode"]): row["simt_efficiency"]
              for row in rows}
    # µ-kernels out-occupy PDOM at every bounce budget...
    for depth in DEPTHS:
        assert by_key[(depth, "spawn")] > by_key[(depth, "pdom_warp")]
    # ...and the gap never closes as paths deepen.
    first, last = DEPTHS[0], DEPTHS[-1]
    gap = {d: by_key[(d, "spawn")] - by_key[(d, "pdom_warp")]
           for d in (first, last)}
    assert gap[last] >= 0.5 * gap[first], gap

    committed = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() \
        else {}
    _check_committed(committed, preset.name, rows)
    if os.environ.get("REPRO_UPDATE_BENCH") == "1":
        committed.setdefault("schema", "repro-bench-ablation-path-depth/1")
        committed["scene"] = SCENE
        committed.setdefault("presets", {})[preset.name] = {
            "git_rev": _git_rev(),
            "max_cycles": MAX_CYCLES,
            "roulette_q": preset.path_roulette_q,
            "grid": _grid_document(rows),
        }
        _append_history(committed, preset, rows)
        BENCH_PATH.write_text(json.dumps(committed, indent=2,
                                         sort_keys=True) + "\n")
        report(f"updated {BENCH_PATH.name} (preset {preset.name})")
