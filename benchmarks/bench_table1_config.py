"""Table I — simulator configuration (construction + validation cost)."""

from repro.config import paper_config
from repro.harness import experiments


def bench_table1(benchmark, report):
    data = benchmark.pedantic(experiments.table1, rounds=3, iterations=1)
    report(data["render"])
    rows = dict((row["parameter"], row["value"]) for row in data["rows"])
    assert rows["Processor Cores"] == "30"
    assert rows["Warp Size"] == "32"
    assert paper_config().peak_ipc == 960
