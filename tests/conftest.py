"""Shared fixtures: small scenes, trees, and ray batches."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the golden-stats JSON snapshots "
             "(tests/analysis/golden/) instead of asserting against them")


@pytest.fixture(scope="session")
def update_golden(request):
    return request.config.getoption("--update-golden")

from repro.rt import Camera, build_kdtree, make_scene
from repro.rt.geometry import Triangle


@pytest.fixture(scope="session")
def tiny_scene():
    """A small conference-like scene (a few hundred triangles)."""
    return make_scene("conference", detail=0.25)


@pytest.fixture(scope="session")
def tiny_tree(tiny_scene):
    return build_kdtree(tiny_scene.triangles, max_depth=10, leaf_size=8)


@pytest.fixture(scope="session")
def tiny_rays(tiny_scene):
    camera = Camera.for_scene(tiny_scene)
    return camera.primary_rays(8, 8)


@pytest.fixture
def unit_triangles():
    """Two triangles spanning the unit square at z=0."""
    a = np.array([0.0, 0.0, 0.0])
    b = np.array([1.0, 0.0, 0.0])
    c = np.array([1.0, 1.0, 0.0])
    d = np.array([0.0, 1.0, 0.0])
    return [Triangle(a, b, c), Triangle(a, c, d)]


def random_triangles(rng: np.random.Generator, count: int,
                     scale: float = 10.0) -> list[Triangle]:
    """Non-degenerate random triangles inside a cube."""
    triangles = []
    while len(triangles) < count:
        points = rng.uniform(-scale, scale, size=(3, 3))
        tri = Triangle(points[0], points[1], points[2])
        if not tri.is_degenerate:
            triangles.append(tri)
    return triangles
