"""RNG discipline: all randomness flows from named, seeded generators.

Reproducibility is load-bearing for the whole repo (golden statistics,
resumable sweeps, the fuzzer's replayable campaigns), so no module under
``src/repro`` may touch process-global random state. This test AST-scans
the sources: the stdlib ``random`` module is banned outright, and from
``numpy.random`` only the explicitly seeded constructors
(``default_rng`` / ``SeedSequence``) and type names are allowed — never
the legacy global functions like ``np.random.seed`` or
``np.random.uniform``.
"""

import ast
import pathlib

SRC_ROOT = pathlib.Path(__file__).parents[2] / "src" / "repro"

#: Attributes of ``numpy.random`` that do not touch global RNG state.
ALLOWED_NP_RANDOM = {"default_rng", "SeedSequence", "Generator",
                     "BitGenerator", "PCG64", "Philox"}


def _is_numpy_random(node: ast.AST) -> bool:
    """True for the expression ``np.random`` / ``numpy.random``."""
    return (isinstance(node, ast.Attribute) and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy"))


def _violations_in(path: pathlib.Path) -> list[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    found.append(f"{path.name}:{node.lineno}: "
                                 f"import {alias.name}")
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "random":
                found.append(f"{path.name}:{node.lineno}: from random import")
            if module in ("numpy.random", "np.random"):
                for alias in node.names:
                    if alias.name not in ALLOWED_NP_RANDOM:
                        found.append(f"{path.name}:{node.lineno}: from "
                                     f"numpy.random import {alias.name}")
        elif isinstance(node, ast.Attribute) and _is_numpy_random(node.value):
            if node.attr not in ALLOWED_NP_RANDOM:
                found.append(f"{path.name}:{node.lineno}: "
                             f"np.random.{node.attr}")
    return found


def test_scan_finds_planted_violations():
    # Sanity-check the scanner itself against known-bad snippets.
    import textwrap

    def scan(code):
        tree = ast.parse(textwrap.dedent(code))
        bad = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and \
                    _is_numpy_random(node.value) and \
                    node.attr not in ALLOWED_NP_RANDOM:
                bad.append(node.attr)
        return bad

    assert scan("np.random.seed(0)") == ["seed"]
    assert scan("x = np.random.uniform(0, 1)") == ["uniform"]
    assert scan("rng = np.random.default_rng(7)") == []
    assert scan("ss = np.random.SeedSequence(7)") == []


def test_no_global_rng_use_in_sources():
    violations = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        violations += _violations_in(path)
    assert not violations, "\n".join(violations)
