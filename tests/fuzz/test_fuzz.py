"""Differential conformance fuzzing: generator + oracle smoke tests."""

import numpy as np
import pytest

from repro.fuzz import (
    CASE_KINDS,
    case_to_json,
    make_case,
    models_for,
    run_case,
    run_fuzz,
    run_reference,
)


class TestGenerator:
    @pytest.mark.parametrize("kind", CASE_KINDS)
    def test_kinds_generate_and_reference_runs(self, kind):
        case = make_case(3, kind)
        assert case.kind == kind
        result = run_reference(case)
        assert result.global_mem.shape == (case.global_words,)
        # Every launched thread must reach exit on the reference machine.
        assert len(result.exit_state) == case.num_threads

    def test_generation_is_deterministic(self):
        a = make_case(1234)
        b = make_case(1234)
        assert case_to_json(a) == case_to_json(b)

    def test_different_seeds_differ(self):
        texts = {case_to_json(make_case(seed)) for seed in range(6)}
        assert len(texts) > 1

    def test_spawn_cases_actually_spawn(self):
        spawned = 0
        for seed in range(8):
            case = make_case(seed, "spawn")
            spawned += run_reference(case).threads_spawned
        assert spawned > 0

    def test_model_matrix(self):
        assert models_for(make_case(0, "plain")) == \
            ("pdom_block", "pdom_warp", "dwf")
        assert models_for(make_case(0, "spawn")) == ("spawn",)
        assert models_for(make_case(0, "barrier")) == ("pdom_block",)


class TestOracle:
    @pytest.mark.parametrize("kind", CASE_KINDS)
    def test_case_battery_passes(self, kind):
        result = run_case(make_case(11, kind))
        assert not result.failures, result.failures

    def test_model_subset_filter(self):
        case = make_case(5, "plain")
        result = run_case(case, models=("pdom_warp",))
        assert not result.failures, result.failures

    def test_inapplicable_subset_skips(self):
        case = make_case(5, "barrier")
        result = run_case(case, models=("dwf",))
        assert result.skipped


class TestCampaign:
    def test_small_campaign_is_clean(self):
        report = run_fuzz(8, seed=2026)
        assert report.cases_run == 8
        assert report.ok, [r.failures for r in report.failures]

    def test_campaign_is_deterministic(self):
        seen = []
        run_fuzz(3, seed=9, on_case=lambda i, r: seen.append(r.case.seed))
        again = []
        run_fuzz(3, seed=9, on_case=lambda i, r: again.append(r.case.seed))
        assert seen == again

    def test_kind_filter(self):
        kinds_seen = []
        run_fuzz(4, seed=1, kinds=("barrier",),
                 on_case=lambda i, r: kinds_seen.append(r.case.kind))
        assert kinds_seen == ["barrier"] * 4

    def test_all_randomness_is_seed_derived(self):
        # Global numpy RNG state must not influence case generation.
        np.random.seed(1)
        a = case_to_json(make_case(77))
        np.random.seed(2)
        b = case_to_json(make_case(77))
        assert a == b

class TestRouletteKind:
    """The data-dependent-loop-depth kind shaped like russian roulette."""

    def test_model_matrix_includes_dwf(self):
        assert models_for(make_case(0, "roulette")) == \
            ("pdom_block", "pdom_warp", "dwf")

    def test_trip_counts_are_data_dependent(self):
        """Slot 0 records each thread's LCG-driven trip count; a kind that
        collapsed to a uniform loop would not exercise divergence at all."""
        diverse = 0
        for seed in range(8):
            case = make_case(seed, "roulette")
            result = run_reference(case)
            trips = result.global_mem[
                case.out_base:case.out_base
                + case.num_threads * case.out_stride:case.out_stride]
            assert np.all(trips >= 1)
            diverse += len(np.unique(trips)) > 1
        assert diverse >= 6

    def test_trip_counts_deterministic_per_seed(self):
        case = make_case(21, "roulette")
        first = run_reference(case).global_mem
        second = run_reference(case).global_mem
        assert np.array_equal(first, second)

    def test_small_campaign_is_clean(self):
        report = run_fuzz(12, seed=0, kinds=("roulette",))
        assert report.cases_run == 12
        assert report.ok, [r.failures for r in report.failures]
