"""End-to-end fault injection: the fuzzer must catch a seeded bug.

The mutation weakens ``ReconvergenceStack._pop_reconverged`` from a loop
to a single conditional pop, so nested reconvergence (a data-dependent
loop's stacked per-iteration entries) leaves stale entries behind. The
corpus holds a 10-instruction shrunk repro; this test re-injects the bug
and asserts the oracle still catches it, and that the shrinker can reduce
a fresh large failing case.
"""

import contextlib
import pathlib

import pytest

import repro.simt.stack as stack_mod
from repro.fuzz import load_case, make_case, run_case, shrink_case

CORPUS_CASE = str(pathlib.Path(__file__).parent / "corpus"
                  / "stack-pop-balance.json")


def _buggy_pop(self):
    # The injected defect: `while` -> `if` (pops at most one entry).
    entries = self.entries
    if (len(entries) > 1
            and (entries[-1].pc == entries[-1].reconv_pc
                 or entries[-1].count == 0)):
        entries.pop()
        self.pops += 1


@contextlib.contextmanager
def injected_bug():
    real = stack_mod.ReconvergenceStack._pop_reconverged
    stack_mod.ReconvergenceStack._pop_reconverged = _buggy_pop
    try:
        yield
    finally:
        stack_mod.ReconvergenceStack._pop_reconverged = real


def test_corpus_repro_is_minimal():
    case = load_case(CORPUS_CASE)
    assert len(case.program) <= 10


def test_corpus_repro_catches_injected_bug():
    case = load_case(CORPUS_CASE)
    assert run_case(case).ok  # clean build passes ...
    with injected_bug():
        result = run_case(case)
    assert result.failures  # ... the mutated build is caught
    assert any("bar reached with divergent control flow" in failure
               for failure in result.failures), result.failures


def test_shrinker_reduces_fresh_failure():
    case = make_case(26, "barrier")

    def still_fails(candidate):
        with injected_bug():
            return bool(run_case(candidate,
                                 models=("pdom_block",)).failures)

    assert still_fails(case), "seed 26 no longer triggers the mutation"
    small = shrink_case(case, still_fails, max_evals=120)
    assert len(small.program) < len(case.program)
    assert still_fails(small)


def test_shrinker_keeps_unshrinkable_case():
    case = load_case(CORPUS_CASE)

    def never_fails(candidate):
        return False

    assert shrink_case(case, never_fails, max_evals=30) is case
