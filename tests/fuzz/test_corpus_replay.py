"""Replay the committed regression corpus through the full oracle.

Every shrunk failure that ever lands in ``tests/fuzz/corpus`` becomes a
permanent conformance test: the simulators must agree with the reference
on it forever after the underlying bug is fixed.
"""

import pathlib

import pytest

from repro.errors import ProgramError
from repro.fuzz import case_from_json, case_to_json, load_corpus, run_case

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS = load_corpus(str(CORPUS_DIR))


def test_corpus_is_not_empty():
    assert CORPUS, f"no corpus files under {CORPUS_DIR}"


@pytest.mark.parametrize("path,case", CORPUS,
                         ids=[pathlib.Path(p).stem for p, _ in CORPUS])
def test_corpus_case_conforms(path, case):
    result = run_case(case)
    assert not result.skipped, f"{path} no longer runs on the reference"
    assert not result.failures, f"{path}: {result.failures}"


@pytest.mark.parametrize("path,case", CORPUS,
                         ids=[pathlib.Path(p).stem for p, _ in CORPUS])
def test_corpus_file_is_canonical(path, case):
    # Re-encoding the loaded case must reproduce the file byte for byte.
    text = pathlib.Path(path).read_text(encoding="utf-8")
    assert case_to_json(case) == text


def test_malformed_corpus_rejected_with_field_path():
    text = case_to_json(CORPUS[0][1])
    kind = CORPUS[0][1].kind
    with pytest.raises(ProgramError, match="case.kind"):
        case_from_json(text.replace(f'"kind": "{kind}"',
                                    '"kind": "warped"'))
    with pytest.raises(ProgramError, match="invalid JSON"):
        case_from_json(text[:-30])
