"""Degenerate specs fail with typed errors on every execution model.

Zero threads, non-positive block sizes, and empty programs must raise
:class:`~repro.errors.ConfigError` / :class:`~repro.errors.ProgramError`
— never an ``IndexError`` or ``ZeroDivisionError`` from deep inside a
model — on all five executors: the MIMD reference, pdom_block,
pdom_warp, spawn, and DWF.
"""

import dataclasses

import numpy as np
import pytest

from repro.config import SchedulingModel, scaled_config
from repro.errors import ConfigError, ProgramError
from repro.fuzz import make_case, run_reference
from repro.isa.builder import KernelBuilder
from repro.simt.dwf import run_dwf
from repro.simt.gpu import GPU, LaunchSpec
from repro.simt.memory import GlobalMemory
from repro.simt.mimd import mimd_theoretical


def _trivial_program():
    builder = KernelBuilder()
    builder.kernel("main", registers=4)
    builder.exit()
    return builder.build()


def _gpu_overrides(model):
    overrides = {"scheduling": (SchedulingModel.WARP
                                if model in ("pdom_warp", "spawn")
                                else SchedulingModel.BLOCK)}
    if model == "spawn":
        overrides["spawn_enabled"] = True
    return overrides


@pytest.mark.parametrize("model", ["pdom_block", "pdom_warp", "spawn"])
@pytest.mark.parametrize("num_threads", [0, -4])
def test_gpu_models_reject_zero_threads(model, num_threads):
    program = _trivial_program()
    with pytest.raises(ConfigError):
        launch = LaunchSpec(program=program, entry_kernel="main",
                            num_threads=num_threads,
                            registers_per_thread=4, block_size=32)
        GPU(scaled_config(1, **_gpu_overrides(model)), launch,
            GlobalMemory(16), np.zeros(4)).run()


@pytest.mark.parametrize("model", ["pdom_block", "pdom_warp", "spawn"])
def test_gpu_models_reject_zero_block(model):
    program = _trivial_program()
    with pytest.raises(ConfigError):
        launch = LaunchSpec(program=program, entry_kernel="main",
                            num_threads=8, registers_per_thread=4,
                            block_size=0)
        GPU(scaled_config(1, **_gpu_overrides(model)), launch,
            GlobalMemory(16), np.zeros(4)).run()


@pytest.mark.parametrize("num_threads", [0, -1])
def test_dwf_rejects_zero_threads(num_threads):
    with pytest.raises(ConfigError):
        run_dwf(scaled_config(1), _trivial_program(), "main",
                GlobalMemory(16), np.zeros(4), num_threads)


def test_mimd_rejects_empty_workload():
    with pytest.raises(ConfigError):
        mimd_theoretical(np.zeros(0, dtype=np.int64), scaled_config(1))


@pytest.mark.parametrize("num_threads", [0, -2])
def test_reference_rejects_zero_threads(num_threads):
    case = dataclasses.replace(make_case(0, "plain"),
                               num_threads=num_threads)
    with pytest.raises(ConfigError):
        run_reference(case)


def test_reference_rejects_zero_block():
    case = dataclasses.replace(make_case(0, "plain"), block_size=0)
    with pytest.raises(ConfigError):
        run_reference(case)


def test_empty_program_rejected_at_build():
    with pytest.raises(ProgramError):
        KernelBuilder().build()
