"""The ``repro.api`` façade, config validation, and deprecation shims."""

from __future__ import annotations

import pickle

import pytest

import repro
from repro import api
from repro.config import GPUConfig
from repro.errors import ConfigError
from repro.harness.presets import get_preset
from repro.harness.runner import RunResult
from repro.kernels.microkernels import microkernel_launch_spec
from repro.obs import TraceSession
from repro.simt.gpu import STATS_VERSION, RunStats

MAX_CYCLES = 20_000


@pytest.fixture(scope="module", autouse=True)
def isolated_cache(tmp_path_factory):
    patch = pytest.MonkeyPatch()
    patch.setenv("REPRO_CACHE_DIR",
                 str(tmp_path_factory.mktemp("api-cache")))
    patch.delenv("REPRO_CACHE", raising=False)
    patch.delenv("REPRO_JOBS", raising=False)
    yield
    patch.undo()


@pytest.fixture(scope="module")
def workload():
    return api.build_workload("conference", get_preset("tiny"))


class TestSimulate:
    def test_by_scene_name(self):
        result = api.simulate("conference", "pdom_warp", preset="tiny",
                              max_cycles=MAX_CYCLES)
        assert isinstance(result, RunResult)
        assert result.mode == "pdom_warp"
        assert result.stats.cycles <= MAX_CYCLES
        assert result.trace is None

    def test_workload_passthrough(self, workload):
        result = api.simulate(workload, "spawn", max_cycles=MAX_CYCLES)
        assert result.workload is workload

    def test_probes_true_attaches_default_session(self, workload):
        result = api.simulate(workload, "spawn", max_cycles=MAX_CYCLES,
                              probes=True)
        assert isinstance(result.trace, TraceSession)
        assert result.trace.interval == 512
        assert result.trace.cycles == result.stats.cycles

    def test_probes_int_sets_interval(self, workload):
        result = api.simulate(workload, "spawn", max_cycles=MAX_CYCLES,
                              probes=256)
        assert result.trace.interval == 256

    def test_probes_session_used_as_is(self, workload):
        session = TraceSession(interval=1024, events=False)
        result = api.simulate(workload, "spawn", max_cycles=MAX_CYCLES,
                              probes=session)
        assert result.trace is session

    def test_probes_false_means_off(self, workload):
        result = api.simulate(workload, "spawn", max_cycles=MAX_CYCLES,
                              probes=False)
        assert result.trace is None

    def test_probes_bad_type(self, workload):
        with pytest.raises(ConfigError, match="probes"):
            api.simulate(workload, "spawn", probes="yes")

    def test_unknown_mode(self, workload):
        with pytest.raises(ConfigError, match="unknown mode"):
            api.simulate(workload, "warp_pdom")

    def test_matches_runner_bit_for_bit(self, workload):
        via_api = api.simulate(workload, "pdom_warp", max_cycles=MAX_CYCLES)
        from repro.harness.runner import run_mode
        direct = run_mode("pdom_warp", workload, max_cycles=MAX_CYCLES)
        assert via_api.stats.to_dict() == direct.stats.to_dict()


class TestSweep:
    def test_accepts_mixed_job_specs(self):
        results = api.sweep(
            [("conference", "pdom_warp", "tiny"),
             {"scene": "conference", "mode": "spawn", "preset": "tiny",
              "max_cycles": MAX_CYCLES},
             api.SweepJob("conference", "pdom_block", "tiny",
                          max_cycles=MAX_CYCLES)],
            jobs_n=1)
        assert [result.job.mode for result in results] == \
            ["pdom_warp", "spawn", "pdom_block"]
        assert len(results) == 3
        assert results.get("conference", "spawn").job.max_cycles == MAX_CYCLES


class TestLazyExports:
    def test_package_level_names(self):
        assert repro.simulate is api.simulate
        assert repro.sweep is api.sweep
        assert repro.TraceSession is TraceSession
        assert repro.MODES is api.MODES

    def test_dir_lists_facade(self):
        names = dir(repro)
        assert "simulate" in names and "sweep" in names

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.not_a_real_name


class TestDeprecationShims:
    """The pre-1.0 underscore spellings warn; the public names do not."""

    def test_underscore_build_workload_warns(self):
        from repro.harness import runner
        with pytest.warns(DeprecationWarning, match="repro.api"):
            runner._build_workload("conference", get_preset("tiny"))

    def test_underscore_run_mode_warns(self, workload):
        from repro.harness import runner
        with pytest.warns(DeprecationWarning, match="repro.api.run_mode"):
            runner._run_mode("pdom_warp", workload, max_cycles=1_000)

    def test_underscore_config_for_mode_warns(self):
        from repro.harness import runner
        with pytest.warns(DeprecationWarning):
            runner._config_for_mode("spawn", get_preset("tiny"))

    def test_underscore_launch_for_mode_warns(self):
        from repro.harness import runner
        with pytest.warns(DeprecationWarning):
            runner._launch_for_mode("spawn", 64)

    def test_shims_delegate(self, workload):
        from repro.harness import runner
        with pytest.warns(DeprecationWarning):
            old = runner._run_mode("pdom_warp", workload, max_cycles=5_000)
        new = api.simulate(workload, "pdom_warp", max_cycles=5_000)
        assert old.stats.to_dict() == new.stats.to_dict()

    def test_public_names_do_not_warn(self, workload, recwarn):
        import warnings as _warnings

        from repro.harness import runner
        with _warnings.catch_warnings():
            _warnings.simplefilter("error", DeprecationWarning)
            runner.config_for_mode("spawn", get_preset("tiny"))
            runner.launch_for_mode("spawn", 64)
            runner.run_mode("pdom_warp", workload, max_cycles=1_000)
            assert api.build_workload is runner.build_workload
            assert api.run_mode is runner.run_mode


class TestConfigValidation:
    def test_unknown_key_suggests(self):
        with pytest.raises(ConfigError, match="Did you mean 'num_sms'"):
            GPUConfig().replace(num_sm=2)

    def test_unknown_nested_key_suggests(self):
        with pytest.raises(ConfigError, match="Did you mean"):
            GPUConfig().replace(spawn_enable=True)

    def test_shorthand_reaches_nested_config(self):
        config = GPUConfig().replace(spawn_enabled=True, memory_ideal=True)
        assert config.spawn.enabled and config.memory.ideal

    def test_whole_and_shorthand_conflict(self):
        config = GPUConfig()
        with pytest.raises(ConfigError, match="not both"):
            config.replace(memory=config.memory, memory_ideal=True)

    def test_launch_spec_unknown_field(self):
        spec = microkernel_launch_spec(64)
        with pytest.raises(ConfigError, match="unknown LaunchSpec field"):
            spec.replace(blocksize=16)

    def test_launch_spec_replace_revalidates(self):
        spec = microkernel_launch_spec(64)
        with pytest.raises(ConfigError, match="state_words"):
            spec.replace(state_words=-1)
        assert spec.replace(block_size=16).block_size == 16


class TestStatsSerialization:
    @pytest.fixture(scope="class")
    def stats(self, workload):
        return api.simulate(workload, "spawn", max_cycles=MAX_CYCLES).stats

    def test_round_trip(self, stats):
        document = stats.to_dict()
        assert document["version"] == STATS_VERSION
        rebuilt = RunStats.from_dict(document)
        assert rebuilt.to_dict() == document
        assert rebuilt.ipc == stats.ipc

    def test_pickle_goes_through_versioned_schema(self, stats):
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.to_dict() == stats.to_dict()

    def test_version_mismatch_rejected(self, stats):
        document = stats.to_dict()
        document["version"] = 999
        with pytest.raises(ConfigError, match="version"):
            RunStats.from_dict(document)

    def test_digest_stable_under_round_trip(self, stats):
        rebuilt = RunStats.from_dict(stats.to_dict())
        assert (api.run_stats_digest(rebuilt)
                == api.run_stats_digest(stats))
