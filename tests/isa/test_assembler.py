"""Assembler / disassembler tests."""

import pytest

from repro.errors import AssemblerError
from repro.isa import assemble, disassemble

MINIMAL = """
.kernel main regs=4
main:
    exit;
"""


def one(op_text: str):
    """Assemble a single instruction inside a trivial kernel."""
    program = assemble(f".kernel main regs=8\nmain:\n    {op_text}\n    exit;\n")
    return program[0]


class TestParsingForms:
    def test_minimal_program(self):
        program = assemble(MINIMAL)
        assert len(program) == 1
        assert program.kernels["main"].registers == 4

    def test_arith(self):
        inst = one("add r1, r2, 3.5;")
        assert inst.op == "add"
        assert inst.dst.value == 1
        assert inst.srcs[1].value == 3.5

    def test_rd_alias(self):
        inst = one("mov rd4, r4;")
        assert inst.dst.value == 4 and inst.srcs[0].value == 4

    def test_mad(self):
        inst = one("mad r1, r2, r3, r4;")
        assert inst.op == "mad" and len(inst.srcs) == 3

    def test_setp_with_type_suffix(self):
        inst = one("setp.lt.f32 p1, r2, 0;")
        assert inst.op == "setp" and inst.cmp == "lt"
        assert inst.dst.kind == "p"

    def test_selp(self):
        inst = one("selp r1, r2, 3, p0;")
        assert inst.op == "selp" and inst.srcs[2].kind == "p"

    def test_ld_scalar(self):
        inst = one("ld.global r1, [r2+8];")
        assert inst.space == "global" and inst.offset == 8 and inst.width == 1

    def test_ld_vector(self):
        inst = one("ld.global.v4 r4, [r2-4];")
        assert inst.width == 4 and inst.offset == -4

    def test_spawnmem_alias(self):
        inst = one("st.spawnMem [r1+0], r2;")
        assert inst.space == "spawn"

    def test_st_immediate_source(self):
        inst = one("st.shared [r1+2], 7;")
        assert inst.srcs[1].kind == "imm"

    def test_guarded(self):
        inst = one("@p2 exit;")
        assert inst.pred.value == 2 and not inst.pred_neg

    def test_negated_guard(self):
        inst = one("@!p0 bra main;")
        assert inst.pred_neg

    def test_sreg(self):
        inst = one("mov r1, SREG.spawnMemAddr;")
        assert inst.srcs[0].kind == "sreg"

    def test_hex_immediate(self):
        inst = one("and r1, r2, 0x1F;")
        assert inst.srcs[1].value == 31.0

    def test_infinity_immediates(self):
        inst = one("mov r1, inf;")
        assert inst.srcs[0].value == float("inf")
        inst = one("mov r1, -inf;")
        assert inst.srcs[0].value == float("-inf")

    def test_comments_stripped(self):
        program = assemble("""
.kernel main regs=2
# full line comment
main:
    exit;  // trailing comment
""")
        assert len(program) == 1

    def test_spawn(self):
        source = """
.kernel main regs=2 state=4
.kernel child regs=2 state=4
main:
    spawn $child, r1;
    exit;
child:
    exit;
"""
        program = assemble(source)
        assert program[0].op == "spawn"
        assert program[0].target == program.kernels["child"].entry_pc


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(AssemblerError):
            one("frobnicate r1;")

    def test_bad_operand_count(self):
        with pytest.raises(AssemblerError):
            one("add r1, r2;")

    def test_malformed_memref(self):
        with pytest.raises(AssemblerError):
            one("ld.global r1, [+4];")

    def test_undefined_label(self):
        with pytest.raises(AssemblerError):
            assemble(".kernel main regs=2\nmain:\n    bra NOWHERE;\n    exit;")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble(".kernel main regs=2\nmain:\nmain:\n    exit;")

    def test_kernel_without_label(self):
        with pytest.raises(AssemblerError):
            assemble(".kernel ghost regs=2\nmain:\n    exit;")

    def test_spawn_to_non_kernel(self):
        with pytest.raises(AssemblerError):
            assemble("""
.kernel main regs=2
main:
    spawn $other, r1;
    exit;
other:
    exit;
""")

    def test_program_must_end_in_exit(self):
        with pytest.raises(AssemblerError):
            assemble(".kernel main regs=2\nmain:\n    mov r1, 2;")

    def test_unknown_suffix(self):
        with pytest.raises(AssemblerError):
            one("add.vec9 r1, r2, r3;")

    def test_error_reports_line_number(self):
        try:
            assemble(".kernel main regs=2\nmain:\n    bogus r1;\n    exit;")
        except AssemblerError as error:
            assert "line 3" in str(error)
        else:
            pytest.fail("expected AssemblerError")

    def test_setp_dst_must_be_predicate(self):
        with pytest.raises(AssemblerError):
            one("setp.lt r1, r2, r3;")


class TestRoundTrip:
    def test_traditional_kernel_round_trips(self):
        from repro.kernels.traditional import traditional_source
        program = assemble(traditional_source())
        text = disassemble(program)
        again = assemble(text)
        assert disassemble(again) == text

    def test_microkernel_round_trips(self):
        from repro.kernels.microkernels import microkernel_source
        program = assemble(microkernel_source())
        text = disassemble(program)
        again = assemble(text)
        assert disassemble(again) == text

    def test_round_trip_preserves_semantics(self):
        source = """
.kernel main regs=8 state=2
main:
    mov r0, SREG.tid;
    setp.ge p0, r0, 4;
    @p0 bra SKIP;
    add r1, r0, 1.25;
SKIP:
    st.global [r0+16], r1;
    exit;
"""
        program = assemble(source)
        again = assemble(disassemble(program))
        assert len(program) == len(again)
        for a, b in zip(program.instructions, again.instructions):
            assert a.op == b.op
            assert a.target == b.target
            assert a.offset == b.offset
