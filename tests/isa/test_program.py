"""Program container tests."""

import pytest

from repro.errors import ProgramError
from repro.isa import Instruction, Program, assemble, reg
from repro.isa.instructions import imm


def build_simple() -> Program:
    program = Program()
    program.add_label("main")
    program.add(Instruction("mov", dst=reg(0), srcs=(imm(1),)))
    program.add(Instruction("exit"))
    program.add_kernel("main", registers=4)
    return program.finalize()


class TestConstruction:
    def test_add_assigns_pcs(self):
        program = build_simple()
        assert [inst.pc for inst in program.instructions] == [0, 1]

    def test_len_and_getitem(self):
        program = build_simple()
        assert len(program) == 2
        assert program[1].op == "exit"

    def test_duplicate_label_raises(self):
        program = Program()
        program.add_label("a")
        with pytest.raises(ProgramError):
            program.add_label("a")

    def test_kernel_requires_label(self):
        program = Program()
        program.add(Instruction("exit"))
        with pytest.raises(ProgramError):
            program.add_kernel("ghost", registers=4)

    def test_duplicate_kernel_raises(self):
        program = Program()
        program.add_label("main")
        program.add(Instruction("exit"))
        program.add_kernel("main", registers=4)
        with pytest.raises(ProgramError):
            program.add_kernel("main", registers=4)

    def test_empty_program_raises(self):
        with pytest.raises(ProgramError):
            Program().finalize()

    def test_missing_branch_target_raises(self):
        program = Program()
        program.add_label("main")
        program.add(Instruction("bra", label="nowhere"))
        program.add(Instruction("exit"))
        with pytest.raises(ProgramError):
            program.finalize()

    def test_spawn_to_plain_label_raises(self):
        program = Program()
        program.add_label("main")
        program.add(Instruction("spawn", label="main", srcs=(reg(0),)))
        program.add(Instruction("exit"))
        with pytest.raises(ProgramError):
            program.finalize()

    def test_must_end_in_exit_or_branch(self):
        program = Program()
        program.add_label("main")
        program.add(Instruction("mov", dst=reg(0), srcs=(imm(0),)))
        with pytest.raises(ProgramError):
            program.finalize()


class TestAnalysisHelpers:
    def test_max_register_index(self):
        source = """
.kernel main regs=8
main:
    ld.global.v4 r4, [r9+0];
    exit;
"""
        program = assemble(source)
        # v4 load writes r4..r7; address register r9 is the max.
        assert program.max_register_index() == 9

    def test_max_register_counts_vector_span(self):
        source = """
.kernel main regs=8
main:
    ld.global.v4 r6, [r2+0];
    exit;
"""
        program = assemble(source)
        assert program.max_register_index() == 9  # r6..r9

    def test_max_predicate_index(self):
        source = """
.kernel main regs=4
main:
    setp.lt p3, r0, r1;
    @p5 exit;
    exit;
"""
        program = assemble(source)
        assert program.max_predicate_index() == 5

    def test_kernel_for_pc(self):
        source = """
.kernel a regs=2 state=1
.kernel b regs=2 state=1
a:
    mov r0, 1;
    exit;
b:
    exit;
"""
        program = assemble(source)
        assert program.kernel_for_pc(0).name == "a"
        assert program.kernel_for_pc(1).name == "a"
        assert program.kernel_for_pc(2).name == "b"

    def test_dynamic_spawn_targets_sorted_by_pc(self):
        source = """
.kernel main regs=2 state=1
.kernel early regs=2 state=1
.kernel late regs=2 state=1
main:
    spawn $late, r0;
    spawn $early, r0;
    exit;
early:
    exit;
late:
    exit;
"""
        program = assemble(source)
        targets = [k.name for k in program.dynamic_spawn_targets()]
        assert targets == ["early", "late"]

    def test_instruction_counts(self):
        program = build_simple()
        counts = program.instruction_counts()
        assert counts == {"mov": 1, "exit": 1}
