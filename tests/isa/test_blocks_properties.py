"""Property tests: basic-block/run compilation for the batched backend.

:func:`repro.isa.blocks.compile_blocks` underpins the batched executor's
correctness argument (docs/architecture.md, "Executor backends"): a warp
entering a run at its head is guaranteed to issue every instruction of
the run with no branch in, out, or through it. These properties pin that
argument over randomly generated (but structurally valid) programs:

- the blocks partition the PC space: every instruction belongs to
  exactly one block, and blocks appear in program order;
- runs within a block are disjoint, ordered, batchable-only, and
  maximal (extending either end would leave the block or swallow a
  non-batchable instruction);
- ``run_len`` agrees with the run layout at every PC;
- malformed programs — empty, control falling off the end, branches to
  PCs outside the program — are rejected with a typed
  :class:`~repro.errors.ConfigError` (never a raw ``ProgramError`` or a
  graph-library error).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.isa.blocks import BATCHABLE_OPS, compile_blocks
from repro.isa.instructions import Instruction, imm, preg, reg
from repro.isa.program import Program

#: Batchable body ops the generator draws (dst/srcs filled generically).
_BATCHABLE_BODY = ("add", "mul", "sub", "min", "neg", "mov", "rcp",
                   "mad", "setp", "selp", "nop")

#: Non-batchable, non-control body ops (break runs, stay in the block).
_OPAQUE_BODY = ("ld", "st", "bar")


def _body_instruction(op: str, salt: int) -> Instruction:
    """A valid instruction of the given op; operand choice is irrelevant
    to block structure, so a deterministic salt keeps shrinking stable."""
    r0, r1 = reg(salt % 4), reg((salt + 1) % 4)
    if op in ("add", "mul", "sub", "min"):
        return Instruction(op, dst=r0, srcs=(r1, imm(float(salt % 7))))
    if op in ("neg", "mov", "rcp"):
        return Instruction(op, dst=r0, srcs=(r1,))
    if op == "mad":
        return Instruction(op, dst=r0, srcs=(r1, imm(2.0), r0))
    if op == "setp":
        return Instruction(op, dst=preg(salt % 2), srcs=(r0, r1), cmp="lt")
    if op == "selp":
        return Instruction(op, dst=r0, srcs=(r0, r1, preg(salt % 2)))
    if op == "nop":
        return Instruction(op)
    if op == "ld":
        return Instruction(op, dst=r0, srcs=(r1,), space="shared")
    if op == "st":
        return Instruction(op, srcs=(r1, r0), space="shared")
    if op == "bar":
        return Instruction(op)
    raise AssertionError(op)


@st.composite
def programs(draw) -> Program:
    """Structurally valid programs: a chain of generated segments, each a
    random body followed by a terminator (bra / guarded bra / exit). All
    branch targets are segment heads, and the final segment cannot fall
    through, so ``build_cfg`` always accepts the result. The *compiled*
    block structure is usually finer than the generated segments (exits
    and branch fallthroughs mint new leaders) — the properties are
    asserted against ``compile_blocks`` output, not against the
    generation scaffolding.
    """
    num_segments = draw(st.integers(1, 5))
    bodies = [
        draw(st.lists(
            st.sampled_from(_BATCHABLE_BODY + _OPAQUE_BODY),
            min_size=0, max_size=6))
        for _ in range(num_segments)
    ]
    terminators = []
    for index in range(num_segments):
        last = index == num_segments - 1
        kinds = ["bra", "exit"] if last else ["bra", "bra_cond", "exit"]
        kind = draw(st.sampled_from(kinds))
        target = draw(st.integers(0, num_segments - 1))
        terminators.append((kind, target))

    program = Program()
    heads = []
    branches = []  # (instruction, target segment) patched once pcs exist
    for index in range(num_segments):
        heads.append(len(program))
        for salt, op in enumerate(bodies[index]):
            program.add(_body_instruction(op, salt + index))
        kind, target = terminators[index]
        if kind == "exit":
            program.add(Instruction("exit"))
        else:
            inst = Instruction("bra", target=0,
                               pred=preg(0) if kind == "bra_cond" else None)
            program.add(inst)
            branches.append((inst, target))
    for inst, target in branches:
        inst.target = heads[target]
    return program


class TestBlockPartition:
    @settings(max_examples=80, deadline=None)
    @given(programs())
    def test_blocks_cover_every_instruction_exactly_once_in_order(
            self, program):
        table = compile_blocks(program)
        assert table.num_instructions == len(program)
        assert table.blocks[0].leader == 0
        assert table.blocks[-1].end == len(program)
        for block in table.blocks:
            assert block.leader < block.end
        for first, second in zip(table.blocks, table.blocks[1:]):
            assert first.end == second.leader
        covered = [pc for block in table.blocks for pc in block.pcs]
        assert covered == list(range(len(program)))


class TestRuns:
    @settings(max_examples=80, deadline=None)
    @given(programs())
    def test_runs_disjoint_ordered_batchable_maximal(self, program):
        table = compile_blocks(program)
        for block in table.blocks:
            cursor = block.leader
            for run in block.runs:
                assert run.start >= cursor          # disjoint and ordered
                assert block.leader <= run.start
                assert run.end <= block.end         # never leaves the block
                assert run.length >= 1
                for pc in range(run.start, run.end):
                    assert program[pc].op in BATCHABLE_OPS
                if run.start > block.leader:        # maximal on the left
                    assert program[run.start - 1].op not in BATCHABLE_OPS
                if run.end < block.end:             # maximal on the right
                    assert program[run.end].op not in BATCHABLE_OPS
                cursor = run.end
            in_runs = {pc for run in block.runs
                       for pc in range(run.start, run.end)}
            batchable = {pc for pc in block.pcs
                         if program[pc].op in BATCHABLE_OPS}
            assert in_runs == batchable             # nothing missed

    @settings(max_examples=80, deadline=None)
    @given(programs())
    def test_run_len_consistent_at_every_pc(self, program):
        table = compile_blocks(program)
        leaders = {block.leader for block in table.blocks}
        size = len(program)
        for pc in range(size):
            batchable = program[pc].op in BATCHABLE_OPS
            assert (table.run_len[pc] > 0) == batchable
            if not batchable:
                continue
            following = pc + 1
            expected = 1
            if (following < size and following not in leaders
                    and table.run_len[following]):
                expected = table.run_len[following] + 1
            assert table.run_len[pc] == expected
        for block in table.blocks:
            for run in block.runs:
                for pc in range(run.start, run.end):
                    assert table.run_len[pc] == run.end - pc


class TestMalformedPrograms:
    def test_empty_program_rejected(self):
        with pytest.raises(ConfigError, match="empty program"):
            compile_blocks(Program())

    def test_fall_off_the_end_rejected(self):
        program = Program()
        program.add(Instruction("add", dst=reg(0), srcs=(reg(0), imm(1.0))))
        with pytest.raises(ConfigError, match="falls off the end"):
            compile_blocks(program)

    @pytest.mark.parametrize("target", (-3, 99))
    def test_branch_outside_program_rejected(self, target):
        program = Program()
        program.add(Instruction("bra", target=target))
        with pytest.raises(ConfigError, match="not a block leader"):
            compile_blocks(program)

    @settings(max_examples=40, deadline=None)
    @given(programs(), st.integers(0, 10_000))
    def test_corrupted_branch_always_a_config_error(self, program, offset):
        """Breaking any branch target past the end must surface as the
        typed ConfigError, never as a raw ProgramError or graph error."""
        branches = [inst for inst in program.instructions
                    if inst.op == "bra"]
        if not branches:
            return
        branches[offset % len(branches)].target = len(program) + 1 + offset
        with pytest.raises(ConfigError):
            compile_blocks(program)
