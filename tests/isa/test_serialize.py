"""Program JSON serialization: canonical round-trips and validation."""

import json

import numpy as np
import pytest

from repro.errors import ProgramError
from repro.isa.builder import KernelBuilder
from repro.isa.serialize import (
    PROGRAM_SCHEMA,
    program_from_dict,
    program_from_json,
    program_to_dict,
    program_to_json,
)


def _sample_program():
    builder = KernelBuilder()
    builder.kernel("main", registers=8, state_words=3)
    builder.mov("r0", "SREG.tid")
    builder.add("r1", "r0", 2.5)
    builder.setp("gt", "p1", "r1", 0.0)
    builder.label("skip")
    builder.st("global", "r0", float("nan"), offset=4, pred="p1")
    builder.bra("skip", pred="!p1")
    builder.mov("r2", float("-inf"))
    builder.exit()
    builder.kernel("child", registers=4)
    builder.exit()
    return builder.build()


class TestRoundTrip:
    def test_json_round_trip_is_byte_identical(self):
        program = _sample_program()
        text = program_to_json(program)
        again = program_to_json(program_from_json(text))
        assert again == text

    def test_round_trip_preserves_semantics(self):
        program = _sample_program()
        rebuilt = program_from_json(program_to_json(program))
        assert len(rebuilt) == len(program)
        assert rebuilt.labels == program.labels
        assert set(rebuilt.kernels) == set(program.kernels)
        for mine, theirs in zip(program.instructions, rebuilt.instructions):
            assert mine.op == theirs.op
            assert mine.pc == theirs.pc

    def test_non_finite_immediates_round_trip(self):
        program = _sample_program()
        rebuilt = program_from_json(program_to_json(program))
        stored = rebuilt.instructions[3].srcs[1].value
        assert np.isnan(stored)
        assert rebuilt.instructions[5].srcs[0].value == float("-inf")

    def test_dict_form_is_json_clean(self):
        doc = program_to_dict(_sample_program())
        assert doc["schema"] == PROGRAM_SCHEMA
        json.dumps(doc)  # no numpy types / non-JSON values leak through


class TestValidation:
    def _doc(self):
        return program_to_dict(_sample_program())

    def test_wrong_schema(self):
        doc = self._doc()
        doc["schema"] = "repro-program/99"
        with pytest.raises(ProgramError, match="program.schema"):
            program_from_dict(doc)

    def test_unknown_program_field(self):
        doc = self._doc()
        doc["extra"] = 1
        with pytest.raises(ProgramError, match="program.extra"):
            program_from_dict(doc)

    def test_unknown_instruction_field_names_path(self):
        doc = self._doc()
        doc["instructions"][3]["weird"] = True
        with pytest.raises(ProgramError,
                           match=r"program\.instructions\[3\]\.weird"):
            program_from_dict(doc)

    def test_bad_operand_names_slot(self):
        doc = self._doc()
        doc["instructions"][1]["srcs"][1] = "q7"
        with pytest.raises(ProgramError,
                           match=r"program\.instructions\[1\]\.srcs\[1\]"):
            program_from_dict(doc)

    def test_bad_guard(self):
        doc = self._doc()
        doc["instructions"][4]["guard"] = "r3"
        with pytest.raises(ProgramError,
                           match=r"program\.instructions\[4\]\.guard"):
            program_from_dict(doc)

    def test_label_out_of_range(self):
        doc = self._doc()
        doc["labels"]["skip"] = 999
        with pytest.raises(ProgramError, match=r"labels\['skip'\]"):
            program_from_dict(doc)

    def test_missing_kernel_registers(self):
        doc = self._doc()
        del doc["kernels"][0]["registers"]
        with pytest.raises(ProgramError,
                           match=r"program\.kernels\[0\]\.registers"):
            program_from_dict(doc)

    def test_undefined_branch_target_rejected_at_finalize(self):
        doc = self._doc()
        del doc["labels"]["skip"]
        with pytest.raises(ProgramError):
            program_from_dict(doc)

    def test_invalid_json_text(self):
        with pytest.raises(ProgramError, match="invalid JSON"):
            program_from_json("{not json")

    def test_non_dict_document(self):
        with pytest.raises(ProgramError, match="program object"):
            program_from_dict([1, 2, 3])
