"""KernelBuilder API tests, including equivalence with the assembler."""

import numpy as np
import pytest

from repro.errors import ProgramError
from repro.isa import assemble, disassemble
from repro.isa.builder import KernelBuilder, _operand


class TestOperandCoercion:
    def test_registers(self):
        assert _operand("r7").kind == "r" and _operand("r7").value == 7
        assert _operand("rd3").value == 3

    def test_predicates(self):
        assert _operand("p2").kind == "p"

    def test_immediates(self):
        assert _operand(5).value == 5.0
        assert _operand(2.5).value == 2.5

    def test_sreg(self):
        assert _operand("SREG.tid").kind == "sreg"

    def test_garbage_raises(self):
        with pytest.raises(ProgramError):
            _operand("bogus")
        with pytest.raises(ProgramError):
            _operand("SREG.nope")


class TestBuilding:
    def build_loop(self):
        builder = KernelBuilder()
        builder.kernel("main", registers=8)
        builder.mov("r0", "SREG.tid")
        builder.mov("r1", 0)
        builder.label("LOOP")
        builder.add("r1", "r1", 1)
        builder.setp("lt", "p0", "r1", "r0")
        builder.bra("LOOP", pred="p0")
        builder.st("global", "r0", "r1")
        builder.exit()
        return builder.build()

    def test_matches_assembler_output(self):
        program = self.build_loop()
        source = """
.kernel main regs=8
main:
    mov r0, SREG.tid;
    mov r1, 0;
LOOP:
    add r1, r1, 1;
    setp.lt p0, r1, r0;
    @p0 bra LOOP;
    st.global [r0+0], r1;
    exit;
"""
        assembled = assemble(source)
        assert disassemble(program) == disassemble(assembled)

    def test_built_program_executes(self):
        from repro.config import scaled_config
        from repro.simt import GPU, GlobalMemory, LaunchSpec
        program = self.build_loop()
        mem = GlobalMemory(64)
        launch = LaunchSpec(program=program, entry_kernel="main",
                            num_threads=8, registers_per_thread=8,
                            block_size=32)
        gpu = GPU(scaled_config(1, max_cycles=50_000), launch, mem)
        gpu.run()
        # Thread i stores max(1, i) at address i.
        assert mem.words[:8].tolist() == [1, 1, 2, 3, 4, 5, 6, 7]

    def test_negated_guard(self):
        builder = KernelBuilder()
        builder.kernel("main", registers=4)
        builder.exit(pred="!p1")
        builder.exit()
        program = builder.build()
        assert program[0].pred_neg

    def test_chaining(self):
        program = (KernelBuilder()
                   .kernel("main", registers=4)
                   .mov("r0", 1)
                   .exit()
                   .build())
        assert len(program) == 2

    def test_vector_memory(self):
        builder = KernelBuilder()
        builder.kernel("main", registers=12)
        builder.ld("global", "r4", "r0", offset=8, width=4)
        builder.st("spawn", "r1", "r4", width=4)
        builder.exit()
        program = builder.build()
        assert program[0].width == 4 and program[0].offset == 8
        assert program[1].space == "spawn"

    def test_spawn(self):
        builder = KernelBuilder()
        builder.kernel("main", registers=4, state_words=2)
        builder.spawn("child", "r1", pred="p0")
        builder.exit()
        builder.kernel("child", registers=4, state_words=2)
        builder.exit()
        program = builder.build()
        assert program[0].op == "spawn"
        assert program[0].target == program.kernels["child"].entry_pc

    def test_mad_selp(self):
        builder = KernelBuilder()
        builder.kernel("main", registers=8)
        builder.mad("r3", "r0", "r1", "r2")
        builder.selp("r4", "r0", "r1", "p0")
        builder.exit()
        program = builder.build()
        assert program[0].op == "mad"
        assert program[1].srcs[2].kind == "p"


class TestValidation:
    def test_setp_needs_predicate_dst(self):
        builder = KernelBuilder()
        with pytest.raises(ProgramError):
            builder.setp("lt", "r0", "r1", "r2")

    def test_unknown_cmp(self):
        with pytest.raises(ProgramError):
            KernelBuilder().setp("approx", "p0", "r1", "r2")

    def test_unknown_space(self):
        with pytest.raises(ProgramError):
            KernelBuilder().ld("texture", "r0", "r1")

    def test_guard_must_be_predicate(self):
        with pytest.raises(ProgramError):
            KernelBuilder().exit(pred="r1")

    def test_selp_chooser_must_be_predicate(self):
        with pytest.raises(ProgramError):
            KernelBuilder().selp("r0", "r1", "r2", "r3")

    def test_build_requires_valid_program(self):
        builder = KernelBuilder()
        builder.kernel("main", registers=4)
        builder.mov("r0", 1)  # no trailing exit
        with pytest.raises(ProgramError):
            builder.build()

    def test_all_arith_ops_present(self):
        from repro.isa.instructions import ARITH_OPS, UNARY_OPS
        for op in ARITH_OPS + UNARY_OPS:
            assert callable(getattr(KernelBuilder, op))
