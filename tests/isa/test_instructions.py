"""Instruction and operand construction tests."""

import pytest

from repro.isa import Instruction, imm, preg, reg, sreg
from repro.isa.instructions import OPCODES, SPECIAL_REGISTERS


class TestOperands:
    def test_reg(self):
        operand = reg(5)
        assert operand.kind == "r" and operand.value == 5
        assert repr(operand) == "r5"

    def test_negative_reg_raises(self):
        with pytest.raises(ValueError):
            reg(-1)

    def test_preg(self):
        operand = preg(2)
        assert operand.kind == "p" and repr(operand) == "p2"

    def test_negative_preg_raises(self):
        with pytest.raises(ValueError):
            preg(-3)

    def test_imm_coerces_float(self):
        operand = imm(3)
        assert operand.value == 3.0 and isinstance(operand.value, float)

    def test_sreg_known(self):
        for name in SPECIAL_REGISTERS:
            assert sreg(name).value == name

    def test_sreg_unknown_raises(self):
        with pytest.raises(ValueError):
            sreg("laneid")


class TestInstructionValidation:
    def test_unknown_opcode_raises(self):
        with pytest.raises(ValueError):
            Instruction("frobnicate")

    def test_setp_requires_cmp(self):
        with pytest.raises(ValueError):
            Instruction("setp", dst=preg(0), srcs=(reg(0), reg(1)))

    def test_memory_requires_space(self):
        with pytest.raises(ValueError):
            Instruction("ld", dst=reg(0), srcs=(reg(1),))

    def test_bad_width_raises(self):
        with pytest.raises(ValueError):
            Instruction("ld", dst=reg(0), srcs=(reg(1),), space="global",
                        width=3)

    def test_bra_requires_label(self):
        with pytest.raises(ValueError):
            Instruction("bra")

    def test_spawn_requires_label(self):
        with pytest.raises(ValueError):
            Instruction("spawn", srcs=(reg(1),))

    def test_all_opcodes_unique(self):
        assert len(OPCODES) == len(set(OPCODES))


class TestInstructionProperties:
    def test_control_flags(self):
        assert Instruction("bra", label="L").is_control
        assert Instruction("exit").is_control
        assert not Instruction("add", dst=reg(0), srcs=(reg(1), reg(2))).is_control

    def test_memory_flags(self):
        ld = Instruction("ld", dst=reg(0), srcs=(reg(1),), space="global")
        assert ld.is_memory and ld.is_offchip_memory and not ld.is_onchip_memory
        sh = Instruction("st", srcs=(reg(1), reg(2)), space="spawn")
        assert sh.is_memory and sh.is_onchip_memory and not sh.is_offchip_memory

    def test_guard_repr(self):
        inst = Instruction("exit", pred=preg(1), pred_neg=True)
        assert inst.guard_repr() == "@!p1 "
        assert Instruction("exit").guard_repr() == ""
