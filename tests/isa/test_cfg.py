"""CFG construction and PDOM reconvergence analysis tests."""

import pytest

from repro.isa import assemble, build_cfg, immediate_post_dominators, reconvergence_table
from repro.isa.cfg import EXIT, RECONV_AT_EXIT, basic_block_leaders


def program_of(body: str):
    return assemble(f".kernel main regs=8\nmain:\n{body}")


IF_ELSE = """
    setp.lt p0, r0, r1;
    @p0 bra THEN;
    mov r2, 1;
    bra JOIN;
THEN:
    mov r2, 2;
JOIN:
    st.global [r0+0], r2;
    exit;
"""

LOOP = """
    mov r1, 0;
LOOP:
    add r1, r1, 1;
    setp.lt p0, r1, r0;
    @p0 bra LOOP;
    exit;
"""

NESTED = """
OUTER:
    setp.lt p0, r0, r1;
    @p0 bra INNER_DONE;
INNER:
    add r2, r2, 1;
    setp.lt p1, r2, r3;
    @p1 bra INNER;
INNER_DONE:
    add r0, r0, 1;
    setp.lt p0, r0, 10;
    @p0 bra OUTER;
    exit;
"""


class TestLeaders:
    def test_if_else_leaders(self):
        program = program_of(IF_ELSE)
        leaders = basic_block_leaders(program)
        assert 0 in leaders
        assert program.labels["THEN"] in leaders
        assert program.labels["JOIN"] in leaders

    def test_loop_leaders(self):
        program = program_of(LOOP)
        leaders = basic_block_leaders(program)
        assert program.labels["LOOP"] in leaders


class TestCFG:
    def test_if_else_edges(self):
        program = program_of(IF_ELSE)
        graph = build_cfg(program)
        then_pc = program.labels["THEN"]
        join_pc = program.labels["JOIN"]
        assert graph.has_edge(0, then_pc)       # taken
        assert graph.has_edge(0, 2)             # fallthrough
        assert graph.has_edge(then_pc, join_pc)
        assert graph.has_edge(join_pc, EXIT)

    def test_loop_back_edge(self):
        program = program_of(LOOP)
        graph = build_cfg(program)
        loop_pc = program.labels["LOOP"]
        assert graph.has_edge(loop_pc, loop_pc) or any(
            graph.has_edge(node, loop_pc) for node in graph.nodes
            if node != EXIT and node >= loop_pc)

    def test_predicated_exit_edges(self):
        program = program_of("""
    setp.lt p0, r0, r1;
    @p0 exit;
    mov r2, 1;
    exit;
""")
        graph = build_cfg(program)
        assert graph.has_edge(0, EXIT)
        assert graph.has_edge(0, 2)


class TestPostDominators:
    def test_if_else_join(self):
        program = program_of(IF_ELSE)
        ipdom = immediate_post_dominators(program)
        join_pc = program.labels["JOIN"]
        assert ipdom[0] == join_pc

    def test_loop_exit_block(self):
        program = program_of(LOOP)
        ipdom = immediate_post_dominators(program)
        loop_pc = program.labels["LOOP"]
        # The loop block's post-dominator is the block after the back-edge.
        branch_pc = next(inst.pc for inst in program.instructions
                         if inst.op == "bra")
        assert ipdom[loop_pc] == branch_pc + 1

    def test_infinite_loop_handled(self):
        program = assemble("""
.kernel main regs=2
main:
SPIN:
    bra SPIN;
""")
        ipdom = immediate_post_dominators(program)
        assert program.labels["SPIN"] in ipdom


class TestReconvergenceTable:
    def test_only_predicated_branches(self):
        program = program_of(IF_ELSE)
        table = reconvergence_table(program)
        predicated = [inst.pc for inst in program.instructions
                      if inst.op == "bra" and inst.pred is not None]
        assert set(table) == set(predicated)

    def test_if_else_reconverges_at_join(self):
        program = program_of(IF_ELSE)
        table = reconvergence_table(program)
        assert table[1] == program.labels["JOIN"]

    def test_loop_reconverges_after_branch(self):
        program = program_of(LOOP)
        table = reconvergence_table(program)
        branch_pc = next(iter(table))
        assert table[branch_pc] == branch_pc + 1

    def test_nested_loops(self):
        program = program_of(NESTED)
        table = reconvergence_table(program)
        inner_branch = next(inst.pc for inst in program.instructions
                            if inst.op == "bra"
                            and inst.label == "INNER")
        assert table[inner_branch] == program.labels["INNER_DONE"]

    def test_paths_meeting_only_at_exit(self):
        program = assemble("""
.kernel main regs=4
main:
    setp.lt p0, r0, r1;
    @p0 bra OTHER;
    mov r2, 1;
    exit;
OTHER:
    mov r2, 2;
    exit;
""")
        table = reconvergence_table(program)
        assert table[1] == RECONV_AT_EXIT

    def test_traditional_kernel_branches_all_covered(self):
        from repro.kernels.traditional import traditional_program
        program = traditional_program()
        table = reconvergence_table(program)
        for inst in program.instructions:
            if inst.op == "bra" and inst.pred is not None:
                assert inst.pc in table

    def test_microkernel_branches_all_covered(self):
        from repro.kernels.microkernels import microkernel_program
        program = microkernel_program()
        table = reconvergence_table(program)
        for inst in program.instructions:
            if inst.op == "bra" and inst.pred is not None:
                assert inst.pc in table
