"""Wire-schema contracts: round trips, strictness, and legacy compat.

The hypothesis suites generate arbitrary job specs and requests, encode
them to canonical JSONL, and assert a bit-exact round trip through
``parse_line``/``from_wire`` — the same path the shard manifest, the
checkpoint files, and the HTTP API all use.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.harness.sweep import SweepJob
from repro.serve import wire
from repro.serve.wire import SimulateRequest, SweepRequest

SCENES = ("conference", "fairyforest", "atrium")
MODES = ("pdom_block", "pdom_warp", "spawn", "spawn_conflicts")
RAY_KINDS = ("primary", "shadow", "reflection", "gi")

jobs_st = st.builds(
    SweepJob,
    scene=st.sampled_from(SCENES),
    mode=st.sampled_from(MODES),
    preset=st.sampled_from(("tiny", "fast", "paper")),
    ray_kind=st.sampled_from(RAY_KINDS),
    seed=st.integers(0, 2**31 - 1),
    max_cycles=st.none() | st.integers(1, 10**9),
    fast_forward=st.none() | st.booleans(),
    executor=st.none() | st.sampled_from(("reference", "batched")),
    scheduler=st.none() | st.sampled_from(("scan", "calendar")),
)

simulate_requests_st = st.builds(
    SimulateRequest,
    scene=st.sampled_from(SCENES),
    mode=st.sampled_from(MODES),
    preset=st.sampled_from(("tiny", "fast")),
    ray_kind=st.sampled_from(RAY_KINDS),
    seed=st.integers(0, 2**16),
    max_cycles=st.none() | st.integers(1, 10**6),
    executor=st.none() | st.sampled_from(("reference", "batched")),
)

sweep_requests_st = st.builds(
    SweepRequest,
    jobs=st.lists(jobs_st, min_size=1, max_size=4, unique_by=lambda j: j.key)
        .map(tuple),
    jobs_n=st.none() | st.integers(1, 8),
    shards=st.integers(0, 4),
    retries=st.integers(1, 5),
    job_timeout=st.none() | st.floats(0.1, 600.0, allow_nan=False),
)


class TestJobRoundTrip:
    @given(jobs_st)
    @settings(max_examples=200, deadline=None)
    def test_job_round_trips_through_a_line(self, job):
        record = wire.parse_line(wire.dump_line(job))
        assert wire.from_wire(record) == job

    @given(jobs_st)
    @settings(max_examples=50, deadline=None)
    def test_record_key_matches_job_identity(self, job):
        record = wire.job_to_wire(job)
        assert wire.record_key(record) == (job.key, job.config_digest())

    def test_tampered_digest_is_rejected(self):
        record = wire.job_to_wire(
            SweepJob(scene="conference", mode="spawn", preset="tiny"))
        record["max_cycles"] = 999  # result-affecting edit, stale digest
        with pytest.raises(ConfigError, match="digest"):
            wire.job_from_wire(record)

    def test_unknown_request_field_gets_a_suggestion(self):
        record = wire.request_to_wire(
            SimulateRequest(scene="conference", mode="spawn"))
        record["scheddler"] = "scan"
        with pytest.raises(ConfigError, match="scheduler"):
            wire.request_from_wire(record)


class TestRequestRoundTrip:
    @given(simulate_requests_st)
    @settings(max_examples=100, deadline=None)
    def test_simulate_request_round_trips(self, request):
        record = wire.parse_line(wire.dump_line(request))
        assert wire.from_wire(record) == request

    @given(sweep_requests_st)
    @settings(max_examples=100, deadline=None)
    def test_sweep_request_round_trips(self, request):
        record = wire.parse_line(wire.dump_line(request))
        assert wire.from_wire(record) == request

    @given(simulate_requests_st)
    @settings(max_examples=100, deadline=None)
    def test_request_digest_is_stable_and_content_addressed(self, request):
        direct = wire.request_digest(request)
        reencoded = wire.request_digest(
            wire.parse_line(wire.dump_line(request)))
        assert direct == reencoded
        different = wire.request_digest(
            SimulateRequest(**{**request.__dict__, "seed": request.seed + 1}))
        assert different != direct

    @given(simulate_requests_st)
    @settings(max_examples=50, deadline=None)
    def test_simulate_request_to_job_preserves_every_field(self, request):
        job = request.to_job()
        for name in ("scene", "mode", "preset", "ray_kind", "seed",
                     "max_cycles", "fast_forward", "executor", "scheduler"):
            assert getattr(job, name) == getattr(request, name)

    def test_empty_sweep_request_rejected(self):
        with pytest.raises(ConfigError, match="at least one job"):
            SweepRequest(jobs=())

    def test_bad_retries_rejected(self):
        job = SweepJob(scene="conference", mode="spawn", preset="tiny")
        with pytest.raises(ConfigError, match="retries"):
            SweepRequest(jobs=(job,), retries=0)


class TestParseLine:
    def test_torn_and_foreign_lines_return_none(self):
        assert wire.parse_line("") is None
        assert wire.parse_line('{"torn": ') is None
        assert wire.parse_line("not json") is None
        assert wire.parse_line('["a", "list"]') is None
        assert wire.parse_line(json.dumps({"schema": "other/9"})) is None

    def test_from_wire_rejects_foreign_schema(self):
        with pytest.raises(ConfigError, match="unsupported wire schema"):
            wire.from_wire({"schema": "other/9", "kind": "job"})

    def test_from_wire_rejects_unknown_kind(self):
        with pytest.raises(ConfigError, match="unknown wire record kind"):
            wire.from_wire({"schema": wire.WIRE_SCHEMA, "kind": "mystery"})


class TestLegacyCheckpointCompat:
    """PR 4 manifests (``repro-sweep-checkpoint/1``) must keep loading."""

    def legacy_record(self, job, stats_doc):
        # The exact shape SweepCheckpoint.record wrote before the wire
        # module existed: no "kind", no embedded job spec.
        return {
            "schema": wire.LEGACY_CHECKPOINT_SCHEMA,
            "key": list(job.key),
            "preset": job.preset,
            "digest": job.config_digest(),
            "num_rays": 64,
            "verified": True,
            "wall_seconds": 0.5,
            "stats": stats_doc,
        }

    def test_legacy_line_normalizes_to_result(self, tiny_stats_doc):
        job = SweepJob(scene="conference", mode="spawn", preset="tiny")
        line = json.dumps(self.legacy_record(job, tiny_stats_doc))
        record = wire.parse_line(line)
        assert record is not None
        assert record["schema"] == wire.WIRE_SCHEMA
        assert record["kind"] == "result"
        assert wire.record_key(record) == (job.key, job.config_digest())

    def test_legacy_result_rehydrates_bit_identically(self, tiny_stats_doc):
        job = SweepJob(scene="conference", mode="spawn", preset="tiny")
        record = wire.parse_line(
            json.dumps(self.legacy_record(job, tiny_stats_doc)))
        result = wire.result_from_wire(record, job=job)
        assert result.job is job
        assert result.stats.to_dict() == tiny_stats_doc


class TestMalformedResultDiagnostics:
    """Bad result records get did-you-mean ConfigErrors, not KeyErrors."""

    def good_record(self, job, stats_doc):
        return {
            "schema": wire.WIRE_SCHEMA,
            "kind": "result",
            "key": list(job.key),
            "digest": job.config_digest(),
            "num_rays": 64,
            "verified": True,
            "wall_seconds": 0.5,
            "stats": stats_doc,
        }

    def test_missing_field_names_it(self, tiny_stats_doc):
        job = SweepJob(scene="conference", mode="spawn", preset="tiny")
        record = self.good_record(job, tiny_stats_doc)
        del record["wall_seconds"]
        with pytest.raises(ConfigError, match="missing 'wall_seconds'"):
            wire.result_from_wire(record, job=job)

    def test_typoed_field_gets_did_you_mean(self, tiny_stats_doc):
        job = SweepJob(scene="conference", mode="spawn", preset="tiny")
        record = self.good_record(job, tiny_stats_doc)
        record["wall_secondss"] = record.pop("wall_seconds")
        with pytest.raises(ConfigError,
                           match="Did you mean 'wall_secondss'"):
            wire.result_from_wire(record, job=job)

    def test_unconvertible_value_names_field_and_value(self, tiny_stats_doc):
        job = SweepJob(scene="conference", mode="spawn", preset="tiny")
        record = self.good_record(job, tiny_stats_doc)
        record["wall_seconds"] = "forty-two"
        with pytest.raises(ConfigError,
                           match="'wall_seconds' is malformed"):
            wire.result_from_wire(record, job=job)

    def test_malformed_stats_payload_is_diagnosed(self, tiny_stats_doc):
        job = SweepJob(scene="conference", mode="spawn", preset="tiny")
        record = self.good_record(job, tiny_stats_doc)
        record["stats"] = {"not": "a stats payload"}
        with pytest.raises(ConfigError):
            wire.result_from_wire(record, job=job)

    def test_no_bare_keyerror_escapes(self, tiny_stats_doc):
        job = SweepJob(scene="conference", mode="spawn", preset="tiny")
        for field in ("stats", "num_rays", "verified", "wall_seconds"):
            record = self.good_record(job, tiny_stats_doc)
            del record[field]
            with pytest.raises(ConfigError):
                wire.result_from_wire(record, job=job)


@pytest.fixture(scope="module")
def tiny_stats_doc():
    """A real RunStats document from one tiny simulation."""
    from repro.harness.sweep import execute_job

    result = execute_job(SweepJob(scene="conference", mode="spawn",
                                  preset="tiny", max_cycles=5_000))
    return result.stats.to_dict()
