"""End-to-end job-server tests over a real HTTP socket.

One daemon (``ReproServer`` on an ephemeral port) serves the whole
module; every test talks to it through :class:`ServeClient` — the same
stdlib ``urllib`` path ``repro submit`` uses — so request encoding,
routing, NDJSON streaming, and error answers are all exercised for real.

The acceptance tests pin the service's ``run_stats_digest`` values
against an in-process ``api.sweep`` run, and prove that resubmitting a
finished request — to the same daemon, and to a freshly restarted one
sharing the checkpoint directory — answers without re-executing.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import api
from repro.errors import ServeError
from repro.harness.sweep import SweepJob, run_stats_digest
from repro.serve.client import ServeClient
from repro.serve.server import JobManager, ReproServer
from repro.serve.wire import WIRE_SCHEMA, SimulateRequest, SweepRequest

MAX_CYCLES = 20_000

SIM = SimulateRequest(scene="conference", mode="spawn", preset="tiny",
                      max_cycles=MAX_CYCLES)


def sweep_jobs():
    return tuple(SweepJob(scene="conference", mode=mode, preset="tiny",
                          max_cycles=MAX_CYCLES)
                 for mode in ("pdom_block", "pdom_warp", "spawn"))


@pytest.fixture(scope="module")
def server(tmp_path_factory, isolated_cache):
    checkpoints = tmp_path_factory.mktemp("serve-checkpoints")
    server = ReproServer(("127.0.0.1", 0), JobManager(checkpoints))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(server.url)


class TestEndpoints:
    def test_ping(self, client):
        answer = client.ping()
        assert answer["ok"] is True
        assert answer["schema"] == WIRE_SCHEMA

    def test_unknown_endpoint_404s(self, client):
        with pytest.raises(ServeError, match="no such endpoint") as info:
            client._json("/v1/nope")
        assert info.value.status == 404

    def test_unknown_job_404s(self, client):
        with pytest.raises(ServeError, match="no such job") as info:
            client.job("job-9999-deadbeef")
        assert info.value.status == 404

    def test_malformed_body_400s(self, client, server):
        request = urllib.request.Request(
            f"{server.url}/v1/jobs", data=b"not json at all",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400
        assert "not JSON" in json.loads(info.value.read())["error"]

    def test_non_request_record_400s(self, client):
        with pytest.raises(ServeError) as info:
            client.submit({"schema": WIRE_SCHEMA, "kind": "claim"})
        assert info.value.status == 400


class TestSimulateJob:
    def test_submit_poll_result_matches_api(self, client):
        answer = client.run(SIM, timeout=300)
        assert answer["state"] == "done"
        (record,) = answer["results"]
        reference = api.simulate(SIM.scene, SIM.mode, preset=SIM.preset,
                                 max_cycles=SIM.max_cycles)
        assert record["run_stats_digest"] \
            == run_stats_digest(reference.stats)
        assert record["stats"] == reference.stats.to_dict()

    def test_resubmission_deduplicates(self, client):
        first = client.submit(SIM)
        client.wait(first["id"], timeout=300)
        again = client.submit(SIM)
        assert again["deduplicated"] is True
        assert again["id"] == first["id"]

    def test_events_stream_ndjson_to_completion(self, client):
        status = client.submit(SIM)
        client.wait(status["id"], timeout=300)
        events = list(client.events(status["id"]))
        assert events[0]["seq"] == 0
        assert [event["seq"] for event in events] \
            == list(range(len(events)))
        assert events[-1]["state"] == "done"
        # resume mid-stream, as a reconnecting client would
        tail = list(client.events(status["id"], start=len(events) - 1))
        assert tail == events[-1:]

    def test_events_are_valid_ndjson_bytes(self, client, server):
        status = client.submit(SIM)
        client.wait(status["id"], timeout=300)
        with urllib.request.urlopen(
                f"{server.url}/v1/jobs/{status['id']}/events") as response:
            assert response.headers["Content-Type"] \
                == "application/x-ndjson"
            lines = response.read().decode().splitlines()
        assert all(isinstance(json.loads(line), dict) for line in lines)

    def test_result_of_running_job_409s(self, client, server):
        # Plant a queued job directly in the table (it never runs), so
        # the 409 path is exercised without racing a real execution.
        from repro.serve.server import Job

        request = SimulateRequest(scene="conference", mode="pdom_warp",
                                  preset="tiny", max_cycles=1)
        job = Job(id="job-held-0000", digest="0" * 16,
                  kind="simulate-request", request=request)
        with server.manager._lock:
            server.manager._jobs[job.id] = job
        with pytest.raises(ServeError, match="still queued") as info:
            client.result(job.id)
        assert info.value.status == 409


class TestSweepJobAndCache:
    def test_sweep_digest_matches_in_process_sweep(self, client):
        answer = client.run(SweepRequest(jobs=sweep_jobs()), timeout=600)
        assert answer["state"] == "done"
        reference = api.sweep(sweep_jobs(), jobs_n=1)
        for record, expected in zip(answer["results"], reference):
            assert record["run_stats_digest"] \
                == run_stats_digest(expected.stats)

    def test_restarted_daemon_serves_from_checkpoint(self, client, server,
                                                     isolated_cache):
        """The ISSUE acceptance criterion: an identical resubmission to a
        *fresh* daemon sharing the checkpoint dir is served entirely from
        checkpoint records — zero jobs re-executed."""
        request = SweepRequest(jobs=sweep_jobs())
        client.run(request, timeout=600)  # populate the checkpoints

        fresh = ReproServer(
            ("127.0.0.1", 0),
            JobManager(server.manager.checkpoint_dir, inline=True))
        try:
            fresh_client = ServeClient(fresh.url)
            thread = threading.Thread(target=fresh.serve_forever,
                                      daemon=True)
            thread.start()
            answer = fresh_client.run(request, timeout=60)
        finally:
            fresh.shutdown()
            fresh.server_close()
        assert answer["deduplicated"] is False   # new daemon, new job table
        assert answer["state"] == "done"
        assert answer["cached_jobs"] == len(sweep_jobs())
        assert answer["executed_jobs"] == 0
        reference = api.sweep(sweep_jobs(), jobs_n=1)
        for record, expected in zip(answer["results"], reference):
            assert record["run_stats_digest"] \
                == run_stats_digest(expected.stats)

    def test_failed_job_reports_failure(self, client, monkeypatch,
                                        tmp_path):
        monkeypatch.setenv("REPRO_FAULT_SPEC",
                           "exception@fairyforest:pdom_block*9")
        monkeypatch.setenv("REPRO_FAULT_DIR", str(tmp_path / "faults"))
        request = SimulateRequest(scene="fairyforest", mode="pdom_block",
                                  preset="tiny", max_cycles=MAX_CYCLES)
        status = client.submit(request)
        final = client.wait(status["id"], timeout=300)
        assert final["state"] == "failed"
        assert "FaultInjectionError" in final["error"]
        answer = client.result(status["id"])
        assert answer["state"] == "failed"
        assert answer["results"] == []
