"""Shard-manifest contracts: claims, crash tolerance, bit-identity.

The claim-contention tests drive two workers over one manifest — in
threads for speed, and as real ``repro worker`` subprocesses for the
end-to-end acceptance path — and assert the two invariants the protocol
promises: no job executes twice, and no job is dropped. The merge tests
pin the sharded digests against a serial ``run_sweep(jobs_n=1)``.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ConfigError, SweepError
from repro.harness.sweep import (
    RetryPolicy,
    SweepJob,
    run_stats_digest,
    run_sweep,
)
from repro.serve import wire
from repro.serve.manifest import (
    ManifestState,
    ShardManifest,
    run_sharded_sweep,
)
from repro.serve.worker import run_worker, worker_ident

MAX_CYCLES = 20_000


def sweep_jobs():
    return [SweepJob(scene="conference", mode=mode, preset="tiny",
                     max_cycles=MAX_CYCLES)
            for mode in ("pdom_block", "pdom_warp", "spawn")]


def digest_map(results):
    return {result.job.describe(): run_stats_digest(result.stats)
            for result in results}


@pytest.fixture(scope="module")
def serial_results(isolated_cache):
    return run_sweep(sweep_jobs(), jobs_n=1)


class TestClaimProtocol:
    def test_first_claim_wins(self, tmp_path):
        jobs = sweep_jobs()
        manifest = ShardManifest.create(tmp_path / "m.jsonl", jobs)
        assert manifest.claim(jobs[0], "alice") is True
        assert manifest.claim(jobs[0], "bob") is False
        assert manifest.claim(jobs[1], "bob") is True
        state = manifest.load()
        assert state.claims[ManifestState.ident(jobs[0])] == "alice"
        assert state.claims[ManifestState.ident(jobs[1])] == "bob"

    def test_create_rejects_empty_and_duplicates(self, tmp_path):
        with pytest.raises(ConfigError, match="empty"):
            ShardManifest.create(tmp_path / "e.jsonl", [])
        job = sweep_jobs()[0]
        with pytest.raises(Exception, match="duplicate"):
            ShardManifest.create(tmp_path / "d.jsonl", [job, job])

    def test_torn_and_foreign_lines_are_skipped(self, tmp_path):
        jobs = sweep_jobs()
        manifest = ShardManifest.create(tmp_path / "m.jsonl", jobs)
        with manifest.path.open("a") as handle:
            handle.write('{"torn": \n')
            handle.write("noise\n")
            handle.write(json.dumps({"schema": "other/1"}) + "\n")
        state = manifest.load()
        assert [job.key for job in state.jobs] == [job.key for job in jobs]
        assert manifest.claim(jobs[0], "carol") is True

    def test_attach_appends_only_new_jobs(self, tmp_path):
        jobs = sweep_jobs()
        ShardManifest.create(tmp_path / "m.jsonl", jobs[:2])
        manifest = ShardManifest.attach(tmp_path / "m.jsonl", jobs)
        state = manifest.load()
        assert [job.key for job in state.jobs] == [job.key for job in jobs]
        # attaching again is a no-op, not a duplicate publish
        before = manifest.path.read_text()
        ShardManifest.attach(tmp_path / "m.jsonl", jobs)
        assert manifest.path.read_text() == before

    def test_worker_ident_is_unique_without_rng(self):
        assert worker_ident("shard3") == "shard3"
        idents = {worker_ident() for _ in range(16)}
        assert len(idents) == 16

    def test_worker_rejects_missing_manifest(self, tmp_path):
        """A typo'd --manifest must fail loudly, not exit 0 having
        'drained' a campaign that never existed."""
        with pytest.raises(ConfigError, match="not found"):
            run_worker(tmp_path / "no-such-campaign.jsonl", once=True)


class TestClaimContention:
    def test_two_workers_never_double_execute_or_drop(self, tmp_path,
                                                      serial_results):
        """The satellite-4 acceptance test, in-process for determinism:
        two concurrent claim loops over one manifest must partition the
        jobs exactly — every job executed once, by exactly one worker."""
        jobs = sweep_jobs()
        manifest = ShardManifest.create(tmp_path / "m.jsonl", jobs)
        counts: dict[str, int] = {}

        def work(ident):
            counts[ident] = run_worker(manifest.path, worker=ident,
                                       once=True)

        threads = [threading.Thread(target=work, args=(f"w{i}",))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(counts.values()) == len(jobs)  # none dropped, none twice
        state = manifest.load()
        assert state.settled == len(jobs)
        # every job has exactly one result record and one winning claim
        for job in jobs:
            ident = ManifestState.ident(job)
            assert ident in state.results
            assert state.claims[ident] in counts

    def test_claim_losers_cost_no_execution(self, tmp_path, monkeypatch):
        """A worker that loses every claim race executes nothing."""
        jobs = sweep_jobs()[:1]
        manifest = ShardManifest.create(tmp_path / "m.jsonl", jobs)
        assert manifest.claim(jobs[0], "winner") is True

        from repro.serve import worker as worker_module

        def explode(job, injector=None):
            raise AssertionError("a lost claim must not execute")

        monkeypatch.setattr(worker_module, "execute_job", explode)
        assert run_worker(manifest.path, worker="loser", once=True) == 0


class TestShardedSweep:
    def test_subprocess_shards_match_serial_bit_for_bit(self, tmp_path,
                                                        serial_results):
        """The tentpole acceptance criterion: a 2-worker sharded sweep
        (real ``repro worker`` subprocesses on a shared manifest) merges
        to per-job ``run_stats_digest`` values identical to serial."""
        merged = run_sharded_sweep(sweep_jobs(), tmp_path / "m.jsonl",
                                   shards=2, worker_timeout=600.0)
        assert digest_map(merged) == digest_map(serial_results)
        assert merged.ok

    def test_driver_completes_jobs_dead_workers_abandoned(self, tmp_path,
                                                          serial_results):
        """A claim with no result (the worker died mid-job) is re-executed
        by the driver during the merge — wasted work, never a lost job."""
        jobs = sweep_jobs()
        manifest = ShardManifest.create(tmp_path / "m.jsonl", jobs)
        manifest.claim(jobs[0], "dead-worker")  # claims, never finishes
        merged = run_sharded_sweep(jobs, tmp_path / "m.jsonl", shards=0,
                                   spawn_workers=False, resume=True)
        assert digest_map(merged) == digest_map(serial_results)

    def test_existing_manifest_requires_resume(self, tmp_path):
        jobs = sweep_jobs()
        ShardManifest.create(tmp_path / "m.jsonl", jobs)
        with pytest.raises(ConfigError, match="resume=True"):
            run_sharded_sweep(jobs, tmp_path / "m.jsonl", shards=0,
                              spawn_workers=False)

    def test_resume_serves_recorded_results_without_reexecution(
            self, tmp_path, serial_results, monkeypatch):
        jobs = sweep_jobs()
        run_sharded_sweep(jobs, tmp_path / "m.jsonl", shards=0,
                          spawn_workers=False)

        from repro.serve import manifest as manifest_module

        def explode(job, injector=None):
            raise AssertionError(f"{job.describe()} was re-executed")

        monkeypatch.setattr(manifest_module, "execute_job", explode)
        merged = run_sharded_sweep(jobs, tmp_path / "m.jsonl", shards=0,
                                   spawn_workers=False, resume=True)
        assert digest_map(merged) == digest_map(serial_results)

    def test_strict_failure_raises_with_partial_results(self, tmp_path,
                                                        monkeypatch):
        # Drive the failure through the driver's local-execution path.
        jobs = sweep_jobs()
        monkeypatch.setenv("REPRO_FAULT_SPEC", "exception@conference:spawn*9")
        monkeypatch.setenv("REPRO_FAULT_DIR", str(tmp_path / "faults"))
        with pytest.raises(SweepError, match="conference:spawn") as info:
            run_sharded_sweep(
                jobs, tmp_path / "m.jsonl", shards=0, spawn_workers=False,
                retry=RetryPolicy(max_attempts=2, backoff_seconds=0.0))
        partial = info.value.results
        assert len(partial.failures) == 1
        assert len(partial.results) == len(jobs) - 1

    def test_worker_failure_records_reach_the_merge(self, tmp_path):
        jobs = sweep_jobs()[:1]
        manifest = ShardManifest.create(tmp_path / "m.jsonl", jobs)
        manifest.claim(jobs[0], "w0")
        manifest.record_failure(jobs[0], "exception", "BoomError: no",
                                attempts=3)
        state = manifest.load()
        ident = ManifestState.ident(jobs[0])
        assert state.failures[ident]["error"] == "BoomError: no"
        assert state.is_settled(jobs[0])
        record = wire.from_wire(state.failures[ident])
        assert record["failure_kind"] == "exception"
