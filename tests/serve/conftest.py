"""Shared fixtures for the service tests: a hermetic workload cache."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="package", autouse=True)
def isolated_cache(tmp_path_factory):
    """One hermetic workload cache for the whole tests/serve package.

    Shared across the package (not per-test) so the e2e tests reuse each
    other's scene builds instead of re-tracing reference rays every time.
    """
    patch = pytest.MonkeyPatch()
    patch.setenv("REPRO_CACHE_DIR",
                 str(tmp_path_factory.mktemp("serve-cache")))
    patch.delenv("REPRO_CACHE", raising=False)
    patch.delenv("REPRO_JOBS", raising=False)
    patch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
    patch.delenv("REPRO_RESULTS_DIR", raising=False)
    yield
    patch.undo()
