"""Table II resource accounting and occupancy tests."""

import pytest

from repro.config import paper_config
from repro.kernels.microkernels import microkernel_program
from repro.kernels.resources import (
    PAPER_TABLE2,
    measure_resources,
    occupancy_threads_per_sm,
    table2_rows,
)
from repro.kernels.traditional import traditional_program


class TestPaperTable2:
    def test_traditional_row(self):
        row = PAPER_TABLE2["traditional"]
        assert (row.registers, row.shared_bytes, row.global_bytes,
                row.constant_bytes, row.spawn_bytes) == (22, 60, 388, 128, 0)

    def test_microkernel_row(self):
        row = PAPER_TABLE2["microkernel"]
        assert (row.registers, row.shared_bytes, row.global_bytes,
                row.constant_bytes, row.spawn_bytes) == (20, 56, 384, 24, 48)

    def test_minimum_row(self):
        row = PAPER_TABLE2["microkernel_minimum"]
        assert row.registers == 16 and row.spawn_bytes == 48

    def test_microkernel_needs_less_than_traditional(self):
        trad = PAPER_TABLE2["traditional"]
        micro = PAPER_TABLE2["microkernel"]
        assert micro.registers < trad.registers
        assert micro.constant_bytes < trad.constant_bytes


class TestOccupancy:
    """Paper §VI-A: 800 threads/SM for µ-kernels, 512 traditional block."""

    def test_microkernel_800_threads(self):
        config = paper_config()
        assert occupancy_threads_per_sm(config, 20, block_size=32,
                                        scheduling="warp") == 800

    def test_traditional_block_512_threads(self):
        config = paper_config()
        assert occupancy_threads_per_sm(config, 22, block_size=64,
                                        scheduling="block") == 512

    def test_traditional_warp_more_than_block(self):
        config = paper_config()
        warp = occupancy_threads_per_sm(config, 22, block_size=64,
                                        scheduling="warp")
        block = occupancy_threads_per_sm(config, 22, block_size=64,
                                         scheduling="block")
        assert warp > block

    def test_thread_limit_caps(self):
        config = paper_config()
        assert occupancy_threads_per_sm(config, 1, block_size=32,
                                        scheduling="warp") == 1024

    def test_register_pressure_reduces(self):
        config = paper_config()
        few = occupancy_threads_per_sm(config, 64, block_size=32,
                                       scheduling="warp")
        assert few == (16384 // (64 * 32)) * 32


class TestMeasured:
    def test_traditional_measured(self):
        res = measure_resources(traditional_program(), "traditional")
        assert res.registers == 22          # declared (occupancy) value
        assert res.measured_registers > 22  # toy-ISA architectural usage
        assert res.static_instructions > 100
        assert res.spawn_bytes == 0

    def test_microkernel_measured(self):
        res = measure_resources(microkernel_program(), "microkernel")
        assert res.registers == 20
        assert res.spawn_bytes == 48
        assert res.global_bytes >= 384

    def test_table2_rows_structure(self):
        trad = measure_resources(traditional_program(), "traditional")
        micro = measure_resources(microkernel_program(), "microkernel")
        rows = table2_rows(trad, micro)
        assert len(rows) == 5
        for row in rows:
            assert "paper_traditional" in row
            assert "measured_traditional" in row
            assert "measured_microkernel" in row

    def test_table2_rows_without_measurements(self):
        rows = table2_rows()
        assert all("measured_traditional" not in row for row in rows)
