"""Traditional (Example 1) kernel: end-to-end correctness on the simulator."""

import numpy as np
import pytest

from repro.config import scaled_config
from repro.kernels.layout import build_memory_image
from repro.kernels.traditional import (
    KERNEL_NAME,
    PAPER_REGISTERS,
    dynamic_instruction_model,
    traditional_launch_spec,
    traditional_program,
)
from repro.rt import Camera, build_kdtree, make_scene, trace_rays
from repro.simt import GPU


def simulate(tree, origins, directions, t_max=np.inf, **overrides):
    image = build_memory_image(tree, origins, directions, t_max)
    overrides.setdefault("max_cycles", 8_000_000)
    config = scaled_config(1, **overrides)
    launch = traditional_launch_spec(origins.shape[0])
    gpu = GPU(config, launch, image.global_mem, image.const_mem)
    stats = gpu.run()
    return image, stats


def assert_matches_reference(image, reference):
    t, tri = image.results()
    assert np.array_equal(tri, reference.triangle)
    mine = np.where(np.isinf(t), -1.0, t)
    theirs = np.where(np.isinf(reference.t), -1.0, reference.t)
    assert np.array_equal(mine, theirs)


class TestProgramShape:
    def test_assembles(self):
        program = traditional_program()
        assert KERNEL_NAME in program.kernels
        assert len(program) > 100

    def test_has_three_loop_branches(self):
        program = traditional_program()
        back_edges = [inst for inst in program.instructions
                      if inst.op == "bra" and inst.pred is None
                      and inst.target < inst.pc]
        # Down-traversal and intersection loops use unconditional
        # back-edges; the outer loop re-enters TRACE_DOWN from the pop.
        assert len(back_edges) >= 3

    def test_no_spawn_instructions(self):
        program = traditional_program()
        assert "spawn" not in program.instruction_counts()

    def test_declared_registers_match_paper(self):
        program = traditional_program()
        assert program.kernels[KERNEL_NAME].registers == PAPER_REGISTERS == 22


@pytest.mark.parametrize("scene_name", ["conference", "fairyforest", "atrium"])
class TestCorrectnessPerScene:
    def test_matches_reference(self, scene_name):
        scene = make_scene(scene_name, detail=0.25)
        tree = build_kdtree(scene.triangles, max_depth=10, leaf_size=8)
        camera = Camera.for_scene(scene)
        origins, directions = camera.primary_rays(8, 8)
        reference = trace_rays(tree, origins, directions)
        image, stats = simulate(tree, origins, directions)
        assert stats.rays_completed == 64
        assert_matches_reference(image, reference)


class TestEdgeWorkloads:
    def test_rays_missing_world(self, tiny_tree):
        origins = np.tile(tiny_tree.bounds.hi + 50.0, (32, 1))
        directions = np.tile(np.array([1.0, 0.0, 0.0]), (32, 1))
        reference = trace_rays(tiny_tree, origins, directions)
        image, stats = simulate(tiny_tree, origins, directions)
        assert stats.rays_completed == 32
        assert_matches_reference(image, reference)
        assert not reference.hit_mask.any()

    def test_bounded_shadow_style_rays(self, tiny_scene, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        primary = trace_rays(tiny_tree, origins, directions)
        from repro.rt import shadow_rays
        batch = shadow_rays(tiny_scene.triangles, primary.triangle,
                            primary.t, origins, directions, tiny_scene.light)
        reference = trace_rays(tiny_tree, batch.origins, batch.directions,
                               batch.t_max)
        image, stats = simulate(tiny_tree, batch.origins, batch.directions,
                                batch.t_max)
        assert stats.rays_completed == batch.num_rays
        assert_matches_reference(image, reference)

    def test_single_ray(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        reference = trace_rays(tiny_tree, origins[:1], directions[:1])
        image, stats = simulate(tiny_tree, origins[:1], directions[:1])
        assert stats.rays_completed == 1
        assert_matches_reference(image, reference)

    def test_axis_aligned_from_center(self, tiny_tree, tiny_scene):
        center = (tiny_tree.bounds.lo + tiny_tree.bounds.hi) / 2.0
        directions = np.array([[1.0, 0, 0], [-1.0, 0, 0], [0, 1.0, 0],
                               [0, -1.0, 0], [0, 0, 1.0], [0, 0, -1.0]])
        origins = np.tile(center, (6, 1))
        reference = trace_rays(tiny_tree, origins, directions)
        image, stats = simulate(tiny_tree, origins, directions)
        assert_matches_reference(image, reference)

    def test_ideal_memory_same_results(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        reference = trace_rays(tiny_tree, origins, directions)
        image, stats = simulate(tiny_tree, origins, directions,
                                memory_ideal=True)
        assert_matches_reference(image, reference)

    def test_block_scheduling_same_results(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        reference = trace_rays(tiny_tree, origins, directions)
        image, stats = simulate(tiny_tree, origins, directions,
                                scheduling="block")
        assert_matches_reference(image, reference)


class TestInstructionModel:
    def test_model_keys(self):
        model = dynamic_instruction_model()
        assert set(model) == {"prologue", "node_visit", "leaf_visit",
                              "triangle_test", "pop", "write"}
        assert all(value > 0 for value in model.values())

    def test_model_tracks_simulation_totals(self, tiny_tree, tiny_rays):
        """The analytic per-thread model should land near the simulator's
        committed instruction counts (it feeds the MIMD bound)."""
        origins, directions = tiny_rays
        reference = trace_rays(tiny_tree, origins, directions)
        image, stats = simulate(tiny_tree, origins, directions)
        model = dynamic_instruction_model()
        counters = reference.counters
        predicted = (model["prologue"] * origins.shape[0]
                     + counters.node_visits.sum() * model["node_visit"]
                     + counters.leaf_visits.sum() * (model["leaf_visit"]
                                                     + model["pop"])
                     + counters.triangle_tests.sum() * model["triangle_test"]
                     + model["write"] * origins.shape[0])
        actual = stats.sm_stats.committed_thread_instructions
        assert predicted == pytest.approx(actual, rel=0.25)
