"""Persistent-threads baseline kernel tests."""

import numpy as np
import pytest

from repro.config import scaled_config
from repro.kernels.layout import build_memory_image
from repro.kernels.persistent import (
    KERNEL_NAME,
    persistent_launch_spec,
    persistent_program,
    persistent_thread_count,
)
from repro.rt import trace_rays
from repro.simt import GPU


def simulate(tree, origins, directions, num_threads, **overrides):
    image = build_memory_image(tree, origins, directions)
    overrides.setdefault("max_cycles", 10_000_000)
    config = scaled_config(1, **overrides)
    launch = persistent_launch_spec(num_threads)
    gpu = GPU(config, launch, image.global_mem, image.const_mem)
    stats = gpu.run()
    return image, stats


class TestProgramShape:
    def test_assembles_with_atomic(self):
        program = persistent_program()
        assert KERNEL_NAME in program.kernels
        counts = program.instruction_counts()
        assert counts.get("atom", 0) == 1

    def test_single_exit_point(self):
        # Persistent threads exit only when the work queue drains.
        program = persistent_program()
        exits = [inst for inst in program.instructions if inst.op == "exit"]
        assert len(exits) == 1
        assert exits[0].pred is not None

    def test_thread_count_matches_occupancy(self):
        config = scaled_config(1)
        assert persistent_thread_count(config) == 736  # 23 warps x 32
        config30 = scaled_config(30)
        assert persistent_thread_count(config30) == 736 * 30


class TestCorrectness:
    def test_fewer_threads_than_rays(self, tiny_tree, tiny_rays):
        """Each worker must process multiple rays."""
        origins, directions = tiny_rays
        reference = trace_rays(tiny_tree, origins, directions)
        image, stats = simulate(tiny_tree, origins, directions,
                                num_threads=32)
        assert stats.rays_completed == origins.shape[0]
        t, tri = image.results()
        assert np.array_equal(tri, reference.triangle)
        mine = np.where(np.isinf(t), -1.0, t)
        theirs = np.where(np.isinf(reference.t), -1.0, reference.t)
        assert np.array_equal(mine, theirs)

    def test_more_threads_than_rays(self, tiny_tree, tiny_rays):
        """Excess workers must exit cleanly on an empty queue."""
        origins, directions = tiny_rays
        reference = trace_rays(tiny_tree, origins, directions)
        image, stats = simulate(tiny_tree, origins, directions,
                                num_threads=256)
        assert stats.rays_completed == origins.shape[0]
        t, tri = image.results()
        assert np.array_equal(tri, reference.triangle)

    def test_single_worker(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        image, stats = simulate(tiny_tree, origins, directions[:16]
                                if False else directions, num_threads=32)
        assert stats.rays_completed == origins.shape[0]

    def test_counter_ends_at_total_fetches(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        num_threads = 64
        image, stats = simulate(tiny_tree, origins, directions,
                                num_threads=num_threads)
        counter = image.global_mem.words[-1]
        # Every ray fetched once, plus one over-fetch per exiting worker.
        assert counter == origins.shape[0] + num_threads


class TestAtomicInstruction:
    def test_atomic_add_returns_old_values(self):
        from repro.isa import assemble
        from repro.simt import GlobalMemory, LaunchSpec
        source = """
.kernel main regs=8
main:
    mov r1, 0;
    atom.add.global r2, [r1+0], 1;
    mov r3, SREG.tid;
    add r3, r3, 8;
    st.global [r3+0], r2;
    exit;
"""
        program = assemble(source)
        mem = GlobalMemory(64)
        launch = LaunchSpec(program=program, entry_kernel="main",
                            num_threads=8, registers_per_thread=8,
                            block_size=32)
        gpu = GPU(scaled_config(1, max_cycles=10_000), launch, mem)
        gpu.run()
        # Lanes receive 0..7 in lane order; the counter ends at 8.
        assert mem.words[8:16].tolist() == list(range(8))
        assert mem.words[0] == 8.0

    def test_atomic_max_exch(self):
        from repro.isa import assemble
        from repro.simt import GlobalMemory, LaunchSpec
        source = """
.kernel main regs=8
main:
    mov r1, 0;
    mov r2, SREG.tid;
    atom.max.global r3, [r1+0], r2;
    atom.exch.global r4, [r1+1], r2;
    exit;
"""
        program = assemble(source)
        mem = GlobalMemory(16)
        launch = LaunchSpec(program=program, entry_kernel="main",
                            num_threads=8, registers_per_thread=8,
                            block_size=32)
        gpu = GPU(scaled_config(1, max_cycles=10_000), launch, mem)
        gpu.run()
        assert mem.words[0] == 7.0     # max of tids
        assert mem.words[1] == 7.0     # last exchanged value (lane order)

    def test_atomic_round_trips_assembler(self):
        from repro.isa import assemble, disassemble
        source = """
.kernel main regs=4
main:
    atom.add.global r2, [r1+4], 1;
    exit;
"""
        program = assemble(source)
        again = assemble(disassemble(program))
        assert again[0].op == "atom"
        assert again[0].cmp == "add"
        assert again[0].offset == 4

    def test_atomic_requires_global(self):
        from repro.errors import AssemblerError
        from repro.isa import assemble
        with pytest.raises(AssemblerError):
            assemble("""
.kernel main regs=4
main:
    atom.add.shared r2, [r1+0], 1;
    exit;
""")
