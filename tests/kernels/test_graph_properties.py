"""Property tests for the BFS graph family: generator, oracle, kernels.

Two layers of invariants:

- **Oracle layer** (cheap, many examples): the seeded CSR generator is
  reproducible from its key alone, and :func:`reference_bfs` produces a
  valid BFS labelling — sources at level 0, every edge out of a reachable
  vertex relaxed, every reachable non-source reachable from the previous
  level.
- **Machine layer** (few examples, real simulator runs): the set of
  vertices a traversal visits equals the reachable set **regardless of
  worker-pool width or launch order** — the megakernel worker loop under
  block and warp scheduling and the self-respawning spawn µ-kernel must
  all visit exactly the reachable vertices, exactly once, with levels no
  better than the true BFS levels. The visit *count* is therefore the
  schedule-independent quantity the reachable-set size pins down.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.harness.presets import get_preset
from repro.harness.runner import build_bfs_workload, run_mode
from repro.workloads import GRAPH_SCENES, make_graph, reference_bfs

graph_names = st.sampled_from(GRAPH_SCENES)


@settings(max_examples=20, deadline=None)
@given(name=graph_names, seed=st.integers(min_value=0, max_value=10_000),
       detail=st.sampled_from((0.06, 0.1, 0.25)))
def test_generator_is_reproducible(name, seed, detail):
    first = make_graph(name, detail=detail, seed=seed)
    second = make_graph(name, detail=detail, seed=seed)
    assert np.array_equal(first.indptr, second.indptr)
    assert np.array_equal(first.indices, second.indices)
    assert np.array_equal(first.sources, second.sources)
    assert np.all(first.indices >= 0)
    assert np.all(first.indices < first.num_vertices)


@settings(max_examples=20, deadline=None)
@given(name=graph_names, seed=st.integers(min_value=0, max_value=10_000),
       detail=st.sampled_from((0.06, 0.1, 0.25)))
def test_reference_bfs_is_a_valid_labelling(name, seed, detail):
    graph = make_graph(name, detail=detail, seed=seed)
    levels = reference_bfs(graph)
    assert np.all(levels[graph.sources] == 0)
    reachable = levels >= 0
    # Every edge out of a reachable vertex is relaxed ...
    for v in np.flatnonzero(reachable):
        targets = graph.indices[graph.indptr[v]:graph.indptr[v + 1]]
        assert np.all(levels[targets] >= 0)
        assert np.all(levels[targets] <= levels[v] + 1)
    # ... and every reachable non-source has a predecessor one level up.
    for v in np.flatnonzero(reachable):
        if levels[v] == 0:
            continue
        preds = [u for u in np.flatnonzero(reachable)
                 if v in graph.indices[graph.indptr[u]:graph.indptr[u + 1]]]
        assert min(levels[u] for u in preds) == levels[v] - 1


#: (mode, worker-pool bound) pairs: a pool smaller than the vertex count,
#: one larger, and the spawn layout in between — three different visit
#: orders over the same frontier worklist.
MACHINE_CONFIGS = (("pdom_block", 4, 4), ("spawn", 8, 8),
                   ("pdom_warp", 12, 12))


@settings(max_examples=3, deadline=None)
@given(name=graph_names, seed=st.integers(min_value=0, max_value=31))
def test_visits_equal_reachable_set_for_any_schedule(name, seed):
    base = get_preset("bfs-tiny")
    for mode, width, height in MACHINE_CONFIGS:
        preset = replace(base, scene_detail=0.08, image_width=width,
                         image_height=height)
        workload = build_bfs_workload(name, preset, seed=seed)
        reachable = np.isfinite(workload.reference.t)
        result = run_mode(mode, workload)
        level, flag = result.image.results()
        visited = ~np.isnan(level)
        # Visited set == reachable set, so the visit count is pinned.
        assert np.array_equal(visited, reachable), (name, seed, mode)
        assert int(visited.sum()) == workload.num_rays
        # Exactly-once: the visited flag is a one-shot atomic exchange.
        assert np.all(flag[visited] == 1)
        # A lock-free relaxed traversal can only do worse than true BFS.
        assert np.all(level[visited] >= workload.reference.t[visited])
        assert result.verify()
