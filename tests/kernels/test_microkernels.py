"""Dynamic µ-kernel program: end-to-end correctness and spawn accounting."""

import numpy as np
import pytest

from repro.analysis.bandwidth import spawned_threads
from repro.config import scaled_config
from repro.kernels.layout import build_memory_image
from repro.kernels.microkernels import (
    MICRO_KERNEL_NAMES,
    MICRO_STATE_WORDS,
    PAPER_REGISTERS,
    microkernel_launch_spec,
    microkernel_program,
)
from repro.rt import Camera, build_kdtree, make_scene, trace_rays
from repro.simt import GPU


def simulate(tree, origins, directions, t_max=np.inf, **overrides):
    image = build_memory_image(tree, origins, directions, t_max)
    overrides.setdefault("max_cycles", 12_000_000)
    overrides.setdefault("spawn_enabled", True)
    config = scaled_config(1, **overrides)
    launch = microkernel_launch_spec(origins.shape[0])
    gpu = GPU(config, launch, image.global_mem, image.const_mem)
    stats = gpu.run()
    return image, stats


def assert_matches_reference(image, reference):
    t, tri = image.results()
    assert np.array_equal(tri, reference.triangle)
    mine = np.where(np.isinf(t), -1.0, t)
    theirs = np.where(np.isinf(reference.t), -1.0, reference.t)
    assert np.array_equal(mine, theirs)


class TestProgramShape:
    def test_four_kernels(self):
        program = microkernel_program()
        assert set(program.kernels) == set(MICRO_KERNEL_NAMES)

    def test_three_spawn_targets(self):
        # The three removed loops become three spawnable µ-kernels.
        program = microkernel_program()
        targets = {k.name for k in program.dynamic_spawn_targets()}
        assert targets == {"uk_traverse", "uk_isect", "uk_pop"}

    def test_state_is_48_bytes(self):
        assert MICRO_STATE_WORDS * 4 == 48
        program = microkernel_program()
        for info in program.kernels.values():
            assert info.state_words == MICRO_STATE_WORDS

    def test_declared_registers_match_paper(self):
        assert PAPER_REGISTERS == 20

    def test_no_loop_back_edges(self):
        """The paper's point: loops are gone — no backward branches."""
        program = microkernel_program()
        for inst in program.instructions:
            if inst.op == "bra":
                assert inst.target > inst.pc

    def test_state_save_uses_three_vector_stores(self):
        # Paper §VI-A: three 4-wide vector ops store/restore the state.
        program = microkernel_program()
        spawn_stores = [inst for inst in program.instructions
                        if inst.op == "st" and inst.space == "spawn"
                        and inst.width == 4]
        assert len(spawn_stores) % 3 == 0
        assert spawn_stores


@pytest.mark.parametrize("scene_name", ["conference", "fairyforest", "atrium"])
class TestCorrectnessPerScene:
    def test_matches_reference(self, scene_name):
        scene = make_scene(scene_name, detail=0.25)
        tree = build_kdtree(scene.triangles, max_depth=10, leaf_size=8)
        camera = Camera.for_scene(scene)
        origins, directions = camera.primary_rays(8, 8)
        reference = trace_rays(tree, origins, directions)
        image, stats = simulate(tree, origins, directions)
        assert stats.rays_completed == 64
        assert_matches_reference(image, reference)


class TestSpawnAccounting:
    def test_spawn_count_matches_analytic_model(self, tiny_tree, tiny_rays):
        """The simulator's spawn count must equal the Table IV model's
        prediction from the reference tracer's counters."""
        origins, directions = tiny_rays
        reference = trace_rays(tiny_tree, origins, directions)
        image, stats = simulate(tiny_tree, origins, directions)
        assert stats.rays_completed == origins.shape[0]
        predicted = spawned_threads(reference.counters)
        assert stats.sm_stats.threads_spawned == predicted

    def test_chains_free_all_slots(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        image, stats = simulate(tiny_tree, origins, directions)
        # Every SM's spawn unit must end with all data slots free.
        assert stats.rays_completed == origins.shape[0]

    def test_world_missing_rays_never_spawn(self, tiny_tree):
        origins = np.tile(tiny_tree.bounds.hi + 50.0, (32, 1))
        directions = np.tile(np.array([1.0, 0.0, 0.0]), (32, 1))
        image, stats = simulate(tiny_tree, origins, directions)
        assert stats.rays_completed == 32
        assert stats.sm_stats.threads_spawned == 0


class TestEdgeWorkloads:
    def test_bank_conflicts_mode_correct(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        reference = trace_rays(tiny_tree, origins, directions)
        image, stats = simulate(tiny_tree, origins, directions,
                                spawn_bank_conflicts=True)
        assert_matches_reference(image, reference)
        assert stats.sm_stats.bank_conflict_cycles > 0

    def test_ideal_memory_mode_correct(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        reference = trace_rays(tiny_tree, origins, directions)
        image, stats = simulate(tiny_tree, origins, directions,
                                memory_ideal=True)
        assert_matches_reference(image, reference)

    def test_bounded_rays(self, tiny_scene, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        primary = trace_rays(tiny_tree, origins, directions)
        from repro.rt import shadow_rays
        batch = shadow_rays(tiny_scene.triangles, primary.triangle,
                            primary.t, origins, directions, tiny_scene.light)
        reference = trace_rays(tiny_tree, batch.origins, batch.directions,
                               batch.t_max)
        image, stats = simulate(tiny_tree, batch.origins, batch.directions,
                                batch.t_max)
        assert_matches_reference(image, reference)

    def test_partial_warp_flush_finishes_stragglers(self, tiny_tree,
                                                    tiny_rays):
        origins, directions = tiny_rays
        # 5 rays: never enough to fill a 32-thread warp, so completion
        # depends entirely on the partial-warp flush path.
        reference = trace_rays(tiny_tree, origins[:5], directions[:5])
        image, stats = simulate(tiny_tree, origins[:5], directions[:5])
        assert stats.rays_completed == 5
        assert stats.sm_stats.partial_warps_flushed > 0
        t, tri = image.results()
        assert np.array_equal(tri, reference.triangle)

    def test_efficiency_beats_pdom(self):
        """The paper's core claim at miniature scale: µ-kernels keep more
        lanes active than PDOM on the same divergent workload."""
        from repro.kernels.traditional import traditional_launch_spec
        scene = make_scene("conference", detail=0.4)
        tree = build_kdtree(scene.triangles, max_depth=11, leaf_size=8)
        camera = Camera.for_scene(scene)
        origins, directions = camera.primary_rays(16, 16)
        cap = 120_000
        image_s, stats_s = simulate(tree, origins, directions,
                                    max_cycles=cap)
        image_p = build_memory_image(tree, origins, directions)
        gpu = GPU(scaled_config(1, max_cycles=cap),
                  traditional_launch_spec(origins.shape[0]),
                  image_p.global_mem, image_p.const_mem)
        stats_p = gpu.run()
        assert stats_s.simt_efficiency > stats_p.simt_efficiency
