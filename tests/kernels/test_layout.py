"""Memory image (device layout) tests."""

import numpy as np
import pytest

from repro.errors import SceneError
from repro.kernels.layout import (
    CONST_NODE_BASE,
    CONST_NUM_RAYS,
    CONST_RESULT_BASE,
    CONST_STACK_WORDS,
    CONST_WORLD_HI,
    CONST_WORLD_LO,
    RAY_WORDS,
    RESULT_WORDS,
    STACK_WORDS,
    build_memory_image,
)


@pytest.fixture
def image(tiny_tree, tiny_rays):
    origins, directions = tiny_rays
    return build_memory_image(tiny_tree, origins, directions)


class TestLayout:
    def test_regions_ordered_and_disjoint(self, image):
        bases = [image.node_base, image.tri_base, image.leaf_base,
                 image.ray_base, image.result_base, image.stack_base]
        assert bases == sorted(bases)
        assert len(set(bases)) == len(bases)

    def test_total_size(self, image, tiny_tree, tiny_rays):
        origins, _ = tiny_rays
        n = origins.shape[0]
        # Stacks end the per-ray regions; one extra word holds the
        # persistent-threads work counter.
        expected_tail = image.stack_base + n * STACK_WORDS + 1
        assert image.global_mem.num_words == expected_tail

    def test_counter_slot(self, image):
        from repro.kernels.layout import CONST_COUNTER_BASE
        counter_base = int(image.const_mem[CONST_COUNTER_BASE])
        assert counter_base == image.global_mem.num_words - 1
        assert image.global_mem.words[counter_base] == 0.0

    def test_nodes_loaded(self, image, tiny_tree):
        words = image.global_mem.words
        stored = words[image.node_base:image.node_base + tiny_tree.nodes.size]
        assert np.array_equal(stored, tiny_tree.nodes.reshape(-1))

    def test_rays_loaded(self, image, tiny_rays):
        origins, directions = tiny_rays
        words = image.global_mem.words
        first = words[image.ray_base:image.ray_base + RAY_WORDS]
        assert np.array_equal(first[0:3], origins[0])
        assert np.array_equal(first[3:6], directions[0])
        assert np.isinf(first[6])

    def test_t_max_array(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        limits = np.full(origins.shape[0], 5.0)
        image = build_memory_image(tiny_tree, origins, directions, limits)
        ray1 = image.global_mem.words[
            image.ray_base + RAY_WORDS: image.ray_base + 2 * RAY_WORDS]
        assert ray1[6] == 5.0

    def test_const_contents(self, image, tiny_tree, tiny_rays):
        origins, _ = tiny_rays
        const = image.const_mem
        assert const[CONST_NODE_BASE] == image.node_base
        assert const[CONST_RESULT_BASE] == image.result_base
        assert const[CONST_NUM_RAYS] == origins.shape[0]
        assert const[CONST_STACK_WORDS] == STACK_WORDS
        assert np.array_equal(const[CONST_WORLD_LO:CONST_WORLD_LO + 3],
                              tiny_tree.bounds.lo)
        assert np.array_equal(const[CONST_WORLD_HI:CONST_WORLD_HI + 3],
                              tiny_tree.bounds.hi)

    def test_stack_is_384_bytes_per_ray(self):
        # Paper Table II: 384 bytes of per-thread global memory.
        assert STACK_WORDS * 4 == 384

    def test_result_sentinels(self, image):
        t, tri = image.results()
        assert np.all(np.isnan(t))
        assert np.all(tri == -2)

    def test_result_range_registered(self, image, tiny_rays):
        origins, _ = tiny_rays
        mem = image.global_mem
        completions = mem.write(np.array([image.result_base]),
                                np.array([1.0]))
        assert completions == 1

    def test_empty_rays_raise(self, tiny_tree):
        with pytest.raises(SceneError):
            build_memory_image(tiny_tree, np.zeros((0, 3)), np.zeros((0, 3)))

    def test_mismatched_shapes_raise(self, tiny_tree):
        with pytest.raises(SceneError):
            build_memory_image(tiny_tree, np.zeros((4, 3)), np.zeros((5, 3)))

    def test_results_readback(self, image):
        mem = image.global_mem
        mem.write(np.array([image.result_base, image.result_base + 1]),
                  np.array([2.5, 7.0]))
        t, tri = image.results()
        assert t[0] == 2.5 and tri[0] == 7
        assert RESULT_WORDS == 2
