"""Results store round trips: append, reload, collisions, torn lines,
the byte-identity guarantee, and the ``REPRO_RESULTS_DIR`` opt-in hooks.
"""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.errors import ConfigError
from repro.harness.sweep import execute_job, run_sweep
from repro.results.store import (
    RESULTS_SCHEMA,
    ResultsStore,
    default_store,
    git_provenance,
    maybe_record,
    run_record,
    stats_fingerprint,
)
from tests.results.conftest import tiny_job

#: The record sections that may legitimately differ between two identical
#: executions (wall clock, git state, timestamp, which path recorded it).
VOLATILE = ("timing", "provenance")


def stable_line(record: dict) -> str:
    """The record minus its volatile sections, canonically encoded."""
    return json.dumps({key: value for key, value in record.items()
                       if key not in VOLATILE}, sort_keys=True)


class TestRunRecord:
    def test_record_shape(self, job_result):
        record = run_record(job_result, source="test")
        assert record["schema"] == RESULTS_SCHEMA
        assert record["kind"] == "run"
        assert record["key"] == list(job_result.job.key)
        assert record["config_digest"] == job_result.job.config_digest()
        assert record["run_stats_digest"] == \
            stats_fingerprint(job_result.stats)
        assert record["metrics"]["cycles"] == job_result.stats.cycles
        assert record["metrics"]["verified"] is True
        assert record["timing"]["wall_seconds"] == \
            pytest.approx(job_result.wall_seconds, abs=1e-6)
        assert record["timing"]["cycles_per_second"] > 0
        assert record["provenance"]["source"] == "test"
        assert isinstance(record["provenance"]["dirty"], bool)
        json.dumps(record)  # everything JSON-serializable

    def test_provenance_matches_git(self, job_result):
        record = run_record(job_result, source="test")
        rev, dirty = git_provenance()
        assert record["provenance"]["git_rev"] == rev
        assert record["provenance"]["dirty"] == dirty

    def test_run_result_and_job_result_share_identity(
            self, job_result, tmp_path, monkeypatch):
        """api.simulate's hook records the same job/config digest that an
        identically-configured sweep job does (simulate passes its full
        config — max_cycles included — as an explicit job spec)."""
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "ws"))
        api.simulate("conference", "spawn", preset="tiny",
                     max_cycles=30_000)
        [from_run] = ResultsStore(tmp_path / "ws").load()
        from_job = run_record(job_result, source="sweep")
        assert from_run["config_digest"] == from_job["config_digest"]
        assert from_run["run_stats_digest"] == from_job["run_stats_digest"]
        assert from_run["key"] == from_job["key"]
        assert from_run["job"] == from_job["job"]

    def test_byte_identical_modulo_volatile_fields(self, job_result):
        """Two identical executions → byte-identical stable sections."""
        again = execute_job(tiny_job())
        first = run_record(job_result, source="a")
        second = run_record(again, source="b")
        assert stable_line(first) == stable_line(second)


class TestStoreRoundTrip:
    def test_append_reload(self, tmp_path, job_result):
        store = ResultsStore(tmp_path / "store")
        record = store.record(job_result, source="test")
        assert store.load() == [record]
        assert len(store) == 1

    def test_append_rejects_foreign_schema(self, tmp_path):
        store = ResultsStore(tmp_path)
        with pytest.raises(ConfigError, match="schema"):
            store.append({"schema": "something-else/9", "kind": "run"})

    def test_load_missing_file_is_empty(self, tmp_path):
        assert ResultsStore(tmp_path / "nowhere").load() == []

    def test_torn_tail_line_is_skipped(self, tmp_path, job_result):
        store = ResultsStore(tmp_path)
        kept = store.record(job_result, source="test")
        with open(store.path, "a") as handle:
            handle.write('{"schema": "repro-results/1", "kind": "ru')
        assert store.load() == [kept]

    def test_foreign_and_blank_lines_are_skipped(self, tmp_path, job_result):
        store = ResultsStore(tmp_path)
        kept = store.record(job_result, source="test")
        with open(store.path, "a") as handle:
            handle.write("\n")
            handle.write(json.dumps({"schema": "repro-wire/1",
                                     "kind": "result"}) + "\n")
            handle.write("not json at all\n")
        assert store.load() == [kept]

    def test_digest_key_collision_keeps_both_records(self, tmp_path,
                                                     job_result):
        """Same config digest twice: append-only, both lines survive."""
        store = ResultsStore(tmp_path)
        first = store.record(job_result, source="one")
        second = store.record(job_result, source="two")
        assert first["config_digest"] == second["config_digest"]
        loaded = store.load()
        assert len(loaded) == 2
        assert [r["provenance"]["source"] for r in loaded] == ["one", "two"]


class TestOptInHooks:
    def test_maybe_record_is_noop_without_env(self, job_result, monkeypatch):
        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        assert default_store() is None
        assert maybe_record(job_result, source="test") is None

    def test_simulate_records(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "ws"))
        api.simulate("conference", "spawn", preset="tiny", max_cycles=30_000)
        records = ResultsStore(tmp_path / "ws").load()
        assert len(records) == 1
        assert records[0]["provenance"]["source"] == "simulate"
        assert records[0]["timing"]["wall_seconds"] > 0

    def test_sweep_records_each_executed_job(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "ws"))
        jobs = [tiny_job("pdom_block"), tiny_job("pdom_warp")]
        run_sweep(jobs, jobs_n=1)
        records = ResultsStore(tmp_path / "ws").load()
        assert len(records) == 2
        assert {r["job"]["mode"] for r in records} == \
            {"pdom_block", "pdom_warp"}
        assert all(r["provenance"]["source"] == "sweep" for r in records)

    def test_resumed_jobs_do_not_double_record(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "ws"))
        manifest = tmp_path / "ckpt.jsonl"
        jobs = [tiny_job("pdom_block")]
        run_sweep(jobs, jobs_n=1, checkpoint=manifest)
        run_sweep(jobs, jobs_n=1, checkpoint=manifest, resume=True)
        records = ResultsStore(tmp_path / "ws").load()
        assert len(records) == 1  # the resume served the checkpoint

    def test_relative_dir_pinned_to_first_cwd(self, tmp_path, monkeypatch,
                                              job_result):
        """A worker that chdirs later keeps writing to the same store."""
        anchor = tmp_path / "anchor"
        elsewhere = tmp_path / "elsewhere"
        anchor.mkdir(), elsewhere.mkdir()
        monkeypatch.chdir(anchor)
        # A unique relative spelling: resolve_env_dir caches per value.
        monkeypatch.setenv("REPRO_RESULTS_DIR", f"rel-store-{tmp_path.name}")
        first = default_store()
        maybe_record(job_result, source="before-chdir")
        monkeypatch.chdir(elsewhere)
        second = default_store()
        maybe_record(job_result, source="after-chdir")
        assert first.path == second.path
        assert first.directory == anchor / f"rel-store-{tmp_path.name}"
        assert len(first.load()) == 2
        assert not (elsewhere / f"rel-store-{tmp_path.name}").exists()

    def test_uncreatable_dir_raises_config_error(self, tmp_path,
                                                 monkeypatch):
        blocker = tmp_path / "file"
        blocker.write_text("a plain file, not a directory\n")
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(blocker / "sub"))
        with pytest.raises(ConfigError, match="cannot be created"):
            default_store()
