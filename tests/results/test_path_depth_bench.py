"""The path-depth ablation bench: history rules, exact-compare gate, grid.

benchmarks/bench_ablation_path_depth.py records *simulation outputs*
(cycles, SIMT efficiency, completed rays), so unlike the throughput
benches its committed record is compared for exact equality and its
``history`` section must follow the shared clean-vs-dirty upsert rules.
These tests run the real bench module (imported by path — benchmarks/ is
not a package) against synthetic rows and one genuinely simulated
micro-grid, without touching the committed JSON.
"""

from __future__ import annotations

import dataclasses
import importlib.util
import json
import pathlib
import sys

import pytest

from repro.harness.presets import get_preset

BENCH_PATH = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / \
    "bench_ablation_path_depth.py"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location(
        "bench_ablation_path_depth_under_test", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop(spec.name, None)


def rows(efficiency: float = 0.5):
    return [{"depth": 1, "mode": "spawn", "cycles": 1000,
             "simt_efficiency": efficiency, "rays_completed": 42,
             "verified": True}]


class TestGridDocument:
    def test_rows_pivot_to_depth_then_mode(self, bench):
        grid = bench._grid_document(rows())
        assert grid == {"1": {"spawn": {
            "cycles": 1000, "simt_efficiency": 0.5, "rays_completed": 42}}}


class TestExactCompareGate:
    def committed(self, bench, grid):
        return {"presets": {"tiny": {
            "max_cycles": bench.MAX_CYCLES, "grid": grid}}}

    def test_identical_grid_passes(self, bench):
        committed = self.committed(bench, bench._grid_document(rows()))
        bench._check_committed(committed, "tiny", rows())

    def test_any_field_drift_fails(self, bench):
        committed = self.committed(bench, bench._grid_document(rows()))
        with pytest.raises(AssertionError, match="diverged"):
            bench._check_committed(committed, "tiny", rows(efficiency=0.51))

    def test_unknown_preset_is_not_compared(self, bench):
        bench._check_committed({}, "paper", rows())


class TestAppendHistory:
    class FakePreset:
        name = "tiny"

    def refresh(self, bench, committed, monkeypatch, *, rev, dirty):
        monkeypatch.setattr(bench, "_git_rev", lambda: rev)
        monkeypatch.setattr(bench, "_git_dirty", lambda: dirty)
        bench._append_history(committed, self.FakePreset(), rows())

    def test_entries_carry_per_cell_efficiency(self, bench, monkeypatch):
        committed: dict = {}
        self.refresh(bench, committed, monkeypatch, rev="abc1234",
                     dirty=False)
        [entry] = committed["history"]
        assert entry["efficiency"] == {"1/spawn": 0.5}
        assert entry["preset"] == "tiny" and entry["dirty"] is False

    def test_dirty_refresh_never_displaces_clean_point(self, bench,
                                                       monkeypatch):
        committed: dict = {}
        self.refresh(bench, committed, monkeypatch, rev="abc1234",
                     dirty=False)
        honest = committed["history"][0]
        self.refresh(bench, committed, monkeypatch, rev="abc1234",
                     dirty=True)
        self.refresh(bench, committed, monkeypatch, rev="abc1234",
                     dirty=True)
        history = committed["history"]
        assert history[0] == honest
        assert [item["dirty"] for item in history] == [False, True]


class TestCommittedRecord:
    def test_committed_grid_covers_the_full_matrix(self, bench):
        assert bench.BENCH_PATH.exists(), (
            "BENCH_ablation_path_depth.json missing; generate with "
            "REPRO_UPDATE_BENCH=1")
        committed = json.loads(bench.BENCH_PATH.read_text())
        assert committed["schema"] == "repro-bench-ablation-path-depth/1"
        assert committed["scene"] == bench.SCENE
        for entry in committed["presets"].values():
            grid = entry["grid"]
            assert set(grid) == {str(d) for d in bench.DEPTHS}
            for cell in grid.values():
                assert set(cell) == set(bench.MODES)
                for record in cell.values():
                    assert record["cycles"] > 0
                    assert 0.0 < record["simt_efficiency"] <= 1.0
        assert committed["history"], "refresh must record a history entry"


class TestRealGrid:
    def test_micro_grid_simulates_and_verifies(self, bench, monkeypatch,
                                               tmp_path):
        """One genuine cell through the bench's own grid runner."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(bench, "DEPTHS", (1,))
        monkeypatch.setattr(bench, "MODES", ("spawn",))
        monkeypatch.setattr(bench, "MAX_CYCLES", 60_000)
        preset = dataclasses.replace(get_preset("path-tiny"),
                                     image_width=8, image_height=8)
        [row] = bench._run_grid(preset)
        assert row["depth"] == 1 and row["mode"] == "spawn"
        assert row["verified"]
        assert 0.0 < row["simt_efficiency"] <= 1.0
        assert 0 < row["cycles"] <= 60_000
