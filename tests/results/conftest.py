"""Shared fixtures for the results-warehouse tests: hermetic env + one run."""

from __future__ import annotations

import pytest

from repro.harness.sweep import SweepJob, execute_job


@pytest.fixture(scope="package", autouse=True)
def isolated_cache(tmp_path_factory):
    """Hermetic workload cache and a recording-off baseline env."""
    patch = pytest.MonkeyPatch()
    patch.setenv("REPRO_CACHE_DIR",
                 str(tmp_path_factory.mktemp("results-cache")))
    patch.delenv("REPRO_CACHE", raising=False)
    patch.delenv("REPRO_JOBS", raising=False)
    patch.delenv("REPRO_RESULTS_DIR", raising=False)
    yield
    patch.undo()


def tiny_job(mode: str = "spawn", seed: int = 0) -> SweepJob:
    return SweepJob(scene="conference", mode=mode, preset="tiny",
                    seed=seed, max_cycles=30_000)


@pytest.fixture(scope="package")
def job_result(isolated_cache):
    """One real executed JobResult, shared by the whole package."""
    return execute_job(tiny_job())
