"""Regression comparison over store records, plus the `repro compare` CLI
and the tidy frame layer (pandas-gated).
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.results.compare import (
    DEFAULT_TOLERANCE,
    compare_records,
    compare_revisions,
    latest_by_key,
    render_comparison,
    revisions_in,
)
from repro.results.frame import COLUMNS, frame, tidy_rows
from repro.results.store import RESULTS_SCHEMA, ResultsStore


def record(*, rev: str = "aaa1111", mode: str = "spawn",
           cycles_per_second: float = 100.0, simt: float = 0.5,
           rays: float = 1e6, dirty: bool = False,
           stats_digest: str = "d" * 16, source: str = "test") -> dict:
    return {
        "schema": RESULTS_SCHEMA,
        "kind": "run",
        "key": ["conference", mode, "primary", 0],
        "job": {"scene": "conference", "mode": mode, "preset": "tiny",
                "ray_kind": "primary", "seed": 0},
        "config_digest": f"cfg-{mode}",
        "run_stats_digest": stats_digest,
        "metrics": {"cycles": 1000, "rays_completed": 64, "num_rays": 64,
                    "ipc": 1.0, "simt_efficiency": simt,
                    "rays_per_second": rays, "verified": True},
        "timing": {"wall_seconds": 1.0,
                   "cycles_per_second": cycles_per_second},
        "provenance": {"git_rev": rev, "dirty": dirty,
                       "timestamp": "2026-08-08T00:00:00+00:00",
                       "source": source},
    }


class TestCompareRecords:
    def test_identical_records_have_no_regressions(self):
        comparison = compare_records([record()], [record()])
        assert comparison["regressions"] == []
        assert all(row["delta"] == 0.0 for row in comparison["rows"])
        assert all(row["identical_stats"] for row in comparison["rows"])

    def test_within_tolerance_is_ok(self):
        slower = record(cycles_per_second=100.0 * (1 - DEFAULT_TOLERANCE
                                                   + 0.01))
        comparison = compare_records([record()], [slower])
        assert comparison["regressions"] == []

    def test_beyond_tolerance_regresses(self):
        slower = record(cycles_per_second=80.0, stats_digest="e" * 16)
        comparison = compare_records([record()], [slower])
        assert len(comparison["regressions"]) == 1
        row = comparison["regressions"][0]
        assert row["metric"] == "cycles_per_second"
        assert row["regressed"] and not row["identical_stats"]

    def test_improvement_is_not_a_regression(self):
        comparison = compare_records([record()],
                                     [record(cycles_per_second=200.0)])
        assert comparison["regressions"] == []

    def test_disjoint_configs_reported_missing(self):
        comparison = compare_records([record(mode="spawn")],
                                     [record(mode="pdom_warp")])
        assert comparison["rows"] == []
        assert len(comparison["missing"]) == 2

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigError, match="tolerance"):
            compare_records([record()], [record()], tolerance=-0.1)

    def test_latest_by_key_prefers_clean_then_latest(self):
        clean = record(cycles_per_second=100.0)
        dirty = record(cycles_per_second=500.0, dirty=True)
        later_clean = record(cycles_per_second=110.0)
        chosen = latest_by_key([clean, dirty, later_clean])
        assert list(chosen.values()) == [later_clean]


class TestCompareRevisions:
    def test_rev_vs_rev(self):
        records = [record(rev="aaa1111"),
                   record(rev="bbb2222", cycles_per_second=50.0)]
        comparison = compare_revisions(records, "aaa1111", "bbb2222")
        assert comparison["rev_a"] == "aaa1111"
        assert len(comparison["regressions"]) == 1

    def test_revisions_in_keeps_first_seen_order(self):
        records = [record(rev="aaa1111"), record(rev="bbb2222"),
                   record(rev="aaa1111")]
        assert revisions_in(records) == ["aaa1111", "bbb2222"]

    def test_unknown_revision_did_you_mean(self):
        records = [record(rev="aaa1111")]
        with pytest.raises(ConfigError, match="aaa1111"):
            compare_revisions(records, "aaa111", "aaa1111")

    def test_render_mentions_status(self):
        records = [record(rev="aaa1111"),
                   record(rev="bbb2222", cycles_per_second=50.0)]
        comparison = compare_revisions(records, "aaa1111", "bbb2222")
        text = render_comparison(comparison)
        assert "REGRESSED" in text and "aaa1111" in text
        assert "1 regression(s)" in text


class TestCompareCli:
    def write_store(self, tmp_path, records):
        store = ResultsStore(tmp_path / "store")
        for item in records:
            store.append(item)
        return store

    def test_identical_revs_exit_zero(self, tmp_path, capsys):
        store = self.write_store(tmp_path, [
            record(rev="aaa1111"), record(rev="bbb2222")])
        code = main(["compare", "--store", str(store.directory),
                     "aaa1111", "bbb2222"])
        assert code == 0
        out = capsys.readouterr().out
        assert "no regressions" in out

    def test_injected_regression_exits_one(self, tmp_path, capsys):
        store = self.write_store(tmp_path, [
            record(rev="aaa1111"),
            record(rev="bbb2222", cycles_per_second=50.0)])
        code = main(["compare", "--store", str(store.directory),
                     "aaa1111", "bbb2222"])
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_no_revs_compares_two_latest_revisions(self, tmp_path, capsys):
        store = self.write_store(tmp_path, [
            record(rev="aaa1111"),
            record(rev="bbb2222", cycles_per_second=50.0)])
        assert main(["compare", "--store", str(store.directory)]) == 1

    def test_single_rev_store_compares_first_vs_latest_run(self, tmp_path):
        store = self.write_store(tmp_path, [
            record(), record(cycles_per_second=50.0)])
        assert main(["compare", "--store", str(store.directory)]) == 1

    def test_one_rev_is_usage_error(self, tmp_path, capsys):
        store = self.write_store(tmp_path, [record()])
        code = main(["compare", "--store", str(store.directory), "aaa1111"])
        assert code == 2
        assert "two" in capsys.readouterr().err

    def test_unknown_rev_exits_two(self, tmp_path, capsys):
        store = self.write_store(tmp_path, [record()])
        code = main(["compare", "--store", str(store.directory),
                     "aaa1111", "nope999"])
        assert code == 2
        assert "compare failed" in capsys.readouterr().err

    def test_empty_store_exits_two(self, tmp_path, capsys):
        code = main(["compare", "--store", str(tmp_path / "empty")])
        assert code == 2

    def test_tolerance_flag_loosens_the_gate(self, tmp_path):
        store = self.write_store(tmp_path, [
            record(rev="aaa1111"),
            record(rev="bbb2222", cycles_per_second=80.0)])
        assert main(["compare", "--store", str(store.directory),
                     "aaa1111", "bbb2222"]) == 1
        assert main(["compare", "--store", str(store.directory),
                     "--tolerance", "0.5", "aaa1111", "bbb2222"]) == 0


class TestFrame:
    def test_tidy_rows_flatten(self):
        rows = tidy_rows([record()])
        assert len(rows) == 1
        row = rows[0]
        assert tuple(row) == COLUMNS
        assert row["scene"] == "conference"
        assert row["cycles_per_second"] == 100.0
        assert row["git_rev"] == "aaa1111"

    def test_tidy_rows_tolerate_sparse_records(self):
        rows = tidy_rows([{"schema": RESULTS_SCHEMA, "kind": "run"}])
        assert rows[0]["scene"] is None
        assert rows[0]["wall_seconds"] is None

    def test_frame_requires_pandas_or_diagnoses(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append(record())
        try:
            import pandas  # noqa: F401
        except ImportError:
            with pytest.raises(ConfigError, match="pandas"):
                frame(store)
            return
        table = frame(store)
        assert list(table.columns) == list(COLUMNS)
        assert len(table) == 1

    def test_frame_accepts_record_lists(self):
        pytest.importorskip("pandas")
        table = frame([record(), record(mode="pdom_warp")])
        assert sorted(table["mode"]) == ["pdom_warp", "spawn"]
