"""Clean-vs-dirty history rules, including the bench's `_append_history`.

The bug being locked down: a ``REPRO_UPDATE_BENCH=1`` refresh from a
dirty working tree used to silently overwrite the committed revision's
honest ``history`` entry in ``BENCH_simulator_speed.json``. The shared
:func:`repro.results.history.upsert_history` rules (and the bench module
delegating to them, with a ``dirty`` flag from ``git status
--porcelain``) make that impossible.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

from repro.results.history import entry_identity, is_dirty_entry, \
    upsert_history

BENCH_PATH = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / \
    "bench_simulator_speed.py"


def entry(rev: str = "abc1234", preset: str = "tiny", dirty=None,
          value: int = 100) -> dict:
    made = {"git_rev": rev, "preset": preset, "value": value}
    if dirty is not None:
        made["dirty"] = dirty
    return made


class TestUpsertRules:
    def test_clean_replaces_clean(self):
        history = [entry(value=1, dirty=False)]
        upsert_history(history, entry(value=2, dirty=False))
        assert [item["value"] for item in history] == [2]

    def test_clean_replaces_dirty(self):
        history = [entry(value=1, dirty=True)]
        upsert_history(history, entry(value=2, dirty=False))
        assert [item["value"] for item in history] == [2]

    def test_dirty_never_replaces_clean(self):
        history = [entry(value=1, dirty=False)]
        upsert_history(history, entry(value=2, dirty=True))
        assert [item["value"] for item in history] == [1, 2]
        assert not is_dirty_entry(history[0])
        assert is_dirty_entry(history[1])

    def test_dirty_replaces_previous_dirty(self):
        history = [entry(value=1, dirty=False), entry(value=2, dirty=True)]
        upsert_history(history, entry(value=3, dirty=True))
        assert [item["value"] for item in history] == [1, 3]

    def test_legacy_entries_without_flag_are_clean(self):
        history = [entry(value=1)]  # committed pre-flag entry
        upsert_history(history, entry(value=2, dirty=True))
        assert [item["value"] for item in history] == [1, 2]
        upsert_history(history, entry(value=3, dirty=False))
        assert [item["value"] for item in history] == [3]

    def test_identity_is_rev_and_preset(self):
        history = [entry(rev="aaa", preset="tiny", value=1),
                   entry(rev="aaa", preset="fast", value=2),
                   entry(rev="bbb", preset="tiny", value=3)]
        upsert_history(history, entry(rev="aaa", preset="tiny", value=4,
                                      dirty=False))
        assert [item["value"] for item in history] == [2, 3, 4]
        assert entry_identity(history[-1]) == ("aaa", "tiny")


@pytest.fixture(scope="module")
def bench():
    """The bench module, imported by path (benchmarks/ is not a package)."""
    spec = importlib.util.spec_from_file_location(
        "bench_simulator_speed_under_test", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop(spec.name, None)


class TestBenchAppendHistory:
    ROWS = [{
        "mode": "spawn", "cycles": 1000,
        "reference_cyc_per_s": 100, "batched_cyc_per_s": 200,
        "batched_speedup": 2.0, "calendar_cyc_per_s": 150,
        "calendar_speedup": 1.5, "exact_cyc_per_s": 90,
        "fast_vs_exact": 1.1,
    }]
    SCHEDULER_ROWS = [{
        "mode": "spawn", "num_sms": 30,
        "scan_cyc_per_s": 50, "calendar_cyc_per_s": 70,
        "calendar_speedup": 1.4,
    }]

    class FakePreset:
        name = "tiny"

    def refresh(self, bench, committed, monkeypatch, *, rev, dirty):
        monkeypatch.setattr(bench, "_git_rev", lambda: rev)
        monkeypatch.setattr(bench, "_git_dirty", lambda: dirty)
        bench._append_history(committed, self.FakePreset(), self.ROWS,
                              self.SCHEDULER_ROWS)

    def test_dirty_refresh_preserves_clean_entry(self, bench, monkeypatch):
        committed: dict = {}
        self.refresh(bench, committed, monkeypatch, rev="abc1234",
                     dirty=False)
        honest = committed["history"][0]
        assert honest["dirty"] is False
        self.refresh(bench, committed, monkeypatch, rev="abc1234",
                     dirty=True)
        history = committed["history"]
        assert history[0] == honest  # the clean point survives verbatim
        assert len(history) == 2 and history[1]["dirty"] is True

    def test_dirty_refresh_replaces_only_its_dirty_predecessor(
            self, bench, monkeypatch):
        committed: dict = {}
        self.refresh(bench, committed, monkeypatch, rev="abc1234",
                     dirty=False)
        self.refresh(bench, committed, monkeypatch, rev="abc1234",
                     dirty=True)
        self.refresh(bench, committed, monkeypatch, rev="abc1234",
                     dirty=True)
        history = committed["history"]
        assert [item["dirty"] for item in history] == [False, True]

    def test_clean_refresh_supersedes_everything_at_its_rev(
            self, bench, monkeypatch):
        committed: dict = {}
        self.refresh(bench, committed, monkeypatch, rev="abc1234",
                     dirty=True)
        self.refresh(bench, committed, monkeypatch, rev="abc1234",
                     dirty=False)
        history = committed["history"]
        assert len(history) == 1 and history[0]["dirty"] is False

    def test_legacy_committed_history_is_protected(self, bench, monkeypatch):
        """Entries predating the dirty flag count as clean."""
        legacy = {"git_rev": "abc1234", "preset": "tiny",
                  "modes": {}, "scheduler_multi_sm": {}}
        committed = {"history": [dict(legacy)]}
        self.refresh(bench, committed, monkeypatch, rev="abc1234",
                     dirty=True)
        assert committed["history"][0] == legacy
        assert len(committed["history"]) == 2
