"""Configuration (Table I) tests."""

import dataclasses

import pytest

from repro.config import (
    GPUConfig,
    MemoryConfig,
    SchedulingModel,
    SpawnConfig,
    paper_config,
    scaled_config,
)
from repro.errors import ConfigError


class TestDefaults:
    def test_table1_values(self):
        config = paper_config()
        rows = dict(config.table1_rows())
        assert rows["Processor Cores"] == "30"
        assert rows["Warp Size"] == "32"
        assert rows["Stream Processors per Warp"] == "8"
        assert rows["Threads / Processor Core"] == "1024"
        assert rows["Thread Blocks / Processor Core"] == "8"
        assert rows["Registers / Processor Core"] == "16384"
        assert rows["On-chip Memory / Processor Core"] == "64 KB"
        assert rows["Spawn LUT Size / Processor Core"] == "1024 Bytes"
        assert rows["Memory Modules"] == "8"
        assert rows["Bandwidth per Memory Module"] == "8 Bytes/Cycle"
        assert rows["L1 and L2 Memory Caching"] == "None"

    def test_peak_ipc(self):
        assert paper_config().peak_ipc == 960

    def test_warps_per_sm_limit(self):
        assert paper_config().warps_per_sm_limit == 32


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("num_sms", 0), ("warp_size", 0), ("sps_per_sm", 0),
        ("max_blocks_per_sm", 0), ("registers_per_sm", -1),
        ("clock_ghz", 0.0), ("max_cycles", 0),
    ])
    def test_bad_values_raise(self, field, value):
        with pytest.raises(ConfigError):
            GPUConfig(**{field: value})

    def test_warp_size_multiple_of_sps(self):
        with pytest.raises(ConfigError):
            GPUConfig(warp_size=30, sps_per_sm=8)

    def test_threads_warp_multiple(self):
        with pytest.raises(ConfigError):
            GPUConfig(max_threads_per_sm=1000)

    def test_unknown_scheduling(self):
        with pytest.raises(ConfigError):
            GPUConfig(scheduling="fifo")

    def test_memory_validation(self):
        with pytest.raises(ConfigError):
            MemoryConfig(num_modules=0).validate()
        with pytest.raises(ConfigError):
            MemoryConfig(segment_bytes=30).validate()

    def test_spawn_validation(self):
        with pytest.raises(ConfigError):
            SpawnConfig(lut_bytes=0).validate()
        with pytest.raises(ConfigError):
            SpawnConfig(num_banks=0).validate()


class TestReplace:
    def test_plain_field(self):
        config = paper_config().replace(num_sms=4)
        assert config.num_sms == 4
        assert paper_config().num_sms == 30  # original untouched

    def test_nested_memory_field(self):
        config = paper_config().replace(memory_ideal=True,
                                        memory_latency_cycles=10)
        assert config.memory.ideal
        assert config.memory.latency_cycles == 10

    def test_nested_spawn_field(self):
        config = paper_config().replace(spawn_enabled=True,
                                        spawn_bank_conflicts=True)
        assert config.spawn.enabled
        assert config.spawn.bank_conflicts

    def test_mixed(self):
        config = paper_config().replace(num_sms=2, spawn_enabled=True,
                                        memory_ideal=True)
        assert (config.num_sms, config.spawn.enabled,
                config.memory.ideal) == (2, True, True)


class TestScaled:
    def test_scaled_sm_count(self):
        config = scaled_config(2)
        assert config.num_sms == 2

    def test_scaled_keeps_memory_partition(self):
        config = scaled_config(1)
        assert config.memory.num_modules == 8
        assert config.memory.bandwidth_bytes_per_cycle == 8

    def test_scaled_with_overrides(self):
        config = scaled_config(1, scheduling=SchedulingModel.BLOCK)
        assert config.scheduling == "block"

    def test_bad_count_raises(self):
        with pytest.raises(ConfigError):
            scaled_config(0)

    def test_frozen(self):
        config = paper_config()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.num_sms = 5
