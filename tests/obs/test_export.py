"""Exporter schema tests: Chrome trace, interval CSV/JSON, ASCII plot."""

from __future__ import annotations

import csv
import json

import pytest

from repro.harness.presets import get_preset
from repro.harness.runner import build_workload, run_mode
from repro.obs import (
    INTERVAL_COLUMNS,
    TraceSession,
    chrome_trace,
    render_interval_plot,
    write_chrome_trace,
    write_intervals_csv,
    write_intervals_json,
)

MAX_CYCLES = 40_000


@pytest.fixture(scope="module")
def result():
    workload = build_workload("conference", get_preset("tiny"))
    return run_mode("spawn", workload, max_cycles=MAX_CYCLES,
                     trace=TraceSession(interval=512))


@pytest.fixture(scope="module")
def document(result):
    return chrome_trace(result.trace)


def test_chrome_trace_top_level(document, result):
    assert set(document) == {"traceEvents", "displayTimeUnit", "otherData"}
    other = document["otherData"]
    assert other["ts_unit"] == "cycle"
    assert other["interval"] == 512
    assert other["cycles"] == result.stats.cycles
    assert other["dropped_events"] == 0
    assert json.loads(json.dumps(document)) == document


def test_chrome_trace_phases(document, result):
    by_phase: dict[str, list] = {}
    for event in document["traceEvents"]:
        by_phase.setdefault(event["ph"], []).append(event)
    assert set(by_phase) <= {"M", "X", "i", "C"}
    # One process-name record per SM plus one for the machine track.
    assert len(by_phase["M"]) == result.trace.num_sms + 1
    assert by_phase["X"], "expected warp lifetime events"
    assert by_phase["i"], "expected spawn/formation instants"
    assert by_phase["C"], "expected counter samples"


def test_chrome_trace_complete_events(document, result):
    cycles = result.stats.cycles
    for event in document["traceEvents"]:
        if event["ph"] != "X":
            continue
        assert set(event) == {"ph", "pid", "tid", "ts", "dur", "cat",
                              "name", "args"}
        assert event["cat"] in ("dynamic", "launch")
        assert event["dur"] >= 1
        assert 0 <= event["ts"] <= cycles
        assert event["ts"] + event["dur"] <= cycles + 1
        assert event["args"]["threads"] >= 1
        assert event["name"].endswith(f"#{event['args']['warp_id']}")


def test_chrome_trace_counters(document, result):
    machine_pid = result.trace.num_sms
    names = {event["name"] for event in document["traceEvents"]
             if event["ph"] == "C"}
    assert names == {"occupancy_warp_cycles", "pool_thread_cycles",
                     "issued", "idle", "stall", "dram_segments"}
    for event in document["traceEvents"]:
        if event["ph"] == "C":
            assert event["pid"] == machine_pid
            assert event["ts"] % 512 == 0


def test_write_chrome_trace(tmp_path, result):
    path = write_chrome_trace(tmp_path / "trace.json", result.trace)
    loaded = json.loads(path.read_text())
    assert loaded == chrome_trace(result.trace)


def test_write_intervals_csv(tmp_path, result):
    path = write_intervals_csv(tmp_path / "iv.csv", result.trace)
    with open(path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == len(result.trace.interval_rows())
    expected = {"interval", "start_cycle", "dram_read_segments",
                "dram_write_segments", *INTERVAL_COLUMNS}
    assert set(rows[0]) == expected
    issued = sum(int(row["issued"]) for row in rows)
    assert issued == result.stats.sm_stats.issued_instructions


def test_write_intervals_json(tmp_path, result):
    path = write_intervals_json(tmp_path / "iv.json", result.trace,
                                stats=result.stats)
    document = json.loads(path.read_text())
    assert document["schema"] == "repro-intervals/1"
    assert document["summary"] == result.trace.summary()
    assert document["attribution"] == result.trace.stall_attribution()
    assert document["intervals"] == result.trace.interval_rows()
    assert document["stats"]["version"] == 1
    assert document["stats"] == result.stats.to_dict()


def test_write_intervals_json_without_stats(tmp_path, result):
    path = write_intervals_json(tmp_path / "iv.json", result.trace)
    assert "stats" not in json.loads(path.read_text())


def test_render_interval_plot(result):
    plot = render_interval_plot(result.trace)
    lines = plot.splitlines()
    for label in result.trace.w_labels() + ["idle", "stall"]:
        assert any(line.lstrip().startswith(label) for line in lines)
    assert "idle by cause" in plot
    assert "stall by cause" in plot


def test_render_interval_plot_caps_width(result):
    plot = render_interval_plot(result.trace, max_intervals=10)
    first = plot.splitlines()[0]
    # "<label> |<glyphs>|" — the glyph run is bounded by max_intervals.
    assert len(first.split("|")[1]) <= 10


def test_render_interval_plot_empty():
    session = TraceSession(interval=512)
    assert render_interval_plot(session) == "(no intervals recorded)"
