"""EventLog: ordering, close semantics, and live followers."""

from __future__ import annotations

import threading

import pytest

from repro.obs import EventLog


class TestEventLog:
    def test_emit_assigns_dense_seq(self):
        log = EventLog()
        first = log.emit("one")
        second = log.emit("two", state="running")
        assert (first["seq"], second["seq"]) == (0, 1)
        assert second["state"] == "running"
        assert len(log) == 2
        assert [e["message"] for e in log.snapshot()] == ["one", "two"]
        assert log.snapshot(start=1) == [second]

    def test_emit_after_close_raises(self):
        log = EventLog()
        log.close()
        log.close()  # idempotent
        assert log.closed
        with pytest.raises(RuntimeError, match="closed"):
            log.emit("too late")

    def test_follow_drains_then_stops_at_close(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        log.close()
        assert [e["message"] for e in log.follow()] == ["a", "b"]
        assert [e["message"] for e in log.follow(start=1)] == ["b"]

    def test_follower_sees_events_emitted_while_blocked(self):
        log = EventLog()
        seen: list[str] = []
        started = threading.Event()

        def follow():
            started.set()
            for event in log.follow(poll_seconds=0.01):
                seen.append(event["message"])

        thread = threading.Thread(target=follow)
        thread.start()
        started.wait(timeout=5)
        log.emit("early")
        log.emit("late")
        log.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert seen == ["early", "late"]
