"""EventLog: ordering, close semantics, and live followers."""

from __future__ import annotations

import threading

import pytest

from repro.obs import EventLog


class TestEventLog:
    def test_emit_assigns_dense_seq(self):
        log = EventLog()
        first = log.emit("one")
        second = log.emit("two", state="running")
        assert (first["seq"], second["seq"]) == (0, 1)
        assert second["state"] == "running"
        assert len(log) == 2
        assert [e["message"] for e in log.snapshot()] == ["one", "two"]
        assert log.snapshot(start=1) == [second]

    def test_emit_after_close_raises(self):
        log = EventLog()
        log.close()
        log.close()  # idempotent
        assert log.closed
        with pytest.raises(RuntimeError, match="closed"):
            log.emit("too late")

    def test_follow_drains_then_stops_at_close(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        log.close()
        assert [e["message"] for e in log.follow()] == ["a", "b"]
        assert [e["message"] for e in log.follow(start=1)] == ["b"]

    def test_follower_sees_events_emitted_while_blocked(self):
        log = EventLog()
        seen: list[str] = []
        started = threading.Event()

        def follow():
            started.set()
            for event in log.follow(poll_seconds=0.01):
                seen.append(event["message"])

        thread = threading.Thread(target=follow)
        thread.start()
        started.wait(timeout=5)
        log.emit("early")
        log.emit("late")
        log.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert seen == ["early", "late"]


class TestBoundedRing:
    def test_unbounded_by_default(self):
        log = EventLog()
        for index in range(100):
            log.emit(str(index))
        assert log.dropped == 0
        assert len(log.snapshot()) == 100

    def test_ring_evicts_oldest_and_counts_drops(self):
        log = EventLog(max_events=3)
        for index in range(5):
            log.emit(str(index))
        assert log.dropped == 2
        assert len(log) == 5  # total emitted, evicted included
        retained = log.snapshot(start=2)
        assert [e["message"] for e in retained] == ["2", "3", "4"]
        assert [e["seq"] for e in retained] == [2, 3, 4]  # seqs stay global

    def test_snapshot_from_evicted_start_gets_dropped_marker(self):
        log = EventLog(max_events=2)
        for index in range(5):
            log.emit(str(index))
        events = log.snapshot()
        assert events[0]["dropped"] == 3
        assert events[0]["resume_seq"] == 3
        assert events[0]["seq"] == 0
        assert [e["message"] for e in events[1:]] == ["3", "4"]

    def test_follow_surfaces_the_gap(self):
        log = EventLog(max_events=2)
        for index in range(5):
            log.emit(str(index))
        log.close()
        events = list(log.follow())
        assert events[0]["dropped"] == 3
        assert "[dropped]" in events[0]["message"]
        assert [e["message"] for e in events[1:]] == ["3", "4"]
        # A reader resuming inside the retained window sees no marker.
        assert [e["message"] for e in log.follow(start=4)] == ["4"]

    def test_max_events_must_be_positive(self):
        with pytest.raises(ValueError, match="max_events"):
            EventLog(max_events=0)

    def test_slow_follower_is_told_what_it_missed(self):
        log = EventLog(max_events=2)
        log.emit("0")
        follower = log.follow(poll_seconds=0.01)
        assert next(follower)["message"] == "0"
        for index in range(1, 6):  # overflow the ring while it waits
            log.emit(str(index))
        log.close()
        rest = list(follower)
        assert rest[0]["dropped"] > 0
        assert [e["message"] for e in rest[1:]] == ["4", "5"]
