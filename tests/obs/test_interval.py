"""Unit tests for the growable interval accumulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.interval import IntervalBuffer, summed


def test_rejects_bad_layouts():
    with pytest.raises(ValueError):
        IntervalBuffer(0, ("a",))
    with pytest.raises(ValueError):
        IntervalBuffer(16, ())
    with pytest.raises(ValueError):
        IntervalBuffer(16, ("a", "a"))


def test_add_lands_in_the_right_row():
    buffer = IntervalBuffer(100, ("x", "y"))
    buffer.add(0, 0)
    buffer.add(99, 0)
    buffer.add(100, 1, amount=5)
    assert buffer.used == 2
    assert buffer.column("x").tolist() == [2, 0]
    assert buffer.column("y").tolist() == [0, 5]
    assert buffer.total("y") == 5
    assert buffer.totals() == {"x": 2, "y": 5}


def test_add_survives_reallocation():
    """Growth rebinding ``data`` mid-``add`` must not write a stale array."""
    buffer = IntervalBuffer(10, ("x",), initial_rows=1)
    for cycle in range(0, 10_000, 7):
        buffer.add(cycle, 0)
    assert buffer.total("x") == len(range(0, 10_000, 7))


@pytest.mark.parametrize("start,stop", [
    (0, 1), (0, 256), (255, 256), (250, 260), (3, 2_000), (511, 513),
    (1_000, 50_000),
])
def test_add_span_equals_per_cycle_adds(start, stop):
    interval = 256
    spanned = IntervalBuffer(interval, ("x",))
    looped = IntervalBuffer(interval, ("x",))
    spanned.add_span(start, stop, 0, weight=3)
    for cycle in range(start, stop):
        looped.add(cycle, 0, amount=3)
    assert spanned.used == looped.used
    assert (spanned.trimmed() == looped.trimmed()).all()


def test_add_span_empty_is_noop():
    buffer = IntervalBuffer(16, ("x",))
    buffer.add_span(5, 5, 0)
    buffer.add_span(9, 4, 0)
    assert buffer.used == 0


def test_summed_pads_to_longest():
    a = IntervalBuffer(16, ("x", "y"))
    b = IntervalBuffer(16, ("x", "y"))
    a.add(0, 0)
    b.add(40, 1, amount=2)
    total = summed([a, b], ("x", "y"), 16)
    assert total.shape == (3, 2)
    assert total[0].tolist() == [1, 0]
    assert total[2].tolist() == [0, 2]


def test_summed_rejects_layout_mismatch():
    a = IntervalBuffer(16, ("x",))
    with pytest.raises(ValueError):
        summed([a], ("x", "y"), 16)
    with pytest.raises(ValueError):
        summed([a], ("x",), 32)


def test_summed_empty():
    assert summed([], ("x",), 16).shape == (0, 1)


def test_trimmed_is_int64():
    buffer = IntervalBuffer(8, ("x",))
    buffer.add(0, 0)
    assert buffer.trimmed().dtype == np.int64
