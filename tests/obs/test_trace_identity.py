"""The observability contracts: probes-off bit-identity, exact==fast.

- With no session attached, every reported statistic is byte-identical to
  an uninstrumented run (zero-overhead-when-off).
- With a session attached, the event-driven fast clock and the exact
  cycle-by-cycle clock produce identical interval metrics, events, and
  attribution (the span-credit construction).
- The per-cause splits partition the aggregate idle/stall counters and
  the interval totals reconcile with ``RunStats``.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.harness.presets import get_preset
from repro.harness.runner import build_workload, run_mode
from repro.harness.sweep import run_stats_digest
from repro.obs import INTERVAL_COLUMNS, TraceSession
from repro.obs.constants import IDLE_CAUSES, STALL_CAUSES
from repro.simt.stats import NUM_W_BUCKETS

#: Bounded budget: long enough to cross DRAM waits, spawn formation and
#: partial-warp flushes, short enough for tier-1 (the exact clock ticks
#: every cycle of it).
MAX_CYCLES = 60_000

MODES = ("pdom_warp", "spawn")


@pytest.fixture(scope="module")
def workload():
    return build_workload("conference", get_preset("tiny"))


@pytest.fixture(scope="module", params=MODES)
def traced(request, workload):
    """(mode, baseline result, fast traced result, exact traced result)."""
    mode = request.param
    baseline = run_mode(mode, workload, max_cycles=MAX_CYCLES)
    fast = run_mode(mode, workload, max_cycles=MAX_CYCLES,
                     trace=TraceSession(interval=512))
    exact = run_mode(mode, workload, max_cycles=MAX_CYCLES,
                      fast_forward=False, trace=TraceSession(interval=512))
    return mode, baseline, fast, exact


def test_probes_off_stats_bit_identical(traced):
    _, baseline, fast, exact = traced
    assert run_stats_digest(fast.stats) == run_stats_digest(baseline.stats)
    assert run_stats_digest(exact.stats) == run_stats_digest(baseline.stats)
    assert fast.stats.to_dict() == baseline.stats.to_dict()


def test_probes_off_leaves_no_probe_attached(workload):
    result = run_mode("spawn", workload, max_cycles=1)
    assert result.trace is None


def test_exact_equals_fast_intervals(traced):
    _, _, fast, exact = traced
    a = fast.trace.machine_intervals()
    b = exact.trace.machine_intervals()
    assert a.shape == b.shape
    assert (a == b).all()
    assert (fast.trace.dram.trimmed() == exact.trace.dram.trimmed()).all()
    assert fast.trace.interval_rows() == exact.trace.interval_rows()


def test_exact_equals_fast_events(traced):
    _, _, fast, exact = traced
    for probe_fast, probe_exact in zip(fast.trace.sms, exact.trace.sms):
        assert probe_fast.events == probe_exact.events


def test_exact_equals_fast_attribution(traced):
    _, _, fast, exact = traced
    assert fast.trace.stall_attribution() == exact.trace.stall_attribution()


def test_attribution_partitions_aggregates(traced):
    _, _, fast, _ = traced
    attribution = fast.trace.stall_attribution()
    sm = fast.stats.sm_stats
    assert attribution["idle_cycles"] == sm.idle_cycles
    assert attribution["stall_cycles"] == sm.stall_cycles
    assert (sum(attribution[cause] for cause in IDLE_CAUSES)
            == attribution["idle_cycles"])
    assert (sum(attribution[cause] for cause in STALL_CAUSES)
            == attribution["stall_cycles"])


def test_intervals_reconcile_with_run_stats(traced):
    mode, _, fast, _ = traced
    machine = fast.trace.machine_intervals()
    col = {name: i for i, name in enumerate(INTERVAL_COLUMNS)}
    sm = fast.stats.sm_stats
    assert int(machine[:, col["issued"]].sum()) == sm.issued_instructions
    assert (int(machine[:, col["committed"]].sum())
            == sm.committed_thread_instructions)
    assert int(machine[:, col["idle"]].sum()) == sm.idle_cycles
    assert int(machine[:, col["stall"]].sum()) == sm.stall_cycles
    w_totals = machine[:, :NUM_W_BUCKETS].sum(axis=0)
    assert w_totals.tolist() == fast.stats.divergence.totals().tolist()
    spawned = int(machine[:, col["threads_spawned"]].sum())
    formed = int(machine[:, col["warps_formed"]].sum())
    flushed = int(machine[:, col["warps_flushed"]].sum())
    assert spawned == sm.threads_spawned
    assert formed == sm.full_warps_formed
    assert flushed == sm.partial_warps_flushed
    if mode == "spawn":
        assert spawned > 0
    assert int(machine[:, col["warps_launched"]].sum()) == sm.warps_launched
    assert int(machine[:, col["warps_retired"]].sum()) == sm.warps_completed


def test_spawn_stall_attribution_with_bank_conflicts(workload):
    result = run_mode("spawn_conflicts", workload, max_cycles=MAX_CYCLES,
                       trace=TraceSession(interval=512))
    attribution = result.trace.stall_attribution()
    assert attribution["stall_cycles"] > 0
    assert (attribution["bank_conflict"] + attribution["spawn_conflict"]
            == attribution["stall_cycles"])
    assert attribution["spawn_conflict"] > 0


def test_session_refuses_reuse(workload):
    session = TraceSession(interval=512)
    run_mode("pdom_warp", workload, max_cycles=1_000, trace=session)
    with pytest.raises(ConfigError):
        run_mode("pdom_warp", workload, max_cycles=1_000, trace=session)


def test_session_rejects_bad_interval():
    with pytest.raises(ConfigError):
        TraceSession(interval=0)


def test_events_cap_drops_and_counts(workload):
    session = TraceSession(interval=512, max_events=5)
    run_mode("spawn", workload, max_cycles=MAX_CYCLES, trace=session)
    assert session.num_events == 5
    assert session.dropped_events > 0
    summary = session.summary()
    assert summary["events"] == 5
    assert summary["dropped_events"] == session.dropped_events


def test_events_disabled(workload):
    session = TraceSession(interval=512, events=False)
    run_mode("spawn", workload, max_cycles=MAX_CYCLES, trace=session)
    assert session.num_events == 0
    assert session.dropped_events == 0
    # Interval metrics are unaffected by the event stream being off.
    assert session.machine_intervals().sum() > 0


def test_multi_sm_probes(workload):
    from repro.config import scaled_config
    from repro.kernels.layout import build_memory_image
    from repro.kernels.microkernels import microkernel_launch_spec
    from repro.simt import GPU

    config = scaled_config(2, spawn_enabled=True, max_cycles=MAX_CYCLES)
    image = build_memory_image(workload.tree, workload.origins,
                               workload.directions, workload.t_max)
    session = TraceSession(interval=512)
    gpu = GPU(config, microkernel_launch_spec(workload.num_rays),
              image.global_mem, image.const_mem, trace=session)
    stats = gpu.run()
    assert len(session.sms) == 2
    assert {probe.sm_id for probe in session.sms} == {0, 1}
    machine = session.machine_intervals()
    col = {name: i for i, name in enumerate(INTERVAL_COLUMNS)}
    assert (int(machine[:, col["issued"]].sum())
            == stats.sm_stats.issued_instructions)
    attribution = session.stall_attribution()
    assert attribution["idle_cycles"] == stats.sm_stats.idle_cycles
