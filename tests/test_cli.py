"""CLI tests (tiny preset to keep them fast)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scene == "conference"
        assert args.mode == "spawn"

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--mode", "magic"])

    def test_bad_scene_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["render", "--scene", "cornell"])


class TestCommands:
    def test_disasm_traditional(self, capsys):
        assert main(["disasm", "traditional"]) == 0
        out = capsys.readouterr().out
        assert ".kernel trace" in out
        assert "TRACE_DOWN:" in out

    def test_disasm_microkernels(self, capsys):
        assert main(["disasm", "microkernels"]) == 0
        out = capsys.readouterr().out
        assert "spawn $uk_traverse" in out

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "--preset", "tiny",
                     "--only", "table1,table2"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out

    def test_experiments_unknown_name(self, capsys):
        assert main(["experiments", "--only", "fig99"]) == 2

    def test_run_command(self, capsys):
        code = main(["run", "--preset", "tiny", "--mode", "pdom_warp",
                     "--divergence"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SIMT efficiency" in out
        assert "W29:32" in out

    def test_render_command(self, tmp_path, capsys):
        out_file = tmp_path / "img.ppm"
        code = main(["render", "--scene", "atrium", "--width", "8",
                     "--height", "8", "--detail", "0.25",
                     "--out", str(out_file)])
        assert code == 0
        assert out_file.read_bytes().startswith(b"P6 8 8 255")
