"""CLI tests (tiny preset to keep them fast)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scene == "conference"
        assert args.mode == "spawn"

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--mode", "magic"])

    def test_bad_scene_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["render", "--scene", "cornell"])

    def test_jobs_flag(self):
        args = build_parser().parse_args(["experiments", "--jobs", "4"])
        assert args.jobs == 4
        assert build_parser().parse_args(["experiments"]).jobs is None

    def test_cache_verbs(self):
        assert build_parser().parse_args(["cache", "info"]).verb == "info"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "purge"])

    def test_fault_tolerance_flags(self):
        args = build_parser().parse_args(
            ["experiments", "--checkpoint", "manifest.jsonl", "--resume",
             "--retries", "5", "--job-timeout", "2.5"])
        assert args.checkpoint == "manifest.jsonl"
        assert args.resume is True
        assert args.retries == 5
        assert args.job_timeout == 2.5

    def test_fault_tolerance_defaults(self):
        args = build_parser().parse_args(["experiments"])
        assert args.checkpoint == ""
        assert args.resume is False
        assert args.retries == 3
        assert args.job_timeout is None

    def test_fuzz_backends_flag(self):
        args = build_parser().parse_args(
            ["fuzz", "--backends", "reference,batched"])
        assert args.backends == "reference,batched"
        assert build_parser().parse_args(["fuzz"]).backends == ""

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8732
        assert args.checkpoint_dir == ""

    def test_worker_requires_manifest(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])

    def test_worker_command_round_trips_through_the_parser(self):
        """The argv the sharded-sweep driver spawns must stay parseable."""
        from repro.serve.manifest import worker_command

        argv = worker_command("m.jsonl", "shard0", retries=2)[3:]
        args = build_parser().parse_args(argv)
        assert args.manifest == "m.jsonl"
        assert args.id == "shard0"
        assert args.once is True
        assert args.retries == 2

    def test_submit_defaults(self):
        args = build_parser().parse_args(["submit"])
        assert args.url == "http://127.0.0.1:8732"
        assert args.scene == "conference"
        assert args.no_wait is False


class TestCommands:
    def test_disasm_traditional(self, capsys):
        assert main(["disasm", "traditional"]) == 0
        out = capsys.readouterr().out
        assert ".kernel trace" in out
        assert "TRACE_DOWN:" in out

    def test_disasm_microkernels(self, capsys):
        assert main(["disasm", "microkernels"]) == 0
        out = capsys.readouterr().out
        assert "spawn $uk_traverse" in out

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "--preset", "tiny",
                     "--only", "table1,table2"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out

    def test_experiments_unknown_name(self, capsys):
        assert main(["experiments", "--only", "fig99"]) == 2

    def test_experiments_with_jobs(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["experiments", "--preset", "tiny",
                     "--only", "fig3", "--jobs", "2"]) == 0
        assert "Figure 3" in capsys.readouterr().out
        assert list(tmp_path.glob("*.npz"))  # sweep populated the cache

    def test_cache_info_and_clear(self, tmp_path, monkeypatch, capsys):
        import json

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache", "info"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["dir"] == str(tmp_path)
        assert info["entries"] == 0
        (tmp_path / "bogus-primary-0000.npz").write_bytes(b"x")
        assert main(["cache", "clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert not list(tmp_path.glob("*.npz"))

    def test_experiments_permanent_failure_exits_nonzero(
            self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_FAULT_SPEC",
                           "exception@conference:pdom_block*5")
        monkeypatch.setenv("REPRO_FAULT_DIR", str(tmp_path / "faults"))
        code = main(["experiments", "--preset", "tiny", "--only", "fig3",
                     "--jobs", "1", "--retries", "2"])
        captured = capsys.readouterr()
        assert code == 1
        assert "fig3: skipped" in captured.out
        assert "FAILED (exception)" in captured.err
        assert "1 failed" in captured.err

    def test_experiments_unverified_exits_nonzero(self, tmp_path,
                                                  monkeypatch, capsys):
        from repro.harness import sweep as sweep_module

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        real_execute = sweep_module.execute_job

        def tainted(job, injector=None):
            result = real_execute(job, injector)
            result.verified = False
            return result

        monkeypatch.setattr(sweep_module, "execute_job", tainted)
        code = main(["experiments", "--preset", "tiny", "--only", "fig3",
                     "--jobs", "1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "1 unverified" in captured.err

    def test_experiments_checkpoint_resume(self, tmp_path, monkeypatch,
                                           capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        manifest = tmp_path / "manifest.jsonl"
        assert main(["experiments", "--preset", "tiny", "--only", "fig3",
                     "--jobs", "1", "--checkpoint", str(manifest)]) == 0
        assert manifest.exists()
        first = capsys.readouterr()
        assert "resumed from checkpoint" not in first.err
        assert main(["experiments", "--preset", "tiny", "--only", "fig3",
                     "--jobs", "1", "--checkpoint", str(manifest),
                     "--resume"]) == 0
        second = capsys.readouterr()
        assert "resumed from checkpoint" in second.err
        assert first.out == second.out

    def test_run_command(self, capsys):
        code = main(["run", "--preset", "tiny", "--mode", "pdom_warp",
                     "--divergence"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SIMT efficiency" in out
        assert "W29:32" in out

    def test_render_command(self, tmp_path, capsys):
        out_file = tmp_path / "img.ppm"
        code = main(["render", "--scene", "atrium", "--width", "8",
                     "--height", "8", "--detail", "0.25",
                     "--out", str(out_file)])
        assert code == 0
        assert out_file.read_bytes().startswith(b"P6 8 8 255")

    def test_fuzz_unknown_backend_exits_2(self, capsys):
        assert main(["fuzz", "--cases", "1", "--backends", "turbo"]) == 2
        err = capsys.readouterr().err
        assert "unknown backend 'turbo'" in err
        assert "reference" in err and "batched" in err

    def test_fuzz_backend_pair_clean(self, capsys):
        code = main(["fuzz", "--cases", "2", "--quiet",
                     "--backends", "reference,batched"])
        assert code == 0
        assert "0 with divergences" in capsys.readouterr().out
