"""Warp context tests."""

import numpy as np
import pytest

from repro.simt.warp import FINISHED, Warp


def launch(active_count=8, size=8, entry=10):
    active = np.zeros(size, dtype=bool)
    active[:active_count] = True
    return Warp.launch(3, size, 16, entry, np.arange(size), active)


class TestLaunch:
    def test_initial_state(self):
        warp = launch()
        assert warp.pc == 10
        assert warp.active_count == 8
        assert warp.regs.shape == (16, 8)
        assert not warp.done
        assert warp.kernel_name == ""

    def test_partial_active(self):
        warp = launch(active_count=3)
        assert warp.active_count == 3
        assert warp.active_mask().tolist() == [True] * 3 + [False] * 5

    def test_bad_tids_shape(self):
        with pytest.raises(ValueError):
            Warp(warp_id=0, warp_size=8, num_regs=4,
                 tids=np.arange(4), active_at_launch=np.ones(8, dtype=bool))

    def test_registers_zeroed(self):
        warp = launch()
        assert np.all(warp.regs == 0.0)
        assert not warp.preds.any()
        assert np.all(warp.data_slot_addr == -1)
        assert not warp.spawned_flag.any()
        assert np.all(warp.lane_commits == 0)


class TestLifecycle:
    def test_finish_if_empty(self):
        warp = launch()
        warp.stack.retire_lanes(np.ones(8, dtype=bool))
        assert warp.finish_if_empty()
        assert warp.status == FINISHED
        assert warp.done
        assert warp.active_count == 0

    def test_finish_idempotent(self):
        warp = launch()
        warp.stack.retire_lanes(np.ones(8, dtype=bool))
        assert warp.finish_if_empty()
        assert not warp.finish_if_empty()  # already finished

    def test_not_finished_with_lanes(self):
        warp = launch()
        assert not warp.finish_if_empty()

    def test_dynamic_flag(self):
        warp = Warp.launch(0, 8, 4, 0, np.arange(8), np.ones(8, dtype=bool),
                           is_dynamic=True, kernel_name="uk_traverse")
        assert warp.is_dynamic
        assert warp.kernel_name == "uk_traverse"
        assert warp.formation_region == -1
