"""Executor edge cases: vector widths on on-chip spaces, guards, nop."""

import numpy as np
import pytest

from repro.isa import assemble
from repro.isa.cfg import reconvergence_table
from repro.simt.banked import BankedMemory
from repro.simt.executor import MachineState, execute
from repro.simt.memory import GlobalMemory
from repro.simt.warp import Warp

WARP = 8


def machine_for(source: str) -> MachineState:
    program = assemble(source)
    return MachineState(
        program=program, global_mem=GlobalMemory(256),
        const_mem=np.arange(32.0), shared_mem=BankedMemory(256),
        spawn_mem=BankedMemory(256),
        reconv_table=reconvergence_table(program))


def run_warp(source: str, limit=1000) -> tuple[Warp, MachineState]:
    machine = machine_for(source)
    warp = Warp.launch(0, WARP, 48, 0, np.arange(WARP),
                       np.ones(WARP, dtype=bool))
    steps = 0
    with np.errstate(invalid="ignore", divide="ignore"):
        while not warp.done and steps < limit:
            execute(warp, machine)
            steps += 1
    assert warp.done
    return warp, machine


class TestVectorOnchip:
    def test_v2_shared_roundtrip(self):
        warp, _ = run_warp("""
.kernel main regs=48
main:
    mov r1, SREG.tid;
    mul r1, r1, 2;
    mov r4, 10;
    add r5, r4, 1;
    st.shared.v2 [r1+0], r4;
    ld.shared.v2 r6, [r1+0];
    exit;
""")
        assert np.all(warp.regs[6] == 10)
        assert np.all(warp.regs[7] == 11)

    def test_v4_spawn_roundtrip(self):
        warp, _ = run_warp("""
.kernel main regs=48
main:
    mov r1, SREG.tid;
    mul r1, r1, 4;
    mov r4, 1;
    mov r5, 2;
    mov r6, 3;
    mov r7, 4;
    st.spawnMem.v4 [r1+0], r4;
    ld.spawnMem.v4 r8, [r1+0];
    exit;
""")
        for j in range(4):
            assert np.all(warp.regs[8 + j] == j + 1)

    def test_guarded_vector_store_partial(self):
        warp, machine = run_warp("""
.kernel main regs=48
main:
    mov r1, SREG.tid;
    mul r1, r1, 2;
    mov r4, 7;
    mov r5, 8;
    setp.lt p0, SREG.tid, 2;
    @p0 st.shared.v2 [r1+0], r4;
    exit;
""")
        shared = machine.shared_mem.words
        assert shared[:4].tolist() == [7, 8, 7, 8]
        assert np.all(shared[4:16] == 0)


class TestGuardEdges:
    def test_all_lanes_guarded_off_memory_noop(self):
        warp, machine = run_warp("""
.kernel main regs=48
main:
    mov r1, 0;
    setp.gt p0, r1, 1;
    @p0 st.global [r1+0], 9;
    exit;
""")
        assert machine.global_mem.words[0] == 0.0

    def test_guarded_spawn_with_no_lanes_is_alu(self):
        source = """
.kernel main regs=8 state=2
.kernel child regs=8 state=2
main:
    mov r1, 0;
    setp.gt p0, r1, 1;
    @p0 spawn $child, r1;
    exit;
child:
    exit;
"""
        machine = machine_for(source)
        warp = Warp.launch(0, WARP, 8, 0, np.arange(WARP),
                           np.ones(WARP, dtype=bool))
        execute(warp, machine)
        execute(warp, machine)
        result = execute(warp, machine)
        assert result.spawn is not None
        assert result.spawn.pointers.size == 0

    def test_nop_advances(self):
        warp, _ = run_warp("""
.kernel main regs=4
main:
    nop;
    nop;
    exit;
""")
        assert warp.issued_instructions == 3

    def test_setp_guarded_updates_subset(self):
        warp, _ = run_warp("""
.kernel main regs=8
main:
    mov r1, SREG.tid;
    setp.lt p0, r1, 4;
    @p0 setp.ge p1, r1, 0;
    exit;
""")
        assert warp.preds[1].tolist() == [True] * 4 + [False] * 4


class TestSregEdges:
    def test_ntid(self):
        warp, _ = run_warp("""
.kernel main regs=4
main:
    mov r1, SREG.ntid;
    exit;
""")
        assert np.all(warp.regs[1] == WARP)

    def test_smid_zero(self):
        warp, _ = run_warp("""
.kernel main regs=4
main:
    mov r1, SREG.smid;
    exit;
""")
        assert np.all(warp.regs[1] == 0)
