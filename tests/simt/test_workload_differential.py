"""Differential tests for the path-tracing and BFS workload families.

The backend-identity contract enforced for the ray-tracing kernels by
test_backend_differential.py extends unchanged to the new µ-kernel
families: for every machine mode, the batched structure-of-arrays
executor (both clocks) and the calendar warp scheduler must be
**bit-identical** to the reference interpreter's scan-loop run in every
reported statistic — cycles, counters, divergence histograms, per-thread
commits.

The workloads here are the ones the families exist for:

- multi-bounce path tracing (``ray_kind="path"``): a seeded
  russian-roulette loop around the kd-tree traversal, as a megakernel
  restart loop or a five-µ-kernel spawn chain;
- frontier BFS (``ray_kind="bfs"``): a lock-free shared worklist over a
  CSR graph, as a megakernel worker loop or a self-respawning
  single-step µ-kernel, on both the uniform and hub-skewed graph
  archetypes.

DWF is covered for the path-tracing *megakernel* only: the BFS kernels
use atomics over a shared worklist whose claim-spin loops DWF's
majority-PC grouping can starve, and the spawn layouts are out of DWF's
scope by construction.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np
import pytest

from repro.harness.presets import get_preset
from repro.harness.runner import (
    config_for_mode,
    image_for_workload,
    prepare_workload,
    run_mode,
)
from repro.harness.sweep import run_stats_digest
from repro.kernels.pathtrace import pathtrace_program
from repro.simt.dwf import run_dwf

#: Cycle cap per run: both BFS workloads complete well under it; the
#: path-tracing runs truncate deterministically, which is all a
#: differential comparison needs.
MAX_CYCLES = 120_000

#: (scene, ray_kind, preset) triples covering both new families.
CONFIGS = (
    ("conference", "path", "path-tiny"),
    ("graph-uniform", "bfs", "bfs-tiny"),
    ("graph-skew", "bfs", "bfs-tiny"),
)

GPU_MODES = ("pdom_block", "pdom_warp", "spawn", "spawn_conflicts")

#: Scheduler identity is checked on the two modes with the most
#: scheduler-sensitive behaviour (warp scheduling and spawn formation).
SCHEDULER_MODES = ("pdom_warp", "spawn")


@pytest.fixture(scope="module", params=CONFIGS,
                ids=["-".join(c[:2]) for c in CONFIGS])
def workload(request):
    scene, ray_kind, preset = request.param
    return prepare_workload(scene, get_preset(preset), ray_kind=ray_kind)


def run_fingerprint(result) -> dict:
    """Every statistic a RunStats reports, backend-comparable."""
    divergence = result.stats.divergence
    return {
        "cycles": result.stats.cycles,
        "sm": asdict(result.stats.sm_stats),
        "per_sm": [asdict(s) for s in result.stats.per_sm],
        "divergence": {
            "issues": [tuple(row) for row in divergence.issues],
            "idle": list(divergence.idle),
            "stall": list(divergence.stall),
            "totals": divergence.totals().tolist(),
        },
        "rays_completed": result.stats.rays_completed,
        "dram_read_bytes": result.stats.dram_read_bytes,
        "dram_write_bytes": result.stats.dram_write_bytes,
        "dram_transactions": result.stats.dram_transactions,
        "thread_commits": dict(result.stats.thread_commits),
    }


class TestExecutorBackends:
    """Batched executor vs reference interpreter, both clocks."""

    @pytest.mark.parametrize("mode", GPU_MODES)
    def test_batched_matches_reference_both_clocks(self, workload, mode):
        reference = run_fingerprint(
            run_mode(mode, workload, max_cycles=MAX_CYCLES,
                     executor="reference"))
        for fast_forward in (True, False):
            batched = run_mode(mode, workload, max_cycles=MAX_CYCLES,
                               fast_forward=fast_forward,
                               executor="batched")
            assert run_fingerprint(batched) == reference, (
                f"{workload.scene_name}/{workload.ray_kind} {mode} "
                f"batched/{'fast' if fast_forward else 'exact'} diverges "
                f"from reference")


class TestWarpSchedulers:
    """Calendar scheduler vs the scan loop, across both executors."""

    @pytest.mark.parametrize("mode", SCHEDULER_MODES)
    def test_calendar_matches_scan(self, workload, mode):
        reference = run_stats_digest(
            run_mode(mode, workload, max_cycles=MAX_CYCLES,
                     executor="reference", scheduler="scan").stats)
        for executor in ("reference", "batched"):
            calendar = run_mode(mode, workload, max_cycles=MAX_CYCLES,
                                executor=executor, scheduler="calendar")
            assert run_stats_digest(calendar.stats) == reference, (
                f"{workload.scene_name}/{workload.ray_kind} {mode} "
                f"calendar/{executor} diverges from scan/reference")


class TestResultsMatchReference:
    """Truncated runs must still verify against the functional oracle."""

    @pytest.mark.parametrize("mode", GPU_MODES)
    def test_verify_under_cycle_cap(self, workload, mode):
        result = run_mode(mode, workload, max_cycles=MAX_CYCLES)
        assert result.verify()

    def test_spawn_completes_bfs(self, workload):
        if workload.ray_kind != "bfs":
            pytest.skip("full completion in tier-1 time is a BFS property")
        result = run_mode("spawn", workload)
        assert result.completed_fraction == 1.0
        assert result.verify()
        # Every reachable vertex was expanded exactly once.
        level, flag = result.image.results()
        assert int((~np.isnan(level)).sum()) == workload.num_rays


class TestDWF:
    """Idealized DWF on the path-tracing megakernel (no atomics there)."""

    def test_executor_is_a_noop_and_results_verify(self, workload):
        if workload.ray_kind != "path":
            pytest.skip("DWF covers the path-tracing megakernel only")
        fingerprints = []
        for executor in ("reference", "batched"):
            config = config_for_mode("pdom_warp", workload.preset,
                                     executor=executor)
            image = image_for_workload(workload)
            result = run_dwf(config, pathtrace_program(), "pt_trace",
                             image.global_mem, image.const_mem,
                             num_threads=min(workload.num_rays, 736),
                             max_cycles=MAX_CYCLES)
            fingerprints.append({
                "cycles": result.cycles,
                "sm": asdict(result.stats),
                "rays_completed": result.rays_completed,
            })
            bounces, tri = image.results()
            done = ~np.isnan(bounces)
            ref = workload.reference
            if done.any():
                assert np.array_equal(bounces[done], ref.t[done])
                assert np.array_equal(tri[done], ref.triangle[done])
        assert fingerprints[0] == fingerprints[1]
