"""Property tests: calendar-scheduler structures under random schedules.

The calendar scheduler's per-cycle pick trusts two data structures
blindly on the hot path (no defensive scans), so their invariants are
pinned down here against randomly generated wake schedules:

- **Pick equivalence**: :func:`repro.simt.sm.pick_slot` returns exactly
  the index the scan scheduler's two-range loop would pick from the same
  eligibility mask, and the round-robin cursor evolves identically
  across whole pick sequences.
- **Mask membership**: after draining the calendar to a cycle, bit ``i``
  of ``_ready_mask`` is set iff warp ``i`` is resident
  (``sched_slot >= 0``), ``READY``, and due (``ready_at <= cycle``) —
  exactly the set the scan loop would accept that cycle.
- **Wheel/heap monotonicity**: the wheel cursor only advances; every
  wake still filed on the wheel lies within one lap of the cursor and in
  the slot its cycle hashes to; every far-heap key is strictly in the
  future and mirrors a bucket.
- **Inline-drain consistency**: ``_select_warp_calendar`` (which inlines
  the drain and the pick for speed) leaves the same state as the
  out-of-line ``_drain_wakes`` + ``pick_slot`` it mirrors.

The harness drives the real (unbound) SM methods over stub warps, so
these properties hold for the exact code the simulator runs.
"""

from __future__ import annotations

from types import SimpleNamespace

from hypothesis import given, settings, strategies as st

from repro.simt.sm import SM, WAKE_WHEEL, pick_slot
from repro.simt.warp import BLOCKED, READY


def scan_pick(mask: int, rr: int, count: int) -> int | None:
    """The scan scheduler's two-range loop, on an eligibility mask."""
    for index in range(rr, count):
        if mask >> index & 1:
            return index
    for index in range(rr):
        if mask >> index & 1:
            return index
    return None


class CalendarHarness:
    """The calendar state of an SM, driving the real unbound methods."""

    _schedule_wake = SM._schedule_wake
    _drain_wakes = SM._drain_wakes
    _select_warp_calendar = SM._select_warp_calendar

    def __init__(self, warps):
        self.warps = warps
        self._rr = 0
        self._ready_mask = 0
        self._wheel = [[] for _ in range(WAKE_WHEEL)]
        self._wheel_pos = 0
        self._wake_buckets = {}
        self._wake_heap = []

    def check_structures(self, cycle: int) -> None:
        """Structural invariants that must hold after a drain to ``cycle``."""
        assert self._wheel_pos == cycle + 1
        for slot, bucket in enumerate(self._wheel):
            for warp in bucket:
                # Undrained wheel entries are strictly in the future,
                # within one lap of the cursor, in their home slot.
                assert cycle < warp.ready_at
                assert warp.ready_at < self._wheel_pos + WAKE_WHEEL
                assert warp.ready_at & (WAKE_WHEEL - 1) == slot
        assert sorted(self._wake_heap) == sorted(self._wake_buckets)
        for when, bucket in self._wake_buckets.items():
            assert when > cycle
            for warp in bucket:
                assert warp.ready_at == when


def make_warp(slot: int, ready_at: int, status=READY) -> SimpleNamespace:
    return SimpleNamespace(sched_slot=slot, status=status, ready_at=ready_at)


@given(count=st.integers(1, 48), data=st.data())
def test_pick_slot_matches_two_range_scan(count, data):
    mask = data.draw(st.integers(1, (1 << count) - 1))
    rr = data.draw(st.integers(0, count - 1))
    assert pick_slot(mask, rr) == scan_pick(mask, rr, count)


@given(count=st.integers(1, 48), data=st.data())
def test_rr_cursor_sequence_matches_scan(count, data):
    """Whole pick sequences agree: same picks, same cursor evolution,
    including rounds with an empty mask (no pick, cursor untouched)."""
    masks = data.draw(st.lists(st.integers(0, (1 << count) - 1),
                               min_size=1, max_size=32))
    scan_rr = calendar_rr = 0
    for mask in masks:
        expected = scan_pick(mask, scan_rr, count)
        if expected is not None:
            scan_rr = expected + 1 if expected + 1 < count else 0
        if not mask:
            assert expected is None
            continue
        index = pick_slot(mask, calendar_rr)
        assert index == expected
        calendar_rr = index + 1 if index + 1 < count else 0
        assert calendar_rr == scan_rr


#: One randomized wake-schedule episode: a warp files its wake (near or
#: far) and immediately meets its fate — stays READY, blocks (a barrier
#: arrival leaves a stale calendar entry behind), or retires (slot gone)
#: — then the calendar drains at a later cycle. Fates only mutate a warp
#: *before* its wake is drained, mirroring the real SM: a filed warp
#: cannot change ``ready_at`` without issuing first, and issuing
#: requires being drained and picked (which clears the mask bit).
EPISODES = st.lists(
    st.tuples(
        st.integers(0, 3 * WAKE_WHEEL),   # wake delay past the cursor
        st.sampled_from(("ready", "ready", "ready", "blocked", "retired")),
        st.integers(0, 2 * WAKE_WHEEL),   # drain advance after filing
    ),
    min_size=1, max_size=24)


@settings(max_examples=200)
@given(episodes=EPISODES, data=st.data())
def test_mask_membership_matches_scan_eligibility(episodes, data):
    """After every drain, the mask gains exactly the resident, READY,
    due warps — the scan scheduler's acceptance set for that cycle —
    and bits persist until picked (never dropped, never resurrected
    from the stale entries of blocked or retired warps)."""
    harness = CalendarHarness([])
    warps = []
    cycle = -1
    expected = 0
    for delay, fate, advance in episodes:
        warp = make_warp(len(warps), harness._wheel_pos + delay)
        warps.append(warp)
        harness._schedule_wake(warp, warp.ready_at)
        if fate == "blocked":
            warp.status = BLOCKED
        elif fate == "retired":
            warp.sched_slot = -1
        # The barrier-release path: a blocked warp whose stale entry has
        # already drained away may come back READY with a fresh wake.
        blocked = [w for w in warps
                   if w.status == BLOCKED and w.ready_at <= cycle]
        if blocked and data.draw(st.booleans()):
            released = blocked[0]
            released.status = READY
            released.ready_at = (harness._wheel_pos
                                 + data.draw(st.integers(0, WAKE_WHEEL)))
            harness._schedule_wake(released, released.ready_at)
        cycle = max(cycle, harness._wheel_pos) + advance
        harness._drain_wakes(cycle)
        for slot, filed in enumerate(warps):
            if (not expected >> slot & 1 and filed.sched_slot >= 0
                    and filed.status == READY and filed.ready_at <= cycle):
                expected |= 1 << slot
        assert harness._ready_mask == expected
        harness.check_structures(cycle)


@settings(max_examples=200)
@given(episodes=EPISODES, rr=st.integers(0, 23))
def test_inlined_select_matches_drain_plus_pick(episodes, rr):
    """_select_warp_calendar == _drain_wakes + pick_slot, state and all
    (the inlined copy must never drift from its out-of-line mirror)."""
    warps_a, warps_b = [], []
    inline = CalendarHarness(warps_a)
    mirror = CalendarHarness(warps_b)
    cycle = -1
    for delay, fate, advance in episodes:
        when = inline._wheel_pos + delay
        for warps, harness in ((warps_a, inline), (warps_b, mirror)):
            warp = make_warp(len(warps), when,
                             BLOCKED if fate == "blocked" else READY)
            warps.append(warp)
            harness._schedule_wake(warp, when)
            if fate == "retired":
                warp.sched_slot = -1
        cycle = max(cycle, inline._wheel_pos) + advance
        inline._rr = mirror._rr = rr % max(len(warps_a), 1)

        picked = inline._select_warp_calendar(cycle)

        mirror._drain_wakes(cycle)
        mask = mirror._ready_mask
        if not mask:
            expected = None
        else:
            index = pick_slot(mask, mirror._rr)
            mirror._ready_mask = mask & ~(1 << index)
            mirror._rr = (index + 1 if index + 1 < len(warps_b) else 0)
            expected = warps_b[index]

        if expected is None:
            assert picked is None
        else:
            assert picked is warps_a[expected.sched_slot]
        assert inline._ready_mask == mirror._ready_mask
        assert inline._rr == mirror._rr
        assert inline._wheel_pos == mirror._wheel_pos
        assert sorted(inline._wake_heap) == sorted(mirror._wake_heap)


@given(advances=st.lists(st.integers(0, 2 * WAKE_WHEEL),
                         min_size=2, max_size=16))
def test_wheel_cursor_monotone(advances):
    """The cursor never regresses, even across drains that jump more
    than a full wheel lap (where the drain visits each slot once)."""
    harness = CalendarHarness([])
    warp = make_warp(0, 5)
    harness._schedule_wake(warp, 5)
    cycle, last_pos = -1, 0
    for advance in advances:
        cycle += advance
        harness._drain_wakes(cycle)
        assert harness._wheel_pos >= last_pos
        assert harness._wheel_pos == max(last_pos, cycle + 1)
        last_pos = harness._wheel_pos
    assert harness._ready_mask == (1 if cycle >= 5 else 0)
