"""Differential tests: calendar warp scheduler vs the reference scan.

``GPUConfig.scheduler`` selects how an SM picks the next warp to issue:
``"scan"`` is the reference per-cycle round-robin scan over all resident
warps; ``"calendar"`` keeps an eligibility bitmask fed by a wake
calendar (timing wheel + far heap) and picks in O(1), letting the GPU
run loop put whole SMs to sleep between events. The contract
(docs/architecture.md, "Warp schedulers") is that the two schedulers are
**bit-identical** in every reported statistic — cycles, counters,
divergence histograms, per-SM breakdowns, per-thread commits — on both
the exact clock and the event-driven fast clock, under both executor
backends, and that attached cycle-attribution probes observe identical
intervals and events.

These tests enforce that contract for the execution models across three
scene/ray/seed configurations:

- traditional PDOM (block and warp scheduling),
- dynamic µ-kernel spawn (conflict-free and banked spawn memory),
- persistent threads (Aila & Laine software baseline),
- dynamic warp formation (``scheduler`` is accepted and must be a
  no-op: DWF re-forms a transient warp per issue from its own thread
  pool and never constructs an SM),
- MIMD theoretical (analytic; the scheduler toggle must be a no-op).

The scan scheduler's exact==fast identity is already enforced by
test_fastforward_differential.py and its reference==batched identity by
test_backend_differential.py, so each case runs scan/reference/fast once
and the calendar scheduler on the full clock x executor cross against
it. A dedicated multi-SM case (num_sms=4) exercises the GPU-level wake
heap that only engages with several SMs on the fast clock.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.config import scaled_config
from repro.harness.presets import get_preset
from repro.harness.runner import (
    config_for_mode,
    run_mode,
    prepare_workload,
)
from repro.harness.sweep import run_stats_digest
from repro.kernels.layout import build_memory_image
from repro.kernels.microkernels import microkernel_launch_spec
from repro.kernels.persistent import (
    persistent_launch_spec,
    persistent_thread_count,
)
from repro.kernels.traditional import (
    dynamic_instruction_model,
    traditional_launch_spec,
    traditional_program,
)
from repro.obs.probe import TraceSession
from repro.simt import GPU, mimd_theoretical
from repro.simt.dwf import run_dwf

#: Cycle cap per run: long enough to cross DRAM latencies, spawn-warp
#: formation, admission stalls, and many wheel laps (WAKE_WHEEL = 512);
#: short enough to keep the whole suite in tier-1 time.
MAX_CYCLES = 120_000

#: Three scene/ray/seed configurations.
CONFIGS = (
    ("conference", "primary", 0),
    ("fairyforest", "shadow", 1),
    ("atrium", "gi", 2),
)

GPU_MODES = ("pdom_block", "pdom_warp", "spawn", "spawn_conflicts")

SCHEDULERS = ("scan", "calendar")


@pytest.fixture(scope="module", params=CONFIGS,
                ids=["-".join(map(str, c)) for c in CONFIGS])
def workload(request):
    scene, ray_kind, seed = request.param
    return prepare_workload(scene, get_preset("tiny"), ray_kind=ray_kind,
                            seed=seed)


def sampler_fingerprint(divergence) -> dict:
    """Every observable of a DivergenceSampler, as plain comparable data."""
    return {
        "issues": [tuple(row) for row in divergence.issues],
        "idle": list(divergence.idle),
        "stall": list(divergence.stall),
        "totals": divergence.totals().tolist(),
        "mean_active": divergence.mean_active_lanes(),
    }


def run_fingerprint(result) -> dict:
    """Every statistic a RunStats reports, scheduler-comparable."""
    return {
        "cycles": result.stats.cycles,
        "sm": asdict(result.stats.sm_stats),
        "per_sm": [asdict(s) for s in result.stats.per_sm],
        "divergence": sampler_fingerprint(result.stats.divergence),
        "rays_completed": result.stats.rays_completed,
        "dram_read_bytes": result.stats.dram_read_bytes,
        "dram_write_bytes": result.stats.dram_write_bytes,
        "dram_transactions": result.stats.dram_transactions,
        "thread_commits": dict(result.stats.thread_commits),
    }


def stats_fingerprint(stats) -> dict:
    """Like :func:`run_fingerprint` for a bare RunStats (direct GPU runs)."""
    return {
        "cycles": stats.cycles,
        "sm": asdict(stats.sm_stats),
        "per_sm": [asdict(s) for s in stats.per_sm],
        "divergence": sampler_fingerprint(stats.divergence),
        "rays_completed": stats.rays_completed,
    }


def session_fingerprint(session: TraceSession) -> dict:
    """Everything a finalized TraceSession reports, scheduler-comparable."""
    return {
        "machine": session.machine_intervals().tolist(),
        "dram": session.dram.trimmed().tolist(),
        "rows": session.interval_rows(),
        "events": [probe.events for probe in session.sms],
        "attribution": session.stall_attribution(),
        "cycles": session.cycles,
    }


class TestGPUModels:
    """PDOM block/warp and µ-kernel spawn (with and without conflicts)."""

    @pytest.mark.parametrize("mode", GPU_MODES)
    def test_calendar_matches_scan_all_clocks_and_executors(
            self, workload, mode):
        reference = run_fingerprint(
            run_mode(mode, workload, max_cycles=MAX_CYCLES,
                      scheduler="scan", executor="reference"))
        for fast_forward in (True, False):
            for executor in ("reference", "batched"):
                calendar = run_mode(mode, workload, max_cycles=MAX_CYCLES,
                                     fast_forward=fast_forward,
                                     executor=executor, scheduler="calendar")
                assert run_fingerprint(calendar) == reference, (
                    f"{mode} calendar/{executor}/"
                    f"{'fast' if fast_forward else 'exact'} "
                    f"diverges from the scan scheduler")


class TestMultiSM:
    """num_sms >= 4: the GPU-level SM wake heap (fast clock only engages
    it with several SMs) must preserve per-SM stats bit-exactly."""

    @pytest.mark.parametrize("spawn", (False, True),
                             ids=("pdom", "spawn"))
    def test_calendar_matches_scan(self, workload, spawn):
        num_rays = workload.origins.shape[0]
        launch = (microkernel_launch_spec(num_rays) if spawn
                  else traditional_launch_spec(num_rays))

        def fingerprint(scheduler, fast_forward):
            # Fresh memory image per run: completions count *new* result
            # writes, so a reused image would hide them on the rerun.
            image = build_memory_image(workload.tree, workload.origins,
                                       workload.directions, workload.t_max)
            config = scaled_config(4, spawn_enabled=spawn,
                                   scheduler=scheduler,
                                   fast_forward=fast_forward)
            gpu = GPU(config, launch, image.global_mem, image.const_mem)
            return stats_fingerprint(gpu.run(max_cycles=MAX_CYCLES))

        reference = fingerprint("scan", True)
        assert fingerprint("calendar", True) == reference
        assert fingerprint("calendar", False) == reference


class TestProbeIntervals:
    """Attached probes must observe bit-identical intervals and events."""

    @pytest.mark.parametrize("mode", ("pdom_block", "spawn"))
    def test_sessions_identical(self, workload, mode):
        runs = {}
        for scheduler in SCHEDULERS:
            runs[scheduler] = run_mode(mode, workload,
                                        max_cycles=MAX_CYCLES,
                                        scheduler=scheduler,
                                        trace=TraceSession(interval=512))
        assert (session_fingerprint(runs["calendar"].trace)
                == session_fingerprint(runs["scan"].trace))
        assert (run_stats_digest(runs["calendar"].stats)
                == run_stats_digest(runs["scan"].stats))


class TestPersistentThreads:
    """Persistent-threads kernel on the warp-scheduled machine."""

    def test_calendar_matches_scan_both_clocks(self, workload):
        def fingerprint(scheduler, fast_forward):
            config = config_for_mode("pdom_warp", workload.preset,
                                      fast_forward=fast_forward,
                                      scheduler=scheduler)
            image = build_memory_image(workload.tree, workload.origins,
                                       workload.directions, workload.t_max)
            launch = persistent_launch_spec(persistent_thread_count(config))
            gpu = GPU(config, launch, image.global_mem, image.const_mem)
            return stats_fingerprint(gpu.run(max_cycles=MAX_CYCLES))

        reference = fingerprint("scan", True)
        assert fingerprint("calendar", True) == reference
        assert fingerprint("calendar", False) == reference


class TestDWF:
    """DWF accepts the scheduler field but must ignore it entirely."""

    def test_scheduler_is_a_noop(self, workload):
        fingerprints = []
        for scheduler in SCHEDULERS:
            config = config_for_mode("pdom_warp", workload.preset,
                                      scheduler=scheduler)
            image = build_memory_image(workload.tree, workload.origins,
                                       workload.directions, workload.t_max)
            result = run_dwf(config, traditional_program(), "trace",
                             image.global_mem, image.const_mem,
                             num_threads=min(workload.num_rays, 736),
                             max_cycles=MAX_CYCLES)
            fingerprints.append({
                "cycles": result.cycles,
                "sm": asdict(result.stats),
                "divergence": sampler_fingerprint(result.divergence),
                "rays_completed": result.rays_completed,
            })
        assert fingerprints[0] == fingerprints[1]


class TestMIMD:
    """Analytic model: the scheduler toggle must not perturb it at all."""

    def test_scheduler_is_a_noop(self, workload):
        model = dynamic_instruction_model()
        counters = workload.reference.counters
        counts = (model["prologue"]
                  + counters.node_visits * model["node_visit"]
                  + counters.leaf_visits * (model["leaf_visit"] + model["pop"])
                  + counters.triangle_tests * model["triangle_test"]
                  + model["write"])
        results = [
            mimd_theoretical(counts, config_for_mode(
                "pdom_ideal", workload.preset, scheduler=scheduler))
            for scheduler in SCHEDULERS
        ]
        assert asdict(results[0]) == asdict(results[1])
        assert results[0].cycles > 0
