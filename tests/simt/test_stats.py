"""Statistics: W-bucket math, sampler, SMStats merge."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.simt.stats import (
    NUM_W_BUCKETS,
    DivergenceSampler,
    SMStats,
    w_bucket,
    w_labels,
)


class TestWBuckets:
    def test_boundaries_for_32(self):
        assert w_bucket(1) == 0
        assert w_bucket(4) == 0
        assert w_bucket(5) == 1
        assert w_bucket(28) == 6
        assert w_bucket(29) == 7
        assert w_bucket(32) == 7

    def test_zero_active_rejected(self):
        with pytest.raises(ValueError):
            w_bucket(0)

    def test_labels_for_32(self):
        labels = w_labels(32)
        assert labels[0] == "W1:4"
        assert labels[-1] == "W29:32"
        assert len(labels) == NUM_W_BUCKETS

    def test_labels_for_8(self):
        labels = w_labels(8)
        assert labels[0] == "W1:1"
        assert labels[-1] == "W8:8"

    @given(st.integers(min_value=1, max_value=32))
    def test_bucket_in_range(self, active):
        assert 0 <= w_bucket(active) < NUM_W_BUCKETS

    @given(st.integers(min_value=1, max_value=31))
    def test_bucket_monotone(self, active):
        assert w_bucket(active) <= w_bucket(active + 1)

    @pytest.mark.parametrize("warp_size", [4, 8, 16, 32])
    def test_full_warp_lands_in_top_nonempty_bucket(self, warp_size):
        """A fully-occupied warp always reports as the densest bucket its
        warp size can reach, and every active count maps to a bucket whose
        label range actually contains it."""
        per_bucket = max(1, -(-warp_size // NUM_W_BUCKETS))
        top = min(NUM_W_BUCKETS - 1, (warp_size - 1) // per_bucket)
        assert w_bucket(warp_size, warp_size) == top
        labels = w_labels(warp_size)
        for active in range(1, warp_size + 1):
            bucket = w_bucket(active, warp_size)
            lo, hi = labels[bucket][1:].split(":")
            assert int(lo) <= active <= int(hi), (
                f"warp_size={warp_size}: {active} active lanes landed in "
                f"{labels[bucket]}")

    @pytest.mark.parametrize("warp_size", [4, 8, 16, 32])
    def test_small_warps_use_one_lane_per_bucket(self, warp_size):
        """For warp sizes <= NUM_W_BUCKETS each active count has its own
        bucket (warp_size=4 must not collapse into bucket 0)."""
        if warp_size <= NUM_W_BUCKETS:
            buckets = [w_bucket(a, warp_size)
                       for a in range(1, warp_size + 1)]
            assert buckets == list(range(warp_size))

    @pytest.mark.parametrize("warp_size", [3, 5, 6, 7, 12, 20, 24])
    def test_non_multiple_warp_sizes_cover_all_counts(self, warp_size):
        """Non-multiple-of-8 sizes: buckets partition 1..warp_size with no
        count spilling past the labelled top range (the old floor-based
        per-bucket width collapsed the tail into a mislabelled bucket)."""
        labels = w_labels(warp_size)
        seen = set()
        for active in range(1, warp_size + 1):
            bucket = w_bucket(active, warp_size)
            assert 0 <= bucket < NUM_W_BUCKETS
            lo, hi = labels[bucket][1:].split(":")
            assert int(lo) <= active <= int(hi)
            seen.add(bucket)
        assert sorted(seen) == list(range(len(seen)))  # contiguous from 0

    @pytest.mark.parametrize("warp_size", [4, 8, 16, 32])
    def test_over_warp_size_rejected(self, warp_size):
        with pytest.raises(ValueError):
            w_bucket(warp_size + 1, warp_size)

    @pytest.mark.parametrize("warp_size", [4, 8, 16, 32])
    def test_sampler_agrees_with_w_bucket(self, warp_size):
        """The sampler's inlined hot-path bucketing must match the public
        w_bucket function for every possible active count."""
        for active in range(1, warp_size + 1):
            sampler = DivergenceSampler(warp_size=warp_size, window=10)
            sampler.record_issue(0, active)
            totals = sampler.totals()
            assert totals[w_bucket(active, warp_size)] == 1
            assert totals.sum() == 1


class TestDivergenceSampler:
    def test_issue_recording(self):
        sampler = DivergenceSampler(window=100)
        sampler.record_issue(0, 32)
        sampler.record_issue(50, 3)
        sampler.record_issue(150, 16)
        totals = sampler.totals()
        assert totals[7] == 1 and totals[0] == 1 and totals[3] == 1
        assert len(sampler.issues) == 2

    def test_idle_and_stall(self):
        sampler = DivergenceSampler(window=10)
        sampler.record_idle(5)
        sampler.record_stall(5)
        rows = sampler.fractions_over_time()
        assert rows.shape == (1, NUM_W_BUCKETS + 2)
        assert rows[0, -2] == 0.5  # idle
        assert rows[0, -1] == 0.5  # stall

    def test_fractions_rows_sum_to_one(self):
        sampler = DivergenceSampler(window=10)
        for cycle in range(30):
            sampler.record_issue(cycle, (cycle % 32) + 1)
        rows = sampler.fractions_over_time()
        assert np.allclose(rows.sum(axis=1), 1.0)

    def test_merge(self):
        a = DivergenceSampler(window=10)
        b = DivergenceSampler(window=10)
        a.record_issue(0, 32)
        b.record_issue(0, 32)
        b.record_issue(15, 1)
        a.merge(b)
        assert a.totals()[7] == 2
        assert a.totals()[0] == 1
        assert len(a.issues) == 2

    def test_mean_active_lanes(self):
        sampler = DivergenceSampler(window=10)
        for _ in range(10):
            sampler.record_issue(0, 32)
        assert sampler.mean_active_lanes() == pytest.approx(30.5)
        empty = DivergenceSampler()
        assert empty.mean_active_lanes() == 0.0

    def test_empty_totals(self):
        sampler = DivergenceSampler()
        assert sampler.totals().sum() == 0
        assert sampler.fractions_over_time().shape == (0, NUM_W_BUCKETS + 2)


class TestSMStats:
    def test_ipc(self):
        stats = SMStats(cycles=100, committed_thread_instructions=3200)
        assert stats.ipc() == 32.0
        assert SMStats().ipc() == 0.0

    def test_merge_sums_counters(self):
        a = SMStats(cycles=100, issued_instructions=10, rays_completed=5)
        b = SMStats(cycles=80, issued_instructions=7, rays_completed=3)
        a.merge(b)
        assert a.issued_instructions == 17
        assert a.rays_completed == 8
        assert a.cycles == 100  # max, not sum
