"""SM + GPU integration tests: scheduling models, occupancy, end-to-end."""

import numpy as np
import pytest

from repro.config import scaled_config
from repro.errors import ConfigError, SchedulingError
from repro.isa import assemble
from repro.simt import GPU, GlobalMemory, LaunchSpec

LOOP_KERNEL = """
.kernel main regs=8
main:
    mov r0, SREG.tid;
    ld.global r2, [r0+0];
    mov r1, 0;
LOOP:
    add r1, r1, 1;
    setp.lt p0, r1, r2;
    @p0 bra LOOP;
    add r3, r0, 128;
    mul r4, r1, 10;
    st.global [r3+0], r4;
    exit;
"""

SPAWN_KERNEL = """
.kernel K0 regs=8 state=4
.kernel K1 regs=8 state=4
K0:
    mov r6, SREG.spawnMemAddr;
    mov r0, SREG.tid;
    ld.global r2, [r0+0];
    mov r1, 0;
    st.spawn [r6+0], r1;
    st.spawn [r6+1], r2;
    st.spawn [r6+2], r0;
    spawn $K1, r6;
    exit;
K1:
    mov r6, SREG.spawnMemAddr;
    ld.spawn r5, [r6+0];
    mov r6, r5;
    ld.spawn r1, [r6+0];
    ld.spawn r2, [r6+1];
    ld.spawn r0, [r6+2];
    add r1, r1, 1;
    setp.lt p0, r1, r2;
    st.spawn [r6+0], r1;
    @p0 spawn $K1, r6;
    @p0 exit;
    add r3, r0, 128;
    mul r4, r1, 10;
    st.global [r3+0], r4;
    exit;
"""


def run_loop_kernel(num_threads=64, scheduling="warp", num_sms=1,
                    trips=None, **config_overrides):
    program = assemble(LOOP_KERNEL)
    mem = GlobalMemory(512)
    trips = np.arange(1, num_threads + 1) if trips is None else trips
    mem.load_array(0, trips.astype(float))
    mem.set_result_range(128, num_threads, stride=1)
    config = scaled_config(num_sms, scheduling=scheduling,
                           max_cycles=500_000, **config_overrides)
    launch = LaunchSpec(program=program, entry_kernel="main",
                        num_threads=num_threads, registers_per_thread=8,
                        block_size=64)
    gpu = GPU(config, launch, mem)
    stats = gpu.run()
    return gpu, stats, mem, trips


class TestPDOMExecution:
    def test_results_correct(self):
        gpu, stats, mem, trips = run_loop_kernel()
        assert np.array_equal(mem.words[128:192], trips * 10.0)

    def test_all_rays_complete(self):
        _, stats, _, _ = run_loop_kernel()
        assert stats.rays_completed == 64

    def test_partial_last_warp(self):
        gpu, stats, mem, trips = run_loop_kernel(num_threads=40)
        assert stats.rays_completed == 40
        assert np.array_equal(mem.words[128:168], trips * 10.0)

    def test_divergence_recorded(self):
        _, stats, _, _ = run_loop_kernel()
        totals = stats.divergence.totals()
        assert totals.sum() > 0
        assert totals[:-1].sum() > 0  # the ramp causes partial warps

    def test_uniform_trips_stay_converged(self):
        trips = np.full(64, 5)
        _, stats, _, _ = run_loop_kernel(trips=trips)
        totals = stats.divergence.totals()
        # All issues should be full-warp (highest bucket only).
        assert totals[:-1].sum() == 0
        assert stats.simt_efficiency == 1.0

    def test_multi_sm_distribution(self):
        gpu, stats, mem, trips = run_loop_kernel(num_threads=256, num_sms=2)
        assert stats.rays_completed == 256
        launched = [sm.stats.threads_launched for sm in gpu.sms]
        assert all(count > 0 for count in launched)

    def test_ipc_positive_and_bounded(self):
        _, stats, _, _ = run_loop_kernel()
        assert 0 < stats.ipc <= stats.config.peak_ipc


class TestSchedulingModels:
    def test_block_scheduling_limits_residency(self):
        program = assemble(LOOP_KERNEL)
        config_block = scaled_config(1, scheduling="block")
        config_warp = scaled_config(1, scheduling="warp")
        launch = LaunchSpec(program=program, entry_kernel="main",
                            num_threads=2048, registers_per_thread=20,
                            block_size=64)
        mem = GlobalMemory(4096)
        gpu_b = GPU(config_block, launch, mem)
        gpu_w = GPU(config_warp, launch, GlobalMemory(4096))
        # Block: 8 blocks x 2 warps; warp: register-limited (25 warps).
        assert gpu_b.sms[0].max_warps == 16
        assert gpu_w.sms[0].max_warps == 25

    def test_zero_warps_raises(self):
        program = assemble(LOOP_KERNEL)
        launch = LaunchSpec(program=program, entry_kernel="main",
                            num_threads=64, registers_per_thread=2000,
                            block_size=64)
        with pytest.raises(ConfigError):
            GPU(scaled_config(1), launch, GlobalMemory(512))

    def test_block_mode_completes(self):
        _, stats, mem, trips = run_loop_kernel(scheduling="block")
        assert stats.rays_completed == 64


class TestSpawnExecution:
    def run_spawn(self, num_threads=64, **overrides):
        program = assemble(SPAWN_KERNEL)
        mem = GlobalMemory(512)
        trips = np.arange(1, num_threads + 1)
        mem.load_array(0, trips.astype(float))
        mem.set_result_range(128, num_threads, stride=1)
        overrides.setdefault("max_cycles", 1_000_000)
        config = scaled_config(1, spawn_enabled=True, **overrides)
        launch = LaunchSpec(program=program, entry_kernel="K0",
                            num_threads=num_threads, registers_per_thread=8,
                            block_size=32, state_words=4)
        gpu = GPU(config, launch, mem)
        stats = gpu.run()
        return gpu, stats, mem, trips

    def test_results_correct(self):
        _, stats, mem, trips = self.run_spawn()
        assert np.array_equal(mem.words[128:192], trips * 10.0)
        assert stats.rays_completed == 64

    def test_spawn_counters(self):
        _, stats, _, trips = self.run_spawn()
        # Each K1 generation is one spawn: sum(trips) total.
        assert stats.sm_stats.threads_spawned == int(trips.sum())

    def test_bank_conflicts_slow_down(self):
        _, fast, _, _ = self.run_spawn()
        _, slow, _, _ = self.run_spawn(spawn_bank_conflicts=True)
        assert slow.sm_stats.bank_conflict_cycles > 0
        assert fast.sm_stats.bank_conflict_cycles == 0
        assert slow.cycles >= fast.cycles

    def test_spawn_without_hardware_raises(self):
        program = assemble(SPAWN_KERNEL)
        mem = GlobalMemory(512)
        mem.load_array(0, np.ones(64))
        launch = LaunchSpec(program=program, entry_kernel="K0",
                            num_threads=64, registers_per_thread=8,
                            block_size=32, state_words=4)
        gpu = GPU(scaled_config(1, max_cycles=100_000), launch, mem)
        with pytest.raises(SchedulingError):
            gpu.run()

    def test_spawn_config_without_targets_raises(self):
        program = assemble(LOOP_KERNEL)
        launch = LaunchSpec(program=program, entry_kernel="main",
                            num_threads=64, registers_per_thread=8,
                            block_size=64, state_words=4)
        with pytest.raises(ConfigError):
            GPU(scaled_config(1, spawn_enabled=True), launch,
                GlobalMemory(512))

    def test_dynamic_warps_have_priority(self):
        gpu, stats, _, _ = self.run_spawn(num_threads=96)
        # Some dynamic warps must have been admitted before all launch
        # warps (otherwise partial flush count explodes); check activity.
        assert stats.sm_stats.full_warps_formed > 0
        assert stats.rays_completed == 96

    def test_max_cycles_caps_run(self):
        gpu, stats, _, _ = self.run_spawn(max_cycles=500)
        assert stats.cycles <= 500
        assert stats.rays_completed < 64


class TestRunStats:
    def test_efficiency_in_unit_range(self):
        _, stats, _, _ = run_loop_kernel()
        assert 0.0 < stats.simt_efficiency <= 1.0

    def test_rays_per_second_scaling(self):
        _, stats, _, _ = run_loop_kernel()
        base = stats.rays_per_second()
        scaled = stats.rays_per_second(scale_to_sms=30)
        assert scaled == pytest.approx(base * 30)

    def test_thread_commits_collected(self):
        _, stats, _, trips = run_loop_kernel()
        assert len(stats.thread_commits) == 64
        # Loop kernel: longer trips mean more committed instructions.
        assert stats.thread_commits[63] > stats.thread_commits[0]

    def test_dram_traffic_counted(self):
        _, stats, _, _ = run_loop_kernel()
        assert stats.dram_read_bytes > 0
        assert stats.dram_write_bytes > 0
        assert stats.dram_transactions > 0
