"""Block-barrier (`bar`) instruction tests."""

import numpy as np
import pytest

from repro.config import scaled_config
from repro.errors import AssemblerError, ExecutionError, SchedulingError
from repro.isa import assemble
from repro.simt import GPU, GlobalMemory, LaunchSpec

# Two warps per block: each thread publishes to shared memory, waits at
# the barrier, then reads the slot written by a thread of the *other*
# warp. Correct results require real synchronization. Shared memory is
# per-SM in the model, so the kernel partitions it by block base (as a
# compiler would when allocating per-block shared arrays).
EXCHANGE_KERNEL = """
.kernel main regs=8
main:
    mov r0, SREG.tid;
    rem r1, r0, 64;          # index within the block
    sub r4, r0, r1;          # block base = block_id * 64
    st.shared [r0+0], r0;
    bar;
    add r2, r1, 32;
    rem r2, r2, 64;          # partner slot in the other warp
    add r2, r2, r4;
    ld.shared r3, [r2+0];
    st.global [r0+0], r3;
    exit;
"""


def run_exchange(num_threads=64, scheduling="block", **overrides):
    program = assemble(EXCHANGE_KERNEL)
    mem = GlobalMemory(256)
    mem.set_result_range(0, num_threads, stride=1)
    overrides.setdefault("max_cycles", 200_000)
    config = scaled_config(1, scheduling=scheduling, **overrides)
    launch = LaunchSpec(program=program, entry_kernel="main",
                        num_threads=num_threads, registers_per_thread=8,
                        block_size=64)
    gpu = GPU(config, launch, mem)
    stats = gpu.run()
    return stats, mem


class TestBarrierSemantics:
    def test_cross_warp_exchange(self):
        stats, mem = run_exchange()
        expected = [(i + 32) % 64 for i in range(64)]
        assert mem.words[:64].tolist() == expected

    def test_multiple_blocks(self):
        stats, mem = run_exchange(num_threads=192)
        for block in range(3):
            base = block * 64
            got = mem.words[base:base + 64].tolist()
            expected = [base + (i + 32) % 64 for i in range(64)]
            assert got == expected

    def test_warp_scheduling_rejected(self):
        with pytest.raises(SchedulingError):
            run_exchange(scheduling="warp")

    def test_divergent_barrier_rejected(self):
        program = assemble("""
.kernel main regs=8
main:
    mov r0, SREG.tid;
    setp.lt p0, r0, 16;
    @p0 bra SIDE;
    bar;
    exit;
SIDE:
    bar;
    exit;
""")
        mem = GlobalMemory(64)
        launch = LaunchSpec(program=program, entry_kernel="main",
                            num_threads=32, registers_per_thread=8,
                            block_size=32)
        gpu = GPU(scaled_config(1, scheduling="block", max_cycles=50_000),
                  launch, mem)
        with pytest.raises(ExecutionError):
            gpu.run()

    def test_single_warp_block_passes_through(self):
        program = assemble("""
.kernel main regs=4
main:
    bar;
    mov r0, SREG.tid;
    st.global [r0+0], 1;
    exit;
""")
        mem = GlobalMemory(64)
        mem.set_result_range(0, 32, stride=1)
        launch = LaunchSpec(program=program, entry_kernel="main",
                            num_threads=32, registers_per_thread=4,
                            block_size=32)
        gpu = GPU(scaled_config(1, scheduling="block", max_cycles=50_000),
                  launch, mem)
        stats = gpu.run()
        assert stats.rays_completed == 32

    def test_sibling_exit_releases_barrier(self):
        # Warp 0 exits before the barrier; warp 1 must not deadlock.
        program = assemble("""
.kernel main regs=8
main:
    mov r0, SREG.tid;
    setp.lt p0, r0, 32;
    @p0 exit;
    bar;
    st.global [r0+0], 1;
    exit;
""")
        mem = GlobalMemory(128)
        mem.set_result_range(0, 128, stride=1)
        launch = LaunchSpec(program=program, entry_kernel="main",
                            num_threads=64, registers_per_thread=8,
                            block_size=64)
        gpu = GPU(scaled_config(1, scheduling="block", max_cycles=100_000),
                  launch, mem)
        stats = gpu.run()
        assert stats.rays_completed == 32  # the surviving warp finished


class TestBarrierParsing:
    def test_assembles(self):
        program = assemble(".kernel main regs=2\nmain:\n    bar;\n    exit;")
        assert program[0].op == "bar"

    def test_predicated_bar_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".kernel main regs=2\nmain:\n    @p0 bar;\n    exit;")

    def test_round_trips(self):
        from repro.isa import disassemble
        program = assemble(".kernel main regs=2\nmain:\n    bar;\n    exit;")
        assert "bar;" in disassemble(program)
