"""Differential testing: the warp executor vs an independent interpreter.

Hypothesis generates random straight-line programs over a small register
file (arithmetic, comparisons, selects, predication). Each program runs
two ways — lane-vectorized on the simulator's executor, and scalar
per-lane on a deliberately simple reference interpreter written here with
plain Python floats — and the resulting register files must match
bit-for-bit (both are IEEE double).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import assemble
from repro.isa.cfg import reconvergence_table
from repro.simt.banked import BankedMemory
from repro.simt.executor import MachineState, execute
from repro.simt.memory import GlobalMemory
from repro.simt.warp import Warp

WARP = 8
NUM_REGS = 6
NUM_PREDS = 2

BINARY_OPS = ("add", "sub", "mul", "div", "min", "max")
UNARY_OPS = ("mov", "neg", "abs", "floor")
CMPS = ("lt", "le", "gt", "ge", "eq", "ne")


def _interp_binary(op: str, a: float, b: float) -> float:
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        # Operands are numpy float64 scalars, so plain division follows
        # IEEE-754 (x / -0.0 == -inf, 0/0 == nan) — exactly the executor's
        # semantics. (A hand-written b == 0 special case here once dropped
        # the zero's sign; hypothesis found it.)
        return a / b
    if op == "min":
        return min(a, b)
    if op == "max":
        return max(a, b)
    raise AssertionError(op)


def _interp_unary(op: str, a: float) -> float:
    if op == "mov":
        return a
    if op == "neg":
        return -a
    if op == "abs":
        return abs(a)
    if op == "floor":
        # math.floor raises on nan/inf; the executor's np.floor follows
        # IEEE-754 and propagates them unchanged.
        if math.isnan(a) or math.isinf(a):
            return a
        return float(math.floor(a))
    raise AssertionError(op)


def _interp_cmp(cmp: str, a: float, b: float) -> bool:
    return {"lt": a < b, "le": a <= b, "gt": a > b, "ge": a >= b,
            "eq": a == b, "ne": a != b}[cmp]


def reference_run(lines: list[tuple], initial: np.ndarray) -> np.ndarray:
    """Scalar per-lane interpretation of the generated program."""
    regs = initial.copy()
    preds = np.zeros((NUM_PREDS, WARP), dtype=bool)
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        _interpret(lines, regs, preds)
    return regs


def _interpret(lines, regs, preds) -> None:
    for line in lines:
        kind = line[0]
        for lane in range(WARP):
            if kind == "bin":
                _, op, d, a, b, guard = line
                if guard is not None and not preds[guard][lane]:
                    continue
                regs[d][lane] = _interp_binary(op, regs[a][lane], regs[b][lane])
            elif kind == "un":
                _, op, d, a, guard = line
                if guard is not None and not preds[guard][lane]:
                    continue
                regs[d][lane] = _interp_unary(op, regs[a][lane])
            elif kind == "imm":
                _, d, value, guard = line
                if guard is not None and not preds[guard][lane]:
                    continue
                regs[d][lane] = value
            elif kind == "setp":
                _, cmp, p, a, b = line
                preds[p][lane] = _interp_cmp(cmp, regs[a][lane], regs[b][lane])
            elif kind == "selp":
                _, d, a, b, p = line
                regs[d][lane] = (regs[a][lane] if preds[p][lane]
                                 else regs[b][lane])


def to_assembly(lines: list[tuple]) -> str:
    out = [".kernel main regs=8", "main:"]
    for line in lines:
        kind = line[0]
        if kind == "bin":
            _, op, d, a, b, guard = line
            prefix = f"@p{guard} " if guard is not None else ""
            out.append(f"    {prefix}{op} r{d}, r{a}, r{b};")
        elif kind == "un":
            _, op, d, a, guard = line
            prefix = f"@p{guard} " if guard is not None else ""
            out.append(f"    {prefix}{op} r{d}, r{a};")
        elif kind == "imm":
            _, d, value, guard = line
            prefix = f"@p{guard} " if guard is not None else ""
            out.append(f"    {prefix}mov r{d}, {value!r};")
        elif kind == "setp":
            _, cmp, p, a, b = line
            out.append(f"    setp.{cmp} p{p}, r{a}, r{b};")
        elif kind == "selp":
            _, d, a, b, p = line
            out.append(f"    selp r{d}, r{a}, r{b}, p{p};")
    out.append("    exit;")
    return "\n".join(out)


def simulator_run(lines: list[tuple], initial: np.ndarray) -> np.ndarray:
    program = assemble(to_assembly(lines))
    machine = MachineState(
        program=program, global_mem=GlobalMemory(16),
        const_mem=np.zeros(4), shared_mem=BankedMemory(16),
        spawn_mem=BankedMemory(16),
        reconv_table=reconvergence_table(program))
    warp = Warp.launch(0, WARP, 8, 0, np.arange(WARP),
                       np.ones(WARP, dtype=bool))
    warp.regs[:NUM_REGS] = initial
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        while not warp.done:
            execute(warp, machine)
    return warp.regs[:NUM_REGS]


reg_index = st.integers(0, NUM_REGS - 1)
pred_index = st.integers(0, NUM_PREDS - 1)
maybe_guard = st.one_of(st.none(), pred_index)
value = st.floats(min_value=-100, max_value=100, allow_nan=False)

instruction = st.one_of(
    st.tuples(st.just("bin"), st.sampled_from(BINARY_OPS), reg_index,
              reg_index, reg_index, maybe_guard),
    st.tuples(st.just("un"), st.sampled_from(UNARY_OPS), reg_index,
              reg_index, maybe_guard),
    st.tuples(st.just("imm"), reg_index, value, maybe_guard),
    st.tuples(st.just("setp"), st.sampled_from(CMPS), pred_index,
              reg_index, reg_index),
    st.tuples(st.just("selp"), reg_index, reg_index, reg_index, pred_index),
)

programs = st.lists(instruction, min_size=1, max_size=25)
initials = st.lists(value, min_size=NUM_REGS * WARP,
                    max_size=NUM_REGS * WARP)


class TestDifferential:
    @settings(max_examples=150, deadline=None)
    @given(programs, initials)
    def test_executor_matches_reference(self, lines, initial_values):
        initial = np.array(initial_values).reshape(NUM_REGS, WARP)
        expected = reference_run([tuple(l) for l in lines], initial)
        actual = simulator_run([tuple(l) for l in lines], initial)
        # Bit-exact comparison; NaNs must match positionally too.
        assert np.array_equal(np.isnan(expected), np.isnan(actual))
        mask = ~np.isnan(expected)
        assert np.array_equal(expected[mask], actual[mask])

    def test_guarded_divide_by_zero(self):
        lines = [
            ("imm", 0, 0.0, None),
            ("imm", 1, 5.0, None),
            ("setp", "gt", 0, 1, 0),
            ("bin", "div", 2, 1, 0, 0),
        ]
        initial = np.zeros((NUM_REGS, WARP))
        expected = reference_run(lines, initial)
        actual = simulator_run(lines, initial)
        assert np.array_equal(np.isinf(expected), np.isinf(actual))
