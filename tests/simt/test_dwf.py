"""Dynamic warp formation baseline tests."""

import numpy as np
import pytest

from repro.config import scaled_config
from repro.errors import ConfigError, SchedulingError
from repro.isa import assemble
from repro.kernels.layout import build_memory_image
from repro.kernels.traditional import traditional_program
from repro.rt import trace_rays
from repro.simt import GlobalMemory
from repro.simt.dwf import DWFCore, run_dwf

LOOP_KERNEL = """
.kernel main regs=8
main:
    mov r0, SREG.tid;
    ld.global r2, [r0+0];
    mov r1, 0;
LOOP:
    add r1, r1, 1;
    setp.lt p0, r1, r2;
    @p0 bra LOOP;
    add r3, r0, 128;
    mul r4, r1, 10;
    st.global [r3+0], r4;
    exit;
"""


def run_loop(num_threads=64, **overrides):
    program = assemble(LOOP_KERNEL)
    mem = GlobalMemory(512)
    trips = np.arange(1, num_threads + 1)
    mem.load_array(0, trips.astype(float))
    mem.set_result_range(128, num_threads, stride=1)
    overrides.setdefault("max_cycles", 500_000)
    config = scaled_config(1, **overrides)
    result = run_dwf(config, program, "main", mem, np.zeros(1), num_threads)
    return result, mem, trips


class TestLoopKernel:
    def test_results_correct(self):
        result, mem, trips = run_loop()
        assert np.array_equal(mem.words[128:192], trips * 10.0)
        assert result.rays_completed == 64

    def test_all_threads_retire(self):
        result, _, _ = run_loop()
        assert result.stats.threads_exited == 64

    def test_divergence_recorded(self):
        result, _, _ = run_loop()
        assert result.divergence.totals().sum() > 0

    def test_ipc_positive(self):
        result, _, _ = run_loop()
        assert result.ipc > 0
        assert 0 < result.simt_efficiency <= 1.0

    def test_max_cycles_respected(self):
        result, _, _ = run_loop(max_cycles=100)
        assert result.cycles <= 100
        assert result.rays_completed < 64


class TestRegrouping:
    def test_dwf_beats_pdom_on_incoherent_loop(self):
        """The Fung et al. claim: regrouping by PC recovers loop
        divergence that PDOM serializes."""
        from repro.simt import GPU, LaunchSpec
        rng = np.random.default_rng(0)
        trips = rng.integers(1, 40, size=256)
        program = assemble(LOOP_KERNEL)

        def fresh_memory():
            mem = GlobalMemory(512)
            mem.load_array(0, trips.astype(float))
            mem.set_result_range(128, 256, stride=1)
            return mem

        config = scaled_config(1, max_cycles=500_000)
        mem_dwf = fresh_memory()
        dwf = run_dwf(config, program, "main", mem_dwf, np.zeros(1), 256)
        mem_pdom = fresh_memory()
        launch = LaunchSpec(program=program, entry_kernel="main",
                            num_threads=256, registers_per_thread=8,
                            block_size=32)
        gpu = GPU(config, launch, mem_pdom)
        pdom = gpu.run()
        assert np.array_equal(mem_dwf.words[128:384],
                              mem_pdom.words[128:384])
        assert dwf.cycles < pdom.cycles

    def test_majority_pc_grouping(self):
        program = assemble(LOOP_KERNEL)
        mem = GlobalMemory(512)
        mem.load_array(0, np.ones(64))
        config = scaled_config(1)
        from repro.isa.cfg import reconvergence_table
        from repro.simt.banked import BankedMemory
        from repro.simt.executor import MachineState
        from repro.simt.memory import DRAM
        machine = MachineState(program=program, global_mem=mem,
                               const_mem=np.zeros(1),
                               shared_mem=BankedMemory(64),
                               spawn_mem=BankedMemory(64),
                               reconv_table=reconvergence_table(program))
        core = DWFCore(config, machine, DRAM(config.memory), entry_pc=0,
                       num_regs=10, num_threads=64)
        core.pcs[:40] = 3
        core.pcs[40:] = 5
        group = core._select_group(0)
        assert group.size == 32
        assert np.all(core.pcs[group] == 3)  # majority PC wins


class TestErrors:
    def test_zero_threads_raises(self):
        program = assemble(LOOP_KERNEL)
        config = scaled_config(1)
        with pytest.raises(ConfigError):
            run_dwf(config, program, "main", GlobalMemory(512),
                    np.zeros(1), 0)

    def test_spawn_program_rejected(self):
        source = """
.kernel main regs=8 state=2
.kernel child regs=8 state=2
main:
    mov r1, 0;
    spawn $child, r1;
    exit;
child:
    exit;
"""
        program = assemble(source)
        config = scaled_config(1)
        with pytest.raises(SchedulingError):
            run_dwf(config, program, "main", GlobalMemory(64),
                    np.zeros(1), 8)


class TestRayTracing:
    def test_matches_reference(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        reference = trace_rays(tiny_tree, origins, directions)
        image = build_memory_image(tiny_tree, origins, directions)
        config = scaled_config(1, max_cycles=5_000_000)
        result = run_dwf(config, traditional_program(), "trace",
                         image.global_mem, image.const_mem,
                         origins.shape[0])
        assert result.rays_completed == origins.shape[0]
        t, tri = image.results()
        assert np.array_equal(tri, reference.triangle)
