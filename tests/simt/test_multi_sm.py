"""Multi-SM integration: distribution, spawn isolation, shared DRAM."""

import numpy as np
import pytest

from repro.config import scaled_config
from repro.kernels.layout import build_memory_image
from repro.kernels.microkernels import microkernel_launch_spec
from repro.kernels.traditional import traditional_launch_spec
from repro.rt import Camera, build_kdtree, make_scene, trace_rays
from repro.simt import GPU


@pytest.fixture(scope="module")
def workload():
    scene = make_scene("conference", detail=0.25)
    tree = build_kdtree(scene.triangles, max_depth=10, leaf_size=8)
    camera = Camera.for_scene(scene)
    origins, directions = camera.primary_rays(12, 12)
    reference = trace_rays(tree, origins, directions)
    return tree, origins, directions, reference


def run(workload, num_sms, spawn, **overrides):
    tree, origins, directions, reference = workload
    image = build_memory_image(tree, origins, directions)
    overrides.setdefault("max_cycles", 10_000_000)
    config = scaled_config(num_sms, spawn_enabled=spawn, **overrides)
    launch = (microkernel_launch_spec(origins.shape[0]) if spawn
              else traditional_launch_spec(origins.shape[0]))
    gpu = GPU(config, launch, image.global_mem, image.const_mem)
    stats = gpu.run()
    return gpu, stats, image


class TestMultiSMTraditional:
    def test_two_sms_correct(self, workload):
        tree, origins, directions, reference = workload
        gpu, stats, image = run(workload, 2, spawn=False)
        assert stats.rays_completed == origins.shape[0]
        t, tri = image.results()
        assert np.array_equal(tri, reference.triangle)

    def test_work_split_across_sms(self, workload):
        gpu, stats, _ = run(workload, 2, spawn=False)
        per_sm = [sm.stats.threads_launched for sm in gpu.sms]
        assert all(count > 0 for count in per_sm)
        assert sum(per_sm) == workload[1].shape[0]

    def test_more_sms_fewer_cycles(self, workload):
        _, one, _ = run(workload, 1, spawn=False)
        _, four, _ = run(workload, 4, spawn=False)
        assert four.cycles < one.cycles

    def test_divergence_merged_across_sms(self, workload):
        gpu, stats, _ = run(workload, 2, spawn=False)
        merged = stats.divergence.totals().sum()
        individual = sum(sm.divergence.totals().sum() for sm in gpu.sms)
        assert merged == individual == stats.sm_stats.issued_instructions


class TestMultiSMSpawn:
    def test_two_sms_spawn_correct(self, workload):
        tree, origins, directions, reference = workload
        gpu, stats, image = run(workload, 2, spawn=True)
        assert stats.rays_completed == origins.shape[0]
        t, tri = image.results()
        assert np.array_equal(tri, reference.triangle)
        mine = np.where(np.isinf(t), -1.0, t)
        theirs = np.where(np.isinf(reference.t), -1.0, reference.t)
        assert np.array_equal(mine, theirs)

    def test_spawn_units_isolated_per_sm(self, workload):
        gpu, stats, _ = run(workload, 2, spawn=True)
        # Both SMs spawned (rays split between them); totals consistent.
        spawned = [sm.stats.threads_spawned for sm in gpu.sms]
        assert all(count > 0 for count in spawned)
        assert sum(spawned) == stats.sm_stats.threads_spawned

    def test_spawn_count_independent_of_sm_count(self, workload):
        """The same rays spawn the same thread count however they are
        partitioned across SMs (chains never cross SMs)."""
        _, one, _ = run(workload, 1, spawn=True)
        _, three, _ = run(workload, 3, spawn=True)
        assert (one.sm_stats.threads_spawned
                == three.sm_stats.threads_spawned)

    def test_shared_dram_contention(self, workload):
        """With a shared memory partition, per-SM throughput dips as SMs
        are added (the modules serialize), while total throughput rises."""
        _, one, _ = run(workload, 1, spawn=False, max_cycles=30_000)
        _, four, _ = run(workload, 4, spawn=False, max_cycles=30_000)
        assert four.sm_stats.committed_thread_instructions >= \
            one.sm_stats.committed_thread_instructions
