"""MIMD-theoretical model tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import paper_config, scaled_config
from repro.errors import ConfigError
from repro.simt import mimd_theoretical


class TestMakespan:
    def test_balanced_load(self):
        config = scaled_config(1)  # 32 lanes
        counts = np.full(64, 100)
        result = mimd_theoretical(counts, config)
        assert result.cycles == 200  # 6400 instrs / 32 lanes

    def test_long_thread_dominates(self):
        config = scaled_config(1)
        counts = np.array([10_000] + [1] * 31)
        result = mimd_theoretical(counts, config)
        assert result.cycles == 10_000

    def test_single_thread(self):
        config = paper_config()
        result = mimd_theoretical(np.array([123]), config)
        assert result.cycles == 123
        assert result.num_threads == 1

    def test_ipc_bounded_by_lanes(self):
        config = paper_config()
        counts = np.random.default_rng(0).integers(1, 1000, size=5000)
        result = mimd_theoretical(counts, config)
        assert result.ipc <= result.lanes

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            mimd_theoretical(np.array([]), paper_config())

    def test_negative_raises(self):
        with pytest.raises(ConfigError):
            mimd_theoretical(np.array([5, -1]), paper_config())

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                    max_size=200))
    def test_bounds_hold(self, counts):
        config = scaled_config(2)
        counts = np.array(counts)
        result = mimd_theoretical(counts, config)
        lanes = config.num_sms * config.warp_size
        assert result.cycles >= int(counts.max())
        assert result.cycles >= -(-int(counts.sum()) // lanes)
        # Within one quantum of the lower bound (the bound itself is used).
        assert result.cycles == max(int(counts.max()),
                                    -(-int(counts.sum()) // lanes))


class TestRaysPerSecond:
    def test_scaling(self):
        config = scaled_config(1)
        result = mimd_theoretical(np.full(32, 100), config)
        base = result.rays_per_second(config)
        scaled = result.rays_per_second(config, scale_to_sms=30)
        assert scaled == pytest.approx(base * 30)

    def test_zero_cycles_guard(self):
        config = scaled_config(1)
        result = mimd_theoretical(np.array([0]), config)
        assert result.rays_per_second(config) == 0.0


class TestAgainstSimulator:
    def test_mimd_beats_pdom(self):
        """MIMD theoretical must upper-bound the lockstep simulation."""
        from repro.isa import assemble
        from repro.simt import GPU, GlobalMemory, LaunchSpec
        source = """
.kernel main regs=8
main:
    mov r0, SREG.tid;
    ld.global r2, [r0+0];
    mov r1, 0;
LOOP:
    add r1, r1, 1;
    setp.lt p0, r1, r2;
    @p0 bra LOOP;
    st.global [r0+64], r1;
    exit;
"""
        program = assemble(source)
        mem = GlobalMemory(256)
        trips = np.arange(1, 65)
        mem.load_array(0, trips.astype(float))
        mem.set_result_range(64, 64, stride=1)
        config = scaled_config(1, memory_ideal=True, max_cycles=500_000)
        launch = LaunchSpec(program=program, entry_kernel="main",
                            num_threads=64, registers_per_thread=8,
                            block_size=64)
        gpu = GPU(config, launch, mem)
        stats = gpu.run()
        counts = np.array([stats.thread_commits[t] for t in range(64)])
        mimd = mimd_theoretical(counts, config)
        assert mimd.cycles < stats.cycles
