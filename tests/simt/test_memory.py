"""GlobalMemory and DRAM timing model tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import BYTES_PER_WORD, MemoryConfig
from repro.errors import MemoryError_
from repro.simt.memory import DRAM, GlobalMemory


class TestGlobalMemory:
    def test_zero_size_raises(self):
        with pytest.raises(MemoryError_):
            GlobalMemory(0)

    def test_read_write(self):
        mem = GlobalMemory(16)
        mem.write(np.array([1, 3]), np.array([5.0, 7.0]))
        assert mem.read(np.array([3, 1])).tolist() == [7.0, 5.0]

    def test_out_of_range_read(self):
        mem = GlobalMemory(16)
        with pytest.raises(MemoryError_):
            mem.read(np.array([16]))
        with pytest.raises(MemoryError_):
            mem.read(np.array([-1]))

    def test_load_array(self):
        mem = GlobalMemory(16)
        mem.load_array(4, np.arange(6.0).reshape(2, 3))
        assert mem.words[4:10].tolist() == [0, 1, 2, 3, 4, 5]

    def test_load_array_out_of_range(self):
        mem = GlobalMemory(4)
        with pytest.raises(MemoryError_):
            mem.load_array(2, np.zeros(8))

    def test_result_completion_counting(self):
        mem = GlobalMemory(32)
        mem.set_result_range(8, 8, stride=2)
        # Writing ray 0's first word completes it; the second word doesn't.
        assert mem.write(np.array([8]), np.array([1.0])) == 1
        assert mem.write(np.array([9]), np.array([2.0])) == 0
        # Re-writing doesn't double count.
        assert mem.write(np.array([8]), np.array([3.0])) == 0
        assert mem.write(np.array([10, 12]), np.array([0.0, 0.0])) == 2
        assert mem.rays_completed == 3

    def test_writes_outside_result_range_not_counted(self):
        mem = GlobalMemory(32)
        mem.set_result_range(8, 4)
        assert mem.write(np.array([0, 20]), np.array([1.0, 1.0])) == 0

    def test_result_range_validation(self):
        mem = GlobalMemory(8)
        with pytest.raises(MemoryError_):
            mem.set_result_range(4, 8)


class TestDRAMCoalescing:
    def make(self, **kwargs):
        defaults = dict(num_modules=4, bandwidth_bytes_per_cycle=8,
                        latency_cycles=100, segment_bytes=32)
        defaults.update(kwargs)
        return DRAM(MemoryConfig(**defaults))

    def test_same_segment_coalesces_to_one(self):
        dram = self.make()
        words_per_segment = 32 // BYTES_PER_WORD
        addresses = np.arange(words_per_segment)
        assert dram.coalesce(addresses).size == 1

    def test_distinct_segments(self):
        dram = self.make()
        addresses = np.array([0, 8, 16, 24])  # 4 different 8-word segments
        assert dram.coalesce(addresses).size == 4

    def test_duplicate_addresses_broadcast(self):
        dram = self.make()
        addresses = np.zeros(32, dtype=np.int64)
        assert dram.coalesce(addresses).size == 1

    def test_access_returns_completion_after_latency(self):
        dram = self.make()
        done = dram.access(0, np.array([0]), is_store=False)
        assert done == 100 + 32 // 8

    def test_module_queueing_serializes(self):
        dram = self.make(num_modules=1)
        first = dram.access(0, np.array([0]), is_store=False)
        second = dram.access(0, np.array([100]), is_store=False)
        assert second == first + 32 // 8

    def test_parallel_modules_overlap(self):
        dram = self.make(num_modules=4)
        # Four segments map to four different modules: same completion.
        done = dram.access(0, np.array([0, 8, 16, 24]), is_store=False)
        assert done == 100 + 4

    def test_bandwidth_accounting(self):
        dram = self.make()
        dram.access(0, np.array([0]), is_store=False)
        dram.access(0, np.array([0]), is_store=True)
        assert dram.read_bytes == 32
        assert dram.write_bytes == 32
        assert dram.transactions == 2

    def test_ideal_memory_is_flat(self):
        dram = self.make(ideal=True)
        done = dram.access(50, np.arange(0, 512, 8), is_store=False)
        assert done == 51
        assert dram.read_bytes > 0  # traffic still counted

    def test_empty_access(self):
        dram = self.make()
        assert dram.access(7, np.array([], dtype=np.int64), False) == 7

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=4096), min_size=1,
                    max_size=64))
    def test_completion_never_before_latency(self, addresses):
        dram = self.make()
        done = dram.access(10, np.array(addresses), is_store=False)
        assert done >= 10 + 100 + 4

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=4096), min_size=1,
                    max_size=64))
    def test_coalesce_counts_unique_segments(self, addresses):
        dram = self.make()
        segments = {a // 8 for a in addresses}
        assert dram.coalesce(np.array(addresses)).size == len(segments)
