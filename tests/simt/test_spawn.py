"""Spawn unit tests: LUT grouping, warp formation, flush, slot lifecycle."""

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.isa.program import KernelInfo
from repro.simt.banked import BankedMemory
from repro.simt.spawn import SpawnUnit

WARP = 8


def make_unit(num_slots=32, state_words=4, kernels=None, regions=16):
    kernels = kernels or [
        KernelInfo("ka", entry_pc=10, registers=8, state_words=state_words),
        KernelInfo("kb", entry_pc=50, registers=8, state_words=state_words),
    ]
    data_words = num_slots * state_words
    formation_words = regions * WARP
    mem = BankedMemory(data_words + formation_words, model_conflicts=False)
    unit = SpawnUnit(mem, warp_size=WARP, data_base=0,
                     num_data_slots=num_slots, state_words=state_words,
                     formation_base=data_words,
                     formation_words=formation_words, kernels=kernels)
    return unit


class TestDataSlots:
    def test_allocate_returns_addresses(self):
        unit = make_unit()
        addresses = unit.allocate_data_slots(3)
        assert addresses.tolist() == [0, 4, 8]
        assert unit.free_slot_count == 29

    def test_allocate_exhausted_returns_none(self):
        unit = make_unit(num_slots=2)
        assert unit.allocate_data_slots(3) is None
        assert unit.free_slot_count == 2  # unchanged

    def test_free_returns_slots(self):
        unit = make_unit()
        addresses = unit.allocate_data_slots(2)
        unit.free_data_addresses(addresses)
        assert unit.free_slot_count == 32

    def test_double_free_raises(self):
        unit = make_unit()
        addresses = unit.allocate_data_slots(1)
        unit.free_data_addresses(addresses)
        with pytest.raises(SchedulingError):
            unit.free_data_addresses(addresses)

    def test_free_bad_address_raises(self):
        unit = make_unit(num_slots=4)
        with pytest.raises(SchedulingError):
            unit.free_data_addresses(np.array([9999]))


class TestWarpFormation:
    def test_partial_warp_accumulates(self):
        unit = make_unit()
        unit.spawn("ka", np.array([100, 104, 108]))
        assert unit.partial_thread_count == 3
        assert not unit.has_full_warps

    def test_full_warp_pushes_fifo(self):
        unit = make_unit()
        unit.spawn("ka", np.arange(WARP) * 4)
        assert unit.has_full_warps
        formed = unit.pop_full_warp()
        assert formed.kernel_name == "ka"
        assert formed.entry_pc == 10
        assert formed.num_threads == WARP
        assert formed.data_pointers.tolist() == (np.arange(WARP) * 4).tolist()
        assert not formed.is_partial

    def test_metadata_written_to_spawn_memory(self):
        unit = make_unit()
        unit.spawn("ka", np.array([44, 48]))
        entry = unit.lut["ka"]
        stored = unit.spawn_mem.words[entry.addresses]
        assert stored.tolist() == [44, 48]

    def test_overflow_splits_into_two_warps(self):
        unit = make_unit()
        unit.spawn("ka", np.arange(WARP + 3))
        assert unit.has_full_warps
        assert unit.partial_thread_count == 3
        formed = unit.pop_full_warp()
        assert formed.num_threads == WARP

    def test_kernels_group_separately(self):
        unit = make_unit()
        unit.spawn("ka", np.array([1, 2]))
        unit.spawn("kb", np.array([3]))
        assert unit.lut["ka"].count == 2
        assert unit.lut["kb"].count == 1

    def test_unknown_kernel_raises(self):
        unit = make_unit()
        with pytest.raises(SchedulingError):
            unit.spawn("ghost", np.array([1]))

    def test_pop_empty_fifo_raises(self):
        unit = make_unit()
        with pytest.raises(SchedulingError):
            unit.pop_full_warp()

    def test_formation_addresses_sequential(self):
        unit = make_unit()
        unit.spawn("ka", np.arange(WARP))
        formed = unit.pop_full_warp()
        deltas = np.diff(formed.formation_addresses)
        assert np.all(deltas == 1)

    def test_counters(self):
        unit = make_unit()
        unit.spawn("ka", np.arange(WARP * 2))
        assert unit.threads_spawned == WARP * 2
        assert unit.full_warps_formed == 2


class TestFlush:
    def test_flush_lowest_pc_first(self):
        unit = make_unit()
        unit.spawn("kb", np.array([7]))
        unit.spawn("ka", np.array([3, 4]))
        flushed = unit.flush_partial_warp()
        assert flushed.kernel_name == "ka"  # entry_pc 10 < 50
        assert flushed.is_partial
        assert flushed.num_threads == 2
        second = unit.flush_partial_warp()
        assert second.kernel_name == "kb"

    def test_flush_empty_returns_none(self):
        unit = make_unit()
        assert unit.flush_partial_warp() is None

    def test_flush_resets_entry(self):
        unit = make_unit()
        unit.spawn("ka", np.array([1]))
        unit.flush_partial_warp()
        assert unit.partial_thread_count == 0
        assert unit.idle

    def test_idle_accounts_fifo(self):
        unit = make_unit()
        assert unit.idle
        unit.spawn("ka", np.arange(WARP))
        assert not unit.idle
        unit.pop_full_warp()
        assert unit.idle


class TestFormationRegions:
    def test_regions_released_and_reused(self):
        unit = make_unit(regions=8)
        regions = []
        for _ in range(4):
            unit.spawn("ka", np.arange(WARP))
            formed = unit.pop_full_warp()
            regions.append(formed.region)
            unit.release_region(formed.region)
        assert len(regions) == 4

    def test_exhaustion_raises(self):
        unit = make_unit(regions=4)  # 4 regions; LUT holds 4 at init
        with pytest.raises(SchedulingError):
            for _ in range(4):
                unit.spawn("ka", np.arange(WARP))  # never released

    def test_double_release_raises(self):
        unit = make_unit()
        unit.spawn("ka", np.arange(WARP))
        formed = unit.pop_full_warp()
        unit.release_region(formed.region)
        with pytest.raises(SchedulingError):
            unit.release_region(formed.region)

    def test_release_negative_is_noop(self):
        unit = make_unit()
        unit.release_region(-1)  # launch warps have no region

    def test_distinct_live_regions(self):
        unit = make_unit(regions=12)
        live = []
        for _ in range(3):
            unit.spawn("ka", np.arange(WARP))
            live.append(unit.pop_full_warp().region)
        assert len(set(live)) == 3


class TestConstructionValidation:
    def test_zero_slots_raises(self):
        with pytest.raises(SchedulingError):
            make_unit(num_slots=0)

    def test_tiny_formation_raises(self):
        with pytest.raises(SchedulingError):
            SpawnUnit(BankedMemory(16), warp_size=WARP, data_base=0,
                      num_data_slots=2, state_words=2, formation_base=8,
                      formation_words=4, kernels=[
                          KernelInfo("k", entry_pc=0, registers=4,
                                     state_words=2)])
