"""Reconvergence (SIMT) stack unit tests, including the Figure 2 scenario."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.isa.cfg import RECONV_AT_EXIT
from repro.simt import ReconvergenceStack


def mask(*lanes, size=8):
    out = np.zeros(size, dtype=bool)
    for lane in lanes:
        out[lane] = True
    return out


class TestBasics:
    def test_initial(self):
        stack = ReconvergenceStack.initial(5, mask(0, 1, 2))
        assert stack.top.pc == 5
        assert stack.depth == 1
        assert stack.active_mask().tolist() == mask(0, 1, 2).tolist()

    def test_advance(self):
        stack = ReconvergenceStack.initial(0, mask(0))
        stack.advance(1)
        assert stack.top.pc == 1

    def test_empty_stack_top_raises(self):
        stack = ReconvergenceStack(entries=[])
        with pytest.raises(ExecutionError):
            _ = stack.top

    def test_empty_property(self):
        stack = ReconvergenceStack.initial(0, mask())
        assert stack.empty


class TestDivergence:
    def test_diverge_pushes_taken_on_top(self):
        stack = ReconvergenceStack.initial(10, mask(0, 1, 2, 3))
        stack.diverge(mask(0, 1), mask(2, 3), target_pc=20,
                      fallthrough_pc=11, reconv_pc=30)
        assert stack.depth == 3
        assert stack.top.pc == 20
        assert stack.top.mask.tolist() == mask(0, 1).tolist()

    def test_reconvergence_restores_union(self):
        stack = ReconvergenceStack.initial(10, mask(0, 1, 2, 3))
        stack.diverge(mask(0, 1), mask(2, 3), 20, 11, 30)
        stack.advance(30)   # taken path reaches reconvergence
        assert stack.top.pc == 11
        assert stack.top.mask.tolist() == mask(2, 3).tolist()
        stack.advance(30)   # fallthrough path reaches reconvergence
        assert stack.top.pc == 30
        assert stack.top.mask.tolist() == mask(0, 1, 2, 3).tolist()
        assert stack.depth == 1

    def test_taken_path_at_reconv_point_merges_immediately(self):
        # Branch whose target IS the reconvergence point: the taken lanes
        # must wait, not execute the join early with a partial mask.
        stack = ReconvergenceStack.initial(10, mask(0, 1, 2, 3))
        stack.diverge(mask(0, 1), mask(2, 3), target_pc=30,
                      fallthrough_pc=11, reconv_pc=30)
        assert stack.top.pc == 11
        assert stack.top.mask.tolist() == mask(2, 3).tolist()

    def test_nested_divergence(self):
        stack = ReconvergenceStack.initial(0, mask(0, 1, 2, 3))
        stack.diverge(mask(0, 1), mask(2, 3), 10, 1, 50)
        stack.diverge(mask(0), mask(1), 20, 11, 40)
        assert stack.depth == 5
        assert stack.top.mask.tolist() == mask(0).tolist()
        stack.advance(40)
        assert stack.top.mask.tolist() == mask(1).tolist()
        stack.advance(40)
        assert stack.top.mask.tolist() == mask(0, 1).tolist()
        stack.advance(50)
        assert stack.top.mask.tolist() == mask(2, 3).tolist()

    def test_reconv_at_exit_replaces_union(self):
        stack = ReconvergenceStack.initial(0, mask(0, 1))
        stack.diverge(mask(0), mask(1), 10, 1, RECONV_AT_EXIT)
        assert stack.depth == 2  # no union entry kept

    def test_one_sided_masks(self):
        stack = ReconvergenceStack.initial(0, mask(0, 1))
        stack.diverge(mask(0, 1), mask(), 10, 1, 30)
        assert stack.top.pc == 10
        assert stack.top.mask.tolist() == mask(0, 1).tolist()


class TestRetire:
    def test_retire_from_all_entries(self):
        stack = ReconvergenceStack.initial(0, mask(0, 1, 2, 3))
        stack.diverge(mask(0, 1), mask(2, 3), 10, 1, 30)
        stack.retire_lanes(mask(0, 2))
        masks = [entry.mask.tolist() for entry in stack.entries]
        assert masks[-1] == mask(1).tolist()
        assert all(not entry.mask[0] and not entry.mask[2]
                   for entry in stack.entries)

    def test_retire_drops_empty_entries(self):
        stack = ReconvergenceStack.initial(0, mask(0, 1, 2, 3))
        stack.diverge(mask(0), mask(1, 2, 3), 10, 1, 30)
        stack.retire_lanes(mask(0))
        assert all(entry.mask.any() for entry in stack.entries)

    def test_retire_everything_empties(self):
        stack = ReconvergenceStack.initial(0, mask(0, 1))
        stack.retire_lanes(mask(0, 1))
        assert stack.empty


class TestFigure2Scenario:
    """Paper Figure 2: a data-dependent loop halves SP utilization.

    Program: A; loop B (half the lanes run it twice); C. PDOM executes B's
    second iteration with half the lanes idle, then reconverges at C.
    """

    def test_loop_divergence_efficiency(self):
        lanes = 8
        full = np.ones(lanes, dtype=bool)
        stack = ReconvergenceStack.initial(0, full)   # A at pc 0
        occupancy = []

        def step(pc_next):
            occupancy.append(int(stack.active_mask().sum()))
            stack.advance(pc_next)

        step(1)   # A executes, all 8 lanes
        # B at pc 1, branch at pc 2: half the lanes loop back to 1.
        occupancy.append(int(stack.active_mask().sum()))  # B, 8 lanes
        loopers = mask(0, 1, 2, 3)
        others = full & ~loopers
        stack.diverge(loopers, others, target_pc=1, fallthrough_pc=3,
                      reconv_pc=3)
        occupancy.append(int(stack.active_mask().sum()))  # B again, 4 lanes
        stack.advance(3)  # loopers reach reconvergence at C
        occupancy.append(int(stack.active_mask().sum()))  # C, 8 lanes again
        assert occupancy == [8, 8, 4, 8]
        assert stack.depth == 1
