"""On-chip banked memory (shared/spawn) conflict model tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryError_
from repro.simt.banked import BankedMemory


class TestFunctional:
    def test_roundtrip(self):
        mem = BankedMemory(64)
        mem.write(np.array([0, 5]), np.array([1.5, 2.5]))
        values, _ = mem.read(np.array([5, 0]))
        assert values.tolist() == [2.5, 1.5]

    def test_bounds(self):
        mem = BankedMemory(8)
        with pytest.raises(MemoryError_):
            mem.read(np.array([8]))
        with pytest.raises(MemoryError_):
            mem.write(np.array([-1]), np.array([0.0]))

    def test_bad_construction(self):
        with pytest.raises(MemoryError_):
            BankedMemory(0)
        with pytest.raises(MemoryError_):
            BankedMemory(8, num_banks=0)

    def test_traffic_counters(self):
        mem = BankedMemory(64)
        mem.read(np.arange(4))
        mem.write(np.arange(8), np.zeros(8))
        assert mem.read_words == 4
        assert mem.write_words == 8


class TestConflicts:
    def test_sequential_addresses_conflict_free(self):
        mem = BankedMemory(256, num_banks=16)
        assert mem.conflict_penalty(np.arange(16)) == 0

    def test_broadcast_is_free(self):
        mem = BankedMemory(256, num_banks=16)
        assert mem.conflict_penalty(np.zeros(32, dtype=np.int64)) == 0

    def test_same_bank_stride_serializes(self):
        mem = BankedMemory(1024, num_banks=16)
        addresses = np.arange(8) * 16  # all hit bank 0
        assert mem.conflict_penalty(addresses) == 7

    def test_stride_twelve_on_sixteen_banks(self):
        # The µ-kernel state stride: 12 words on 16 banks -> 4-way reuse.
        mem = BankedMemory(4096, num_banks=16)
        addresses = np.arange(32) * 12
        penalty = mem.conflict_penalty(addresses)
        assert penalty > 0

    def test_disabled_model_never_conflicts(self):
        mem = BankedMemory(1024, num_banks=16, model_conflicts=False)
        addresses = np.arange(8) * 16
        assert mem.conflict_penalty(addresses) == 0

    def test_conflict_cycles_accumulate(self):
        mem = BankedMemory(1024, num_banks=16)
        mem.read(np.arange(8) * 16)
        mem.write(np.arange(4) * 16, np.zeros(4))
        assert mem.conflict_cycles == 7 + 3

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1023), min_size=1,
                    max_size=64))
    def test_penalty_matches_bincount(self, addresses):
        mem = BankedMemory(1024, num_banks=16)
        distinct = np.unique(np.array(addresses))
        worst = int(np.bincount(distinct % 16, minlength=16).max())
        assert mem.conflict_penalty(np.array(addresses)) == worst - 1

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1023), min_size=1,
                    max_size=64))
    def test_penalty_bounded_by_distinct_count(self, addresses):
        mem = BankedMemory(1024, num_banks=16)
        penalty = mem.conflict_penalty(np.array(addresses))
        assert 0 <= penalty < len(set(addresses)) or penalty == 0
