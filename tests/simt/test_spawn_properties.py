"""Stateful property tests: spawn-unit invariants under random operations.

The spawn unit must conserve threads (every pointer handed to ``spawn``
comes back exactly once through a formed or flushed warp), never reuse a
live formation region, and keep slot accounting consistent.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.isa.program import KernelInfo
from repro.simt.banked import BankedMemory
from repro.simt.spawn import SpawnUnit

WARP = 8


def make_unit(regions=64, slots=128):
    kernels = [
        KernelInfo("ka", entry_pc=10, registers=8, state_words=4),
        KernelInfo("kb", entry_pc=50, registers=8, state_words=4),
        KernelInfo("kc", entry_pc=90, registers=8, state_words=4),
    ]
    data_words = slots * 4
    formation_words = regions * WARP
    mem = BankedMemory(data_words + formation_words, model_conflicts=False)
    return SpawnUnit(mem, warp_size=WARP, data_base=0, num_data_slots=slots,
                     state_words=4, formation_base=data_words,
                     formation_words=formation_words, kernels=kernels)


operation = st.one_of(
    st.tuples(st.just("spawn"), st.sampled_from(["ka", "kb", "kc"]),
              st.integers(1, WARP)),
    st.tuples(st.just("pop")),
    st.tuples(st.just("flush")),
)


class TestThreadConservation:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(operation, min_size=1, max_size=60))
    def test_every_pointer_comes_back_exactly_once(self, operations):
        unit = make_unit()
        next_pointer = 1000
        sent: list[int] = []
        received: list[int] = []
        live_regions: set[int] = set()
        for op in operations:
            if op[0] == "spawn":
                _, kernel, count = op
                pointers = np.arange(next_pointer, next_pointer + count)
                next_pointer += count
                sent.extend(pointers.tolist())
                unit.spawn(kernel, pointers)
            elif op[0] == "pop" and unit.has_full_warps:
                formed = unit.pop_full_warp()
                received.extend(formed.data_pointers.tolist())
                assert formed.region not in live_regions
                live_regions.add(formed.region)
                assert formed.num_threads == WARP
            elif op[0] == "flush":
                formed = unit.flush_partial_warp()
                if formed is not None:
                    received.extend(formed.data_pointers.tolist())
                    assert formed.region not in live_regions
                    live_regions.add(formed.region)
                    assert 1 <= formed.num_threads <= WARP
        # Drain: everything still queued must come back exactly once.
        while unit.has_full_warps:
            received.extend(unit.pop_full_warp().data_pointers.tolist())
        while True:
            formed = unit.flush_partial_warp()
            if formed is None:
                break
            received.extend(formed.data_pointers.tolist())
        assert sorted(received) == sorted(sent)
        assert unit.idle

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(1, 3 * WARP), min_size=1, max_size=20))
    def test_full_warp_count_formula(self, batch_sizes):
        unit = make_unit(regions=256)
        total = 0
        for size in batch_sizes:
            unit.spawn("ka", np.arange(size))
            total += size
        assert unit.full_warps_formed == total // WARP
        assert unit.partial_thread_count == total % WARP

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(1, 16), min_size=1, max_size=20))
    def test_slot_accounting_balances(self, counts):
        unit = make_unit(slots=512)
        allocated = []
        for count in counts:
            addresses = unit.allocate_data_slots(count)
            assert addresses is not None
            allocated.append(addresses)
        used = sum(len(a) for a in allocated)
        assert unit.free_slot_count == 512 - used
        for addresses in allocated:
            unit.free_data_addresses(addresses)
        assert unit.free_slot_count == 512

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["ka", "kb", "kc"]),
                              st.integers(1, 3 * WARP)),
                    min_size=1, max_size=40))
    def test_partial_pool_never_reaches_warp_size(self, batches):
        """A LUT entry accumulates partial threads strictly below
        warp_size: the moment a group fills, it moves to the full-warp
        FIFO, so no per-kernel pool ever holds a formable warp."""
        unit = make_unit(regions=512, slots=4096)
        for kernel, count in batches:
            unit.spawn(kernel, np.arange(count))
            for entry in unit.lut.values():
                assert 0 <= entry.count < WARP
            assert unit.partial_thread_count < WARP * len(unit.lut)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["ka", "kb", "kc"]),
                              st.integers(1, WARP - 1)),
                    min_size=1, max_size=12))
    def test_flush_order_lowest_pc_first(self, batches):
        """§IV-D: when partial warps are forced out, the pool with the
        lowest µ-kernel entry PC flushes first."""
        unit = make_unit(regions=512, slots=4096)
        pointer = 0
        for kernel, count in batches:
            unit.spawn(kernel, np.arange(pointer, pointer + count))
            pointer += count
        while unit.has_full_warps:  # only partials remain
            unit.pop_full_warp()
        flushed_pcs = []
        while True:
            formed = unit.flush_partial_warp()
            if formed is None:
                break
            assert formed.is_partial
            assert 1 <= formed.num_threads < WARP
            flushed_pcs.append(formed.entry_pc)
        assert flushed_pcs == sorted(flushed_pcs)
        assert unit.partial_thread_count == 0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 200))
    def test_metadata_round_trip(self, count):
        """Pointers written to formation memory read back correctly."""
        unit = make_unit(regions=128)
        pointers = np.arange(count) * 4
        unit.spawn("kb", pointers)
        collected = []
        while unit.has_full_warps:
            formed = unit.pop_full_warp()
            stored = unit.spawn_mem.words[formed.formation_addresses]
            assert np.array_equal(stored, formed.data_pointers)
            collected.extend(formed.data_pointers.tolist())
        flushed = unit.flush_partial_warp()
        if flushed is not None:
            collected.extend(flushed.data_pointers.tolist())
        assert collected == pointers.tolist()
