"""Uniform-spawn-to-branch optimization (paper §IX future work) tests."""

import numpy as np
import pytest

from repro.config import scaled_config
from repro.kernels.layout import build_memory_image
from repro.kernels.microkernels import microkernel_launch_spec
from repro.rt import trace_rays
from repro.simt import GPU


def run_spawn_mode(tree, origins, directions, *, uniform_spawn: bool):
    image = build_memory_image(tree, origins, directions)
    config = scaled_config(1, spawn_enabled=True, max_cycles=15_000_000,
                           spawn_spawn_when_uniform=uniform_spawn)
    launch = microkernel_launch_spec(origins.shape[0])
    gpu = GPU(config, launch, image.global_mem, image.const_mem)
    stats = gpu.run()
    return stats, image


class TestOptimization:
    def test_results_identical_to_naive(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        reference = trace_rays(tiny_tree, origins, directions)
        stats, image = run_spawn_mode(tiny_tree, origins, directions,
                                      uniform_spawn=False)
        assert stats.rays_completed == origins.shape[0]
        t, tri = image.results()
        assert np.array_equal(tri, reference.triangle)
        mine = np.where(np.isinf(t), -1.0, t)
        theirs = np.where(np.isinf(reference.t), -1.0, reference.t)
        assert np.array_equal(mine, theirs)

    def test_reduces_spawn_count(self, tiny_tree):
        # Uniform trip counts keep warps full and uniform, so the
        # optimization should convert many spawns into branches.
        from repro.rt import Camera, make_scene
        scene = make_scene("conference", detail=0.3)
        from repro.rt import build_kdtree
        tree = build_kdtree(scene.triangles, max_depth=11, leaf_size=8)
        camera = Camera.for_scene(scene)
        origins, directions = camera.primary_rays(16, 16)
        naive, _ = run_spawn_mode(tree, origins, directions,
                                  uniform_spawn=True)
        opt, _ = run_spawn_mode(tree, origins, directions,
                                uniform_spawn=False)
        assert naive.sm_stats.uniform_spawn_branches == 0
        assert opt.sm_stats.uniform_spawn_branches > 0
        assert (opt.sm_stats.threads_spawned
                < naive.sm_stats.threads_spawned)
        assert opt.rays_completed == naive.rays_completed

    def test_naive_mode_never_converts(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        stats, _ = run_spawn_mode(tiny_tree, origins, directions,
                                  uniform_spawn=True)
        assert stats.sm_stats.uniform_spawn_branches == 0

    def test_onchip_traffic_reduced(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        naive, _ = run_spawn_mode(tiny_tree, origins, directions,
                                  uniform_spawn=True)
        opt, _ = run_spawn_mode(tiny_tree, origins, directions,
                                uniform_spawn=False)
        if opt.sm_stats.uniform_spawn_branches > 0:
            naive_words = (naive.sm_stats.onchip_read_words
                           + naive.sm_stats.onchip_write_words)
            opt_words = (opt.sm_stats.onchip_read_words
                         + opt.sm_stats.onchip_write_words)
            assert opt_words <= naive_words
