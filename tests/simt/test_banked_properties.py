"""Property tests for banked-memory conflict accounting.

The conflict model must satisfy, for every access pattern: a broadcast
(single distinct address) is free; N distinct addresses on one bank cost
N-1 replays; inactive lanes (addresses absent from the masked gather)
never contribute; and duplicates/permutations of an access pattern never
change its cost. The accounting is then cross-checked end to end against
the probe layer: the cycles the ``bank_conflict``/``spawn_conflict``
stall causes attribute must track ``SMStats.bank_conflict_cycles``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SchedulingModel, scaled_config
from repro.fuzz import make_case
from repro.obs.probe import TraceSession
from repro.simt.banked import BankedMemory
from repro.simt.gpu import GPU, LaunchSpec
from repro.simt.memory import GlobalMemory


class TestConflictProperties:
    @given(st.integers(2, 32), st.integers(1, 16))
    def test_all_lanes_same_bank(self, lanes, num_banks):
        mem = BankedMemory(4096, num_banks=num_banks)
        addresses = np.arange(lanes) * num_banks  # all map to bank 0
        assert mem.conflict_penalty(addresses) == lanes - 1

    @given(st.integers(1, 64), st.integers(0, 255), st.integers(1, 16))
    def test_broadcast_same_address_is_free(self, lanes, address, num_banks):
        mem = BankedMemory(256, num_banks=num_banks)
        addresses = np.full(lanes, address, dtype=np.int64)
        assert mem.conflict_penalty(addresses) == 0

    @given(st.lists(st.integers(0, 1023), min_size=1, max_size=32),
           st.integers(1, 16))
    def test_inactive_lanes_do_not_contribute(self, active, num_banks):
        # Masking off lanes can never *increase* the penalty: the cost of
        # the active subset is at most the cost of any superset.
        mem = BankedMemory(1024, num_banks=num_banks)
        addresses = np.asarray(active, dtype=np.int64)
        superset = np.concatenate([addresses,
                                   np.arange(16, dtype=np.int64) * 64])
        assert (mem.conflict_penalty(addresses)
                <= mem.conflict_penalty(superset))
        # And an all-masked access (no active lanes) is free.
        assert mem.conflict_penalty(np.zeros(0, dtype=np.int64)) == 0

    @given(st.lists(st.integers(0, 1023), min_size=1, max_size=32),
           st.integers(1, 16), st.randoms())
    def test_duplicates_and_order_are_irrelevant(self, active, num_banks,
                                                 pyrandom):
        mem = BankedMemory(1024, num_banks=num_banks)
        addresses = np.asarray(active, dtype=np.int64)
        base = mem.conflict_penalty(addresses)
        shuffled = list(active) + [active[0]]
        pyrandom.shuffle(shuffled)
        assert mem.conflict_penalty(
            np.asarray(shuffled, dtype=np.int64)) == base

    @given(st.lists(st.integers(0, 1023), min_size=1, max_size=32),
           st.integers(1, 16))
    def test_penalty_matches_worst_bank_occupancy(self, active, num_banks):
        mem = BankedMemory(1024, num_banks=num_banks)
        addresses = np.asarray(active, dtype=np.int64)
        per_bank = np.bincount(np.unique(addresses) % num_banks,
                               minlength=num_banks)
        assert mem.conflict_penalty(addresses) == int(per_bank.max()) - 1

    @settings(max_examples=25)
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=16))
    def test_read_write_accumulate_penalty(self, active):
        mem = BankedMemory(256, num_banks=4)
        addresses = np.asarray(active, dtype=np.int64)
        expected = mem.conflict_penalty(addresses)
        _, read_penalty = mem.read(addresses)
        write_penalty = mem.write(addresses, np.zeros(addresses.size))
        assert read_penalty == write_penalty == expected
        assert mem.conflict_cycles == 2 * expected


def _run_spawn_with_conflicts(seed: int, num_banks: int):
    case = make_case(seed, "spawn")
    config = scaled_config(1, warp_size=32, sps_per_sm=4,
                           scheduling=SchedulingModel.WARP,
                           spawn_enabled=True,
                           spawn_bank_conflicts=True,
                           spawn_num_banks=num_banks)
    global_mem = GlobalMemory(case.global_words)
    global_mem.load_array(case.input_base,
                          np.asarray(case.inputs, dtype=np.float64))
    launch = LaunchSpec(program=case.program, entry_kernel=case.entry,
                        num_threads=case.num_threads,
                        registers_per_thread=case.registers,
                        block_size=case.block_size,
                        state_words=case.state_words)
    session = TraceSession()
    gpu = GPU(config, launch, global_mem,
              np.asarray(case.const, dtype=np.float64), trace=session)
    stats = gpu.run()
    return stats.sm_stats, session.stall_attribution()


class TestObsCrossCheck:
    def test_attribution_tracks_conflict_stats(self):
        saw_conflicts = False
        for seed in range(6):
            stats, attribution = _run_spawn_with_conflicts(seed,
                                                           num_banks=2)
            attributed = (int(attribution["bank_conflict"])
                          + int(attribution["spawn_conflict"]))
            if stats.bank_conflict_cycles:
                saw_conflicts = True
                # Overlapping stall windows merge, so the attributed
                # stall cycles never exceed the summed raw penalties —
                # but conflicts must show up in the attribution at all.
                assert attributed > 0
            assert attributed <= stats.bank_conflict_cycles
        assert saw_conflicts, "no seed produced a bank conflict"

    def test_no_conflicts_means_no_attribution(self):
        stats, attribution = _run_spawn_with_conflicts(0, num_banks=1024)
        if not stats.bank_conflict_cycles:
            assert int(attribution["bank_conflict"]) == 0
            assert int(attribution["spawn_conflict"]) == 0
