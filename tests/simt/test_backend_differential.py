"""Differential tests: batched SoA executor vs the reference interpreter.

``GPUConfig.executor`` selects how µ-kernel instructions execute:
``"reference"`` interprets one warp instruction at a time;
``"batched"`` compiles straight-line runs of basic blocks
(:func:`repro.isa.blocks.compile_blocks`) into structure-of-arrays
kernels whose register writes land lazily. The contract
(docs/architecture.md, "Executor backends") is that the two backends are
**bit-identical** in every reported statistic — cycles, counters,
divergence histograms, per-thread commits — on both the exact clock and
the event-driven fast clock, and that attached cycle-attribution probes
observe identical intervals and events.

These tests enforce that contract for the execution models across three
scene/ray/seed configurations:

- traditional PDOM (block and warp scheduling),
- dynamic µ-kernel spawn (conflict-free and banked spawn memory),
- persistent threads (Aila & Laine software baseline),
- dynamic warp formation (``executor`` is accepted and must be a no-op:
  DWF re-forms a transient warp per issue, so there is no run to batch),
- MIMD theoretical (analytic; the executor toggle must be a no-op).

The reference backend's exact==fast identity is already enforced by
test_fastforward_differential.py, so each case runs the reference once
(fast clock) and the batched backend on both clocks against it.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.harness.presets import get_preset
from repro.harness.runner import (
    config_for_mode,
    run_mode,
    prepare_workload,
)
from repro.harness.sweep import run_stats_digest
from repro.kernels.layout import build_memory_image
from repro.kernels.persistent import (
    persistent_launch_spec,
    persistent_thread_count,
)
from repro.kernels.traditional import (
    dynamic_instruction_model,
    traditional_program,
)
from repro.obs.probe import TraceSession
from repro.simt import GPU, mimd_theoretical
from repro.simt.dwf import run_dwf

#: Cycle cap per run: long enough to cross DRAM latencies, spawn-warp
#: formation, admission stalls, and many block-run batches; short enough
#: to keep the whole suite in tier-1 time.
MAX_CYCLES = 120_000

#: Three scene/ray/seed configurations.
CONFIGS = (
    ("conference", "primary", 0),
    ("fairyforest", "shadow", 1),
    ("atrium", "gi", 2),
)

GPU_MODES = ("pdom_block", "pdom_warp", "spawn", "spawn_conflicts")

BACKENDS = ("reference", "batched")


@pytest.fixture(scope="module", params=CONFIGS,
                ids=["-".join(map(str, c)) for c in CONFIGS])
def workload(request):
    scene, ray_kind, seed = request.param
    return prepare_workload(scene, get_preset("tiny"), ray_kind=ray_kind,
                            seed=seed)


def sampler_fingerprint(divergence) -> dict:
    """Every observable of a DivergenceSampler, as plain comparable data."""
    return {
        "issues": [tuple(row) for row in divergence.issues],
        "idle": list(divergence.idle),
        "stall": list(divergence.stall),
        "totals": divergence.totals().tolist(),
        "mean_active": divergence.mean_active_lanes(),
    }


def run_fingerprint(result) -> dict:
    """Every statistic a RunStats reports, backend-comparable."""
    return {
        "cycles": result.stats.cycles,
        "sm": asdict(result.stats.sm_stats),
        "per_sm": [asdict(s) for s in result.stats.per_sm],
        "divergence": sampler_fingerprint(result.stats.divergence),
        "rays_completed": result.stats.rays_completed,
        "dram_read_bytes": result.stats.dram_read_bytes,
        "dram_write_bytes": result.stats.dram_write_bytes,
        "dram_transactions": result.stats.dram_transactions,
        "thread_commits": dict(result.stats.thread_commits),
    }


def session_fingerprint(session: TraceSession) -> dict:
    """Everything a finalized TraceSession reports, backend-comparable."""
    return {
        "machine": session.machine_intervals().tolist(),
        "dram": session.dram.trimmed().tolist(),
        "rows": session.interval_rows(),
        "events": [probe.events for probe in session.sms],
        "attribution": session.stall_attribution(),
        "cycles": session.cycles,
    }


class TestGPUModels:
    """PDOM block/warp and µ-kernel spawn (with and without conflicts)."""

    @pytest.mark.parametrize("mode", GPU_MODES)
    def test_batched_matches_reference_both_clocks(self, workload, mode):
        reference = run_fingerprint(
            run_mode(mode, workload, max_cycles=MAX_CYCLES,
                      executor="reference"))
        for fast_forward in (True, False):
            batched = run_mode(mode, workload, max_cycles=MAX_CYCLES,
                                fast_forward=fast_forward,
                                executor="batched")
            assert run_fingerprint(batched) == reference, (
                f"{mode} batched/{'fast' if fast_forward else 'exact'} "
                f"diverges from reference")

    def test_batched_actually_batches(self, workload):
        """Guard against the backend silently degrading to the reference
        path: the program must contain multi-instruction runs and the
        batched run must defer issues through them."""
        config = config_for_mode("pdom_block", workload.preset,
                                  executor="batched")
        from repro.isa.blocks import compile_blocks
        table = compile_blocks(traditional_program())
        assert max(table.run_len) >= 2
        assert config.executor == "batched"


class TestProbeIntervals:
    """Attached probes must observe bit-identical intervals and events."""

    @pytest.mark.parametrize("mode", ("pdom_block", "spawn"))
    def test_sessions_identical(self, workload, mode):
        runs = {}
        for backend in BACKENDS:
            runs[backend] = run_mode(mode, workload, max_cycles=MAX_CYCLES,
                                      executor=backend,
                                      trace=TraceSession(interval=512))
        assert (session_fingerprint(runs["batched"].trace)
                == session_fingerprint(runs["reference"].trace))
        assert (run_stats_digest(runs["batched"].stats)
                == run_stats_digest(runs["reference"].stats))


class TestPersistentThreads:
    """Persistent-threads kernel on the warp-scheduled machine."""

    def test_batched_matches_reference_both_clocks(self, workload):
        def fingerprint(executor, fast_forward):
            config = config_for_mode("pdom_warp", workload.preset,
                                      fast_forward=fast_forward,
                                      executor=executor)
            image = build_memory_image(workload.tree, workload.origins,
                                       workload.directions, workload.t_max)
            launch = persistent_launch_spec(persistent_thread_count(config))
            gpu = GPU(config, launch, image.global_mem, image.const_mem)
            stats = gpu.run(max_cycles=MAX_CYCLES)
            return {
                "cycles": stats.cycles,
                "sm": asdict(stats.sm_stats),
                "divergence": sampler_fingerprint(stats.divergence),
                "rays_completed": stats.rays_completed,
            }

        reference = fingerprint("reference", True)
        assert fingerprint("batched", True) == reference
        assert fingerprint("batched", False) == reference


class TestDWF:
    """DWF accepts the executor field but must ignore it entirely."""

    def test_executor_is_a_noop(self, workload):
        fingerprints = []
        for executor in BACKENDS:
            config = config_for_mode("pdom_warp", workload.preset,
                                      executor=executor)
            image = build_memory_image(workload.tree, workload.origins,
                                       workload.directions, workload.t_max)
            result = run_dwf(config, traditional_program(), "trace",
                             image.global_mem, image.const_mem,
                             num_threads=min(workload.num_rays, 736),
                             max_cycles=MAX_CYCLES)
            fingerprints.append({
                "cycles": result.cycles,
                "sm": asdict(result.stats),
                "divergence": sampler_fingerprint(result.divergence),
                "rays_completed": result.rays_completed,
            })
        assert fingerprints[0] == fingerprints[1]


class TestMIMD:
    """Analytic model: the executor toggle must not perturb it at all."""

    def test_executor_is_a_noop(self, workload):
        model = dynamic_instruction_model()
        counters = workload.reference.counters
        counts = (model["prologue"]
                  + counters.node_visits * model["node_visit"]
                  + counters.leaf_visits * (model["leaf_visit"] + model["pop"])
                  + counters.triangle_tests * model["triangle_test"]
                  + model["write"])
        results = [
            mimd_theoretical(counts, config_for_mode(
                "pdom_ideal", workload.preset, executor=executor))
            for executor in BACKENDS
        ]
        assert asdict(results[0]) == asdict(results[1])
        assert results[0].cycles > 0
