"""Differential tests: event-driven fast-forward vs the exact cycle loop.

The fast clock (``GPUConfig.fast_forward=True``, the default) jumps over
spans in which no SM can issue, crediting the skipped cycles to the same
idle/stall counters the exact loop would have incremented one at a time.
The contract (docs/architecture.md, "Event-driven fast-forward") is that
every reported statistic is **bit-identical** between the two clocks —
not approximately equal. These tests enforce that contract for all five
execution models across several scene/ray/seed configurations:

- traditional PDOM (block and warp scheduling),
- dynamic µ-kernel spawn (conflict-free and banked spawn memory),
- persistent threads (Aila & Laine software baseline),
- dynamic warp formation (idealized DWF core, its own cycle loop),
- MIMD theoretical (analytic; the clock toggle must be a no-op).

A truncated cycle budget keeps each run small while still covering
admission stalls, DRAM waits, spawn-pool formation, and barrier idling —
the spans the fast clock actually skips.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np
import pytest

from repro.harness.presets import get_preset
from repro.harness.runner import (
    config_for_mode,
    mimd_for_workload,
    prepare_workload,
    run_mode,
)
from repro.kernels.layout import build_memory_image
from repro.kernels.persistent import (
    persistent_launch_spec,
    persistent_thread_count,
)
from repro.kernels.traditional import (
    dynamic_instruction_model,
    traditional_program,
)
from repro.simt import GPU, mimd_theoretical
from repro.simt.dwf import run_dwf

#: Cycle cap per run: long enough to cross DRAM latencies, spawn-warp
#: formation, and admission stalls many times over, short enough to keep
#: the whole suite in tier-1 time.
MAX_CYCLES = 120_000

#: Three scene/ray/seed configurations (the ISSUE's ">= 3 seeds/configs").
CONFIGS = (
    ("conference", "primary", 0),
    ("fairyforest", "shadow", 1),
    ("atrium", "gi", 2),
)

GPU_MODES = ("pdom_block", "pdom_warp", "spawn", "spawn_conflicts")


@pytest.fixture(scope="module", params=CONFIGS,
                ids=["-".join(map(str, c)) for c in CONFIGS])
def workload(request):
    scene, ray_kind, seed = request.param
    return prepare_workload(scene, get_preset("tiny"), ray_kind=ray_kind,
                            seed=seed)


def sampler_fingerprint(divergence) -> dict:
    """Every observable of a DivergenceSampler, as plain comparable data."""
    return {
        "issues": [tuple(row) for row in divergence.issues],
        "idle": list(divergence.idle),
        "stall": list(divergence.stall),
        "totals": divergence.totals().tolist(),
        "mean_active": divergence.mean_active_lanes(),
    }


def run_fingerprint(result) -> dict:
    """Every statistic a RunStats reports, exact-vs-fast comparable."""
    return {
        "cycles": result.stats.cycles,
        "sm": asdict(result.stats.sm_stats),
        "per_sm": [asdict(s) for s in result.stats.per_sm],
        "divergence": sampler_fingerprint(result.stats.divergence),
        "rays_completed": result.stats.rays_completed,
        "dram_read_bytes": result.stats.dram_read_bytes,
        "dram_write_bytes": result.stats.dram_write_bytes,
        "dram_transactions": result.stats.dram_transactions,
        "thread_commits": dict(result.stats.thread_commits),
    }


class TestGPUModels:
    """PDOM block/warp and µ-kernel spawn (with and without conflicts)."""

    @pytest.mark.parametrize("mode", GPU_MODES)
    def test_fast_matches_exact(self, workload, mode):
        exact = run_mode(mode, workload, max_cycles=MAX_CYCLES,
                         fast_forward=False)
        fast = run_mode(mode, workload, max_cycles=MAX_CYCLES,
                        fast_forward=True)
        assert run_fingerprint(fast) == run_fingerprint(exact)

    def test_fast_forward_actually_skipped_cycles(self, workload):
        """Guard against the fast path silently degrading to per-cycle
        stepping: the runs above must contain idle/stall spans."""
        result = run_mode("spawn", workload, max_cycles=MAX_CYCLES)
        sm = result.stats.sm_stats
        assert sm.idle_cycles + sm.stall_cycles > 0


class TestPersistentThreads:
    """Persistent-threads kernel on the warp-scheduled machine."""

    def test_fast_matches_exact(self, workload):
        fingerprints = []
        for fast_forward in (False, True):
            config = config_for_mode("pdom_warp", workload.preset,
                                     fast_forward=fast_forward)
            image = build_memory_image(workload.tree, workload.origins,
                                       workload.directions, workload.t_max)
            launch = persistent_launch_spec(persistent_thread_count(config))
            gpu = GPU(config, launch, image.global_mem, image.const_mem)
            stats = gpu.run(max_cycles=MAX_CYCLES)
            fingerprints.append({
                "cycles": stats.cycles,
                "sm": asdict(stats.sm_stats),
                "divergence": sampler_fingerprint(stats.divergence),
                "rays_completed": stats.rays_completed,
            })
        assert fingerprints[0] == fingerprints[1]


class TestDWF:
    """Idealized dynamic warp formation (separate cycle loop in dwf.py)."""

    def test_fast_matches_exact(self, workload):
        fingerprints = []
        for fast_forward in (False, True):
            config = config_for_mode("pdom_warp", workload.preset,
                                     fast_forward=fast_forward)
            image = build_memory_image(workload.tree, workload.origins,
                                       workload.directions, workload.t_max)
            result = run_dwf(config, traditional_program(), "trace",
                             image.global_mem, image.const_mem,
                             num_threads=min(workload.num_rays, 736),
                             max_cycles=MAX_CYCLES)
            fingerprints.append({
                "cycles": result.cycles,
                "sm": asdict(result.stats),
                "divergence": sampler_fingerprint(result.divergence),
                "rays_completed": result.rays_completed,
            })
        assert fingerprints[0] == fingerprints[1]


class TestMIMD:
    """Analytic model: the clock toggle must not perturb it at all."""

    def test_fast_matches_exact(self, workload):
        model = dynamic_instruction_model()
        counters = workload.reference.counters
        counts = (model["prologue"]
                  + counters.node_visits * model["node_visit"]
                  + counters.leaf_visits * (model["leaf_visit"] + model["pop"])
                  + counters.triangle_tests * model["triangle_test"]
                  + model["write"])
        results = [
            mimd_theoretical(counts, config_for_mode(
                "pdom_ideal", workload.preset, fast_forward=fast_forward))
            for fast_forward in (False, True)
        ]
        assert asdict(results[0]) == asdict(results[1])
        assert results[0].cycles > 0

    def test_mimd_reference_consistent(self, workload):
        """mimd_for_workload (the harness entry point) is deterministic."""
        first = mimd_for_workload(workload)
        second = mimd_for_workload(workload)
        assert asdict(first) == asdict(second)
