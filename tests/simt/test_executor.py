"""Functional executor tests: one warp instruction at a time."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExecutionError
from repro.isa import assemble
from repro.isa.cfg import reconvergence_table
from repro.simt.banked import BankedMemory
from repro.simt.executor import ALU, CONTROL, OFFCHIP, ONCHIP, SPAWN, MachineState, execute
from repro.simt.memory import GlobalMemory
from repro.simt.warp import Warp

WARP = 8


def machine_for(source: str, mem_words: int = 256,
                const=None) -> MachineState:
    program = assemble(source)
    return MachineState(
        program=program,
        global_mem=GlobalMemory(mem_words),
        const_mem=np.asarray(const if const is not None else np.arange(32.0)),
        shared_mem=BankedMemory(128, model_conflicts=False),
        spawn_mem=BankedMemory(256, model_conflicts=False),
        reconv_table=reconvergence_table(program),
    )


def fresh_warp(machine: MachineState, entry="main", active=None) -> Warp:
    active = np.ones(WARP, dtype=bool) if active is None else active
    return Warp.launch(0, WARP, 48, machine.program.kernels[entry].entry_pc,
                       np.arange(WARP), active)


def run_to_completion(machine: MachineState, warp: Warp, limit=10_000):
    steps = 0
    while not warp.done and steps < limit:
        execute(warp, machine)
        steps += 1
    assert warp.done, "warp did not finish"
    return steps


def body(text: str, **kwargs):
    machine = machine_for(f".kernel main regs=48\nmain:\n{text}\n    exit;\n",
                          **kwargs)
    warp = fresh_warp(machine)
    return machine, warp


class TestArithmetic:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", 2.0, 3.5, 5.5),
        ("sub", 2.0, 3.5, -1.5),
        ("mul", 2.0, 3.5, 7.0),
        ("div", 7.0, 2.0, 3.5),
        ("min", 2.0, 3.5, 2.0),
        ("max", 2.0, 3.5, 3.5),
        ("rem", 7.0, 4.0, 3.0),
        ("and", 6.0, 3.0, 2.0),
        ("or", 6.0, 3.0, 7.0),
        ("xor", 6.0, 3.0, 5.0),
        ("shl", 3.0, 2.0, 12.0),
        ("shr", 12.0, 2.0, 3.0),
    ])
    def test_binary(self, op, a, b, expected):
        machine, warp = body(f"""
    mov r1, {a};
    mov r2, {b};
    {op} r3, r1, r2;
""")
        for _ in range(3):
            execute(warp, machine)
        assert np.all(warp.regs[3] == expected)

    @pytest.mark.parametrize("op,a,expected", [
        ("mov", -2.5, -2.5),
        ("neg", -2.5, 2.5),
        ("abs", -2.5, 2.5),
        ("rcp", 4.0, 0.25),
        ("sqrt", 9.0, 3.0),
        ("rsqrt", 4.0, 0.5),
        ("floor", 2.75, 2.0),
        ("cvt", -2.75, -2.0),
        ("not", 0.0, -1.0),
    ])
    def test_unary(self, op, a, expected):
        machine, warp = body(f"""
    mov r1, {a};
    {op} r2, r1;
""")
        execute(warp, machine)
        execute(warp, machine)
        assert np.all(warp.regs[2] == expected)

    def test_mad(self):
        machine, warp = body("""
    mov r1, 2;
    mov r2, 3;
    mov r3, 4;
    mad r4, r1, r2, r3;
""")
        for _ in range(4):
            execute(warp, machine)
        assert np.all(warp.regs[4] == 10.0)

    def test_div_by_zero_gives_inf(self):
        machine, warp = body("""
    mov r1, 1;
    mov r2, 0;
    div r3, r1, r2;
""")
        with np.errstate(divide="ignore"):
            for _ in range(3):
                execute(warp, machine)
        assert np.all(np.isinf(warp.regs[3]))

    def test_rem_by_zero_gives_zero(self):
        machine, warp = body("""
    mov r1, 7;
    mov r2, 0;
    rem r3, r1, r2;
""")
        for _ in range(3):
            execute(warp, machine)
        assert np.all(warp.regs[3] == 0.0)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
           st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_add_matches_numpy(self, a, b):
        machine, warp = body(f"""
    mov r1, {a!r};
    mov r2, {b!r};
    add r3, r1, r2;
""")
        for _ in range(3):
            execute(warp, machine)
        assert np.all(warp.regs[3] == np.float64(a) + np.float64(b))


class TestPredication:
    def test_setp_and_selp(self):
        machine, warp = body("""
    mov r1, SREG.tid;
    setp.lt p0, r1, 4;
    selp r2, 100, 200, p0;
""")
        for _ in range(3):
            execute(warp, machine)
        assert warp.regs[2].tolist() == [100] * 4 + [200] * 4

    def test_guarded_alu_skips_lanes(self):
        machine, warp = body("""
    mov r1, SREG.tid;
    mov r2, -1;
    setp.ge p0, r1, 6;
    @p0 mov r2, 7;
""")
        for _ in range(4):
            execute(warp, machine)
        assert warp.regs[2].tolist() == [-1] * 6 + [7, 7]

    def test_negated_guard(self):
        machine, warp = body("""
    mov r1, SREG.tid;
    setp.ge p0, r1, 6;
    mov r2, 0;
    @!p0 mov r2, 5;
""")
        for _ in range(4):
            execute(warp, machine)
        assert warp.regs[2].tolist() == [5] * 6 + [0, 0]

    @pytest.mark.parametrize("cmp,expected", [
        ("lt", [True, False, False]),
        ("le", [True, True, False]),
        ("gt", [False, False, True]),
        ("ge", [False, True, True]),
        ("eq", [False, True, False]),
        ("ne", [True, False, True]),
    ])
    def test_compare_kinds(self, cmp, expected):
        machine, warp = body(f"""
    mov r1, SREG.tid;
    setp.{cmp} p0, r1, 1;
""")
        execute(warp, machine)
        execute(warp, machine)
        assert warp.preds[0][:3].tolist() == expected


class TestSpecialRegisters:
    def test_tid(self):
        machine, warp = body("    mov r1, SREG.tid;")
        execute(warp, machine)
        assert warp.regs[1].tolist() == list(range(WARP))

    def test_spawn_mem_addr(self):
        machine, warp = body("    mov r1, SREG.spawnMemAddr;")
        warp.spawn_addr[:] = np.arange(WARP) * 12
        execute(warp, machine)
        assert warp.regs[1].tolist() == [i * 12 for i in range(WARP)]

    def test_warpid(self):
        machine, warp = body("    mov r1, SREG.warpid;")
        execute(warp, machine)
        assert np.all(warp.regs[1] == 0)


class TestMemory:
    def test_global_load_store(self):
        machine, warp = body("""
    mov r1, SREG.tid;
    add r2, r1, 100;
    st.global [r1+0], r2;
    ld.global r3, [r1+0];
""")
        for _ in range(4):
            execute(warp, machine)
        assert warp.regs[3].tolist() == [100 + i for i in range(WARP)]

    def test_vector_load(self):
        machine, warp = body("""
    mov r1, 0;
    ld.global.v4 r4, [r1+0];
""")
        machine.global_mem.load_array(0, np.array([9.0, 8.0, 7.0, 6.0]))
        execute(warp, machine)
        execute(warp, machine)
        assert warp.regs[4][0] == 9.0
        assert warp.regs[7][0] == 6.0

    def test_vector_store(self):
        machine, warp = body("""
    mov r1, SREG.tid;
    mul r1, r1, 4;
    mov r4, 1;
    mov r5, 2;
    mov r6, 3;
    mov r7, 4;
    st.global.v4 [r1+0], r4;
""", mem_words=64)
        for _ in range(7):
            execute(warp, machine)
        assert machine.global_mem.words[:8].tolist() == [1, 2, 3, 4, 1, 2, 3, 4]

    def test_masked_load_preserves_inactive(self):
        machine, warp = body("""
    mov r1, SREG.tid;
    mov r2, -5;
    setp.lt p0, r1, 2;
    @p0 ld.global r2, [r1+0];
""")
        machine.global_mem.load_array(0, np.array([42.0, 43.0]))
        for _ in range(4):
            execute(warp, machine)
        assert warp.regs[2].tolist() == [42, 43] + [-5] * 6

    def test_const_is_read_only(self):
        machine, warp = body("    mov r1, 0;\n    ld.const r2, [r1+3];")
        execute(warp, machine)
        result = execute(warp, machine)
        assert result.kind == ONCHIP
        assert np.all(warp.regs[2] == 3.0)

    def test_shared_memory_roundtrip(self):
        machine, warp = body("""
    mov r1, SREG.tid;
    st.shared [r1+0], r1;
    ld.shared r2, [r1+0];
""")
        for _ in range(3):
            execute(warp, machine)
        assert warp.regs[2].tolist() == list(range(WARP))

    def test_out_of_range_raises(self):
        machine, warp = body("""
    mov r1, 99999;
    ld.global r2, [r1+0];
""")
        execute(warp, machine)
        from repro.errors import MemoryError_
        with pytest.raises(MemoryError_):
            execute(warp, machine)

    def test_result_kinds(self):
        machine, warp = body("""
    mov r1, 0;
    ld.global r2, [r1+0];
    ld.shared r3, [r1+0];
    add r4, r2, r3;
""")
        kinds = [execute(warp, machine).kind for _ in range(4)]
        assert kinds == [ALU, OFFCHIP, ONCHIP, ALU]


class TestControlFlow:
    def test_uniform_branch(self):
        machine, warp = body("""
    bra END;
    mov r1, 1;
END:
    mov r2, 2;
""")
        result = execute(warp, machine)
        assert result.kind == CONTROL
        assert warp.pc == machine.program.labels["END"]

    def test_divergent_branch_and_reconvergence(self):
        source = """
.kernel main regs=8
main:
    mov r1, SREG.tid;
    mov r3, 0;
    setp.lt p0, r1, 4;
    @p0 bra THEN;
    mov r3, 10;
    bra JOIN;
THEN:
    mov r3, 20;
JOIN:
    add r3, r3, 1;
    exit;
"""
        machine = machine_for(source)
        warp = fresh_warp(machine)
        run_to_completion(machine, warp)
        assert warp.regs[3].tolist() == [21] * 4 + [11] * 4

    def test_loop_with_varying_trip_counts(self):
        source = """
.kernel main regs=8
main:
    mov r1, SREG.tid;
    mov r2, 0;
LOOP:
    add r2, r2, 1;
    setp.lt p0, r2, r1;
    @p0 bra LOOP;
    exit;
"""
        machine = machine_for(source)
        warp = fresh_warp(machine)
        run_to_completion(machine, warp)
        expected = [max(1, i) for i in range(WARP)]
        assert warp.regs[2].tolist() == expected

    def test_exit_retires_lanes(self):
        source = """
.kernel main regs=8
main:
    mov r1, SREG.tid;
    setp.lt p0, r1, 3;
    @p0 exit;
    mov r2, 9;
    exit;
"""
        machine = machine_for(source)
        warp = fresh_warp(machine)
        execute(warp, machine)
        execute(warp, machine)
        result = execute(warp, machine)
        assert result.exited_lanes == 3
        assert not result.warp_finished
        assert warp.active_count == WARP - 3
        execute(warp, machine)
        result = execute(warp, machine)
        assert result.warp_finished
        assert warp.done

    def test_exit_commits_only_remaining(self):
        source = """
.kernel main regs=8
main:
    mov r1, SREG.tid;
    setp.lt p0, r1, 4;
    @p0 exit;
    mov r2, 1;
    exit;
"""
        machine = machine_for(source)
        warp = fresh_warp(machine)
        run_to_completion(machine, warp)
        assert warp.regs[2][4:].tolist() == [1] * 4
        assert warp.regs[2][:4].tolist() == [0] * 4

    def test_lane_commit_counts(self):
        source = """
.kernel main regs=8
main:
    mov r1, SREG.tid;
    mov r2, 0;
LOOP:
    add r2, r2, 1;
    setp.lt p0, r2, r1;
    @p0 bra LOOP;
    exit;
"""
        machine = machine_for(source)
        warp = fresh_warp(machine)
        run_to_completion(machine, warp)
        # Lane i runs: 2 setup + 3 per iteration + exit.
        expected = [2 + 3 * max(1, i) + 1 for i in range(WARP)]
        assert warp.lane_commits.tolist() == expected

    def test_no_active_lanes_raises(self):
        machine, warp = body("    mov r1, 0;")
        warp.stack.retire_lanes(np.ones(WARP, dtype=bool))
        warp.finish_if_empty()
        with pytest.raises(ExecutionError):
            execute(warp, machine)


class TestSpawnInstruction:
    SOURCE = """
.kernel main regs=8 state=2
.kernel child regs=8 state=2
main:
    mov r1, SREG.tid;
    setp.lt p0, r1, 5;
    @p0 spawn $child, r1;
    exit;
child:
    exit;
"""

    def test_spawn_request_contents(self):
        machine = machine_for(self.SOURCE)
        warp = fresh_warp(machine)
        execute(warp, machine)
        execute(warp, machine)
        result = execute(warp, machine)
        assert result.kind == SPAWN
        assert result.spawn.kernel_name == "child"
        assert result.spawn.pointers.tolist() == [0, 1, 2, 3, 4]
        assert result.spawn.target_pc == machine.program.kernels["child"].entry_pc

    def test_spawn_sets_spawned_flag(self):
        machine = machine_for(self.SOURCE)
        warp = fresh_warp(machine)
        for _ in range(3):
            execute(warp, machine)
        assert warp.spawned_flag.tolist() == [True] * 5 + [False] * 3

    def test_exit_frees_only_unspawned_chains(self):
        machine = machine_for(self.SOURCE)
        warp = fresh_warp(machine)
        warp.data_slot_addr[:] = np.arange(WARP) * 2
        for _ in range(3):
            execute(warp, machine)
        result = execute(warp, machine)  # exit
        assert result.warp_finished
        assert sorted(result.freed_data_addresses.tolist()) == [10, 12, 14]
