"""Property tests: PDOM reconvergence-stack invariants under random walks.

The executor trusts the stack blindly on the hot path (cached counts, no
defensive copies), so the structural invariants are pinned down here:

- **Masks are nested**: with properly nested control flow (every inner
  branch reconverges strictly before its enclosing one — what the
  compiler's post-dominator analysis guarantees), the sibling paths of a
  branch are pairwise disjoint and their union is a subset of the parent
  entry below them.
- **Reconvergence PCs are monotone**: reading the stack bottom-up, the
  reconvergence PC never increases (``RECONV_AT_EXIT`` acts as +inf).
- **Counts match masks**: the cached ``count`` always equals
  ``mask.sum()`` — the fast path issues on the cache alone.
- **No dormant reconverged entries**: only the bottom entry may sit at
  its reconvergence PC; anything above would mean a missed pop.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.isa.cfg import RECONV_AT_EXIT
from repro.simt.stack import ReconvergenceStack

WARP = 8

#: Forward-branch PC space; RECONV_AT_EXIT (-1) sorts as +inf.
MAX_PC = 10_000


def _reconv_key(pc: int) -> float:
    return float("inf") if pc == RECONV_AT_EXIT else pc


def check_invariants(stack: ReconvergenceStack) -> None:
    entries = stack.entries
    for entry in entries:
        assert entry.count == int(entry.mask.sum())
        assert entry.mask.dtype == bool and entry.mask.shape == (WARP,)
    # Reconvergence PCs monotone non-increasing bottom-up: an inner branch
    # never reconverges beyond its enclosing one.
    for below, above in zip(entries, entries[1:]):
        assert _reconv_key(above.reconv_pc) <= _reconv_key(below.reconv_pc)
    # Contiguous entries sharing a reconvergence PC are sibling paths of
    # one branch: pairwise disjoint, and their union is nested inside the
    # parent entry directly below the group (which holds the union mask
    # and waits at the reconvergence point).
    index = 1
    while index < len(entries):
        start = index
        key = _reconv_key(entries[index].reconv_pc)
        group = entries[index].mask.copy()
        while (index + 1 < len(entries)
               and _reconv_key(entries[index + 1].reconv_pc) == key):
            index += 1
            assert not (entries[index].mask & group).any()  # disjoint
            group |= entries[index].mask
        parent = entries[start - 1]
        assert not (group & ~parent.mask).any()  # nested
        index += 1
    for entry in entries[1:]:
        assert entry.pc != entry.reconv_pc
        assert entry.count > 0


class StackWalk:
    """Drive a stack the way the executor does, with random control flow."""

    def __init__(self, rng: np.random.Generator):
        self.rng = rng
        self.stack = ReconvergenceStack.initial(0, np.ones(WARP, dtype=bool))

    @property
    def live(self) -> bool:
        return not self.stack.empty

    def step(self, op: str) -> None:
        stack = self.stack
        top = stack.top
        if op == "advance":
            stack.advance(top.pc + 1)
        elif op == "reconverge" and top.reconv_pc != RECONV_AT_EXIT:
            stack.advance(top.reconv_pc)
        elif op == "diverge":
            active = top.mask
            lanes = np.nonzero(active)[0]
            picks = self.rng.random(lanes.size) < 0.5
            taken = np.zeros(WARP, dtype=bool)
            taken[lanes[picks]] = True
            not_taken = active & ~taken
            # Proper nesting: the inner reconvergence point must lie
            # strictly before the enclosing one (the compiler's immediate
            # post-dominator of an inner branch precedes the outer's).
            outer = (MAX_PC if top.reconv_pc == RECONV_AT_EXIT
                     else top.reconv_pc)
            lo = top.pc + 1
            if lo >= outer:
                return  # no room for a forward branch inside this region
            reconv = int(self.rng.integers(lo, outer))
            target = int(self.rng.integers(lo, reconv + 1))
            fallthrough = top.pc + 1
            stack.diverge(taken, not_taken, target, fallthrough, reconv)
        elif op == "retire":
            active = top.mask
            lanes = np.nonzero(active)[0]
            picks = self.rng.random(lanes.size) < 0.3
            exiting = np.zeros(WARP, dtype=bool)
            exiting[lanes[picks]] = True
            if exiting.any():
                stack.retire_lanes(exiting)


OPS = st.lists(
    st.sampled_from(["advance", "diverge", "reconverge", "retire"]),
    min_size=1, max_size=120)


class TestStackProperties:
    @settings(max_examples=80, deadline=None)
    @given(ops=OPS, seed=st.integers(0, 2**32 - 1))
    def test_invariants_hold_under_random_walk(self, ops, seed):
        walk = StackWalk(np.random.default_rng(seed))
        check_invariants(walk.stack)
        for op in ops:
            if not walk.live:
                break
            walk.step(op)
            check_invariants(walk.stack)

    @settings(max_examples=80, deadline=None)
    @given(ops=OPS, seed=st.integers(0, 2**32 - 1))
    def test_all_lanes_accounted_until_retired(self, ops, seed):
        """The top mask never contains a lane that already exited."""
        walk = StackWalk(np.random.default_rng(seed))
        retired = np.zeros(WARP, dtype=bool)
        for op in ops:
            if not walk.live:
                break
            before = walk.stack.top.mask.copy() if op == "retire" else None
            walk.step(op)
            if op == "retire" and walk.stack.entries:
                now_active = walk.stack.active_mask()
                newly_retired = before & ~now_active
                retired |= newly_retired
            for entry in walk.stack.entries:
                assert not (entry.mask & retired).any()

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), depth=st.integers(1, 6))
    def test_nested_divergence_reconverges_to_initial_mask(self, seed, depth):
        """Diverge ``depth`` times, then run every path to its
        reconvergence point: the stack must collapse back to one entry
        holding the original full mask."""
        rng = np.random.default_rng(seed)
        stack = ReconvergenceStack.initial(0, np.ones(WARP, dtype=bool))
        reconv = 100 * (depth + 1)
        for _ in range(depth):
            top = stack.top
            active = top.mask
            lanes = np.nonzero(active)[0]
            if lanes.size < 2:
                break
            taken = np.zeros(WARP, dtype=bool)
            taken[lanes[: lanes.size // 2]] = True
            stack.diverge(taken, active & ~taken, top.pc + 10, top.pc + 1,
                          reconv)
            reconv -= 100
        # Drain: repeatedly advance the top path straight to its
        # reconvergence PC until only the bottom entry remains.
        while stack.depth > 1:
            stack.advance(stack.top.reconv_pc)
        assert stack.top.mask.all()
        assert stack.top.count == WARP
