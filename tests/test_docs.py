"""Documentation integrity: files exist and reference real artifacts."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDocsPresent:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md",
                                      "EXPERIMENTS.md", "docs/isa.md",
                                      "docs/architecture.md"])
    def test_exists_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 500

    def test_examples_listed_in_readme_exist(self):
        readme = (ROOT / "README.md").read_text()
        for match in re.findall(r"examples/(\w+\.py)", readme):
            assert (ROOT / "examples" / match).exists(), match

    def test_design_experiment_index_points_at_real_benches(self):
        design = (ROOT / "DESIGN.md").read_text()
        for match in re.findall(r"benchmarks/(bench_\w+\.py)", design):
            assert (ROOT / "benchmarks" / match).exists(), match

    def test_experiments_md_mentions_every_figure(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for section in ("Table I", "Table II", "Table III", "Table IV",
                        "Figure 3", "Figure 7", "Figure 8", "Figure 9",
                        "Figure 10"):
            assert section in text, section

    def test_design_documents_substitutions(self):
        design = (ROOT / "DESIGN.md").read_text()
        assert "GPGPU-Sim" in design
        assert "fairyforest" in design
        # The substitution table must explain why it preserves behaviour.
        assert "Why it is faithful" in design


class TestPublicAPI:
    def test_readme_quickstart_snippet_is_valid(self):
        """The programmatic example in README must actually run."""
        from repro import api
        workload = api.build_workload(
            "conference", api.get_preset("tiny"))
        pdom = api.simulate(workload, "pdom_block", max_cycles=5_000)
        spawn = api.simulate(workload, "spawn", max_cycles=5_000)
        assert spawn.verify() and pdom.verify()

    def test_readme_probe_snippet_is_valid(self):
        """The probe example in README must actually run."""
        from repro import api
        from repro.obs import render_interval_plot
        workload = api.build_workload(
            "conference", api.get_preset("tiny"))
        result = api.simulate(workload, "spawn", max_cycles=5_000,
                              probes=True)
        assert "idle" in render_interval_plot(result.trace)
        assert "dram_pending" in result.trace.stall_attribution()

    def test_all_subpackage_exports_importable(self):
        import repro
        import repro.analysis
        import repro.harness
        import repro.isa
        import repro.kernels
        import repro.rt
        import repro.simt
        for module in (repro.analysis, repro.harness, repro.isa,
                       repro.kernels, repro.rt, repro.simt):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"
