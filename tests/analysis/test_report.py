"""Report formatting tests."""

from repro.analysis.report import format_bars, format_series, format_table


class TestFormatTable:
    def test_basic(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "22" in lines[3]

    def test_title(self):
        text = format_table([{"a": 1}], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_missing_keys_render_empty(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows)
        assert "a" in text and "b" in text

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert "b" not in header
        assert header.index("c") < header.index("a")

    def test_alignment(self):
        rows = [{"name": "x", "value": 1}, {"name": "longer", "value": 22}]
        lines = format_table(rows).splitlines()
        assert len(lines[2]) == len(lines[3])


class TestFormatSeries:
    def test_bars_scale(self):
        text = format_series("s", [1.0, 2.0, 4.0], width=8)
        lines = text.splitlines()
        assert lines[0] == "s"
        assert lines[3].count("#") == 8
        assert lines[1].count("#") == 2

    def test_empty(self):
        assert "empty" in format_series("s", [])

    def test_zero_values(self):
        text = format_series("s", [0.0, 0.0])
        assert "#" not in text


class TestFormatBars:
    def test_labels_aligned(self):
        text = format_bars([("short", 1.0), ("much_longer", 2.0)])
        lines = text.splitlines()
        assert lines[0].index("1.000") == lines[1].index("2.000")

    def test_title_and_unit(self):
        text = format_bars([("a", 1.0)], title="T", unit="M")
        assert text.splitlines()[0] == "T"
        assert "M" in text

    def test_empty(self):
        assert format_bars([], title="T") == "T"
