"""Table IV bandwidth model tests."""

import numpy as np
import pytest

from repro.analysis.bandwidth import (
    METADATA_BYTES,
    NODE_BYTES,
    RAY_BYTES,
    RESULT_BYTES,
    STATE_BYTES,
    TRIANGLE_BYTES,
    LEAF_INDEX_BYTES,
    bandwidth_table,
    dynamic_bandwidth,
    spawned_threads,
    traditional_bandwidth,
)
from repro.rt.trace import TraceCounters


def counters(nodes=10, leaves=4, tests=6, rays=2):
    return TraceCounters(
        node_visits=np.full(rays, nodes, dtype=np.int64),
        leaf_visits=np.full(rays, leaves, dtype=np.int64),
        triangle_tests=np.full(rays, tests, dtype=np.int64),
        stack_pushes=np.zeros(rays, dtype=np.int64),
    )


class TestTraditional:
    def test_reads_formula(self):
        c = counters()
        model = traditional_bandwidth(c, num_rays=2)
        expected = (2 * RAY_BYTES
                    + (20 + 8) * NODE_BYTES
                    + 12 * (LEAF_INDEX_BYTES + TRIANGLE_BYTES))
        assert model.read_bytes == expected

    def test_writes_are_results_only(self):
        model = traditional_bandwidth(counters(), num_rays=2)
        assert model.write_bytes == 2 * RESULT_BYTES

    def test_total(self):
        model = traditional_bandwidth(counters(), num_rays=2)
        assert model.total_bytes == model.read_bytes + model.write_bytes

    def test_megabytes(self):
        model = traditional_bandwidth(counters(), num_rays=2)
        read_mb, write_mb, total_mb = model.as_megabytes()
        assert read_mb == pytest.approx(model.read_bytes / 2**20)
        assert total_mb == pytest.approx(read_mb + write_mb)


class TestDynamic:
    def test_spawned_threads_formula(self):
        c = counters(nodes=10, leaves=4, tests=6, rays=2)
        # per ray: 10 + 2*4 + 6 = 24; two rays = 48.
        assert spawned_threads(c) == 48

    def test_dynamic_adds_state_traffic(self):
        c = counters()
        base = traditional_bandwidth(c, 2)
        dyn = dynamic_bandwidth(c, 2)
        threads = spawned_threads(c)
        extra = threads * (STATE_BYTES + METADATA_BYTES)
        assert dyn.read_bytes == base.read_bytes + extra
        assert dyn.write_bytes == base.write_bytes + extra

    def test_write_ratio_huge(self):
        """Paper: dynamic writes dwarf traditional writes (0.25 MB ->
        hundreds of MB)."""
        c = counters(nodes=40, leaves=10, tests=30, rays=64)
        base = traditional_bandwidth(c, 64)
        dyn = dynamic_bandwidth(c, 64)
        assert dyn.write_bytes / base.write_bytes > 50

    def test_read_ratio_several_x(self):
        c = counters(nodes=40, leaves=10, tests=30, rays=64)
        base = traditional_bandwidth(c, 64)
        dyn = dynamic_bandwidth(c, 64)
        assert 1.5 < dyn.read_bytes / base.read_bytes < 20


class TestTable:
    def test_rows_per_scene(self):
        per_scene = {"a": (counters(), 2), "b": (counters(20, 5, 9), 2)}
        rows = bandwidth_table(per_scene)
        assert len(rows) == 4
        variants = [row["variant"] for row in rows]
        assert variants == ["Traditional", "Dynamic"] * 2

    def test_ratios_present_on_dynamic_rows(self):
        rows = bandwidth_table({"a": (counters(), 2)})
        dynamic = rows[1]
        assert dynamic["read_ratio"] > 1
        assert dynamic["total_ratio"] > dynamic["read_ratio"]

    def test_from_real_scene(self, tiny_tree, tiny_rays):
        from repro.rt import trace_rays
        origins, directions = tiny_rays
        result = trace_rays(tiny_tree, origins, directions)
        rows = bandwidth_table({"tiny": (result.counters, origins.shape[0])})
        trad, dyn = rows
        assert dyn["total_mb"] > trad["total_mb"]
        assert dyn["read_ratio"] > 1.0
