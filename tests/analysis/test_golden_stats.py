"""Golden-stats regression tests: exact JSON snapshots of simulator output.

Two tiny scenes are simulated (traditional PDOM and µ-kernel spawn) and
the full :class:`DivergenceSampler` output plus the headline SM counters
are compared **exactly** against checked-in JSON snapshots under
``tests/analysis/golden/``. Any change to scheduling, reconvergence,
spawn formation, memory timing, or the fast-forward clock that perturbs a
single counter shows up as a diff here.

To bless intentional changes, regenerate the snapshots with::

    PYTHONPATH=src python -m pytest tests/analysis/test_golden_stats.py \
        --update-golden

and commit the result — the diff of the JSON files *is* the review
artifact for a stats-affecting change.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.harness.presets import get_preset
from repro.harness.runner import prepare_workload, run_mode

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: Bounded so the goldens stay small and the runs stay fast; both scenes
#: still cross DRAM waits, divergence, and (for spawn) warp formation.
MAX_CYCLES = 60_000

CASES = (
    ("conference", "pdom_block"),
    ("fairyforest", "spawn"),
)


def golden_snapshot(scene: str, mode: str) -> dict:
    workload = prepare_workload(scene, get_preset("tiny"))
    result = run_mode(mode, workload, max_cycles=MAX_CYCLES)
    stats = result.stats
    divergence = stats.divergence
    sm = stats.sm_stats
    return {
        "scene": scene,
        "mode": mode,
        "max_cycles": MAX_CYCLES,
        "cycles": stats.cycles,
        "rays_completed": stats.rays_completed,
        "issued_instructions": sm.issued_instructions,
        "committed_thread_instructions": sm.committed_thread_instructions,
        "idle_cycles": sm.idle_cycles,
        "stall_cycles": sm.stall_cycles,
        "threads_spawned": sm.threads_spawned,
        "full_warps_formed": sm.full_warps_formed,
        "partial_warps_flushed": sm.partial_warps_flushed,
        "bank_conflict_cycles": sm.bank_conflict_cycles,
        "dram_transactions": stats.dram_transactions,
        "divergence": {
            "window": divergence.window,
            "totals": divergence.totals().tolist(),
            "issues": [list(row) for row in divergence.issues],
            "idle": list(divergence.idle),
            "stall": list(divergence.stall),
        },
    }


@pytest.mark.parametrize("scene,mode", CASES,
                         ids=[f"{s}-{m}" for s, m in CASES])
def test_golden_stats(scene, mode, update_golden):
    path = GOLDEN_DIR / f"{scene}_{mode}.json"
    snapshot = golden_snapshot(scene, mode)
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"missing golden snapshot {path.name}; generate it with "
        "pytest --update-golden")
    golden = json.loads(path.read_text())
    assert snapshot == golden
