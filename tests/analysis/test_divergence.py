"""Divergence breakdown (Figures 3/7/9 data) tests."""

import numpy as np
import pytest

from repro.analysis.divergence import (
    DivergenceBreakdown,
    breakdown_from_stats,
    render_breakdown,
)
from repro.simt.stats import NUM_W_BUCKETS, DivergenceSampler


def breakdown_with(issues):
    sampler = DivergenceSampler(window=100)
    for cycle, active in issues:
        sampler.record_issue(cycle, active)
    stats = type("S", (), {"divergence": sampler})()
    return breakdown_from_stats(stats)


class TestBreakdown:
    def test_labels(self):
        breakdown = breakdown_with([(0, 32)])
        assert breakdown.labels[0] == "W1:4"
        assert breakdown.labels[NUM_W_BUCKETS - 1] == "W29:32"
        assert breakdown.labels[-2:] == ("idle", "stall")

    def test_category_share(self):
        breakdown = breakdown_with([(0, 32), (1, 32), (2, 2)])
        assert breakdown.category_share("W29:32") == pytest.approx(2 / 3)
        assert breakdown.category_share("W1:4") == pytest.approx(1 / 3)

    def test_high_low_occupancy_shares(self):
        breakdown = breakdown_with([(0, 32), (1, 1), (2, 1), (3, 1)])
        assert breakdown.high_occupancy_share() == pytest.approx(0.25)
        assert breakdown.low_occupancy_share() == pytest.approx(0.75)

    def test_empty(self):
        breakdown = breakdown_with([])
        assert breakdown.num_windows == 0
        assert breakdown.category_share("W1:4") == 0.0
        assert breakdown.high_occupancy_share() == 0.0

    def test_windows(self):
        breakdown = breakdown_with([(0, 16), (150, 16), (250, 16)])
        assert breakdown.num_windows == 3


class TestRender:
    def test_render_contains_labels(self):
        breakdown = breakdown_with([(0, 32), (1, 4)])
        text = render_breakdown(breakdown)
        assert "W29:32" in text
        assert "W1:4" in text
        assert "mean active lanes" in text

    def test_render_downsamples(self):
        issues = [(cycle, 32) for cycle in range(0, 100_000, 100)]
        breakdown = breakdown_with(issues)
        text = render_breakdown(breakdown, max_windows=10)
        first_row = text.splitlines()[0]
        assert len(first_row) < 60

    def test_render_empty(self):
        breakdown = breakdown_with([])
        assert "W1:4" in render_breakdown(breakdown)

    def test_include_idle_rows(self):
        sampler = DivergenceSampler(window=10)
        sampler.record_issue(0, 8)
        sampler.record_idle(1)
        stats = type("S", (), {"divergence": sampler})()
        breakdown = breakdown_from_stats(stats)
        text = render_breakdown(breakdown, include_idle=True)
        assert "idle" in text


class TestFromSimulation:
    def test_from_real_run(self, tiny_tree, tiny_rays):
        from repro.config import scaled_config
        from repro.kernels.layout import build_memory_image
        from repro.kernels.traditional import traditional_launch_spec
        from repro.simt import GPU
        origins, directions = tiny_rays
        image = build_memory_image(tiny_tree, origins, directions)
        gpu = GPU(scaled_config(1, max_cycles=5_000_000),
                  traditional_launch_spec(origins.shape[0]),
                  image.global_mem, image.const_mem, divergence_window=500)
        stats = gpu.run()
        breakdown = breakdown_from_stats(stats)
        assert breakdown.totals.sum() == stats.sm_stats.issued_instructions
        assert 1.0 <= breakdown.mean_active_lanes <= 32.0
        # Fractions rows normalized.
        if breakdown.num_windows:
            assert np.all(breakdown.fractions <= 1.0)
