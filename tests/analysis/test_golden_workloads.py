"""Golden-stats snapshots for the path-tracing and BFS workload families.

Same contract as test_golden_stats.py, extended to the new µ-kernel
families: one run per (scene, ray_kind, preset, mode) case is compared
**exactly** — every counter, the full divergence histogram — against a
checked-in JSON snapshot under ``tests/analysis/golden/``. The cases pin
both layouts of both families: the roulette path tracer as a PDOM
megakernel and as a spawn chain, and frontier BFS on the uniform and
hub-skewed graphs.

To bless intentional changes, regenerate with::

    PYTHONPATH=src python -m pytest tests/analysis/test_golden_workloads.py \
        --update-golden

and commit the result.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.harness.presets import get_preset
from repro.harness.runner import prepare_workload, run_mode

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: Bounded like test_golden_stats.py: the BFS runs complete inside the
#: cap; the path-tracing runs truncate deterministically mid-flight,
#: which exercises every counter the snapshot records.
MAX_CYCLES = 60_000

CASES = (
    ("conference", "path", "path-tiny", "pdom_block"),
    ("conference", "path", "path-tiny", "spawn"),
    ("graph-uniform", "bfs", "bfs-tiny", "pdom_warp"),
    ("graph-skew", "bfs", "bfs-tiny", "spawn"),
)


def golden_snapshot(scene: str, ray_kind: str, preset: str,
                    mode: str) -> dict:
    workload = prepare_workload(scene, get_preset(preset),
                                ray_kind=ray_kind)
    result = run_mode(mode, workload, max_cycles=MAX_CYCLES)
    stats = result.stats
    divergence = stats.divergence
    sm = stats.sm_stats
    return {
        "scene": scene,
        "ray_kind": ray_kind,
        "preset": preset,
        "mode": mode,
        "max_cycles": MAX_CYCLES,
        "cycles": stats.cycles,
        "rays_completed": stats.rays_completed,
        "issued_instructions": sm.issued_instructions,
        "committed_thread_instructions": sm.committed_thread_instructions,
        "idle_cycles": sm.idle_cycles,
        "stall_cycles": sm.stall_cycles,
        "threads_spawned": sm.threads_spawned,
        "full_warps_formed": sm.full_warps_formed,
        "partial_warps_flushed": sm.partial_warps_flushed,
        "bank_conflict_cycles": sm.bank_conflict_cycles,
        "dram_transactions": stats.dram_transactions,
        "divergence": {
            "window": divergence.window,
            "totals": divergence.totals().tolist(),
            "issues": [list(row) for row in divergence.issues],
            "idle": list(divergence.idle),
            "stall": list(divergence.stall),
        },
    }


@pytest.mark.parametrize(
    "scene,ray_kind,preset,mode", CASES,
    ids=[f"{s}-{k}-{m}" for s, k, _, m in CASES])
def test_golden_workload_stats(scene, ray_kind, preset, mode,
                               update_golden):
    path = GOLDEN_DIR / f"{scene}_{ray_kind}_{mode}.json"
    snapshot = golden_snapshot(scene, ray_kind, preset, mode)
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"missing golden snapshot {path.name}; generate it with "
        "pytest --update-golden")
    golden = json.loads(path.read_text())
    assert snapshot == golden
