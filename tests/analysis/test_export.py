"""CSV export tests."""

import csv

import numpy as np
import pytest

from repro.analysis.divergence import DivergenceBreakdown, breakdown_from_stats
from repro.analysis.export import (
    write_breakdown_csv,
    write_rows_csv,
    write_series_csv,
)
from repro.simt.stats import NUM_W_BUCKETS, DivergenceSampler


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestRowsCSV:
    def test_round_trip(self, tmp_path):
        rows = [{"scene": "a", "value": 1}, {"scene": "b", "value": 2}]
        path = write_rows_csv(tmp_path / "rows.csv", rows)
        data = read_csv(path)
        assert data[0] == ["scene", "value"]
        assert data[1] == ["a", "1"]
        assert data[2] == ["b", "2"]

    def test_missing_keys_blank(self, tmp_path):
        rows = [{"a": 1}, {"b": 2}]
        path = write_rows_csv(tmp_path / "rows.csv", rows)
        data = read_csv(path)
        assert data[1] == ["1", ""]
        assert data[2] == ["", "2"]

    def test_explicit_columns(self, tmp_path):
        rows = [{"a": 1, "b": 2}]
        path = write_rows_csv(tmp_path / "rows.csv", rows, columns=["b"])
        assert read_csv(path)[0] == ["b"]

    def test_creates_parent_dirs(self, tmp_path):
        path = write_rows_csv(tmp_path / "deep" / "dir" / "rows.csv",
                              [{"x": 1}])
        assert path.exists()


class TestBreakdownCSV:
    def make_breakdown(self):
        sampler = DivergenceSampler(window=100)
        sampler.record_issue(0, 32)
        sampler.record_issue(150, 4)
        sampler.record_idle(160)
        stats = type("S", (), {"divergence": sampler})()
        return breakdown_from_stats(stats)

    def test_header_and_rows(self, tmp_path):
        breakdown = self.make_breakdown()
        path = write_breakdown_csv(tmp_path / "b.csv", breakdown)
        data = read_csv(path)
        assert data[0][0] == "window_start_cycle"
        assert len(data[0]) == 1 + NUM_W_BUCKETS + 2
        assert len(data) == 1 + breakdown.num_windows
        assert data[1][0] == "0"
        assert data[2][0] == "100"

    def test_fractions_sum_to_one(self, tmp_path):
        breakdown = self.make_breakdown()
        path = write_breakdown_csv(tmp_path / "b.csv", breakdown)
        data = read_csv(path)
        for row in data[1:]:
            assert sum(float(v) for v in row[1:]) == pytest.approx(1.0)


class TestSeriesCSV:
    def test_basic(self, tmp_path):
        path = write_series_csv(tmp_path / "s.csv", "mrays",
                                ["pdom", "spawn"], [45.8, 73.8])
        data = read_csv(path)
        assert data[0] == ["label", "mrays"]
        assert data[1] == ["pdom", "45.8"]

    def test_length_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            write_series_csv(tmp_path / "s.csv", "x", ["a"], [1.0, 2.0])
