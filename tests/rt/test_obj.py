"""OBJ loader tests."""

import numpy as np
import pytest

from repro.errors import SceneError
from repro.rt.obj import load_obj, parse_obj, scene_from_obj

CUBE_OBJ = """
# a unit cube
v 0 0 0
v 1 0 0
v 1 1 0
v 0 1 0
v 0 0 1
v 1 0 1
v 1 1 1
v 0 1 1
f 1 2 3 4
f 5 8 7 6
f 1 5 6 2
f 2 6 7 3
f 3 7 8 4
f 5 1 4 8
"""


class TestParsing:
    def test_cube_quads_fan_to_twelve_triangles(self):
        triangles = parse_obj(CUBE_OBJ.splitlines())
        assert len(triangles) == 12

    def test_triangle_face(self):
        triangles = parse_obj(["v 0 0 0", "v 1 0 0", "v 0 1 0", "f 1 2 3"])
        assert len(triangles) == 1
        assert np.array_equal(triangles[0].b, [1, 0, 0])

    def test_slash_syntax(self):
        source = ["v 0 0 0", "v 1 0 0", "v 0 1 0", "vt 0 0", "vn 0 0 1",
                  "f 1/1/1 2/1/1 3/1/1"]
        assert len(parse_obj(source)) == 1

    def test_double_slash_syntax(self):
        source = ["v 0 0 0", "v 1 0 0", "v 0 1 0", "f 1//1 2//1 3//1"]
        assert len(parse_obj(source)) == 1

    def test_negative_indices(self):
        source = ["v 0 0 0", "v 1 0 0", "v 0 1 0", "f -3 -2 -1"]
        tri = parse_obj(source)[0]
        assert np.array_equal(tri.a, [0, 0, 0])
        assert np.array_equal(tri.c, [0, 1, 0])

    def test_comments_and_unknown_tags_skipped(self):
        source = ["# header", "o object", "g group", "usemtl steel",
                  "v 0 0 0", "v 1 0 0", "v 0 1 0", "s off", "f 1 2 3"]
        assert len(parse_obj(source)) == 1

    def test_degenerate_faces_dropped(self):
        source = ["v 0 0 0", "v 1 0 0", "v 0 1 0",
                  "f 1 1 1",  # degenerate
                  "f 1 2 3"]
        assert len(parse_obj(source)) == 1


class TestErrors:
    def test_out_of_range_index(self):
        with pytest.raises(SceneError):
            parse_obj(["v 0 0 0", "f 1 2 3"])

    def test_zero_index(self):
        with pytest.raises(SceneError):
            parse_obj(["v 0 0 0", "v 1 0 0", "v 0 1 0", "f 0 1 2"])

    def test_bad_vertex(self):
        with pytest.raises(SceneError):
            parse_obj(["v 1 2"])
        with pytest.raises(SceneError):
            parse_obj(["v a b c"])

    def test_short_face(self):
        with pytest.raises(SceneError):
            parse_obj(["v 0 0 0", "v 1 0 0", "f 1 2"])

    def test_empty_mesh(self):
        with pytest.raises(SceneError):
            parse_obj(["v 0 0 0"])


class TestFileAndScene:
    def test_load_from_file(self, tmp_path):
        path = tmp_path / "cube.obj"
        path.write_text(CUBE_OBJ)
        assert len(load_obj(path)) == 12

    def test_scene_from_obj(self, tmp_path):
        path = tmp_path / "cube.obj"
        path.write_text(CUBE_OBJ)
        scene = scene_from_obj(path)
        assert scene.name == "cube"
        assert scene.num_triangles == 12
        # Camera outside the box, looking at its center.
        assert np.allclose(scene.look_at, [0.5, 0.5, 0.5])
        assert np.linalg.norm(scene.eye - scene.look_at) > 1.0

    def test_obj_scene_traces_end_to_end(self, tmp_path):
        from repro.rt import Camera, build_kdtree, trace_rays
        path = tmp_path / "cube.obj"
        path.write_text(CUBE_OBJ)
        scene = scene_from_obj(path)
        tree = build_kdtree(scene.triangles, max_depth=6, leaf_size=2)
        camera = Camera.for_scene(scene)
        origins, directions = camera.primary_rays(8, 8)
        result = trace_rays(tree, origins, directions)
        assert result.hit_mask.any()

    def test_obj_scene_on_simulator(self, tmp_path):
        from repro.config import scaled_config
        from repro.kernels import build_memory_image, traditional_launch_spec
        from repro.rt import Camera, build_kdtree, trace_rays
        from repro.simt import GPU
        path = tmp_path / "cube.obj"
        path.write_text(CUBE_OBJ)
        scene = scene_from_obj(path)
        tree = build_kdtree(scene.triangles, max_depth=6, leaf_size=2)
        camera = Camera.for_scene(scene)
        origins, directions = camera.primary_rays(8, 8)
        reference = trace_rays(tree, origins, directions)
        image = build_memory_image(tree, origins, directions)
        gpu = GPU(scaled_config(1, max_cycles=2_000_000),
                  traditional_launch_spec(origins.shape[0]),
                  image.global_mem, image.const_mem)
        gpu.run()
        t, tri = image.results()
        assert np.array_equal(tri, reference.triangle)
