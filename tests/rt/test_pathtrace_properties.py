"""Property tests for the russian-roulette path-tracing oracle.

The oracle (:func:`repro.rt.path_trace_rays`) is the functional ground
truth the kernel family is verified against for *exact* equality, so its
own invariants need to hold for every seed and threshold, not just the
preset defaults:

- **Determinism**: a fixed ``(seed, q, max_depth)`` fully determines
  every ray's bounce count, last triangle, and traversal counters.
- **Monotonicity in the roulette threshold**: the path continues while
  ``u < q``, and a continuing bounce always consumes exactly
  :data:`~repro.rt.pathtrace.DRAWS_PER_BOUNCE` draws, so two runs agree
  draw-for-draw until the first decision that falls in ``[q1, q2)`` —
  after which only the higher threshold keeps going. Per-ray bounce
  counts are therefore nondecreasing in ``q``.
- **Budget**: no ray exceeds the bounce budget, and a ray bounced at
  least once iff it ever hit a triangle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.presets import get_preset
from repro.harness.runner import prepare_workload
from repro.rt import path_trace_rays

#: Rays per example: enough camera rays to cover hits, misses, and
#: roulette survivals at every threshold while keeping the scalar oracle
#: inside hypothesis-example time.
NUM_RAYS = 48

thresholds = st.floats(min_value=0.05, max_value=0.95,
                       allow_nan=False, allow_infinity=False)


@pytest.fixture(scope="module")
def primary():
    workload = prepare_workload("conference", get_preset("path-tiny"),
                                ray_kind="primary")
    return (workload.tree, workload.origins[:NUM_RAYS],
            workload.directions[:NUM_RAYS], workload.t_max[:NUM_RAYS])


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16), q=thresholds)
def test_fixed_seed_is_deterministic(primary, seed, q):
    tree, origins, directions, t_max = primary
    first = path_trace_rays(tree, origins, directions, t_max,
                            max_depth=4, roulette_q=q, seed=seed)
    second = path_trace_rays(tree, origins, directions, t_max,
                             max_depth=4, roulette_q=q, seed=seed)
    assert np.array_equal(first.t, second.t)
    assert np.array_equal(first.triangle, second.triangle)
    assert np.array_equal(first.counters.node_visits,
                          second.counters.node_visits)
    assert np.array_equal(first.counters.triangle_tests,
                          second.counters.triangle_tests)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       qs=st.tuples(thresholds, thresholds))
def test_bounce_counts_monotone_in_threshold(primary, seed, qs):
    tree, origins, directions, t_max = primary
    lo, hi = sorted(qs)
    low = path_trace_rays(tree, origins, directions, t_max,
                          max_depth=4, roulette_q=lo, seed=seed)
    high = path_trace_rays(tree, origins, directions, t_max,
                           max_depth=4, roulette_q=hi, seed=seed)
    assert np.all(high.t >= low.t)
    # Traversal work can only grow with the paths that kept going.
    assert np.all(high.counters.node_visits >= low.counters.node_visits)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16), q=thresholds,
       max_depth=st.integers(min_value=1, max_value=6))
def test_bounce_budget_and_record_shape(primary, seed, q, max_depth):
    tree, origins, directions, t_max = primary
    result = path_trace_rays(tree, origins, directions, t_max,
                             max_depth=max_depth, roulette_q=q, seed=seed)
    assert np.all(result.t >= 0.0)
    assert np.all(result.t <= max_depth)
    # A ray carries a last-hit triangle iff it bounced at least once.
    assert np.array_equal(result.t == 0.0, result.triangle == -1)
