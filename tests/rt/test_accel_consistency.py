"""Cross-validation: kd-tree and BVH must agree on every query."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rt import build_bvh, build_kdtree, trace_rays
from tests.conftest import random_triangles


class TestKDTreeVsBVH:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000))
    def test_same_hits_random_scenes(self, seed):
        rng = np.random.default_rng(seed)
        triangles = random_triangles(rng, 40)
        tree = build_kdtree(triangles, max_depth=9, leaf_size=3)
        bvh = build_bvh(triangles, leaf_size=3)
        origins = rng.uniform(-15, 15, size=(10, 3))
        directions = rng.normal(size=(10, 3))
        kd = trace_rays(tree, origins, directions)
        for i in range(10):
            hit = bvh.intersect(origins[i], directions[i])
            if kd.triangle[i] < 0:
                assert hit is None
            else:
                assert hit is not None
                # Same hit distance; the triangle may differ only when two
                # triangles intersect the ray at exactly the same t.
                assert hit[0] == pytest.approx(kd.t[i], rel=1e-9)
                if hit[1] != kd.triangle[i]:
                    assert hit[0] == pytest.approx(kd.t[i], abs=0.0)

    def test_same_hits_on_benchmark_scene(self, tiny_scene, tiny_tree,
                                          tiny_rays):
        origins, directions = tiny_rays
        bvh = build_bvh(tiny_scene.triangles, leaf_size=4)
        kd = trace_rays(tiny_tree, origins, directions)
        mismatches = 0
        for i in range(origins.shape[0]):
            hit = bvh.intersect(origins[i], directions[i])
            if kd.triangle[i] < 0:
                assert hit is None
            else:
                assert hit is not None
                if hit[1] != kd.triangle[i]:
                    mismatches += 1
                    assert hit[0] == pytest.approx(kd.t[i])
        assert mismatches <= origins.shape[0] // 10


class TestBuildParameterInvariance:
    """Hit results must not depend on acceleration-structure parameters."""

    @pytest.mark.parametrize("max_depth,leaf_size", [(4, 16), (8, 4),
                                                     (14, 1)])
    def test_kdtree_params(self, tiny_scene, tiny_rays, max_depth, leaf_size):
        origins, directions = tiny_rays
        baseline = trace_rays(
            build_kdtree(tiny_scene.triangles, max_depth=10, leaf_size=8),
            origins, directions)
        other = trace_rays(
            build_kdtree(tiny_scene.triangles, max_depth=max_depth,
                         leaf_size=leaf_size),
            origins, directions)
        assert np.array_equal(baseline.triangle, other.triangle)
        assert np.allclose(np.where(np.isinf(baseline.t), -1, baseline.t),
                           np.where(np.isinf(other.t), -1, other.t))

    def test_sah_vs_median(self, tiny_scene, tiny_rays):
        origins, directions = tiny_rays
        median = trace_rays(
            build_kdtree(tiny_scene.triangles, max_depth=10, method="median"),
            origins, directions)
        sah = trace_rays(
            build_kdtree(tiny_scene.triangles, max_depth=10, method="sah"),
            origins, directions)
        assert np.array_equal(median.triangle, sah.triangle)
