"""Ray-ordering (Morton / shuffle) tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SceneError
from repro.rt.ordering import (
    apply_order,
    invert_order,
    morton_codes,
    morton_order,
    shuffled_order,
)


class TestMortonCodes:
    def test_origin_is_zero(self):
        assert morton_codes(np.array([0]), np.array([0]))[0] == 0

    def test_known_values(self):
        # (1,0)->1, (0,1)->2, (1,1)->3, (2,2)->12
        xs = np.array([1, 0, 1, 2])
        ys = np.array([0, 1, 1, 2])
        assert morton_codes(xs, ys).tolist() == [1, 2, 3, 12]

    def test_out_of_range_raises(self):
        with pytest.raises(SceneError):
            morton_codes(np.array([-1]), np.array([0]))
        with pytest.raises(SceneError):
            morton_codes(np.array([1 << 16]), np.array([0]))

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 65535), st.integers(0, 65535))
    def test_codes_unique_per_coordinate(self, x, y):
        code = int(morton_codes(np.array([x]), np.array([y]))[0])
        # Deinterleave and verify round trip.
        def compact(v):
            v &= 0x55555555
            v = (v | (v >> 1)) & 0x33333333
            v = (v | (v >> 2)) & 0x0F0F0F0F
            v = (v | (v >> 4)) & 0x00FF00FF
            v = (v | (v >> 8)) & 0x0000FFFF
            return v
        assert compact(code) == x
        assert compact(code >> 1) == y


class TestMortonOrder:
    def test_is_permutation(self):
        order = morton_order(8, 8)
        assert sorted(order.tolist()) == list(range(64))

    def test_first_four_form_a_2x2_tile(self):
        order = morton_order(8, 8)
        ys, xs = np.divmod(order[:4], 8)
        assert set(zip(xs.tolist(), ys.tolist())) == {(0, 0), (1, 0),
                                                      (0, 1), (1, 1)}

    def test_non_square(self):
        order = morton_order(4, 2)
        assert sorted(order.tolist()) == list(range(8))

    def test_bad_dims_raise(self):
        with pytest.raises(SceneError):
            morton_order(0, 4)

    def test_improves_tile_locality(self):
        """Consecutive groups of 32 cover smaller screen areas in Morton
        order than in row-major order on a tall image."""
        width, height = 32, 32
        order = morton_order(width, height)
        def mean_spread(indices):
            ys, xs = np.divmod(indices, width)
            return float((xs.max() - xs.min()) + (ys.max() - ys.min()))
        row_major = np.arange(width * height)
        spreads_rm = [mean_spread(row_major[i:i + 32])
                      for i in range(0, 1024, 32)]
        spreads_mo = [mean_spread(order[i:i + 32])
                      for i in range(0, 1024, 32)]
        assert np.mean(spreads_mo) < np.mean(spreads_rm)


class TestShuffleAndApply:
    def test_shuffled_is_permutation(self):
        order = shuffled_order(100, seed=1)
        assert sorted(order.tolist()) == list(range(100))

    def test_shuffled_deterministic(self):
        assert np.array_equal(shuffled_order(50, 3), shuffled_order(50, 3))

    def test_bad_count_raises(self):
        with pytest.raises(SceneError):
            shuffled_order(0)

    def test_apply_order_parallel_arrays(self):
        order = np.array([2, 0, 1])
        a, b = apply_order(order, np.array([10, 20, 30]),
                           np.array([[1, 1], [2, 2], [3, 3]]))
        assert a.tolist() == [30, 10, 20]
        assert b.tolist() == [[3, 3], [1, 1], [2, 2]]

    def test_invert_order_round_trip(self):
        order = shuffled_order(64, seed=7)
        inverse = invert_order(order)
        data = np.arange(64) * 3.0
        (permuted,) = apply_order(order, data)
        (restored,) = apply_order(inverse, permuted)
        assert np.array_equal(restored, data)
