"""kd-tree build, flatten, and traversal correctness."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SceneError
from repro.rt import build_kdtree, trace_rays
from repro.rt.kdtree import LEAF_AXIS, NODE_WORDS
from repro.rt.trace import brute_force_trace
from tests.conftest import random_triangles


class TestBuild:
    def test_empty_raises(self):
        with pytest.raises(SceneError):
            build_kdtree([])

    def test_bad_params_raise(self, unit_triangles):
        with pytest.raises(SceneError):
            build_kdtree(unit_triangles, max_depth=-1)
        with pytest.raises(SceneError):
            build_kdtree(unit_triangles, leaf_size=0)

    def test_unknown_method_raises(self, unit_triangles):
        with pytest.raises(SceneError):
            build_kdtree(unit_triangles, method="bsp")

    def test_single_leaf_when_small(self, unit_triangles):
        tree = build_kdtree(unit_triangles, leaf_size=8)
        assert tree.root.is_leaf
        assert tree.num_nodes == 1

    def test_bounds_cover_all_triangles(self, tiny_scene):
        tree = build_kdtree(tiny_scene.triangles, max_depth=8)
        for tri in tiny_scene.triangles:
            for vertex in (tri.a, tri.b, tri.c):
                assert tree.bounds.contains(vertex, eps=1e-6)

    def test_depth_limit_respected(self, tiny_scene):
        tree = build_kdtree(tiny_scene.triangles, max_depth=4, leaf_size=1)
        assert tree.stats().max_depth <= 4

    def test_leaf_size_terminates(self, tiny_scene):
        tree = build_kdtree(tiny_scene.triangles, max_depth=30, leaf_size=64)
        # Leaves may exceed leaf_size only when splitting stopped helping.
        stats = tree.stats()
        assert stats.num_leaves >= 1

    def test_sah_build_works(self, tiny_scene):
        tree = build_kdtree(tiny_scene.triangles, max_depth=8, method="sah")
        assert tree.num_nodes >= 1

    def test_deterministic(self, tiny_scene):
        t1 = build_kdtree(tiny_scene.triangles, max_depth=8)
        t2 = build_kdtree(tiny_scene.triangles, max_depth=8)
        assert np.array_equal(t1.nodes, t2.nodes)
        assert np.array_equal(t1.leaf_indices, t2.leaf_indices)


class TestFlatten:
    def test_node_layout(self, tiny_tree):
        nodes = tiny_tree.nodes
        assert nodes.shape[1] == NODE_WORDS
        axes = nodes[:, 0]
        assert set(np.unique(axes)).issubset({0.0, 1.0, 2.0, float(LEAF_AXIS)})

    def test_inner_children_in_range(self, tiny_tree):
        nodes = tiny_tree.nodes
        inner = nodes[nodes[:, 0] != LEAF_AXIS]
        count = nodes.shape[0]
        assert np.all(inner[:, 2] >= 0) and np.all(inner[:, 2] < count)
        assert np.all(inner[:, 3] >= 0) and np.all(inner[:, 3] < count)

    def test_leaves_reference_valid_triangles(self, tiny_tree):
        nodes = tiny_tree.nodes
        leaves = nodes[nodes[:, 0] == LEAF_AXIS]
        total = tiny_tree.leaf_indices.shape[0]
        for row in leaves:
            count, first = int(row[1]), int(row[2])
            assert first + count <= total
        assert np.all(tiny_tree.leaf_indices >= 0)
        assert np.all(tiny_tree.leaf_indices < len(tiny_tree.triangles))

    def test_every_triangle_in_some_leaf(self, tiny_tree):
        referenced = set(tiny_tree.leaf_indices.tolist())
        assert referenced == set(range(len(tiny_tree.triangles)))

    def test_root_is_node_zero(self, tiny_tree):
        assert tiny_tree.root.index == 0


class TestStats:
    def test_stats_consistency(self, tiny_tree):
        stats = tiny_tree.stats()
        assert stats.num_nodes == tiny_tree.num_nodes
        assert stats.num_leaves <= stats.num_nodes
        assert stats.num_triangles == len(tiny_tree.triangles)
        assert 0 <= stats.empty_leaves <= stats.num_leaves
        assert stats.avg_leaf_depth <= stats.max_depth

    def test_inner_plus_leaves(self, tiny_tree):
        stats = tiny_tree.stats()
        # A full binary tree: inner = leaves - 1.
        assert stats.num_nodes == 2 * stats.num_leaves - 1


class TestTraversalCorrectness:
    def test_matches_brute_force_on_scene(self, tiny_scene, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        fast = trace_rays(tiny_tree, origins, directions)
        slow = brute_force_trace(tiny_scene.triangles, origins, directions)
        assert np.array_equal(fast.triangle, slow.triangle)
        assert np.allclose(np.where(np.isinf(fast.t), -1.0, fast.t),
                           np.where(np.isinf(slow.t), -1.0, slow.t))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_matches_brute_force_random(self, seed):
        rng = np.random.default_rng(seed)
        triangles = random_triangles(rng, 30)
        tree = build_kdtree(triangles, max_depth=8, leaf_size=2)
        origins = rng.uniform(-15, 15, size=(8, 3))
        directions = rng.normal(size=(8, 3))
        fast = trace_rays(tree, origins, directions)
        slow = brute_force_trace(triangles, origins, directions)
        assert np.array_equal(fast.triangle, slow.triangle)

    def test_rays_from_inside(self, tiny_tree, tiny_scene):
        center = (tiny_tree.bounds.lo + tiny_tree.bounds.hi) / 2.0
        directions = np.array([[1.0, 0, 0], [0, -1.0, 0], [0, 0, 1.0]])
        origins = np.tile(center, (3, 1))
        fast = trace_rays(tiny_tree, origins, directions)
        slow = brute_force_trace(tiny_scene.triangles, origins, directions)
        assert np.array_equal(fast.triangle, slow.triangle)

    def test_counters_populated(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        result = trace_rays(tiny_tree, origins, directions)
        totals = result.counters.totals()
        assert totals["node_visits"] > 0
        assert totals["leaf_visits"] > 0
        assert totals["triangle_tests"] > 0

    def test_t_max_array_limits_hits(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        unlimited = trace_rays(tiny_tree, origins, directions)
        hits = unlimited.hit_mask
        # Cut every hit short: all previously-hit rays must now miss.
        limits = np.where(hits, unlimited.t * 0.5, np.inf)
        limited = trace_rays(tiny_tree, origins, directions, t_max=limits)
        assert not limited.hit_mask[hits].any()

    def test_t_max_scalar_allows_close_hits(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        unlimited = trace_rays(tiny_tree, origins, directions)
        generous = trace_rays(tiny_tree, origins, directions, t_max=1e9)
        assert np.array_equal(unlimited.triangle, generous.triangle)
