"""Secondary-ray generator tests (shadow, reflection, GI)."""

import numpy as np
import pytest

from repro.errors import SceneError
from repro.rt import Camera, build_kdtree, gi_rays, reflection_rays, shadow_rays, trace_rays
from repro.rt.rays import RayBatch
from repro.rt.vecmath import dot, normalize


@pytest.fixture(scope="module")
def primary_hits(request):
    from repro.rt import make_scene
    scene = make_scene("conference", detail=0.25)
    tree = build_kdtree(scene.triangles, max_depth=10, leaf_size=8)
    camera = Camera.for_scene(scene)
    origins, directions = camera.primary_rays(8, 8)
    result = trace_rays(tree, origins, directions)
    return scene, tree, origins, directions, result


class TestRayBatch:
    def test_mismatched_shapes_raise(self):
        with pytest.raises(SceneError):
            RayBatch(np.zeros((3, 3)), np.zeros((4, 3)), np.zeros(3))

    def test_mismatched_tmax_raises(self):
        with pytest.raises(SceneError):
            RayBatch(np.zeros((3, 3)), np.zeros((3, 3)), np.zeros(4))

    def test_unbounded(self):
        batch = RayBatch.unbounded(np.zeros((5, 3)), np.ones((5, 3)))
        assert batch.num_rays == 5
        assert np.all(np.isinf(batch.t_max))


class TestShadowRays:
    def test_alignment_and_bounds(self, primary_hits):
        scene, tree, origins, directions, result = primary_hits
        batch = shadow_rays(scene.triangles, result.triangle, result.t,
                            origins, directions, scene.light)
        assert batch.num_rays == origins.shape[0]
        hits = result.hit_mask
        assert np.all(batch.t_max[~hits] == 0.0)
        assert np.all(np.isfinite(batch.t_max[hits]))

    def test_directions_point_to_light(self, primary_hits):
        scene, tree, origins, directions, result = primary_hits
        batch = shadow_rays(scene.triangles, result.triangle, result.t,
                            origins, directions, scene.light)
        hits = np.nonzero(result.hit_mask)[0]
        for index in hits[:10]:
            to_light = scene.light - batch.origins[index]
            cosine = float(dot(normalize(to_light), batch.directions[index]))
            assert cosine == pytest.approx(1.0, abs=1e-6)

    def test_shadow_rays_traceable(self, primary_hits):
        scene, tree, origins, directions, result = primary_hits
        batch = shadow_rays(scene.triangles, result.triangle, result.t,
                            origins, directions, scene.light)
        shadow = trace_rays(tree, batch.origins, batch.directions, batch.t_max)
        # Occlusion only defined for primary hits; missed pixels can't hit.
        assert not shadow.hit_mask[~result.hit_mask].any()


class TestReflectionRays:
    def test_alignment(self, primary_hits):
        scene, tree, origins, directions, result = primary_hits
        batch = reflection_rays(scene.triangles, result.triangle, result.t,
                                origins, directions)
        assert batch.num_rays == origins.shape[0]
        assert np.all(batch.t_max[~result.hit_mask] == 0.0)

    def test_reflected_away_from_surface(self, primary_hits):
        scene, tree, origins, directions, result = primary_hits
        batch = reflection_rays(scene.triangles, result.triangle, result.t,
                                origins, directions)
        hits = np.nonzero(result.hit_mask)[0]
        for index in hits[:10]:
            tri = scene.triangles[int(result.triangle[index])]
            normal = normalize(tri.normal)
            if float(dot(normal, directions[index])) > 0:
                normal = -normal
            # Incoming ray goes into the surface; reflected comes out.
            assert float(dot(batch.directions[index], normal)) >= -1e-9

    def test_unit_directions(self, primary_hits):
        scene, tree, origins, directions, result = primary_hits
        batch = reflection_rays(scene.triangles, result.triangle, result.t,
                                origins, directions)
        lengths = np.linalg.norm(batch.directions[result.hit_mask], axis=1)
        assert np.allclose(lengths, 1.0)


class TestGIRays:
    def test_sample_multiplier(self, primary_hits):
        scene, tree, origins, directions, result = primary_hits
        batch = gi_rays(scene.triangles, result.triangle, result.t,
                        origins, directions, samples_per_hit=3)
        assert batch.num_rays == 3 * origins.shape[0]

    def test_bad_samples_raise(self, primary_hits):
        scene, tree, origins, directions, result = primary_hits
        with pytest.raises(SceneError):
            gi_rays(scene.triangles, result.triangle, result.t,
                    origins, directions, samples_per_hit=0)

    def test_hemisphere_about_normal(self, primary_hits):
        scene, tree, origins, directions, result = primary_hits
        batch = gi_rays(scene.triangles, result.triangle, result.t,
                        origins, directions, seed=3)
        hits = np.nonzero(result.hit_mask)[0]
        for index in hits[:20]:
            tri = scene.triangles[int(result.triangle[index])]
            normal = normalize(tri.normal)
            if float(dot(normal, directions[index])) > 0:
                normal = -normal
            assert float(dot(batch.directions[index], normal)) >= -1e-9

    def test_deterministic_by_seed(self, primary_hits):
        scene, tree, origins, directions, result = primary_hits
        a = gi_rays(scene.triangles, result.triangle, result.t,
                    origins, directions, seed=1)
        b = gi_rays(scene.triangles, result.triangle, result.t,
                    origins, directions, seed=1)
        assert np.array_equal(a.directions, b.directions)

    def test_incoherent_compared_to_primary(self, primary_hits):
        scene, tree, origins, directions, result = primary_hits
        batch = gi_rays(scene.triangles, result.triangle, result.t,
                        origins, directions, seed=0)
        # Mean pairwise alignment of adjacent rays is much lower for GI.
        def coherence(dirs):
            return float(np.mean(np.sum(dirs[:-1] * dirs[1:], axis=1)))
        assert coherence(batch.directions) < coherence(directions)
