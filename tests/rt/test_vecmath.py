"""Vector math unit and property tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.rt import vecmath as vm

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_infinity=False)
vec = st.tuples(finite, finite, finite)
nonzero_vec = vec.filter(lambda v: sum(x * x for x in v) > 1e-6)


class TestVec3:
    def test_vec3_builds_float64(self):
        v = vm.vec3(1, 2, 3)
        assert v.dtype == np.float64
        assert v.tolist() == [1.0, 2.0, 3.0]

    def test_dot_single(self):
        assert vm.dot(vm.vec3(1, 2, 3), vm.vec3(4, 5, 6)) == 32.0

    def test_dot_batched(self):
        a = np.array([[1.0, 0, 0], [0, 2.0, 0]])
        b = np.array([[1.0, 0, 0], [0, 3.0, 0]])
        assert vm.dot(a, b).tolist() == [1.0, 6.0]

    def test_cross_right_handed(self):
        assert vm.cross(vm.vec3(1, 0, 0), vm.vec3(0, 1, 0)).tolist() == [0, 0, 1]

    def test_length(self):
        assert vm.length(vm.vec3(3, 4, 0)) == 5.0

    def test_normalize_zero_vector_unchanged(self):
        assert vm.normalize(vm.vec3(0, 0, 0)).tolist() == [0, 0, 0]

    def test_normalize_batch(self):
        batch = np.array([[2.0, 0, 0], [0, 0, 5.0]])
        out = vm.normalize(batch)
        assert np.allclose(out, [[1, 0, 0], [0, 0, 1]])


class TestVecProperties:
    @given(nonzero_vec)
    def test_normalize_gives_unit_length(self, v):
        out = vm.normalize(np.array(v))
        assert abs(float(vm.length(out)) - 1.0) < 1e-9

    @given(nonzero_vec, nonzero_vec)
    def test_cross_orthogonal_to_inputs(self, a, b):
        a = np.array(a)
        b = np.array(b)
        c = vm.cross(a, b)
        scale = float(vm.length(a) * vm.length(b))
        assert abs(float(vm.dot(a, c))) <= 1e-6 * max(scale, 1.0)
        assert abs(float(vm.dot(b, c))) <= 1e-6 * max(scale, 1.0)

    @given(nonzero_vec, nonzero_vec)
    def test_reflect_preserves_length(self, d, n):
        d = vm.normalize(np.array(d))
        n = vm.normalize(np.array(n))
        r = vm.reflect(d, n)
        assert abs(float(vm.length(r)) - 1.0) < 1e-9

    @given(nonzero_vec)
    def test_reflect_along_normal_negates(self, n):
        n = vm.normalize(np.array(n))
        assert np.allclose(vm.reflect(n, n), -n)

    @given(nonzero_vec)
    def test_orthonormal_basis_is_orthonormal(self, n):
        n = vm.normalize(np.array(n))
        t1, t2 = vm.orthonormal_basis(n)
        for v in (t1, t2):
            assert abs(float(vm.length(v)) - 1.0) < 1e-9
        assert abs(float(vm.dot(t1, n))) < 1e-9
        assert abs(float(vm.dot(t2, n))) < 1e-9
        assert abs(float(vm.dot(t1, t2))) < 1e-9

    def test_orthonormal_basis_batched(self):
        normals = vm.normalize(np.array([[0.0, 0, 1], [1.0, 0, 0], [0, -1.0, 0]]))
        t1, t2 = vm.orthonormal_basis(normals)
        assert t1.shape == normals.shape
        assert np.allclose(vm.dot(t1, normals), 0.0, atol=1e-12)
        assert np.allclose(vm.dot(t2, normals), 0.0, atol=1e-12)


class TestReflectBatch:
    def test_reflect_batched(self):
        d = np.array([[1.0, -1.0, 0.0], [0.0, -1.0, 0.0]])
        n = np.array([[0.0, 1.0, 0.0], [0.0, 1.0, 0.0]])
        out = vm.reflect(d, n)
        assert np.allclose(out, [[1.0, 1.0, 0.0], [0.0, 1.0, 0.0]])
