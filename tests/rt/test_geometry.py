"""AABB and Wald triangle intersection tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SceneError
from repro.rt.geometry import (
    AABB,
    Triangle,
    WaldTriangle,
    WALD_TRIANGLE_WORDS,
    triangles_to_wald_array,
)

coord = st.floats(min_value=-100, max_value=100, allow_nan=False,
                  allow_infinity=False)
point = st.tuples(coord, coord, coord).map(lambda t: np.array(t))


def moller_trumbore(tri: Triangle, origin, direction):
    """Independent reference intersection (Möller–Trumbore)."""
    e1 = tri.b - tri.a
    e2 = tri.c - tri.a
    p = np.cross(direction, e2)
    det = float(np.dot(e1, p))
    if det == 0.0:
        return None
    inv = 1.0 / det
    s = origin - tri.a
    u = float(np.dot(s, p)) * inv
    if u < 0.0 or u > 1.0:
        return None
    q = np.cross(s, e1)
    v = float(np.dot(direction, q)) * inv
    if v < 0.0 or u + v > 1.0:
        return None
    t = float(np.dot(e2, q)) * inv
    return t if t > 0.0 else None


class TestAABB:
    def test_of_points(self):
        box = AABB.of_points(np.array([[0, 1, 2], [3, -1, 5.0]]))
        assert box.lo.tolist() == [0, -1, 2]
        assert box.hi.tolist() == [3, 1, 5]

    def test_empty_box(self):
        assert AABB.empty().is_empty

    def test_union(self):
        a = AABB(np.zeros(3), np.ones(3))
        b = AABB(np.full(3, 2.0), np.full(3, 3.0))
        u = a.union(b)
        assert u.lo.tolist() == [0, 0, 0]
        assert u.hi.tolist() == [3, 3, 3]

    def test_surface_area_unit_cube(self):
        box = AABB(np.zeros(3), np.ones(3))
        assert box.surface_area == 6.0

    def test_split(self):
        box = AABB(np.zeros(3), np.ones(3))
        left, right = box.split(0, 0.25)
        assert left.hi[0] == 0.25
        assert right.lo[0] == 0.25
        assert left.lo[0] == 0.0 and right.hi[0] == 1.0

    def test_split_outside_raises(self):
        box = AABB(np.zeros(3), np.ones(3))
        with pytest.raises(SceneError):
            box.split(1, 2.0)

    def test_contains(self):
        box = AABB(np.zeros(3), np.ones(3))
        assert box.contains(np.array([0.5, 0.5, 0.5]))
        assert not box.contains(np.array([1.5, 0.5, 0.5]))

    def test_ray_range_hit(self):
        box = AABB(np.zeros(3), np.ones(3))
        enter, exit_ = box.ray_range(np.array([-1.0, 0.5, 0.5]),
                                     np.array([1.0, 0.0, 0.0]))
        assert enter == pytest.approx(1.0)
        assert exit_ == pytest.approx(2.0)

    def test_ray_range_miss(self):
        box = AABB(np.zeros(3), np.ones(3))
        enter, exit_ = box.ray_range(np.array([-1.0, 5.0, 0.5]),
                                     np.array([1.0, 0.0, 0.0]))
        assert enter > exit_

    def test_ray_range_inside_starts_at_zero(self):
        box = AABB(np.zeros(3), np.ones(3))
        enter, exit_ = box.ray_range(np.array([0.5, 0.5, 0.5]),
                                     np.array([1.0, 0.0, 0.0]))
        assert enter == 0.0
        assert exit_ == pytest.approx(0.5)

    def test_ray_range_zero_direction_component(self):
        box = AABB(np.zeros(3), np.ones(3))
        enter, exit_ = box.ray_range(np.array([-1.0, 0.5, 0.5]),
                                     np.array([1.0, 0.0, 0.0]))
        assert enter <= exit_

    def test_ray_range_zero_direction_outside_slab(self):
        box = AABB(np.zeros(3), np.ones(3))
        enter, exit_ = box.ray_range(np.array([-1.0, 5.0, 0.5]),
                                     np.array([1.0, 0.0, 0.0]))
        assert enter > exit_

    def test_ray_range_origin_on_boundary_zero_direction(self):
        box = AABB(np.zeros(3), np.ones(3))
        enter, exit_ = box.ray_range(np.array([0.0, 0.5, 0.5]),
                                     np.array([0.0, 1.0, 0.0]))
        assert enter <= exit_  # NaN fixups keep the slab unconstrained

    def test_grown(self):
        box = AABB(np.zeros(3), np.ones(3)).grown(0.5)
        assert box.lo.tolist() == [-0.5] * 3
        assert box.hi.tolist() == [1.5] * 3


class TestTriangle:
    def test_normal_direction(self):
        tri = Triangle(np.zeros(3), np.array([1.0, 0, 0]), np.array([0, 1.0, 0]))
        assert tri.normal.tolist() == [0, 0, 1]

    def test_degenerate_detection(self):
        tri = Triangle(np.zeros(3), np.ones(3), np.full(3, 2.0))
        assert tri.is_degenerate

    def test_bounds(self):
        tri = Triangle(np.zeros(3), np.array([1.0, 0, 0]), np.array([0, 2.0, 3.0]))
        box = tri.bounds()
        assert box.lo.tolist() == [0, 0, 0]
        assert box.hi.tolist() == [1, 2, 3]

    def test_centroid(self):
        tri = Triangle(np.zeros(3), np.array([3.0, 0, 0]), np.array([0, 3.0, 0]))
        assert tri.centroid().tolist() == [1, 1, 0]


class TestWaldTriangle:
    def test_precompute_degenerate_raises(self):
        tri = Triangle(np.zeros(3), np.ones(3), np.full(3, 2.0))
        with pytest.raises(SceneError):
            WaldTriangle.precompute(tri)

    def test_simple_hit(self):
        tri = Triangle(np.array([0.0, 0, 0]), np.array([1.0, 0, 0]),
                       np.array([0, 1.0, 0]))
        wald = WaldTriangle.precompute(tri)
        t = wald.intersect(np.array([0.25, 0.25, 1.0]),
                           np.array([0.0, 0.0, -1.0]))
        assert t == pytest.approx(1.0)

    def test_miss_outside(self):
        tri = Triangle(np.array([0.0, 0, 0]), np.array([1.0, 0, 0]),
                       np.array([0, 1.0, 0]))
        wald = WaldTriangle.precompute(tri)
        assert wald.intersect(np.array([0.9, 0.9, 1.0]),
                              np.array([0.0, 0.0, -1.0])) is None

    def test_behind_origin_misses(self):
        tri = Triangle(np.array([0.0, 0, 0]), np.array([1.0, 0, 0]),
                       np.array([0, 1.0, 0]))
        wald = WaldTriangle.precompute(tri)
        assert wald.intersect(np.array([0.25, 0.25, -1.0]),
                              np.array([0.0, 0.0, -1.0])) is None

    def test_t_max_bound(self):
        tri = Triangle(np.array([0.0, 0, 0]), np.array([1.0, 0, 0]),
                       np.array([0, 1.0, 0]))
        wald = WaldTriangle.precompute(tri)
        assert wald.intersect(np.array([0.25, 0.25, 1.0]),
                              np.array([0.0, 0.0, -1.0]), t_max=0.5) is None

    def test_parallel_ray_misses(self):
        tri = Triangle(np.array([0.0, 0, 0]), np.array([1.0, 0, 0]),
                       np.array([0, 1.0, 0]))
        wald = WaldTriangle.precompute(tri)
        assert wald.intersect(np.array([0.0, 0.0, 1.0]),
                              np.array([1.0, 0.0, 0.0])) is None

    def test_words_round_trip(self):
        tri = Triangle(np.array([0.3, 0.1, 0]), np.array([1.2, 0, 0.4]),
                       np.array([0, 1.7, 0.2]))
        wald = WaldTriangle.precompute(tri)
        again = WaldTriangle.from_words(wald.to_words())
        assert again == wald

    def test_words_length(self):
        tri = Triangle(np.zeros(3), np.array([1.0, 0, 0]), np.array([0, 1.0, 0]))
        assert len(WaldTriangle.precompute(tri).to_words()) == WALD_TRIANGLE_WORDS

    def test_array_stacking(self, unit_triangles):
        rows = triangles_to_wald_array(unit_triangles)
        assert rows.shape == (2, WALD_TRIANGLE_WORDS)

    def test_empty_array(self):
        assert triangles_to_wald_array([]).shape == (0, WALD_TRIANGLE_WORDS)

    @settings(max_examples=200, deadline=None)
    @given(point, point, point, point, point)
    def test_matches_moller_trumbore(self, a, b, c, origin, target):
        tri = Triangle(a, b, c)
        if tri.is_degenerate:
            return
        direction = target - origin
        if float(np.dot(direction, direction)) == 0.0:
            return
        try:
            wald = WaldTriangle.precompute(tri)
        except SceneError:
            return
        ours = wald.intersect(origin, direction)
        theirs = moller_trumbore(tri, origin, direction)
        if theirs is None or ours is None:
            # Boundary hits may legitimately differ between formulations;
            # require agreement away from edges.
            if theirs is not None and ours is not None:
                return
            if theirs is None and ours is None:
                return
            t = theirs if theirs is not None else ours
            hit = origin + t * direction
            # Verify the disputed hit is near the triangle plane/edges.
            n = tri.normal / np.linalg.norm(tri.normal)
            assert abs(float(np.dot(hit - tri.a, n))) < 1e-5 * (
                1.0 + float(np.abs(hit).max()))
        else:
            assert ours == pytest.approx(theirs, rel=1e-6, abs=1e-9)
