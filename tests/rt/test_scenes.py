"""Procedural benchmark scene generator tests."""

import numpy as np
import pytest

from repro.errors import SceneError
from repro.rt import BENCHMARK_SCENES, build_kdtree, make_scene
from repro.rt.scenes import PAPER_TRIANGLE_COUNTS


class TestGenerators:
    @pytest.mark.parametrize("name", BENCHMARK_SCENES)
    def test_scene_builds(self, name):
        scene = make_scene(name, detail=0.25)
        assert scene.name == name
        assert scene.num_triangles > 50

    @pytest.mark.parametrize("name", BENCHMARK_SCENES)
    def test_no_degenerate_triangles(self, name):
        scene = make_scene(name, detail=0.25)
        assert not any(tri.is_degenerate for tri in scene.triangles)

    @pytest.mark.parametrize("name", BENCHMARK_SCENES)
    def test_detail_scales_triangle_count(self, name):
        small = make_scene(name, detail=0.25).num_triangles
        large = make_scene(name, detail=1.0).num_triangles
        assert large > small

    @pytest.mark.parametrize("name", BENCHMARK_SCENES)
    def test_deterministic_for_seed(self, name):
        a = make_scene(name, detail=0.25, seed=5)
        b = make_scene(name, detail=0.25, seed=5)
        assert a.num_triangles == b.num_triangles
        assert np.array_equal(a.triangles[10].a, b.triangles[10].a)

    def test_seeds_change_geometry(self):
        a = make_scene("fairyforest", detail=0.25, seed=1)
        b = make_scene("fairyforest", detail=0.25, seed=2)
        different = any(
            not np.array_equal(ta.a, tb.a)
            for ta, tb in zip(a.triangles, b.triangles))
        assert different

    def test_unknown_scene_raises(self):
        with pytest.raises(SceneError):
            make_scene("cornell")

    def test_nonpositive_detail_raises(self):
        with pytest.raises(SceneError):
            make_scene("atrium", detail=0.0)

    def test_paper_counts_listed_for_all(self):
        assert set(PAPER_TRIANGLE_COUNTS) == set(BENCHMARK_SCENES)


class TestSceneCharacter:
    """The spatial characters that drive the paper's divergence claims."""

    def _leaf_visit_variance(self, name):
        from repro.rt import Camera, trace_rays
        scene = make_scene(name, detail=0.5)
        tree = build_kdtree(scene.triangles, max_depth=12, leaf_size=8)
        camera = Camera.for_scene(scene)
        origins, directions = camera.primary_rays(16, 16)
        result = trace_rays(tree, origins, directions)
        visits = result.counters.node_visits.astype(float)
        return visits.std() / max(visits.mean(), 1e-9), result

    def test_fairyforest_open_space_with_clusters(self):
        cv, result = self._leaf_visit_variance("fairyforest")
        # Open space + clusters: high relative variance in traversal work.
        assert cv > 0.3

    def test_all_scenes_have_hits(self):
        for name in BENCHMARK_SCENES:
            _, result = self._leaf_visit_variance(name)
            assert result.hit_mask.mean() > 0.3

    def test_conference_enclosed_room_hits_everywhere(self):
        _, result = self._leaf_visit_variance("conference")
        # Camera inside a closed room: essentially every ray hits geometry.
        assert result.hit_mask.mean() > 0.95
