"""BVH build and query tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SceneError
from repro.rt import build_bvh
from repro.rt.trace import brute_force_trace
from tests.conftest import random_triangles


class TestBuild:
    def test_empty_raises(self):
        with pytest.raises(SceneError):
            build_bvh([])

    def test_bad_params_raise(self, unit_triangles):
        with pytest.raises(SceneError):
            build_bvh(unit_triangles, leaf_size=0)
        with pytest.raises(SceneError):
            build_bvh(unit_triangles, max_depth=-1)

    def test_small_input_single_leaf(self, unit_triangles):
        bvh = build_bvh(unit_triangles, leaf_size=4)
        assert bvh.root.is_leaf
        assert bvh.num_nodes() == 1

    def test_node_count_odd(self, tiny_scene):
        bvh = build_bvh(tiny_scene.triangles, leaf_size=4)
        # Binary tree with 2-way splits: nodes = 2*leaves - 1 (odd).
        assert bvh.num_nodes() % 2 == 1

    def test_depth_limit(self, tiny_scene):
        bvh = build_bvh(tiny_scene.triangles, leaf_size=1, max_depth=3)
        assert bvh.depth() <= 3


class TestQuery:
    def test_matches_brute_force_scene(self, tiny_scene, tiny_rays):
        origins, directions = tiny_rays
        bvh = build_bvh(tiny_scene.triangles, leaf_size=4)
        slow = brute_force_trace(tiny_scene.triangles, origins, directions)
        for i in range(origins.shape[0]):
            hit = bvh.intersect(origins[i], directions[i])
            if slow.triangle[i] < 0:
                assert hit is None
            else:
                assert hit is not None
                assert hit[1] == slow.triangle[i]
                assert hit[0] == pytest.approx(slow.t[i])

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_matches_brute_force_random(self, seed):
        rng = np.random.default_rng(seed)
        triangles = random_triangles(rng, 25)
        bvh = build_bvh(triangles, leaf_size=2)
        origins = rng.uniform(-15, 15, size=(6, 3))
        directions = rng.normal(size=(6, 3))
        slow = brute_force_trace(triangles, origins, directions)
        for i in range(6):
            hit = bvh.intersect(origins[i], directions[i])
            expected = int(slow.triangle[i])
            if expected < 0:
                assert hit is None
            else:
                assert hit is not None and hit[1] == expected

    def test_t_max_bound(self, tiny_scene, tiny_rays):
        origins, directions = tiny_rays
        bvh = build_bvh(tiny_scene.triangles, leaf_size=4)
        hit = None
        for i in range(origins.shape[0]):
            hit = bvh.intersect(origins[i], directions[i])
            if hit is not None:
                bounded = bvh.intersect(origins[i], directions[i],
                                        t_max=hit[0] * 0.5)
                assert bounded is None or bounded[0] < hit[0]
                break
        assert hit is not None
