"""Framebuffer and shading tests."""

import numpy as np
import pytest

from repro.errors import SceneError
from repro.rt import Framebuffer, build_kdtree, trace_rays
from repro.rt.image import shade_hits


class TestFramebuffer:
    def test_blank(self):
        frame = Framebuffer.blank(4, 3)
        assert frame.pixels.shape == (3, 4, 3)
        assert frame.mean_luminance() == 0.0

    def test_bad_dimensions_raise(self):
        with pytest.raises(SceneError):
            Framebuffer.blank(0, 4)

    def test_ppm_write(self, tmp_path):
        frame = Framebuffer.blank(2, 2)
        frame.pixels[0, 0] = [1.0, 0.0, 0.0]
        path = tmp_path / "out.ppm"
        frame.write_ppm(str(path))
        data = path.read_bytes()
        assert data.startswith(b"P6 2 2 255\n")
        assert data[len(b"P6 2 2 255\n"):][:3] == bytes([255, 0, 0])

    def test_ppm_clamps(self, tmp_path):
        frame = Framebuffer.blank(1, 1)
        frame.pixels[0, 0] = [2.0, -1.0, 0.5]
        path = tmp_path / "clamp.ppm"
        frame.write_ppm(str(path))
        body = path.read_bytes().split(b"\n", 1)[1]
        assert body[0] == 255 and body[1] == 0


class TestShadeHits:
    def test_shading_hits_differ_from_sky(self, tiny_scene, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        result = trace_rays(tiny_tree, origins, directions)
        frame = shade_hits(8, 8, tiny_scene.triangles, result.triangle,
                           result.t, directions)
        sky = np.array([0.55, 0.68, 0.90])
        flat = frame.pixels.reshape(-1, 3)
        hits = result.hit_mask
        assert not np.allclose(flat[hits], sky)
        if (~hits).any():
            assert np.allclose(flat[~hits], sky)

    def test_shadow_darkens(self, tiny_scene, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        result = trace_rays(tiny_tree, origins, directions)
        shadowed = result.hit_mask.copy()
        lit = shade_hits(8, 8, tiny_scene.triangles, result.triangle,
                         result.t, directions)
        dark = shade_hits(8, 8, tiny_scene.triangles, result.triangle,
                          result.t, directions, shadowed=shadowed)
        assert dark.mean_luminance() < lit.mean_luminance()
