"""Reference tracer behaviour: counters, early exit, limits."""

import numpy as np
import pytest

from repro.rt import build_kdtree, trace_rays
from repro.rt.geometry import Triangle
from repro.rt.trace import brute_force_trace


def wall_scene():
    """Two parallel walls at z=0 and z=-5 facing +z."""
    def quad(z):
        a = np.array([-10.0, -10.0, z])
        b = np.array([10.0, -10.0, z])
        c = np.array([10.0, 10.0, z])
        d = np.array([-10.0, 10.0, z])
        return [Triangle(a, b, c), Triangle(a, c, d)]
    return quad(0.0) + quad(-5.0)


class TestBasicHits:
    def test_closest_wall_wins(self):
        tris = wall_scene()
        tree = build_kdtree(tris, leaf_size=1, max_depth=6)
        result = trace_rays(tree, np.array([[0.5, 0.5, 3.0]]),
                            np.array([[0.0, 0.0, -1.0]]))
        assert result.triangle[0] in (0, 1)
        assert result.t[0] == pytest.approx(3.0)

    def test_miss_behind(self):
        tris = wall_scene()
        tree = build_kdtree(tris, leaf_size=1, max_depth=6)
        result = trace_rays(tree, np.array([[0.5, 0.5, 3.0]]),
                            np.array([[0.0, 0.0, 1.0]]))
        assert result.triangle[0] == -1
        assert np.isinf(result.t[0])

    def test_ray_outside_world_misses(self, tiny_tree):
        far = tiny_tree.bounds.hi + 100.0
        result = trace_rays(tiny_tree, far[None, :],
                            np.array([[1.0, 0.0, 0.0]]))
        assert result.triangle[0] == -1
        assert result.counters.node_visits[0] == 0

    def test_t_limit_excludes_far_wall(self):
        tris = wall_scene()
        tree = build_kdtree(tris, leaf_size=1, max_depth=6)
        result = trace_rays(tree, np.array([[0.5, 0.5, 3.0]]),
                            np.array([[0.0, 0.0, -1.0]]), t_max=2.0)
        assert result.triangle[0] == -1

    def test_t_limit_keeps_near_wall(self):
        tris = wall_scene()
        tree = build_kdtree(tris, leaf_size=1, max_depth=6)
        result = trace_rays(tree, np.array([[0.5, 0.5, 3.0]]),
                            np.array([[0.0, 0.0, -1.0]]), t_max=4.0)
        assert result.triangle[0] in (0, 1)


class TestCounters:
    def test_counts_scale_with_rays(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        full = trace_rays(tiny_tree, origins, directions)
        half = trace_rays(tiny_tree, origins[:32], directions[:32])
        assert (full.counters.totals()["node_visits"]
                > half.counters.totals()["node_visits"])

    def test_per_ray_counter_shapes(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        result = trace_rays(tiny_tree, origins, directions)
        n = origins.shape[0]
        assert result.counters.node_visits.shape == (n,)
        assert result.counters.leaf_visits.shape == (n,)
        assert result.counters.triangle_tests.shape == (n,)
        assert result.counters.stack_pushes.shape == (n,)

    def test_pushes_bounded_by_node_visits(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        result = trace_rays(tiny_tree, origins, directions)
        assert np.all(result.counters.stack_pushes
                      <= result.counters.node_visits)

    def test_brute_force_counters(self, tiny_scene, tiny_rays):
        origins, directions = tiny_rays
        result = brute_force_trace(tiny_scene.triangles, origins, directions)
        assert np.all(result.counters.triangle_tests
                      == len(tiny_scene.triangles))


class TestResultAccessors:
    def test_hit_mask(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        result = trace_rays(tiny_tree, origins, directions)
        assert np.array_equal(result.hit_mask, result.triangle >= 0)
        assert result.num_rays == origins.shape[0]

    def test_misses_have_infinite_t(self, tiny_tree, tiny_rays):
        origins, directions = tiny_rays
        result = trace_rays(tiny_tree, origins, directions)
        assert np.all(np.isinf(result.t[~result.hit_mask]))
        assert np.all(np.isfinite(result.t[result.hit_mask]))
