"""Camera and primary-ray generation tests."""

import numpy as np
import pytest

from repro.errors import SceneError
from repro.rt import Camera
from repro.rt.vecmath import vec3


def basic_camera(fov=60.0):
    return Camera(eye=vec3(0, 0, 5), look_at=vec3(0, 0, 0),
                  up=vec3(0, 1, 0), fov_degrees=fov)


class TestCameraValidation:
    def test_bad_fov_raises(self):
        with pytest.raises(SceneError):
            basic_camera(fov=0.0)
        with pytest.raises(SceneError):
            basic_camera(fov=180.0)

    def test_eye_equals_lookat_raises(self):
        with pytest.raises(SceneError):
            Camera(eye=vec3(1, 1, 1), look_at=vec3(1, 1, 1), up=vec3(0, 1, 0))

    def test_bad_dimensions_raise(self):
        with pytest.raises(SceneError):
            basic_camera().primary_rays(0, 8)
        with pytest.raises(SceneError):
            basic_camera().primary_rays(8, -1)


class TestBasis:
    def test_orthonormal(self):
        right, up, forward = basic_camera().basis()
        for v in (right, up, forward):
            assert np.linalg.norm(v) == pytest.approx(1.0)
        assert np.dot(right, up) == pytest.approx(0.0, abs=1e-12)
        assert np.dot(right, forward) == pytest.approx(0.0, abs=1e-12)

    def test_forward_towards_lookat(self):
        _, _, forward = basic_camera().basis()
        assert forward.tolist() == [0, 0, -1]


class TestPrimaryRays:
    def test_shapes_and_origin(self):
        origins, directions = basic_camera().primary_rays(8, 4)
        assert origins.shape == (32, 3)
        assert directions.shape == (32, 3)
        assert np.allclose(origins, [0, 0, 5])

    def test_directions_unit(self):
        _, directions = basic_camera().primary_rays(8, 8)
        lengths = np.linalg.norm(directions, axis=1)
        assert np.allclose(lengths, 1.0)

    def test_center_ray_points_forward(self):
        _, directions = basic_camera().primary_rays(9, 9)
        center = directions[4 * 9 + 4]
        assert np.allclose(center, [0, 0, -1], atol=1e-6)

    def test_row_major_order(self):
        _, directions = basic_camera().primary_rays(8, 8)
        # Consecutive rays on a row differ in x more than in y.
        delta = directions[1] - directions[0]
        assert abs(delta[0]) > abs(delta[1])

    def test_wider_fov_spreads_rays(self):
        _, narrow = basic_camera(fov=30).primary_rays(8, 8)
        _, wide = basic_camera(fov=100).primary_rays(8, 8)
        spread = lambda d: float(np.dot(d[0], d[7]))
        assert spread(wide) < spread(narrow)  # larger angle between corners

    def test_for_scene(self, tiny_scene):
        camera = Camera.for_scene(tiny_scene)
        assert np.array_equal(camera.eye, tiny_scene.eye)
        origins, directions = camera.primary_rays(4, 4)
        assert origins.shape == (16, 3)
