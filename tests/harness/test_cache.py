"""Persistent workload cache: bit-identity, recovery, and bookkeeping.

The cache's contract is that a loaded workload is indistinguishable from
a freshly built one — every float64 array roundtrips exactly through
``.npz`` — and that bad entries (corrupt files, stale salts) are deleted
and rebuilt rather than served or raised on.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.harness.cache import (
    CACHE_SALT,
    WorkloadCache,
    cache_enabled,
    resolve_cache_dir,
)
from repro.harness.presets import get_preset
from repro.harness.runner import build_workload, prepare_workload, run_mode
from repro.harness.sweep import run_stats_digest

SCENE = "conference"


@pytest.fixture(scope="module")
def preset():
    return get_preset("tiny")


@pytest.fixture(scope="module")
def built(preset):
    """Uncached reference build to compare cache products against."""
    return build_workload(SCENE, preset)


def assert_workloads_identical(a, b):
    """Every array the simulator consumes must match bit-for-bit."""
    assert a.scene_name == b.scene_name and a.ray_kind == b.ray_kind
    assert np.array_equal(a.origins, b.origins)
    assert np.array_equal(a.directions, b.directions)
    assert np.array_equal(a.t_max, b.t_max)
    assert np.array_equal(a.reference.t, b.reference.t)
    assert np.array_equal(a.reference.triangle, b.reference.triangle)
    for field in ("node_visits", "leaf_visits", "triangle_tests",
                  "stack_pushes"):
        assert np.array_equal(getattr(a.reference.counters, field),
                              getattr(b.reference.counters, field))
    assert np.array_equal(a.tree.nodes, b.tree.nodes)
    assert np.array_equal(a.tree.leaf_indices, b.tree.leaf_indices)
    assert np.array_equal(a.tree.bounds.lo, b.tree.bounds.lo)
    assert np.array_equal(a.tree.bounds.hi, b.tree.bounds.hi)
    assert a.tree.stats() == b.tree.stats()
    assert len(a.tree.triangles) == len(b.tree.triangles)
    for tri_a, tri_b in zip(a.tree.triangles, b.tree.triangles):
        assert np.array_equal(tri_a.a, tri_b.a)
        assert np.array_equal(tri_a.b, tri_b.b)
        assert np.array_equal(tri_a.c, tri_b.c)
    if a.light is None:
        assert b.light is None
    else:
        assert np.array_equal(a.light, b.light)


class TestRoundtrip:
    def test_store_then_disk_load_is_bit_identical(self, tmp_path, preset,
                                                   built):
        writer = WorkloadCache(tmp_path)
        stored = writer.workload(SCENE, preset)
        assert writer.stats.misses == 1 and writer.stats.stores == 1
        assert_workloads_identical(stored, built)
        # A fresh instance sees only the file, never the build path.
        reader = WorkloadCache(tmp_path)
        loaded = reader.workload(SCENE, preset)
        assert reader.stats.disk_hits == 1 and reader.stats.misses == 0
        assert_workloads_identical(loaded, built)

    def test_simulation_on_loaded_workload_matches(self, tmp_path, preset,
                                                   built):
        cache = WorkloadCache(tmp_path)
        cache.workload(SCENE, preset)
        loaded = WorkloadCache(tmp_path).workload(SCENE, preset)
        fresh = run_mode("spawn", built, max_cycles=30_000)
        cached = run_mode("spawn", loaded, max_cycles=30_000)
        assert run_stats_digest(fresh.stats) == run_stats_digest(cached.stats)
        assert cached.verify()

    def test_secondary_derived_from_cached_primary(self, tmp_path, preset):
        cache = WorkloadCache(tmp_path)
        shadow = cache.workload(SCENE, preset, ray_kind="shadow")
        # One full build (the primary), one derivation, two stored entries.
        assert cache.stats.misses == 1
        assert cache.stats.derived == 1
        assert cache.stats.stores == 2
        assert_workloads_identical(
            shadow, build_workload(SCENE, preset, ray_kind="shadow"))

    def test_rehydrated_primary_derives_identical_secondary(self, tmp_path,
                                                            preset):
        WorkloadCache(tmp_path).workload(SCENE, preset)
        cache = WorkloadCache(tmp_path)  # primary comes from disk
        gi = cache.workload(SCENE, preset, ray_kind="gi", seed=3)
        assert cache.stats.disk_hits == 1 and cache.stats.misses == 0
        assert_workloads_identical(
            gi, build_workload(SCENE, preset, ray_kind="gi", seed=3))


class TestMemoryLRU:
    def test_second_lookup_hits_memory(self, tmp_path, preset):
        cache = WorkloadCache(tmp_path)
        first = cache.workload(SCENE, preset)
        second = cache.workload(SCENE, preset)
        assert cache.stats.memory_hits == 1
        assert second is first

    def test_budget_only_preset_change_shares_entry(self, tmp_path, preset):
        cache = WorkloadCache(tmp_path)
        cache.workload(SCENE, preset)
        budget = dataclasses.replace(preset, max_cycles=123, num_sms=2)
        assert cache.key(SCENE, budget) == cache.key(SCENE, preset)
        shared = cache.workload(SCENE, budget)
        assert cache.stats.memory_hits == 1 and cache.stats.misses == 1
        assert shared.preset is budget

    def test_eviction(self, tmp_path, preset):
        cache = WorkloadCache(tmp_path, max_memory_entries=1)
        cache.workload(SCENE, preset)
        cache.workload(SCENE, preset, ray_kind="shadow")
        assert cache.stats.evictions >= 1
        # Evicted entry comes back from disk, not a rebuild.
        cache.workload(SCENE, preset)
        assert cache.stats.misses == 1
        assert cache.stats.disk_hits >= 1


class TestRecovery:
    def test_corrupt_entry_deleted_and_rebuilt(self, tmp_path, preset, built):
        WorkloadCache(tmp_path).workload(SCENE, preset)
        [entry] = tmp_path.glob("*.npz")
        entry.write_bytes(b"not a zip archive")
        cache = WorkloadCache(tmp_path)
        workload = cache.workload(SCENE, preset)
        assert cache.stats.corrupt_entries == 1
        assert cache.stats.misses == 1  # rebuilt
        assert_workloads_identical(workload, built)
        # The rebuilt entry is valid again.
        reader = WorkloadCache(tmp_path)
        reader.workload(SCENE, preset)
        assert reader.stats.disk_hits == 1

    def test_stale_salt_entry_deleted_and_rebuilt(self, tmp_path, preset,
                                                  built):
        cache = WorkloadCache(tmp_path)
        cache.workload(SCENE, preset)
        [entry] = tmp_path.glob("*.npz")
        # Tamper the stored salt in place: same filename (same key hash),
        # wrong embedded salt — as if workload code changed under a
        # hand-copied cache directory.
        with np.load(entry, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["salt"] = np.array("workload-v0-stale")
        np.savez(entry.with_suffix(""), **arrays)
        fresh = WorkloadCache(tmp_path)
        workload = fresh.workload(SCENE, preset)
        assert fresh.stats.stale_entries == 1
        assert fresh.stats.misses == 1
        assert_workloads_identical(workload, built)

    def test_salt_participates_in_key(self, tmp_path, preset):
        a = WorkloadCache(tmp_path, salt=CACHE_SALT)
        b = WorkloadCache(tmp_path, salt=CACHE_SALT + "-alt")
        assert a.key(SCENE, preset) != b.key(SCENE, preset)


class TestManagement:
    def test_info_and_clear(self, tmp_path, preset):
        cache = WorkloadCache(tmp_path)
        cache.workload(SCENE, preset)
        cache.workload(SCENE, preset, ray_kind="shadow")
        info = cache.info()
        assert info["entries"] == 2
        assert info["total_bytes"] > 0
        assert info["stats"]["stores"] == 2
        assert cache.clear() == 2
        assert cache.info()["entries"] == 0
        # Memory LRU is forgotten too: next lookup rebuilds.
        cache.workload(SCENE, preset)
        assert cache.stats.misses == 2

    def test_key_depends_on_geometry_fields(self, tmp_path, preset):
        cache = WorkloadCache(tmp_path)
        base = cache.key(SCENE, preset)
        assert cache.key("atrium", preset) != base
        assert cache.key(SCENE, preset, ray_kind="shadow") != base
        assert cache.key(SCENE, preset, seed=1) != base
        detail = dataclasses.replace(preset, scene_detail=0.5)
        assert cache.key(SCENE, detail) != base


class TestEnvControls:
    def test_cache_disabled_builds_without_files(self, tmp_path, monkeypatch,
                                                 preset):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert not cache_enabled()
        workload = prepare_workload(SCENE, preset)
        assert workload.num_rays == preset.num_rays
        assert list(tmp_path.glob("*.npz")) == []

    def test_cache_dir_resolution(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "explicit"))
        assert resolve_cache_dir() == tmp_path / "explicit"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert resolve_cache_dir() == tmp_path / "xdg" / "repro"

    def test_prepare_workload_explicit_instance_and_bypass(self, tmp_path,
                                                           preset):
        cache = WorkloadCache(tmp_path)
        prepare_workload(SCENE, preset, cache=cache)
        assert cache.stats.misses == 1
        prepare_workload(SCENE, preset, cache=cache)
        assert cache.stats.memory_hits == 1
        before = cache.stats.as_dict()
        prepare_workload(SCENE, preset, cache=False)  # full bypass
        assert cache.stats.as_dict() == before
