"""Sweep fault tolerance: every recovery path, deterministically.

Faults are injected through :class:`~repro.harness.sweep.FaultInjector`
(``REPRO_FAULT_SPEC``), whose firing counts live in exclusive token files
so they hold across worker processes and pool respawns — no flaky
sleeps or signal races. Each test asserts both the recovery behaviour
*and* that the recovered sweep is bit-identical to a clean serial run.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, FaultInjectionError, SweepError
from repro.harness.sweep import (
    FaultInjector,
    RetryPolicy,
    SweepJob,
    run_stats_digest,
    run_sweep,
)

#: Small cycle budget: recovery mechanics don't need converged statistics.
MAX_CYCLES = 5_000


@pytest.fixture(scope="module", autouse=True)
def isolated_cache(tmp_path_factory):
    patch = pytest.MonkeyPatch()
    patch.setenv("REPRO_CACHE_DIR",
                 str(tmp_path_factory.mktemp("faults-cache")))
    patch.delenv("REPRO_CACHE", raising=False)
    patch.delenv("REPRO_JOBS", raising=False)
    patch.delenv("REPRO_FAULT_SPEC", raising=False)
    patch.delenv("REPRO_FAULT_DIR", raising=False)
    yield
    patch.undo()


def fault_jobs():
    jobs = [SweepJob(scene="conference", mode=mode, preset="tiny",
                     max_cycles=MAX_CYCLES)
            for mode in ("pdom_block", "pdom_warp", "spawn")]
    jobs.append(SweepJob(scene="fairyforest", mode="pdom_block",
                         preset="tiny", max_cycles=MAX_CYCLES))
    return jobs


def digests(results):
    return [run_stats_digest(result.stats) for result in results]


@pytest.fixture(scope="module")
def reference(isolated_cache):
    """Clean serial run — the bit-identity baseline for every recovery."""
    return digests(run_sweep(fault_jobs(), jobs_n=1))


@pytest.fixture
def inject(monkeypatch, tmp_path):
    """Arm ``REPRO_FAULT_SPEC`` with a fresh cross-process state dir."""

    def arm(spec: str) -> None:
        monkeypatch.setenv("REPRO_FAULT_SPEC", spec)
        monkeypatch.setenv("REPRO_FAULT_DIR", str(tmp_path / "fault-state"))

    return arm


class TestFaultSpec:
    def test_parse_clauses(self):
        injector = FaultInjector.parse(
            "crash@conference:spawn, hang@fairyforest:pdom_block*2")
        kinds = [(c.kind, c.scene, c.mode, c.count) for c in injector.clauses]
        assert kinds == [("crash", "conference", "spawn", 1),
                        ("hang", "fairyforest", "pdom_block", 2)]

    @pytest.mark.parametrize("spec", [
        "segfault@conference:spawn",     # unknown kind
        "crash@conference",              # missing mode
        "crash conference:spawn",        # missing @
        "crash@conference:spawn*many",   # non-integer count
    ])
    def test_bad_spec_raises(self, spec):
        with pytest.raises(ConfigError):
            FaultInjector.parse(spec)

    def test_firing_count_is_exact(self, tmp_path):
        injector = FaultInjector.parse("exception@conference:spawn*2",
                                       state_dir=tmp_path / "state")
        job = SweepJob(scene="conference", mode="spawn", preset="tiny")
        for _ in range(2):
            with pytest.raises(FaultInjectionError):
                injector.fire(job)
        injector.fire(job)  # third execution: the fault budget is spent

    def test_non_matching_job_untouched(self, tmp_path):
        injector = FaultInjector.parse("exception@conference:spawn",
                                       state_dir=tmp_path / "state")
        injector.fire(SweepJob(scene="conference", mode="pdom_warp",
                               preset="tiny"))


class TestPoolRecovery:
    def test_crash_retries_to_identical_results(self, reference, inject):
        inject("crash@conference:spawn")
        swept = run_sweep(fault_jobs(), jobs_n=2,
                          retry=RetryPolicy(backoff_seconds=0.05))
        assert swept.ok
        assert digests(swept) == reference

    def test_persistent_crash_quarantines_only_culprit(self, reference,
                                                       inject):
        inject("crash@conference:spawn*5")
        lines = []
        swept = run_sweep(fault_jobs(), jobs_n=2, strict=False,
                          progress=lines.append,
                          retry=RetryPolicy(max_attempts=3,
                                            backoff_seconds=0.05))
        assert len(swept) == 3
        assert len(swept.failures) == 1
        failure = swept.failures[0]
        assert failure.kind == "crash"
        assert failure.attempts == 3
        assert failure.job.describe() == "conference:spawn"
        # Co-running innocents must never burn a retry attempt.
        assert not [line for line in lines
                    if "[retry]" in line and "spawn" not in line]

    def test_hang_recovers_via_timeout(self, reference, inject):
        inject("hang@conference:pdom_warp")
        swept = run_sweep(fault_jobs(), jobs_n=2,
                          retry=RetryPolicy(timeout_seconds=1.0,
                                            backoff_seconds=0.0))
        assert swept.ok
        assert digests(swept) == reference

    def test_strict_failure_raises_with_partial_results(self, reference,
                                                        inject):
        inject("exception@conference:spawn*5")
        with pytest.raises(SweepError, match="permanently failed") as info:
            run_sweep(fault_jobs(), jobs_n=2,
                      retry=RetryPolicy(max_attempts=2, backoff_seconds=0.0))
        assert len(info.value.failures) == 1
        assert info.value.failures[0].kind == "exception"
        assert len(info.value.results) == 3


class TestSerialRecovery:
    def test_exception_retried_in_process(self, reference, inject):
        inject("exception@conference:spawn")
        swept = run_sweep(fault_jobs(), jobs_n=1,
                          retry=RetryPolicy(backoff_seconds=0.0))
        assert swept.ok
        assert digests(swept) == reference

    def test_exhausted_retries_quarantine(self, reference, inject):
        inject("exception@conference:spawn*5")
        swept = run_sweep(fault_jobs(), jobs_n=1, strict=False,
                          retry=RetryPolicy(max_attempts=2,
                                            backoff_seconds=0.0))
        assert len(swept) == 3
        assert len(swept.failures) == 1
        assert swept.failures[0].kind == "exception"
        assert "injected exception" in swept.failures[0].error
