"""Sweep engine determinism: ``--jobs N`` == ``--jobs 1`` == direct.

Two scenes x three machine modes are swept serially, through a 4-worker
process pool, and via direct :func:`run_mode` calls; all three paths must
produce bit-identical :func:`run_stats_digest` fingerprints, pinned
against a golden JSON snapshot (regenerate with ``pytest
--update-golden``).
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.errors import ConfigError, SchedulingError
from repro.harness.cache import default_cache
from repro.harness.presets import get_preset
from repro.harness.runner import prepare_workload, run_mode
from repro.harness import sweep as sweep_module
from repro.harness.sweep import (
    JobResult,
    RetryPolicy,
    SweepCheckpoint,
    SweepJob,
    SweepResults,
    default_checkpoint_path,
    resolve_jobs,
    run_stats_digest,
    run_sweep,
    warm_workloads,
)

GOLDEN = pathlib.Path(__file__).parent / "golden" / "sweep_digests.json"

SCENES = ("conference", "fairyforest")
MODES = ("pdom_block", "pdom_warp", "spawn")
#: Bounded so the suite stays fast; every mode still crosses DRAM waits,
#: divergence, and (for spawn) warp formation at this budget.
MAX_CYCLES = 30_000


@pytest.fixture(scope="module", autouse=True)
def isolated_cache(tmp_path_factory):
    """Hermetic workload cache for the whole module (shared across tests)."""
    patch = pytest.MonkeyPatch()
    patch.setenv("REPRO_CACHE_DIR",
                 str(tmp_path_factory.mktemp("sweep-cache")))
    patch.delenv("REPRO_CACHE", raising=False)
    patch.delenv("REPRO_JOBS", raising=False)
    yield
    patch.undo()


def sweep_jobs():
    return [SweepJob(scene=scene, mode=mode, preset="tiny",
                     max_cycles=MAX_CYCLES)
            for scene in SCENES for mode in MODES]


def digest_map(results):
    return {f"{result.job.scene}:{result.job.mode}":
            run_stats_digest(result.stats) for result in results}


@pytest.fixture(scope="module")
def serial_results(isolated_cache):
    return run_sweep(sweep_jobs(), jobs_n=1)


class TestDeterminism:
    def test_all_jobs_verify(self, serial_results):
        assert len(serial_results) == len(SCENES) * len(MODES)
        assert all(result.verified for result in serial_results)

    def test_pool_matches_serial(self, serial_results):
        warm_workloads(SCENES, "tiny", jobs_n=4)
        parallel = run_sweep(sweep_jobs(), jobs_n=4)
        assert digest_map(parallel) == digest_map(serial_results)

    def test_direct_run_matches_sweep(self, serial_results):
        preset = get_preset("tiny")
        for scene in SCENES:
            workload = prepare_workload(scene, preset)
            direct = run_mode("spawn", workload, max_cycles=MAX_CYCLES)
            via_sweep = serial_results.get(scene, "spawn")
            assert (run_stats_digest(direct.stats)
                    == run_stats_digest(via_sweep.stats))

    def test_golden_digests(self, serial_results, update_golden):
        snapshot = digest_map(serial_results)
        if update_golden:
            GOLDEN.parent.mkdir(exist_ok=True)
            GOLDEN.write_text(
                json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
            return
        assert GOLDEN.exists(), (
            "missing golden sweep digests; generate with "
            "pytest --update-golden")
        assert snapshot == json.loads(GOLDEN.read_text())

    def test_second_sweep_skips_all_builds(self, serial_results):
        """Warm cache: rerunning the sweep must do zero kd-tree builds."""
        cache = default_cache()
        builds_before = cache.stats.builds
        hits_before = cache.stats.memory_hits + cache.stats.disk_hits
        rerun = run_sweep(sweep_jobs(), jobs_n=1)
        assert cache.stats.builds == builds_before
        assert (cache.stats.memory_hits + cache.stats.disk_hits
                > hits_before)
        assert digest_map(rerun) == digest_map(serial_results)


class TestSweepResults:
    def test_lookup_by_key(self, serial_results):
        result = serial_results.get("conference", "pdom_warp")
        assert result.job.scene == "conference"
        assert result.num_rays == get_preset("tiny").num_rays
        assert 0.0 < result.simt_efficiency <= 1.0
        assert result.wall_seconds > 0

    def test_missing_key_raises(self, serial_results):
        with pytest.raises(KeyError, match="no sweep result"):
            serial_results.get("conference", "spawn_ideal")

    def test_progress_lines(self):
        lines = []
        run_sweep([SweepJob(scene="conference", mode="pdom_block",
                            preset="tiny", max_cycles=5_000)],
                  jobs_n=1, progress=lines.append)
        assert len(lines) == 1
        assert lines[0].startswith("[1/1] conference:pdom_block")

    def test_duplicate_keys_rejected(self, serial_results):
        first = serial_results.results[0]
        with pytest.raises(SchedulingError, match="duplicate"):
            SweepResults([first, first])

    def test_duplicate_jobs_rejected_before_execution(self):
        job = SweepJob(scene="conference", mode="pdom_block", preset="tiny")
        with pytest.raises(SchedulingError, match="conference"):
            run_sweep([job, job], jobs_n=1)

    def test_zero_ray_completed_fraction(self, serial_results):
        sample = serial_results.results[0]
        empty = JobResult(job=sample.job, stats=sample.stats, num_rays=0,
                          verified=True, wall_seconds=0.0)
        assert empty.completed_fraction == 0.0


class TestCheckpointResume:
    def test_resume_serves_without_reexecution(self, serial_results,
                                               tmp_path, monkeypatch):
        manifest = tmp_path / "sweep.jsonl"
        run_sweep(sweep_jobs(), jobs_n=1, checkpoint=manifest)
        assert manifest.exists()

        def explode(job, injector=None):
            raise AssertionError(f"{job.describe()} was re-executed")

        monkeypatch.setattr(sweep_module, "execute_job", explode)
        resumed = run_sweep(sweep_jobs(), jobs_n=1, checkpoint=manifest,
                            resume=True)
        assert digest_map(resumed) == digest_map(serial_results)

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ConfigError, match="checkpoint"):
            run_sweep(sweep_jobs(), jobs_n=1, resume=True)

    def test_stale_config_digest_reruns(self, tmp_path):
        manifest = tmp_path / "sweep.jsonl"
        job = SweepJob(scene="conference", mode="pdom_block", preset="tiny",
                       max_cycles=5_000)
        run_sweep([job], jobs_n=1, checkpoint=manifest)
        checkpoint = SweepCheckpoint(manifest)
        assert checkpoint.load() == 1
        assert checkpoint.lookup(job) is not None
        changed = SweepJob(scene="conference", mode="pdom_block",
                           preset="tiny", max_cycles=6_000)
        assert checkpoint.lookup(changed) is None

    def test_corrupt_lines_tolerated(self, tmp_path):
        manifest = tmp_path / "sweep.jsonl"
        job = SweepJob(scene="conference", mode="pdom_block", preset="tiny",
                       max_cycles=5_000)
        run_sweep([job], jobs_n=1, checkpoint=manifest)
        with manifest.open("a") as handle:
            handle.write("{\"torn\": \n")
            handle.write("not json at all\n")
            handle.write(json.dumps({"schema": "other/1"}) + "\n")
        checkpoint = SweepCheckpoint(manifest)
        assert checkpoint.load() == 1
        assert checkpoint.lookup(job) is not None

    def test_crash_then_resume_matches_golden(self, serial_results,
                                              tmp_path, monkeypatch):
        """The acceptance path: a sweep loses one job to a crashing
        worker, returns partial results, and ``resume`` completes the rest
        bit-identically to the uninterrupted serial run."""
        manifest = tmp_path / "sweep.jsonl"
        monkeypatch.setenv("REPRO_FAULT_SPEC", "crash@fairyforest:spawn*3")
        monkeypatch.setenv("REPRO_FAULT_DIR", str(tmp_path / "faults"))
        partial = run_sweep(
            sweep_jobs(), jobs_n=2, strict=False, checkpoint=manifest,
            retry=RetryPolicy(max_attempts=2, backoff_seconds=0.0))
        assert len(partial) == len(SCENES) * len(MODES) - 1
        assert len(partial.failures) == 1
        assert partial.failures[0].job.describe() == "fairyforest:spawn"
        assert not partial.ok

        monkeypatch.delenv("REPRO_FAULT_SPEC")
        lines = []
        resumed = run_sweep(sweep_jobs(), jobs_n=1, checkpoint=manifest,
                            resume=True, progress=lines.append)
        assert resumed.ok
        assert digest_map(resumed) == digest_map(serial_results)
        assert sum("resumed from checkpoint" in line for line in lines) \
            == len(SCENES) * len(MODES) - 1


class TestCheckpointDirOverride:
    def test_default_lives_under_the_cache_dir(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
        path = default_checkpoint_path("experiments-tiny")
        assert path.name == "experiments-tiny.jsonl"
        assert path.parent.name == "checkpoints"

    def test_env_override_redirects_and_creates(self, tmp_path,
                                                monkeypatch):
        target = tmp_path / "shared" / "ckpt"
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(target))
        path = default_checkpoint_path("campaign")
        assert path == target / "campaign.jsonl"
        assert target.is_dir()  # created eagerly, before any sweep runs

    def test_uncreatable_override_raises_config_error(self, tmp_path,
                                                      monkeypatch):
        blocker = tmp_path / "file"
        blocker.write_text("a plain file, not a directory\n")
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(blocker / "sub"))
        with pytest.raises(ConfigError, match="cannot be created"):
            default_checkpoint_path("campaign")

    def test_relative_override_pinned_to_first_cwd(self, tmp_path,
                                                   monkeypatch):
        """A worker that chdirs later must not open a second manifest."""
        anchor = tmp_path / "anchor"
        elsewhere = tmp_path / "elsewhere"
        anchor.mkdir(), elsewhere.mkdir()
        monkeypatch.chdir(anchor)
        # A unique relative spelling: resolve_env_dir caches per value.
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR",
                           f"rel-ckpt-{tmp_path.name}")
        first = default_checkpoint_path("campaign")
        monkeypatch.chdir(elsewhere)
        second = default_checkpoint_path("campaign")
        assert first == second
        assert first.parent == anchor / f"rel-ckpt-{tmp_path.name}"
        assert not (elsewhere / f"rel-ckpt-{tmp_path.name}").exists()

    def test_unwritable_override_raises_config_error(self, tmp_path,
                                                     monkeypatch):
        if os.geteuid() == 0:
            pytest.skip("running as root; every directory is writable")
        target = tmp_path / "readonly"
        target.mkdir()
        target.chmod(0o555)
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(target))
        try:
            with pytest.raises(ConfigError, match="not writable"):
                default_checkpoint_path("campaign")
        finally:
            target.chmod(0o755)


class TestLegacyCheckpointManifests:
    """Manifests written by the pre-wire schema must keep resuming."""

    def checkpointed_job(self, tmp_path):
        job = SweepJob(scene="conference", mode="pdom_block", preset="tiny",
                       max_cycles=5_000)
        manifest = tmp_path / "sweep.jsonl"
        run_sweep([job], jobs_n=1, checkpoint=manifest)
        return job, manifest

    def downgrade_to_legacy(self, manifest):
        """Rewrite the manifest exactly as the PR 4 schema wrote it."""
        lines = []
        for line in manifest.read_text().splitlines():
            record = json.loads(line)
            record["schema"] = "repro-sweep-checkpoint/1"
            del record["kind"]
            del record["job"]
            lines.append(json.dumps(record, sort_keys=True))
        manifest.write_text("\n".join(lines) + "\n")

    def test_legacy_manifest_resumes_bit_identically(self, tmp_path,
                                                     monkeypatch):
        job, manifest = self.checkpointed_job(tmp_path)
        fresh = run_sweep([job], jobs_n=1)
        self.downgrade_to_legacy(manifest)

        def explode(job, injector=None):
            raise AssertionError(f"{job.describe()} was re-executed")

        monkeypatch.setattr(sweep_module, "execute_job", explode)
        resumed = run_sweep([job], jobs_n=1, checkpoint=manifest,
                            resume=True)
        assert (run_stats_digest(resumed.results[0].stats)
                == run_stats_digest(fresh.results[0].stats))

    def test_legacy_records_rewrite_as_wire_on_next_append(self, tmp_path):
        job, manifest = self.checkpointed_job(tmp_path)
        self.downgrade_to_legacy(manifest)
        other = SweepJob(scene="conference", mode="pdom_warp", preset="tiny",
                         max_cycles=5_000)
        run_sweep([other], jobs_n=1, checkpoint=manifest, resume=True)
        records = [json.loads(line)
                   for line in manifest.read_text().splitlines()]
        assert len(records) == 2
        assert all(record["schema"] == "repro-wire/1"
                   for record in records)
        checkpoint = SweepCheckpoint(manifest)
        assert checkpoint.load() == 2
        assert checkpoint.lookup(job) is not None
        assert checkpoint.lookup(other) is not None


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(2) == 2

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_floor_of_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1

    def test_non_integer_env_raises_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "auto")
        with pytest.raises(ConfigError, match="'auto'"):
            resolve_jobs()

    def test_empty_env_falls_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "")
        assert resolve_jobs() == (os.cpu_count() or 1)
