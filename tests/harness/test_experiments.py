"""Experiment entry points: structure checks at tiny scale."""

import pytest

from repro.harness import experiments
from repro.harness.presets import get_preset


@pytest.fixture(scope="module")
def preset():
    return get_preset("tiny")


class TestTables:
    def test_table1(self):
        data = experiments.table1()
        params = {row["parameter"] for row in data["rows"]}
        assert "Processor Cores" in params
        assert "Spawn LUT Size / Processor Core" in params
        assert "Table I" in data["render"]

    def test_table2(self):
        data = experiments.table2()
        assert len(data["rows"]) == 5
        occupancy = data["occupancy"]
        assert occupancy["microkernel_threads_per_sm"] == 800
        assert occupancy["traditional_block_threads_per_sm"] == 512

    def test_table3(self, preset):
        data = experiments.table3(preset)
        scenes = [row["scene"] for row in data["rows"]]
        assert scenes == ["fairyforest", "atrium", "conference"]
        for row in data["rows"]:
            assert row["triangles"] > 0
            assert row["tree_nodes"] >= row["tree_leaves"]

    def test_table4(self, preset):
        data = experiments.table4(preset)
        assert len(data["rows"]) == 6
        summary = data["summary"]
        assert summary["mean_read_ratio"] > 1.0
        assert summary["mean_total_ratio"] > summary["mean_read_ratio"]
        assert summary["paper_read_ratio"] == 4.4


class TestFigures:
    def test_fig3(self, preset):
        data = experiments.fig3(preset)
        assert data["mode"] == "pdom_block"
        assert 0 < data["simt_efficiency"] <= 1.0
        assert "Figure 3" in data["render"]

    def test_fig7_includes_ratio(self, preset):
        data = experiments.fig7(preset)
        assert data["mode"] == "spawn"
        assert data["ipc_ratio"] > 0
        assert data["paper_ipc_ratio"] == 1.9
        # The core claim holds even at tiny scale: lanes stay fuller.
        baseline = experiments.fig3(preset)
        assert data["mean_active_lanes"] > baseline["mean_active_lanes"]

    def test_fig8_rows(self, preset):
        data = experiments.fig8(preset, modes=("pdom_block", "spawn"))
        assert len(data["rows"]) == 6
        assert all(row["verified"] for row in data["rows"])
        assert "mean_speedup_vs_pdom_block" in data["summary"]

    def test_fig9(self, preset):
        data = experiments.fig9(preset)
        assert data["mode"] == "spawn_conflicts"
        assert data["paper_ipc_ratio"] == 1.3

    def test_fig10(self, preset):
        data = experiments.fig10(preset)
        fractions = data["fractions"]
        assert fractions["mimd_theoretical"] == pytest.approx(1.0)
        for mode in ("pdom_block", "pdom_ideal", "spawn", "spawn_ideal"):
            assert 0 < fractions[mode] < 1.0
