"""Workload-cache correctness for the path-tracing and BFS families.

Two things can silently corrupt a sweep if the cache gets them wrong:

- **Key coverage**: presets that differ only in the path-tracing knobs
  (``path_max_depth``, ``path_roulette_q``) or in the RNG seed describe
  *different* workloads and must map to distinct entries — for path
  workloads. For single-bounce kinds the path knobs are inert and must
  **not** fragment the cache.
- **Roundtrip identity**: a BFS entry stores a CSR graph instead of a
  kd-tree, and a path entry is derived from the cached primary; both
  must come back from disk bit-identical, down to identical simulation
  digests.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.harness.cache import WorkloadCache
from repro.harness.presets import get_preset
from repro.harness.runner import build_workload, run_mode
from repro.harness.sweep import run_stats_digest

GRAPH_SCENE = "graph-uniform"


@pytest.fixture(scope="module")
def path_preset():
    return get_preset("path-tiny")


@pytest.fixture(scope="module")
def bfs_preset():
    return get_preset("bfs-tiny")


class TestKeyCoverage:
    def test_path_knobs_and_seed_key_path_entries(self, tmp_path,
                                                  path_preset):
        cache = WorkloadCache(tmp_path)
        base = cache.key("conference", path_preset, ray_kind="path")
        deeper = dataclasses.replace(path_preset, path_max_depth=8)
        greedier = dataclasses.replace(path_preset, path_roulette_q=0.9)
        keys = {
            base,
            cache.key("conference", deeper, ray_kind="path"),
            cache.key("conference", greedier, ray_kind="path"),
            cache.key("conference", path_preset, ray_kind="path", seed=1),
        }
        assert len(keys) == 4

    def test_path_knobs_inert_for_single_bounce_kinds(self, tmp_path,
                                                      path_preset):
        cache = WorkloadCache(tmp_path)
        deeper = dataclasses.replace(path_preset, path_max_depth=8,
                                     path_roulette_q=0.9)
        for kind in ("primary", "shadow"):
            assert (cache.key("conference", deeper, ray_kind=kind)
                    == cache.key("conference", path_preset, ray_kind=kind))

    def test_bfs_keys_cover_graph_parameters(self, tmp_path, bfs_preset):
        cache = WorkloadCache(tmp_path)
        base = cache.key(GRAPH_SCENE, bfs_preset, ray_kind="bfs")
        denser = dataclasses.replace(bfs_preset, scene_detail=0.5)
        keys = {
            base,
            cache.key("graph-skew", bfs_preset, ray_kind="bfs"),
            cache.key(GRAPH_SCENE, denser, ray_kind="bfs"),
            cache.key(GRAPH_SCENE, bfs_preset, ray_kind="bfs", seed=1),
        }
        assert len(keys) == 4


def assert_graph_workloads_identical(a, b):
    assert a.scene_name == b.scene_name and a.ray_kind == b.ray_kind
    assert np.array_equal(a.graph.indptr, b.graph.indptr)
    assert np.array_equal(a.graph.indices, b.graph.indices)
    assert np.array_equal(a.graph.sources, b.graph.sources)
    assert np.array_equal(a.reference.t, b.reference.t)
    assert np.array_equal(a.reference.triangle, b.reference.triangle)
    assert np.array_equal(a.reference.counters.node_visits,
                          b.reference.counters.node_visits)
    assert a.tree is None and b.tree is None


class TestRoundtrip:
    def test_bfs_cold_then_warm_is_bit_identical(self, tmp_path,
                                                 bfs_preset):
        built = build_workload(GRAPH_SCENE, bfs_preset, ray_kind="bfs")
        writer = WorkloadCache(tmp_path)
        stored = writer.workload(GRAPH_SCENE, bfs_preset, ray_kind="bfs")
        assert writer.stats.misses == 1 and writer.stats.stores == 1
        assert_graph_workloads_identical(stored, built)
        # Warm path: a fresh instance must see only the .npz file.
        reader = WorkloadCache(tmp_path)
        loaded = reader.workload(GRAPH_SCENE, bfs_preset, ray_kind="bfs")
        assert reader.stats.disk_hits == 1 and reader.stats.misses == 0
        assert_graph_workloads_identical(loaded, built)

    def test_bfs_loaded_workload_simulates_identically(self, tmp_path,
                                                       bfs_preset):
        built = build_workload(GRAPH_SCENE, bfs_preset, ray_kind="bfs")
        WorkloadCache(tmp_path).workload(GRAPH_SCENE, bfs_preset,
                                         ray_kind="bfs")
        loaded = WorkloadCache(tmp_path).workload(GRAPH_SCENE, bfs_preset,
                                                  ray_kind="bfs")
        fresh = run_mode("spawn", built)
        warm = run_mode("spawn", loaded)
        assert run_stats_digest(fresh.stats) == run_stats_digest(warm.stats)
        assert warm.verify()

    def test_path_derived_from_cached_primary(self, tmp_path, path_preset):
        cache = WorkloadCache(tmp_path)
        path = cache.workload("conference", path_preset, ray_kind="path")
        # One full build (the primary), one derivation, two entries.
        assert cache.stats.misses == 1
        assert cache.stats.derived == 1
        assert cache.stats.stores == 2
        built = build_workload("conference", path_preset, ray_kind="path")
        assert np.array_equal(path.reference.t, built.reference.t)
        assert np.array_equal(path.reference.triangle,
                              built.reference.triangle)
        # Warm load carries the bounce-count reference, not primary hits.
        loaded = WorkloadCache(tmp_path).workload("conference", path_preset,
                                                  ray_kind="path")
        assert np.array_equal(loaded.reference.t, built.reference.t)
        assert np.array_equal(loaded.reference.triangle,
                              built.reference.triangle)

    def test_distinct_roulette_presets_build_distinct_references(
            self, tmp_path, path_preset):
        cache = WorkloadCache(tmp_path)
        default = cache.workload("conference", path_preset, ray_kind="path")
        greedier = cache.workload(
            "conference",
            dataclasses.replace(path_preset, path_roulette_q=0.95),
            ray_kind="path")
        # Higher continuation probability must produce deeper paths; if the
        # cache had collapsed the two keys these would be the same object.
        assert greedier is not default
        assert float(greedier.reference.t.sum()) > float(
            default.reference.t.sum())
