"""Harness runner tests (tiny scale)."""

import numpy as np
import pytest

from repro.config import SchedulingModel
from repro.errors import ConfigError
from repro.harness.presets import PRESETS, SimPreset, get_preset
from repro.harness.runner import (
    MODES,
    config_for_mode,
    launch_for_mode,
    mimd_for_workload,
    mimd_rays_per_second,
    prepare_workload,
    run_mode,
)


@pytest.fixture(scope="module")
def tiny_preset():
    return get_preset("tiny")


@pytest.fixture(scope="module")
def tiny_workload(tiny_preset):
    return prepare_workload("conference", tiny_preset)


class TestPresets:
    def test_known_presets(self):
        assert {"tiny", "fast", "paper"} <= set(PRESETS)

    def test_unknown_raises(self):
        with pytest.raises(ConfigError):
            get_preset("huge")

    def test_num_rays(self):
        preset = get_preset("tiny")
        assert preset.num_rays == preset.image_width * preset.image_height


class TestWorkloadPreparation:
    def test_primary(self, tiny_workload, tiny_preset):
        assert tiny_workload.num_rays == tiny_preset.num_rays
        assert tiny_workload.reference.num_rays == tiny_workload.num_rays
        assert np.all(np.isinf(tiny_workload.t_max))

    @pytest.mark.parametrize("kind", ["shadow", "reflection", "gi"])
    def test_secondary_kinds(self, tiny_preset, kind):
        workload = prepare_workload("conference", tiny_preset, ray_kind=kind)
        assert workload.ray_kind == kind
        assert workload.num_rays >= tiny_preset.num_rays

    def test_unknown_kind_raises(self, tiny_preset):
        with pytest.raises(ConfigError):
            prepare_workload("conference", tiny_preset, ray_kind="photon")


class TestConfigForMode:
    def test_all_modes_valid(self, tiny_preset):
        for mode in MODES:
            config = config_for_mode(mode, tiny_preset)
            config.validate()

    def test_unknown_mode_raises(self, tiny_preset):
        with pytest.raises(ConfigError):
            config_for_mode("warp_voodoo", tiny_preset)

    def test_block_mode(self, tiny_preset):
        config = config_for_mode("pdom_block", tiny_preset)
        assert config.scheduling == SchedulingModel.BLOCK
        assert not config.spawn.enabled

    def test_spawn_modes(self, tiny_preset):
        spawn = config_for_mode("spawn", tiny_preset)
        assert spawn.spawn.enabled and not spawn.spawn.bank_conflicts
        conflicts = config_for_mode("spawn_conflicts", tiny_preset)
        assert conflicts.spawn.bank_conflicts

    def test_ideal_modes(self, tiny_preset):
        assert config_for_mode("pdom_ideal", tiny_preset).memory.ideal
        assert config_for_mode("spawn_ideal", tiny_preset).memory.ideal
        assert not config_for_mode("spawn", tiny_preset).memory.ideal

    def test_launch_selection(self):
        assert "uk_primary" in launch_for_mode("spawn", 16).program.kernels
        assert "trace" in launch_for_mode("pdom_warp", 16).program.kernels


class TestRunMode:
    @pytest.mark.parametrize("mode", ["pdom_block", "pdom_warp", "spawn"])
    def test_run_and_verify(self, tiny_workload, mode):
        result = run_mode(mode, tiny_workload)
        assert result.completed_fraction == pytest.approx(1.0)
        assert result.verify()
        assert result.ipc > 0
        assert 0 < result.simt_efficiency <= 1.0
        assert result.rays_per_second > 0

    def test_max_cycles_override(self, tiny_workload):
        result = run_mode("pdom_warp", tiny_workload, max_cycles=200)
        assert result.stats.cycles <= 200
        assert result.verify()  # partial results still match

    def test_zero_ray_workload_completed_fraction(self, tiny_workload):
        import dataclasses
        import types

        result = run_mode("pdom_warp", tiny_workload, max_cycles=200)
        empty = dataclasses.replace(
            result, workload=types.SimpleNamespace(num_rays=0))
        assert empty.completed_fraction == 0.0


class TestMIMD:
    def test_mimd_result(self, tiny_workload):
        result = mimd_for_workload(tiny_workload)
        assert result.num_threads == tiny_workload.num_rays
        assert result.cycles > 0

    def test_mimd_bounds_simulation(self, tiny_workload):
        """MIMD theoretical must beat every simulated mode."""
        mimd = mimd_rays_per_second(tiny_workload)
        simulated = run_mode("spawn_ideal", tiny_workload)
        assert mimd > simulated.rays_per_second
