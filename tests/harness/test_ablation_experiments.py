"""Ablation experiment functions and CSV export (tiny preset)."""

import csv

import pytest

from repro.harness import experiments
from repro.harness.presets import get_preset
from repro.harness.runner import prepare_workload


@pytest.fixture(scope="module")
def preset():
    return get_preset("tiny")


@pytest.fixture(scope="module")
def workload(preset):
    return prepare_workload("conference", preset)


class TestAblationDWF:
    def test_structure(self, preset, workload):
        data = experiments.ablation_dwf(preset, workload)
        assert data["verified"]
        mechanisms = [row["mechanism"] for row in data["rows"]]
        assert mechanisms == ["PDOM (stack)", "DWF (idealized)",
                              "dynamic µ-kernels"]
        assert "Ablation" in data["render"]

    def test_all_complete_at_tiny_scale(self, preset, workload):
        data = experiments.ablation_dwf(preset, workload)
        for row in data["rows"]:
            assert row["rays_done"] == workload.num_rays


class TestAblationPersistent:
    def test_structure(self, preset, workload):
        data = experiments.ablation_persistent(preset, workload)
        assert data["verified"]
        approaches = [row["approach"] for row in data["rows"]]
        assert "persistent threads" in approaches

    def test_spawn_efficiency_highest(self, preset, workload):
        data = experiments.ablation_persistent(preset, workload)
        rows = {row["approach"]: row for row in data["rows"]}
        assert (rows["dynamic µ-kernels"]["efficiency"]
                > rows["grid launch (PDOM)"]["efficiency"])


class TestCSVExport:
    def test_export_all(self, preset, tmp_path):
        paths = experiments.export_all_csv(preset, str(tmp_path))
        assert len(paths) == 8
        names = {p.rsplit("/", 1)[-1] for p in paths}
        assert names == {"table2.csv", "table3.csv", "table4.csv",
                         "fig8.csv", "fig3.csv", "fig7.csv", "fig9.csv",
                         "fig10.csv"}
        for path in paths:
            with open(path, newline="") as handle:
                rows = list(csv.reader(handle))
            assert len(rows) >= 2  # header + data
