"""Simulation presets: scale the paper's experiment to a Python budget.

The paper simulates a 30-SM machine at 256x256 for the first 300k cycles.
SMs are independent (no inter-SM communication in the paper's model), so a
smaller SM count with a proportionally scaled memory partition reproduces
per-SM behaviour exactly under the paper's own assumptions; rays/s numbers
are scaled back to 30 SMs by the runner. Scene ``detail`` scales the
procedural triangle counts (DESIGN.md documents the scene substitution).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class SimPreset:
    """One simulation scale."""

    name: str
    num_sms: int
    image_width: int
    image_height: int
    scene_detail: float
    kd_max_depth: int
    kd_leaf_size: int
    max_cycles: int
    divergence_window: int
    #: Path-tracing knobs (``ray_kind="path"`` only): bounce budget and the
    #: russian-roulette continuation probability. They join the workload
    #: cache key for path workloads, so presets differing here never share
    #: a path entry.
    path_max_depth: int = 4
    path_roulette_q: float = 0.6

    @property
    def num_rays(self) -> int:
        return self.image_width * self.image_height


PRESETS = {
    # For unit/integration tests: seconds per run.
    "tiny": SimPreset(name="tiny", num_sms=1, image_width=12,
                      image_height=12, scene_detail=0.25, kd_max_depth=10,
                      kd_leaf_size=8, max_cycles=2_000_000,
                      divergence_window=2_000),
    # For benchmarks: minutes for the full figure set.
    "fast": SimPreset(name="fast", num_sms=1, image_width=40,
                      image_height=40, scene_detail=0.5, kd_max_depth=13,
                      kd_leaf_size=8, max_cycles=300_000,
                      divergence_window=3_000),
    # Closer to the paper's setup (long: hours in pure Python).
    "paper": SimPreset(name="paper", num_sms=30, image_width=256,
                       image_height=256, scene_detail=2.0, kd_max_depth=18,
                       kd_leaf_size=8, max_cycles=300_000,
                       divergence_window=3_000),
    # Workload-family handles: the tiny/fast geometry with the path-tracing
    # knobs pinned (use with ray_kind="path"). Multi-bounce paths run ~4x
    # the instructions of a primary batch, so the tiny cycle cap is kept
    # generous while "fast" inherits the truncating 300k budget.
    "path-tiny": SimPreset(name="path-tiny", num_sms=1, image_width=12,
                           image_height=12, scene_detail=0.25,
                           kd_max_depth=10, kd_leaf_size=8,
                           max_cycles=2_000_000, divergence_window=2_000,
                           path_max_depth=4, path_roulette_q=0.6),
    "path-fast": SimPreset(name="path-fast", num_sms=1, image_width=40,
                           image_height=40, scene_detail=0.5,
                           kd_max_depth=13, kd_leaf_size=8,
                           max_cycles=300_000, divergence_window=3_000,
                           path_max_depth=4, path_roulette_q=0.6),
    # Graph-traversal handles (use with ray_kind="bfs" on a graph-* scene).
    # image_width*image_height only bounds the worker count there; the
    # vertex count comes from scene_detail like triangle counts do.
    "bfs-tiny": SimPreset(name="bfs-tiny", num_sms=1, image_width=12,
                          image_height=12, scene_detail=0.25,
                          kd_max_depth=10, kd_leaf_size=8,
                          max_cycles=2_000_000, divergence_window=2_000),
    "bfs-fast": SimPreset(name="bfs-fast", num_sms=1, image_width=40,
                          image_height=40, scene_detail=0.5,
                          kd_max_depth=13, kd_leaf_size=8,
                          max_cycles=300_000, divergence_window=3_000),
}


def get_preset(name: str) -> SimPreset:
    if name not in PRESETS:
        raise ConfigError(
            f"unknown preset {name!r}; expected one of {sorted(PRESETS)}")
    return PRESETS[name]
