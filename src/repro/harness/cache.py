"""Persistent workload cache: memoize ``prepare_workload`` products.

Building a workload — procedural scene, kd-tree, camera rays, and the
scalar reference trace — dominates experiment setup time and is identical
across every simulation that shares a (scene, preset geometry, ray kind,
seed) tuple. This module persists those products to ``.npz`` files so
repeated sweeps, benchmark sessions, and pool workers skip the rebuild
entirely, with a small in-process LRU in front of the disk.

Cache key schema (see :meth:`WorkloadCache.key`)::

    salt | scene | ray_kind | seed | detail | kd_max_depth,kd_leaf_size
         | image_width x image_height   ->  sha256 hex, first 16 chars

Only geometry-affecting preset fields participate: presets that differ
merely in simulation budget (``num_sms``, ``max_cycles``,
``divergence_window``) share entries. ``CACHE_SALT`` is the invalidation
salt — bump it whenever scene generation, kd-tree construction, camera,
ray generation, or the reference tracer change behaviour. The salt is both
part of the key hash (stale entries are simply never looked up) and stored
inside each file (a tampered or hand-copied entry with the wrong salt is
detected, deleted, and rebuilt rather than served).

Corrupt entries (truncated files, missing arrays, unreadable zip) are
likewise deleted and rebuilt — the cache never raises for a bad entry.

The cache directory resolves to ``$REPRO_CACHE_DIR``, else
``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``. ``REPRO_CACHE=0``
disables caching globally. The ``repro cache {info,clear}`` CLI verbs
inspect and empty the directory.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
from collections import OrderedDict
from dataclasses import dataclass, replace

import numpy as np

from repro.harness.presets import SimPreset
from repro.rt.geometry import AABB, Triangle
from repro.rt.kdtree import KDTree, KDTreeStats
from repro.rt.trace import TraceCounters, TraceResult

#: Invalidation salt: bump on any change to workload-producing code.
CACHE_SALT = "workload-v2"

#: Arrays every ray-batch cache entry must contain (besides metadata).
_REQUIRED_KEYS = (
    "salt", "nodes", "leaf_indices", "bounds_lo", "bounds_hi", "vertices",
    "tree_stats_i", "tree_stats_f", "origins", "directions", "t_max",
    "ref_t", "ref_triangle", "ctr_node_visits", "ctr_leaf_visits",
    "ctr_triangle_tests", "ctr_stack_pushes", "light",
)

#: Arrays a graph-traversal (``ray_kind="bfs"``) entry must contain: the
#: CSR structure and BFS roots replace the kd-tree and ray batch.
_GRAPH_KEYS = (
    "salt", "graph_indptr", "graph_indices", "graph_sources",
    "ref_t", "ref_triangle", "ctr_node_visits", "ctr_leaf_visits",
    "ctr_triangle_tests", "ctr_stack_pushes",
)


def _required_keys(ray_kind: str) -> tuple[str, ...]:
    return _GRAPH_KEYS if ray_kind == "bfs" else _REQUIRED_KEYS


def atomic_write(path: pathlib.Path, writer) -> None:
    """Publish a file atomically: write a temp sibling, then ``os.replace``.

    ``writer`` receives a binary file handle. Concurrent writers (pool
    workers racing on one cache entry, a sweep checkpointing while another
    reads it) each write their own per-PID temp file, so a race is wasted
    work, never a torn file; readers see either the old content or the new,
    complete content.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.stem}.tmp{os.getpid()}{path.suffix}")
    try:
        with open(tmp, "wb") as handle:
            writer(handle)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def atomic_write_text(path: pathlib.Path, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (UTF-8)."""
    atomic_write(path, lambda handle: handle.write(text.encode("utf-8")))


def cache_enabled() -> bool:
    """Whether the persistent cache is on (``REPRO_CACHE=0`` turns it off)."""
    return os.environ.get("REPRO_CACHE", "1").lower() not in (
        "0", "off", "false", "no")


_ENV_DIR_CACHE: dict[tuple[str, str], pathlib.Path] = {}


def resolve_env_dir(name: str, raw: str) -> pathlib.Path:
    """Resolve a directory-valued env var to a CWD-pinned absolute path.

    A relative ``REPRO_CHECKPOINT_DIR``/``REPRO_RESULTS_DIR``/
    ``REPRO_CACHE_DIR`` must mean one directory for the whole process:
    workers and serve jobs that ``chdir`` after startup would otherwise
    silently open a second manifest or store. The first resolution of
    each ``(name, value)`` pair is anchored to the CWD at that moment and
    cached; later calls — from any CWD — return the same absolute path.
    (Deliberately not ``Path.resolve()``: symlinked temp dirs should keep
    the spelling the user gave.)
    """
    key = (name, raw)
    if key not in _ENV_DIR_CACHE:
        path = pathlib.Path(raw).expanduser()
        if not path.is_absolute():
            path = pathlib.Path.cwd() / path
        _ENV_DIR_CACHE[key] = path
    return _ENV_DIR_CACHE[key]


def resolve_cache_dir() -> pathlib.Path:
    """Cache directory: $REPRO_CACHE_DIR > $XDG_CACHE_HOME/repro > ~/.cache/repro."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return resolve_env_dir("REPRO_CACHE_DIR", override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro"


@dataclass
class CacheStats:
    """Per-process counters for one :class:`WorkloadCache` instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0          # full builds (scene + kd-tree + trace)
    derived: int = 0         # secondary batches derived from a cached primary
    stores: int = 0
    corrupt_entries: int = 0  # unreadable files deleted and rebuilt
    stale_entries: int = 0    # salt-mismatched files deleted and rebuilt
    evictions: int = 0

    @property
    def builds(self) -> int:
        """Workloads that required a kd-tree build (cache misses)."""
        return self.misses

    def as_dict(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "derived": self.derived,
            "stores": self.stores,
            "corrupt_entries": self.corrupt_entries,
            "stale_entries": self.stale_entries,
            "evictions": self.evictions,
        }


class WorkloadCache:
    """Two-level (memory LRU + ``.npz`` directory) workload cache."""

    def __init__(self, cache_dir: str | pathlib.Path | None = None,
                 salt: str = CACHE_SALT, max_memory_entries: int = 16):
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir is not None \
            else resolve_cache_dir()
        self.salt = salt
        self.max_memory_entries = max_memory_entries
        self.stats = CacheStats()
        self._memory: OrderedDict[str, object] = OrderedDict()

    # -- keys and paths ----------------------------------------------------

    def key(self, scene_name: str, preset: SimPreset,
            ray_kind: str = "primary", seed: int = 0) -> str:
        """Content hash of everything that determines the workload arrays."""
        parts = [
            self.salt, scene_name, ray_kind, f"seed={seed}",
            f"detail={preset.scene_detail!r}",
            f"kd={preset.kd_max_depth},{preset.kd_leaf_size}",
            f"img={preset.image_width}x{preset.image_height}",
        ]
        # Path references depend on the bounce budget and roulette
        # probability; joining them only for ray_kind="path" keeps every
        # pre-existing key stable.
        if ray_kind == "path":
            parts.append(f"path={preset.path_max_depth},"
                         f"{preset.path_roulette_q!r}")
        return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]

    def path(self, key: str, scene_name: str, ray_kind: str) -> pathlib.Path:
        return self.cache_dir / f"{scene_name}-{ray_kind}-{key}.npz"

    # -- public API --------------------------------------------------------

    def workload(self, scene_name: str, preset: SimPreset,
                 ray_kind: str = "primary", seed: int = 0):
        """Return the cached workload, loading or building as needed."""
        key = self.key(scene_name, preset, ray_kind, seed)
        cached = self._memory_get(key, preset)
        if cached is not None:
            self.stats.memory_hits += 1
            return cached
        path = self.path(key, scene_name, ray_kind)
        loaded = self._load(path, scene_name, ray_kind, preset, seed)
        if loaded is not None:
            self.stats.disk_hits += 1
            self._memory_put(key, loaded)
            return loaded
        built = self._build(scene_name, preset, ray_kind, seed)
        self._store(path, built)
        self._memory_put(key, built)
        return built

    def info(self) -> dict:
        """Directory contents plus this process's hit/miss counters."""
        entries = sorted(self.cache_dir.glob("*.npz")) \
            if self.cache_dir.is_dir() else []
        return {
            "dir": str(self.cache_dir),
            "enabled": cache_enabled(),
            "salt": self.salt,
            "entries": len(entries),
            "total_bytes": sum(p.stat().st_size for p in entries),
            "files": [p.name for p in entries],
            "stats": self.stats.as_dict(),
        }

    def clear(self) -> int:
        """Delete every cache entry (and forget the memory LRU)."""
        removed = 0
        if self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*.npz"):
                path.unlink(missing_ok=True)
                removed += 1
        self._memory.clear()
        return removed

    # -- memory LRU --------------------------------------------------------

    def _memory_get(self, key: str, preset: SimPreset):
        workload = self._memory.get(key)
        if workload is None:
            return None
        self._memory.move_to_end(key)
        # The key covers only geometry fields; hand back the caller's preset
        # so simulation-budget fields (max_cycles, num_sms, ...) are right.
        if workload.preset != preset:
            workload = replace(workload, preset=preset)
            self._memory[key] = workload
        return workload

    def _memory_put(self, key: str, workload) -> None:
        self._memory[key] = workload
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # -- build -------------------------------------------------------------

    def _build(self, scene_name: str, preset: SimPreset, ray_kind: str,
               seed: int):
        from repro.harness.runner import (
            build_bfs_workload,
            build_primary_workload,
            derive_path_workload,
            derive_secondary_workload,
        )

        if ray_kind == "primary":
            self.stats.misses += 1
            return build_primary_workload(scene_name, preset)
        if ray_kind == "bfs":
            # Graphs share nothing with the ray workloads: a full build.
            self.stats.misses += 1
            return build_bfs_workload(scene_name, preset, seed=seed)
        # Secondary kinds derive from the (cached) primary workload: one
        # scene, one kd-tree, one primary trace shared across all kinds.
        primary = self.workload(scene_name, preset, "primary", 0)
        self.stats.derived += 1
        if ray_kind == "path":
            return derive_path_workload(primary, seed=seed)
        return derive_secondary_workload(primary, ray_kind, seed=seed)

    # -- serialization -----------------------------------------------------

    def _store(self, path: pathlib.Path, workload) -> None:
        if workload.graph is not None:
            self._store_graph(path, workload)
            return
        tree = workload.tree
        stats = tree.stats()
        counters = workload.reference.counters
        vertices = np.stack([np.stack([tri.a, tri.b, tri.c])
                             for tri in tree.triangles])
        light = (np.full(3, np.nan) if workload.light is None
                 else np.asarray(workload.light, dtype=np.float64))
        arrays = {
            "salt": np.array(self.salt),
            "nodes": tree.nodes,
            "leaf_indices": tree.leaf_indices,
            "bounds_lo": tree.bounds.lo,
            "bounds_hi": tree.bounds.hi,
            "vertices": vertices,
            "tree_stats_i": np.array([
                stats.num_triangles, stats.num_nodes, stats.num_leaves,
                stats.max_depth, stats.max_triangles_per_leaf,
                stats.empty_leaves], dtype=np.int64),
            "tree_stats_f": np.array([
                stats.avg_leaf_depth, stats.avg_triangles_per_leaf]),
            "origins": workload.origins,
            "directions": workload.directions,
            "t_max": np.asarray(workload.t_max, dtype=np.float64),
            "ref_t": workload.reference.t,
            "ref_triangle": workload.reference.triangle,
            "ctr_node_visits": counters.node_visits,
            "ctr_leaf_visits": counters.leaf_visits,
            "ctr_triangle_tests": counters.triangle_tests,
            "ctr_stack_pushes": counters.stack_pushes,
            "light": light,
        }
        # Atomic publish: concurrent pool workers may race on one entry.
        atomic_write(path, lambda handle: np.savez(handle, **arrays))
        self.stats.stores += 1

    def _store_graph(self, path: pathlib.Path, workload) -> None:
        graph = workload.graph
        counters = workload.reference.counters
        arrays = {
            "salt": np.array(self.salt),
            "graph_indptr": graph.indptr,
            "graph_indices": graph.indices,
            "graph_sources": graph.sources,
            "ref_t": workload.reference.t,
            "ref_triangle": workload.reference.triangle,
            "ctr_node_visits": counters.node_visits,
            "ctr_leaf_visits": counters.leaf_visits,
            "ctr_triangle_tests": counters.triangle_tests,
            "ctr_stack_pushes": counters.stack_pushes,
        }
        atomic_write(path, lambda handle: np.savez(handle, **arrays))
        self.stats.stores += 1

    def _load(self, path: pathlib.Path, scene_name: str, ray_kind: str,
              preset: SimPreset, seed: int = 0):
        """Load one entry; corrupt or stale files are deleted, not served."""
        from repro.harness.runner import Workload

        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                arrays = {name: data[name]
                          for name in _required_keys(ray_kind)}
            if str(arrays["salt"]) != self.salt:
                self.stats.stale_entries += 1
                path.unlink(missing_ok=True)
                return None
        except Exception:
            self.stats.corrupt_entries += 1
            path.unlink(missing_ok=True)
            return None
        counters = TraceCounters(
            node_visits=arrays["ctr_node_visits"],
            leaf_visits=arrays["ctr_leaf_visits"],
            triangle_tests=arrays["ctr_triangle_tests"],
            stack_pushes=arrays["ctr_stack_pushes"])
        reference = TraceResult(t=arrays["ref_t"],
                                triangle=arrays["ref_triangle"],
                                counters=counters)
        if ray_kind == "bfs":
            from repro.workloads.graphs import GraphWorkload

            graph = GraphWorkload(name=scene_name,
                                  indptr=arrays["graph_indptr"],
                                  indices=arrays["graph_indices"],
                                  sources=arrays["graph_sources"])
            empty = np.zeros((0, 3))
            return Workload(scene_name=scene_name, ray_kind=ray_kind,
                            tree=None, origins=empty,
                            directions=empty.copy(), t_max=np.zeros(0),
                            reference=reference, preset=preset, light=None,
                            seed=seed, graph=graph)
        triangles = [Triangle(row[0].copy(), row[1].copy(), row[2].copy())
                     for row in arrays["vertices"]]
        ints = arrays["tree_stats_i"]
        floats = arrays["tree_stats_f"]
        tree = KDTree(
            root=None,
            bounds=AABB(arrays["bounds_lo"], arrays["bounds_hi"]),
            triangles=triangles,
            nodes=arrays["nodes"],
            leaf_indices=arrays["leaf_indices"],
            precomputed_stats=KDTreeStats(
                num_triangles=int(ints[0]), num_nodes=int(ints[1]),
                num_leaves=int(ints[2]), max_depth=int(ints[3]),
                avg_leaf_depth=float(floats[0]),
                avg_triangles_per_leaf=float(floats[1]),
                max_triangles_per_leaf=int(ints[4]),
                empty_leaves=int(ints[5])))
        light = arrays["light"]
        return Workload(scene_name=scene_name, ray_kind=ray_kind, tree=tree,
                        origins=arrays["origins"],
                        directions=arrays["directions"],
                        t_max=arrays["t_max"], reference=reference,
                        preset=preset,
                        light=None if np.isnan(light).all() else light,
                        seed=seed)


_default: WorkloadCache | None = None


def default_cache() -> WorkloadCache:
    """The process-wide cache (re-created if the env-resolved dir changes)."""
    global _default
    directory = resolve_cache_dir()
    if _default is None or _default.cache_dir != directory:
        _default = WorkloadCache(directory)
    return _default
