"""Wire scenes, kernels, and configurations into simulation runs.

``run_mode`` executes one (workload, machine-mode) pair and returns a
:class:`RunResult` with the metrics the paper reports: IPC, SIMT
efficiency, rays/second (scaled to the 30-SM machine), divergence
breakdown, and traffic counters.

Machine modes (see :data:`MODES`):

=================  ==========================================================
mode               meaning
=================  ==========================================================
pdom_block         traditional kernel, FX5800 block scheduling (paper
                   "PDOM Block")
pdom_warp          traditional kernel, warp/thread scheduling ("PDOM Warp")
spawn              dynamic µ-kernels, conflict-free spawn memory (Fig 7)
spawn_conflicts    dynamic µ-kernels with spawn-memory bank conflicts (Fig 9)
pdom_ideal         pdom_warp with the ideal memory system (Fig 10)
spawn_ideal        spawn with the ideal memory system (Fig 10)
=================  ==========================================================
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.config import GPUConfig, SchedulingModel, scaled_config
from repro.errors import ConfigError
from repro.harness.presets import SimPreset
from repro.kernels.graph import (
    bfs_launch_spec,
    bfs_microkernel_launch_spec,
    build_graph_memory_image,
)
from repro.kernels.layout import MemoryImage, build_memory_image
from repro.kernels.microkernels import microkernel_launch_spec
from repro.kernels.pathtrace import (
    extend_image_for_path,
    pathtrace_launch_spec,
    pathtrace_microkernel_launch_spec,
)
from repro.kernels.traditional import (
    dynamic_instruction_model,
    traditional_launch_spec,
)
from repro.rt import Camera, build_kdtree, make_scene, trace_rays
from repro.rt.kdtree import KDTree
from repro.rt.pathtrace import path_trace_rays
from repro.rt.rays import gi_rays, reflection_rays, shadow_rays
from repro.rt.trace import TraceCounters, TraceResult
from repro.simt import GPU, mimd_theoretical
from repro.simt.gpu import RunStats
from repro.simt.mimd import MIMDResult
from repro.workloads.graphs import (
    GraphWorkload,
    make_graph,
    reference_bfs,
)

#: Paper machine size used to scale rays/s.
PAPER_SMS = 30

MODES = ("pdom_block", "pdom_warp", "spawn", "spawn_conflicts",
         "pdom_ideal", "spawn_ideal")


@dataclass
class Workload:
    """A prepared scene + ray batch + reference solution.

    ``light`` is the scene's point light; it is carried on the workload so
    secondary-ray batches (shadow rays need the light) can be derived from a
    cached primary workload without regenerating the scene.
    """

    scene_name: str
    ray_kind: str
    tree: KDTree | None
    origins: np.ndarray
    directions: np.ndarray
    t_max: np.ndarray
    reference: TraceResult
    preset: SimPreset
    light: np.ndarray | None = None
    #: Workload-generation seed (path-tracer RNG, graph generation). Part
    #: of the cache key, so it must travel with the arrays it shaped.
    seed: int = 0
    #: CSR graph for ``ray_kind="bfs"`` workloads; None for ray batches.
    graph: GraphWorkload | None = None

    @property
    def num_rays(self) -> int:
        if self.graph is not None:
            # The unit of completed work in a BFS traversal is a reachable
            # vertex: a correct run of any schedule expands exactly these.
            return int(np.isfinite(self.reference.t).sum())
        return self.origins.shape[0]


class StatsView:
    """Shared metric properties for results that wrap a :class:`RunStats`.

    The canonical metric implementations live on ``RunStats`` itself; every
    result type (``RunResult``, the sweep engine's ``JobResult``, ...) mixes
    this in so they all report identical numbers by construction instead of
    each re-deriving IPC/efficiency/rays-per-second.
    """

    stats: RunStats

    @property
    def ipc(self) -> float:
        """Machine-wide committed thread-instructions per cycle."""
        return self.stats.ipc

    @property
    def simt_efficiency(self) -> float:
        """Mean fraction of lanes active per issued warp instruction."""
        return self.stats.simt_efficiency

    @property
    def rays_per_second(self) -> float:
        """Rays/s scaled to the paper's 30-SM machine."""
        return self.stats.rays_per_second(scale_to_sms=PAPER_SMS)


@dataclass
class RunResult(StatsView):
    """Metrics from one simulated run."""

    mode: str
    workload: Workload
    stats: RunStats
    image: MemoryImage
    trace: object | None = None
    """The :class:`repro.obs.TraceSession` that observed the run, when one
    was requested (``repro.api.simulate(..., probes=...)``)."""

    @property
    def completed_fraction(self) -> float:
        # An empty/truncated workload completes nothing, not a div-zero.
        if self.workload.num_rays == 0:
            return 0.0
        return self.stats.rays_completed / self.workload.num_rays

    def verify(self) -> bool:
        """Check results against the reference for completed rays."""
        ref = self.workload.reference
        if self.workload.ray_kind == "bfs":
            # The lock-free traversal may discover a vertex through a
            # deeper parent than true BFS order would, so levels are
            # checked as lower-bounded, not equal; the visited set itself
            # is schedule-independent (subset of reachable; equality is
            # what completed_fraction == 1.0 certifies).
            level, flag = self.image.results()
            done = ~np.isnan(level)
            if not done.any():
                return True
            reachable = np.isfinite(ref.t)
            return (bool(np.all(reachable[done]))
                    and bool(np.all(np.isfinite(level[done])))
                    and bool(np.all(level[done] >= ref.t[done]))
                    and bool(np.all(flag[done] == 1)))
        t, tri = self.image.results()
        done = ~np.isnan(t)
        if not done.any():
            return True
        tri_ok = np.array_equal(tri[done], ref.triangle[done])
        mine = np.where(np.isinf(t[done]), -1.0, t[done])
        theirs = np.where(np.isinf(ref.t[done]), -1.0, ref.t[done])
        return tri_ok and np.array_equal(mine, theirs)


def build_primary_workload(scene_name: str, preset: SimPreset) -> Workload:
    """Build scene, kd-tree, camera rays, and the primary reference trace."""
    scene = make_scene(scene_name, detail=preset.scene_detail)
    tree = build_kdtree(scene.triangles, max_depth=preset.kd_max_depth,
                        leaf_size=preset.kd_leaf_size)
    camera = Camera.for_scene(scene)
    origins, directions = camera.primary_rays(preset.image_width,
                                              preset.image_height)
    t_max = np.full(origins.shape[0], np.inf)
    reference = trace_rays(tree, origins, directions, t_max)
    return Workload(scene_name=scene_name, ray_kind="primary", tree=tree,
                    origins=origins, directions=directions, t_max=t_max,
                    reference=reference, preset=preset, light=scene.light)


def derive_secondary_workload(primary: Workload, ray_kind: str,
                              seed: int = 0) -> Workload:
    """Derive a secondary-ray workload from a primary one.

    The primary workload's reference trace *is* the hit batch that seeds
    shadow/reflection/gi rays, so deriving from it shares one scene, one
    kd-tree, and one primary trace across every ray kind.
    """
    triangles = primary.tree.triangles
    hit = primary.reference
    if ray_kind == "shadow":
        if primary.light is None:
            raise ConfigError("primary workload carries no light position")
        batch = shadow_rays(triangles, hit.triangle, hit.t,
                            primary.origins, primary.directions,
                            primary.light)
    elif ray_kind == "reflection":
        batch = reflection_rays(triangles, hit.triangle, hit.t,
                                primary.origins, primary.directions)
    elif ray_kind == "gi":
        batch = gi_rays(triangles, hit.triangle, hit.t,
                        primary.origins, primary.directions, seed=seed)
    else:
        raise ConfigError(f"unknown ray kind {ray_kind!r}")
    reference = trace_rays(primary.tree, batch.origins, batch.directions,
                           batch.t_max)
    return Workload(scene_name=primary.scene_name, ray_kind=ray_kind,
                    tree=primary.tree, origins=batch.origins,
                    directions=batch.directions, t_max=batch.t_max,
                    reference=reference, preset=primary.preset,
                    light=primary.light)


def derive_path_workload(primary: Workload, seed: int = 0) -> Workload:
    """Derive a multi-bounce path-tracing workload from a primary one.

    Shares the primary workload's scene, kd-tree, and camera rays; only the
    reference changes — the roulette path tracer's ``(bounce count, last
    triangle)`` records (see :mod:`repro.rt.pathtrace`). The bounce budget
    and roulette probability come from the preset, the RNG stream from
    ``seed``.
    """
    preset = primary.preset
    reference = path_trace_rays(
        primary.tree, primary.origins, primary.directions, primary.t_max,
        max_depth=preset.path_max_depth, roulette_q=preset.path_roulette_q,
        seed=seed)
    return Workload(scene_name=primary.scene_name, ray_kind="path",
                    tree=primary.tree, origins=primary.origins,
                    directions=primary.directions, t_max=primary.t_max,
                    reference=reference, preset=preset, light=primary.light,
                    seed=seed)


def build_bfs_workload(scene_name: str, preset: SimPreset,
                       seed: int = 0) -> Workload:
    """Build a graph-traversal workload: CSR graph + true BFS levels.

    The reference rides the :class:`~repro.rt.trace.TraceResult` shape so
    every downstream consumer (verification, the bandwidth model, the
    results warehouse) works unchanged: ``t`` carries the true level
    (unreachable -> inf), ``triangle`` a reachable flag (1 / -1), and
    ``node_visits`` the out-degree of each expanded vertex (the edge reads
    a traversal performs).
    """
    graph = make_graph(scene_name, detail=preset.scene_detail, seed=seed)
    levels = reference_bfs(graph)
    reachable = levels >= 0
    t = np.where(reachable, levels.astype(np.float64), np.inf)
    triangle = np.where(reachable, 1, -1).astype(np.int64)
    counters = TraceCounters(
        node_visits=np.where(reachable, graph.out_degrees(), 0)
        .astype(np.int64),
        leaf_visits=np.zeros(graph.num_vertices, np.int64),
        triangle_tests=np.zeros(graph.num_vertices, np.int64),
        stack_pushes=np.zeros(graph.num_vertices, np.int64))
    reference = TraceResult(t=t, triangle=triangle, counters=counters)
    empty = np.zeros((0, 3))
    return Workload(scene_name=scene_name, ray_kind="bfs", tree=None,
                    origins=empty, directions=empty.copy(),
                    t_max=np.zeros(0), reference=reference, preset=preset,
                    light=None, seed=seed, graph=graph)


def build_workload(scene_name: str, preset: SimPreset,
                   ray_kind: str = "primary", seed: int = 0) -> Workload:
    """Uncached workload build (one scene + tree + trace, reused per kind)."""
    if ray_kind == "bfs":
        return build_bfs_workload(scene_name, preset, seed=seed)
    primary = build_primary_workload(scene_name, preset)
    if ray_kind == "primary":
        return primary
    if ray_kind == "path":
        return derive_path_workload(primary, seed=seed)
    return derive_secondary_workload(primary, ray_kind, seed=seed)


def prepare_workload(scene_name: str, preset: SimPreset,
                     ray_kind: str = "primary", seed: int = 0,
                     cache=None) -> Workload:
    """Build (or load) a scene, its kd-tree, and the requested ray batch.

    Goes through the persistent workload cache (see
    :mod:`repro.harness.cache`) unless caching is disabled via
    ``REPRO_CACHE=0`` or ``cache=False``. Pass a
    :class:`~repro.harness.cache.WorkloadCache` to use a specific cache
    instance. Cached and freshly built workloads are bit-identical.
    """
    if cache is False:
        return build_workload(scene_name, preset, ray_kind, seed)
    from repro.harness.cache import WorkloadCache, cache_enabled, default_cache
    if isinstance(cache, WorkloadCache):
        return cache.workload(scene_name, preset, ray_kind, seed)
    if not cache_enabled():
        return build_workload(scene_name, preset, ray_kind, seed)
    return default_cache().workload(scene_name, preset, ray_kind, seed)


def config_for_mode(mode: str, preset: SimPreset,
                    fast_forward: bool | None = None,
                    executor: str | None = None,
                    scheduler: str | None = None) -> GPUConfig:
    """The machine configuration for one mode at one preset scale.

    ``fast_forward`` overrides the event-driven clock toggle; None keeps
    the :class:`GPUConfig` default (fast). ``executor`` selects the
    instruction-execution backend (see :data:`repro.config.EXECUTORS`);
    ``scheduler`` the warp-scheduler implementation (see
    :data:`repro.config.SCHEDULERS`); None keeps the defaults
    (reference, scan).
    """
    if mode not in MODES:
        raise ConfigError(f"unknown mode {mode!r}; expected one of {MODES}")
    overrides: dict = {"max_cycles": preset.max_cycles}
    if fast_forward is not None:
        overrides["fast_forward"] = fast_forward
    if executor is not None:
        overrides["executor"] = executor
    if scheduler is not None:
        overrides["scheduler"] = scheduler
    if mode == "pdom_block":
        overrides["scheduling"] = SchedulingModel.BLOCK
    else:
        overrides["scheduling"] = SchedulingModel.WARP
    if mode.startswith("spawn"):
        overrides["spawn_enabled"] = True
        overrides["spawn_bank_conflicts"] = mode == "spawn_conflicts"
    if mode.endswith("ideal"):
        overrides["memory_ideal"] = True
    return scaled_config(preset.num_sms, **overrides)


def launch_for_mode(mode: str, num_rays: int):
    if mode.startswith("spawn"):
        return microkernel_launch_spec(num_rays)
    return traditional_launch_spec(num_rays)


def image_for_workload(workload: Workload):
    """Device memory image for one workload, dispatched on its ray kind."""
    if workload.ray_kind == "bfs":
        return build_graph_memory_image(workload.graph)
    image = build_memory_image(workload.tree, workload.origins,
                               workload.directions, workload.t_max)
    if workload.ray_kind == "path":
        preset = workload.preset
        image = extend_image_for_path(
            image, max_depth=preset.path_max_depth,
            roulette_q=preset.path_roulette_q, seed=workload.seed)
    return image


def launch_for_workload(mode: str, workload: Workload):
    """Launch spec for one (mode, workload) pair.

    Each workload family has its own megakernel/µ-kernel pair; BFS runs a
    fixed worker pool over the shared frontier worklist (one worker per
    vertex, capped by the preset's thread budget) rather than one thread
    per result.
    """
    spawn = mode.startswith("spawn")
    if workload.ray_kind == "bfs":
        workers = min(workload.graph.num_vertices,
                      workload.preset.num_rays)
        if spawn:
            return bfs_microkernel_launch_spec(workers)
        return bfs_launch_spec(workers)
    if workload.ray_kind == "path":
        if spawn:
            return pathtrace_microkernel_launch_spec(workload.num_rays)
        return pathtrace_launch_spec(workload.num_rays)
    return launch_for_mode(mode, workload.num_rays)


def run_mode(mode: str, workload: Workload,
             max_cycles: int | None = None,
             fast_forward: bool | None = None,
             executor: str | None = None,
             scheduler: str | None = None,
             trace=None) -> RunResult:
    """Simulate one mode on a prepared workload.

    ``trace`` attaches a :class:`repro.obs.TraceSession` to the machine;
    the returned result carries it (finalized) as ``result.trace``.
    """
    preset = workload.preset
    config = config_for_mode(mode, preset, fast_forward=fast_forward,
                             executor=executor, scheduler=scheduler)
    image = image_for_workload(workload)
    launch = launch_for_workload(mode, workload)
    gpu = GPU(config, launch, image.global_mem, image.const_mem,
              divergence_window=preset.divergence_window, trace=trace)
    stats = gpu.run(max_cycles=max_cycles)
    return RunResult(mode=mode, workload=workload, stats=stats, image=image,
                     trace=trace)


def _deprecated_alias(name: str, replacement: str, func):
    """A module-level shim that warns once per call site, then delegates.

    The old underscore-named entry points keep working for one release
    cycle; the public names here (re-exported by :mod:`repro.api`) are the
    supported surface.
    """
    def shim(*args, **kwargs):
        warnings.warn(
            f"repro.harness.runner.{name} is deprecated; use {replacement}",
            DeprecationWarning, stacklevel=2)
        return func(*args, **kwargs)
    shim.__name__ = name
    shim.__qualname__ = name
    shim.__doc__ = (f"Deprecated alias of ``{replacement}`` "
                    f"(emits :class:`DeprecationWarning`).")
    return shim


#: Pre-1.0 these building blocks were underscore-named and re-exported by
#: ``repro.api`` under the public spellings; the public names now live
#: here and the old spellings warn.
_build_workload = _deprecated_alias(
    "_build_workload", "repro.api.build_workload", build_workload)
_config_for_mode = _deprecated_alias(
    "_config_for_mode", "repro.api.config_for_mode", config_for_mode)
_launch_for_mode = _deprecated_alias(
    "_launch_for_mode", "repro.api.launch_for_mode", launch_for_mode)
_run_mode = _deprecated_alias(
    "_run_mode", "repro.api.run_mode", run_mode)

__all__ = [
    "MODES",
    "PAPER_SMS",
    "RunResult",
    "StatsView",
    "Workload",
    "build_bfs_workload",
    "build_primary_workload",
    "build_workload",
    "config_for_mode",
    "derive_path_workload",
    "derive_secondary_workload",
    "image_for_workload",
    "launch_for_mode",
    "launch_for_workload",
    "mimd_for_workload",
    "mimd_rays_per_second",
    "prepare_workload",
    "run_mode",
]


def mimd_for_workload(workload: Workload) -> MIMDResult:
    """MIMD-theoretical result from the analytic instruction model.

    Per-thread dynamic instruction counts follow the traditional kernel's
    static block sizes applied to the reference tracer's loop-trip counts
    (see :func:`repro.kernels.traditional.dynamic_instruction_model`).
    """
    model = dynamic_instruction_model()
    counters = workload.reference.counters
    counts = (model["prologue"]
              + counters.node_visits * model["node_visit"]
              + counters.leaf_visits * (model["leaf_visit"] + model["pop"])
              + counters.triangle_tests * model["triangle_test"]
              + model["write"])
    config = config_for_mode("pdom_ideal", workload.preset)
    return mimd_theoretical(counts, config)


def mimd_rays_per_second(workload: Workload) -> float:
    """MIMD-theoretical rays/s scaled to the 30-SM machine."""
    result = mimd_for_workload(workload)
    config = config_for_mode("pdom_ideal", workload.preset)
    return result.rays_per_second(config, scale_to_sms=PAPER_SMS)
