"""One entry point per paper table and figure.

Each ``table*``/``fig*`` function runs the relevant simulations and returns
a dict with structured data plus a ``render`` string that prints the same
rows/series the paper reports. ``python -m repro.harness.experiments``
regenerates everything at the chosen preset.
"""

from __future__ import annotations

import sys

from repro.analysis.bandwidth import bandwidth_table
from repro.analysis.divergence import breakdown_from_stats, render_breakdown
from repro.analysis.report import format_bars, format_table
from repro.config import paper_config
from repro.harness.presets import SimPreset, get_preset
from repro.harness.runner import (
    mimd_rays_per_second,
    prepare_workload,
    run_mode,
)
from repro.kernels.microkernels import (
    PAPER_REGISTERS as MICRO_REGS,
    microkernel_program,
)
from repro.kernels.resources import (
    measure_resources,
    occupancy_threads_per_sm,
    table2_rows,
)
from repro.kernels.traditional import (
    PAPER_REGISTERS as TRAD_REGS,
    traditional_program,
)
from repro.rt import BENCHMARK_SCENES, build_kdtree, make_scene
from repro.rt.scenes import PAPER_TRIANGLE_COUNTS


def table1() -> dict:
    """Table I: the simulated machine configuration."""
    config = paper_config()
    rows = [{"parameter": key, "value": value}
            for key, value in config.table1_rows()]
    return {"rows": rows,
            "render": format_table(rows, title="Table I — configuration")}


def table2(config=None) -> dict:
    """Table II: per-thread kernel resources and resulting occupancy."""
    config = config or paper_config()
    trad = measure_resources(traditional_program(), "traditional")
    micro = measure_resources(microkernel_program(), "microkernel")
    rows = table2_rows(trad, micro)
    occupancy = {
        "traditional_block_threads_per_sm": occupancy_threads_per_sm(
            config, TRAD_REGS, block_size=64, scheduling="block"),
        "traditional_warp_threads_per_sm": occupancy_threads_per_sm(
            config, TRAD_REGS, block_size=64, scheduling="warp"),
        "microkernel_threads_per_sm": occupancy_threads_per_sm(
            config, MICRO_REGS, block_size=32, scheduling="warp"),
    }
    render = format_table(rows, title="Table II — per-thread resources")
    render += "\n\noccupancy: " + ", ".join(
        f"{key}={value}" for key, value in occupancy.items())
    return {"rows": rows, "occupancy": occupancy, "render": render}


def table3(preset: SimPreset) -> dict:
    """Table III: benchmark scenes and tree parameters."""
    rows = []
    for name in BENCHMARK_SCENES:
        scene = make_scene(name, detail=preset.scene_detail)
        tree = build_kdtree(scene.triangles, max_depth=preset.kd_max_depth,
                            leaf_size=preset.kd_leaf_size)
        stats = tree.stats()
        rows.append({
            "scene": name,
            "triangles": scene.num_triangles,
            "paper_triangles": PAPER_TRIANGLE_COUNTS[name],
            "tree_nodes": stats.num_nodes,
            "tree_leaves": stats.num_leaves,
            "max_depth": stats.max_depth,
            "avg_tris_per_leaf": round(stats.avg_triangles_per_leaf, 2),
            "empty_leaves": stats.empty_leaves,
        })
    return {"rows": rows,
            "render": format_table(rows, title="Table III — scenes")}


def table4(preset: SimPreset) -> dict:
    """Table IV: per-frame bandwidth, traditional vs dynamic."""
    per_scene = {}
    for name in BENCHMARK_SCENES:
        workload = prepare_workload(name, preset)
        per_scene[name] = (workload.reference.counters, workload.num_rays)
    rows = bandwidth_table(per_scene)
    ratios = [row["read_ratio"] for row in rows if "read_ratio" in row]
    totals = [row["total_ratio"] for row in rows if "total_ratio" in row]
    summary = {
        "mean_read_ratio": round(sum(ratios) / len(ratios), 2),
        "mean_total_ratio": round(sum(totals) / len(totals), 2),
        "paper_read_ratio": 4.4,
        "paper_total_ratio": 7.3,
    }
    render = format_table(rows, title="Table IV — bandwidth per frame (MB)")
    render += f"\n\nmean ratios: read={summary['mean_read_ratio']}x " \
              f"(paper 4.4x), total={summary['mean_total_ratio']}x (paper 7.3x)"
    return {"rows": rows, "summary": summary, "render": render}


def _divergence_figure(mode: str, preset: SimPreset, scene: str,
                       title: str) -> dict:
    workload = prepare_workload(scene, preset)
    result = run_mode(mode, workload)
    breakdown = breakdown_from_stats(result.stats)
    return {
        "mode": mode,
        "scene": scene,
        "ipc": result.ipc,
        "simt_efficiency": result.simt_efficiency,
        "mean_active_lanes": breakdown.mean_active_lanes,
        "breakdown": breakdown,
        "result": result,
        "render": (f"{title} (scene={scene}, mode={mode}, "
                   f"IPC={result.ipc:.1f}, "
                   f"efficiency={result.simt_efficiency:.2f})\n"
                   + render_breakdown(breakdown)),
    }


def fig3(preset: SimPreset, scene: str = "conference") -> dict:
    """Figure 3: divergence breakdown, traditional SIMT branching."""
    return _divergence_figure("pdom_block", preset, scene,
                              "Figure 3 — divergence, PDOM")


def fig7(preset: SimPreset, scene: str = "conference") -> dict:
    """Figure 7: divergence breakdown with dynamic µ-kernels (no bank
    conflicts); paper reports IPC 615 vs 326 (1.9x) on its machine."""
    data = _divergence_figure("spawn", preset, scene,
                              "Figure 7 — divergence, µ-kernels")
    baseline = _divergence_figure("pdom_block", preset, scene, "baseline")
    ratio = data["ipc"] / baseline["ipc"] if baseline["ipc"] else 0.0
    data["baseline_ipc"] = baseline["ipc"]
    data["ipc_ratio"] = ratio
    data["paper_ipc_ratio"] = 1.9
    data["render"] += (f"\nIPC ratio vs PDOM: {ratio:.2f}x "
                       f"(paper: 1.9x)")
    return data


def fig9(preset: SimPreset, scene: str = "conference") -> dict:
    """Figure 9: µ-kernel divergence with spawn-memory bank conflicts;
    paper reports IPC 429 (1.3x over PDOM)."""
    data = _divergence_figure("spawn_conflicts", preset, scene,
                              "Figure 9 — divergence, µ-kernels + conflicts")
    baseline = _divergence_figure("pdom_block", preset, scene, "baseline")
    ratio = data["ipc"] / baseline["ipc"] if baseline["ipc"] else 0.0
    data["baseline_ipc"] = baseline["ipc"]
    data["ipc_ratio"] = ratio
    data["paper_ipc_ratio"] = 1.3
    data["render"] += (f"\nIPC ratio vs PDOM: {ratio:.2f}x "
                       f"(paper: 1.3x)")
    return data


def fig8(preset: SimPreset, modes=("pdom_block", "pdom_warp", "spawn")
         ) -> dict:
    """Figure 8: rays/second per scene and branching/scheduling method."""
    rows = []
    for scene in BENCHMARK_SCENES:
        workload = prepare_workload(scene, preset)
        for mode in modes:
            result = run_mode(mode, workload)
            rows.append({
                "scene": scene,
                "mode": mode,
                "mrays_per_s": round(result.rays_per_second / 1e6, 2),
                "ipc": round(result.ipc, 1),
                "efficiency": round(result.simt_efficiency, 3),
                "completed": round(result.completed_fraction, 3),
                "verified": result.verify(),
            })
    speedups = []
    for scene in BENCHMARK_SCENES:
        base = next(r for r in rows if r["scene"] == scene
                    and r["mode"] == "pdom_block")
        dyn = next(r for r in rows if r["scene"] == scene
                   and r["mode"] == "spawn")
        if base["mrays_per_s"]:
            speedups.append(dyn["mrays_per_s"] / base["mrays_per_s"])
    summary = {
        "mean_speedup_vs_pdom_block": (round(sum(speedups) / len(speedups), 2)
                                       if speedups else 0.0),
        "paper_mean_speedup": 1.4,
    }
    render = format_table(rows, title="Figure 8 — rays per second")
    render += (f"\n\nmean dynamic speedup vs PDOM block: "
               f"{summary['mean_speedup_vs_pdom_block']}x (paper: 1.4x)")
    return {"rows": rows, "summary": summary, "render": render}


def fig10(preset: SimPreset, scene: str = "conference") -> dict:
    """Figure 10: branching performance vs the MIMD theoretical ideal.

    The paper's shape: PDOM gains nothing from an ideal memory system
    (branch-bound); µ-kernels reach ~45% of MIMD with real memory and ~60%
    with ideal memory.
    """
    workload = prepare_workload(scene, preset)
    mimd = mimd_rays_per_second(workload)
    bars = []
    results = {}
    for mode in ("pdom_block", "pdom_ideal", "spawn", "spawn_ideal"):
        result = run_mode(mode, workload)
        results[mode] = result
        bars.append((mode, result.rays_per_second))
    bars.append(("mimd_theoretical", mimd))
    fractions = {mode: (value / mimd if mimd else 0.0)
                 for mode, value in bars}
    rows = [{"mode": mode, "mrays_per_s": round(value / 1e6, 2),
             "fraction_of_mimd": round(fractions[mode], 3)}
            for mode, value in bars]
    render = format_table(rows, title=f"Figure 10 — vs MIMD ({scene})")
    render += ("\n\npaper shape: PDOM flat under ideal memory; µ-kernels "
               ">=45% of MIMD, up to ~60% ideal")
    return {"rows": rows, "fractions": fractions, "results": results,
            "mimd_rays_per_second": mimd, "render": render}


def ablation_dwf(preset: SimPreset, workload=None) -> dict:
    """Regrouping mechanisms: PDOM vs idealized DWF vs dynamic µ-kernels."""
    import numpy as np

    from repro.harness.runner import config_for_mode
    from repro.kernels.layout import build_memory_image
    from repro.kernels.traditional import traditional_program
    from repro.simt.dwf import run_dwf

    workload = workload or prepare_workload("conference", preset)
    config = config_for_mode("pdom_warp", preset)
    image = build_memory_image(workload.tree, workload.origins,
                               workload.directions, workload.t_max)
    dwf = run_dwf(config, traditional_program(), "trace", image.global_mem,
                  image.const_mem,
                  num_threads=min(workload.num_rays, 736),
                  max_cycles=preset.max_cycles)
    t, tri = image.results()
    done = ~np.isnan(t)
    verified = bool(np.array_equal(tri[done],
                                   workload.reference.triangle[done]))
    pdom = run_mode("pdom_warp", workload)
    spawn = run_mode("spawn", workload)
    rows = [
        {"mechanism": "PDOM (stack)", "ipc": round(pdom.ipc, 1),
         "efficiency": round(pdom.simt_efficiency, 3),
         "rays_done": pdom.stats.rays_completed},
        {"mechanism": "DWF (idealized)", "ipc": round(dwf.ipc, 1),
         "efficiency": round(dwf.simt_efficiency, 3),
         "rays_done": dwf.rays_completed},
        {"mechanism": "dynamic µ-kernels", "ipc": round(spawn.ipc, 1),
         "efficiency": round(spawn.simt_efficiency, 3),
         "rays_done": spawn.stats.rays_completed},
    ]
    return {"rows": rows, "verified": verified,
            "render": format_table(rows, title="Ablation — regrouping "
                                                "mechanisms (conference)")}


def ablation_persistent(preset: SimPreset, workload=None) -> dict:
    """Work scheduling: grid launch vs persistent threads vs µ-kernels."""
    import numpy as np

    from repro.harness.runner import config_for_mode
    from repro.kernels.layout import build_memory_image
    from repro.kernels.persistent import (
        persistent_launch_spec,
        persistent_thread_count,
    )
    from repro.simt import GPU

    workload = workload or prepare_workload("conference", preset)
    config = config_for_mode("pdom_warp", preset)
    image = build_memory_image(workload.tree, workload.origins,
                               workload.directions, workload.t_max)
    launch = persistent_launch_spec(persistent_thread_count(config))
    gpu = GPU(config, launch, image.global_mem, image.const_mem,
              divergence_window=preset.divergence_window)
    persistent = gpu.run()
    t, tri = image.results()
    done = ~np.isnan(t)
    verified = bool(np.array_equal(tri[done],
                                   workload.reference.triangle[done]))
    grid = run_mode("pdom_warp", workload)
    spawn = run_mode("spawn", workload)
    rows = [
        {"approach": "grid launch (PDOM)", "ipc": round(grid.ipc, 1),
         "efficiency": round(grid.simt_efficiency, 3),
         "rays_done": grid.stats.rays_completed},
        {"approach": "persistent threads", "ipc": round(persistent.ipc, 1),
         "efficiency": round(persistent.simt_efficiency, 3),
         "rays_done": persistent.sm_stats.rays_completed},
        {"approach": "dynamic µ-kernels", "ipc": round(spawn.ipc, 1),
         "efficiency": round(spawn.simt_efficiency, 3),
         "rays_done": spawn.stats.rays_completed},
    ]
    return {"rows": rows, "verified": verified,
            "render": format_table(rows, title="Ablation — work "
                                                "scheduling (conference)")}


def export_all_csv(preset: SimPreset, out_dir: str) -> list[str]:
    """Regenerate the figure data and write CSVs under ``out_dir``."""
    from repro.analysis.export import write_breakdown_csv, write_rows_csv

    written = []
    for name, data in (("table2", table2()), ("table3", table3(preset)),
                       ("table4", table4(preset)), ("fig8", fig8(preset))):
        written.append(str(write_rows_csv(f"{out_dir}/{name}.csv",
                                          data["rows"])))
    for name, fig in (("fig3", fig3(preset)), ("fig7", fig7(preset)),
                      ("fig9", fig9(preset))):
        written.append(str(write_breakdown_csv(f"{out_dir}/{name}.csv",
                                               fig["breakdown"])))
    written.append(str(write_rows_csv(f"{out_dir}/fig10.csv",
                                      fig10(preset)["rows"])))
    return written


def run_all(preset_name: str = "fast") -> str:
    """Regenerate every table and figure; returns the combined report."""
    preset = get_preset(preset_name)
    sections = [
        table1()["render"],
        table2()["render"],
        table3(preset)["render"],
        table4(preset)["render"],
        fig3(preset)["render"],
        fig7(preset)["render"],
        fig8(preset)["render"],
        fig9(preset)["render"],
        fig10(preset)["render"],
        ablation_dwf(preset)["render"],
        ablation_persistent(preset)["render"],
    ]
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    preset = argv[0] if argv else "fast"
    print(run_all(preset))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
