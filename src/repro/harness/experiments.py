"""One entry point per paper table and figure.

Each ``table*``/``fig*`` function runs the relevant simulations and returns
a dict with structured data plus a ``render`` string that prints the same
rows/series the paper reports. ``python -m repro.harness.experiments``
regenerates everything at the chosen preset.

Every simulation-backed figure accepts an optional ``results``
(:class:`~repro.harness.sweep.SweepResults`): when given, the figure reads
precomputed stats instead of simulating. :func:`run_selected` enumerates
the union of jobs the requested figures need (deduplicated — the PDOM
baseline shared by Figures 3/7/8/9/10 runs once, not five times), executes
them through the sweep engine with ``jobs`` workers, and feeds every figure
from the shared results.

When ``REPRO_RESULTS_DIR`` is set, every simulation executed here is also
appended to the :mod:`repro.results` warehouse (via the sweep engine's
recording hook), so ``repro compare`` can diff one figure regeneration
against another across revisions.
"""

from __future__ import annotations

import sys

from repro.analysis.bandwidth import bandwidth_table
from repro.analysis.divergence import breakdown_from_stats, render_breakdown
from repro.analysis.report import format_bars, format_table
from repro.config import paper_config
from repro.harness.presets import SimPreset, get_preset
from repro.harness.runner import mimd_rays_per_second, prepare_workload
from repro.harness.sweep import (
    SweepJob,
    SweepResults,
    resolve_jobs,
    run_sweep,
    warm_workloads,
)
from repro.kernels.microkernels import (
    PAPER_REGISTERS as MICRO_REGS,
    microkernel_program,
)
from repro.kernels.resources import (
    measure_resources,
    occupancy_threads_per_sm,
    table2_rows,
)
from repro.kernels.traditional import (
    PAPER_REGISTERS as TRAD_REGS,
    traditional_program,
)
from repro.rt import BENCHMARK_SCENES
from repro.rt.scenes import PAPER_TRIANGLE_COUNTS
from repro.workloads import GRAPH_SCENES

#: Modes the workload-family experiments compare (the paper's headline
#: trio: both PDOM baselines against conflict-free µ-kernels).
WORKLOAD_MODES = ("pdom_block", "pdom_warp", "spawn")


def _sim(results: SweepResults | None, scene: str, mode: str,
         preset: SimPreset, ray_kind: str = "primary"):
    """One simulation: served from sweep results when available.

    Returns either a :class:`~repro.harness.sweep.JobResult` or a
    :class:`~repro.harness.runner.RunResult`; both expose ``stats``,
    ``ipc``, ``simt_efficiency``, ``rays_per_second``,
    ``completed_fraction``, and ``verify()``.
    """
    if results is not None:
        try:
            return results.get(scene, mode, ray_kind)
        except KeyError:
            pass
    # Imported lazily: repro.api imports this package, so a module-level
    # import here would be circular.
    from repro.api import simulate
    return simulate(scene, mode, preset=preset, ray_kind=ray_kind)


def table1() -> dict:
    """Table I: the simulated machine configuration."""
    config = paper_config()
    rows = [{"parameter": key, "value": value}
            for key, value in config.table1_rows()]
    return {"rows": rows,
            "render": format_table(rows, title="Table I — configuration")}


def table2(config=None) -> dict:
    """Table II: per-thread kernel resources and resulting occupancy."""
    config = config or paper_config()
    trad = measure_resources(traditional_program(), "traditional")
    micro = measure_resources(microkernel_program(), "microkernel")
    rows = table2_rows(trad, micro)
    occupancy = {
        "traditional_block_threads_per_sm": occupancy_threads_per_sm(
            config, TRAD_REGS, block_size=64, scheduling="block"),
        "traditional_warp_threads_per_sm": occupancy_threads_per_sm(
            config, TRAD_REGS, block_size=64, scheduling="warp"),
        "microkernel_threads_per_sm": occupancy_threads_per_sm(
            config, MICRO_REGS, block_size=32, scheduling="warp"),
    }
    render = format_table(rows, title="Table II — per-thread resources")
    render += "\n\noccupancy: " + ", ".join(
        f"{key}={value}" for key, value in occupancy.items())
    return {"rows": rows, "occupancy": occupancy, "render": render}


def table3(preset: SimPreset) -> dict:
    """Table III: benchmark scenes and tree parameters.

    Reads the trees through the workload cache (the primary workload's
    tree is built with exactly these parameters), so a warm cache serves
    the whole table without a single kd-tree build.
    """
    rows = []
    for name in BENCHMARK_SCENES:
        stats = prepare_workload(name, preset).tree.stats()
        rows.append({
            "scene": name,
            "triangles": stats.num_triangles,
            "paper_triangles": PAPER_TRIANGLE_COUNTS[name],
            "tree_nodes": stats.num_nodes,
            "tree_leaves": stats.num_leaves,
            "max_depth": stats.max_depth,
            "avg_tris_per_leaf": round(stats.avg_triangles_per_leaf, 2),
            "empty_leaves": stats.empty_leaves,
        })
    return {"rows": rows,
            "render": format_table(rows, title="Table III — scenes")}


def table4(preset: SimPreset, jobs: int | None = None) -> dict:
    """Table IV: per-frame bandwidth, traditional vs dynamic."""
    if jobs is not None and resolve_jobs(jobs) > 1:
        warm_workloads(BENCHMARK_SCENES, preset.name, jobs_n=jobs)
    per_scene = {}
    for name in BENCHMARK_SCENES:
        workload = prepare_workload(name, preset)
        per_scene[name] = (workload.reference.counters, workload.num_rays)
    rows = bandwidth_table(per_scene)
    ratios = [row["read_ratio"] for row in rows if "read_ratio" in row]
    totals = [row["total_ratio"] for row in rows if "total_ratio" in row]
    summary = {
        "mean_read_ratio": round(sum(ratios) / len(ratios), 2),
        "mean_total_ratio": round(sum(totals) / len(totals), 2),
        "paper_read_ratio": 4.4,
        "paper_total_ratio": 7.3,
    }
    render = format_table(rows, title="Table IV — bandwidth per frame (MB)")
    render += f"\n\nmean ratios: read={summary['mean_read_ratio']}x " \
              f"(paper 4.4x), total={summary['mean_total_ratio']}x (paper 7.3x)"
    return {"rows": rows, "summary": summary, "render": render}


def _divergence_figure(mode: str, preset: SimPreset, scene: str,
                       title: str,
                       results: SweepResults | None = None) -> dict:
    result = _sim(results, scene, mode, preset)
    breakdown = breakdown_from_stats(result.stats)
    return {
        "mode": mode,
        "scene": scene,
        "ipc": result.ipc,
        "simt_efficiency": result.simt_efficiency,
        "mean_active_lanes": breakdown.mean_active_lanes,
        "breakdown": breakdown,
        "result": result,
        "render": (f"{title} (scene={scene}, mode={mode}, "
                   f"IPC={result.ipc:.1f}, "
                   f"efficiency={result.simt_efficiency:.2f})\n"
                   + render_breakdown(breakdown)),
    }


def fig3(preset: SimPreset, scene: str = "conference",
         results: SweepResults | None = None) -> dict:
    """Figure 3: divergence breakdown, traditional SIMT branching."""
    return _divergence_figure("pdom_block", preset, scene,
                              "Figure 3 — divergence, PDOM", results)


def fig7(preset: SimPreset, scene: str = "conference",
         results: SweepResults | None = None) -> dict:
    """Figure 7: divergence breakdown with dynamic µ-kernels (no bank
    conflicts); paper reports IPC 615 vs 326 (1.9x) on its machine."""
    data = _divergence_figure("spawn", preset, scene,
                              "Figure 7 — divergence, µ-kernels", results)
    baseline = _divergence_figure("pdom_block", preset, scene, "baseline",
                                  results)
    ratio = data["ipc"] / baseline["ipc"] if baseline["ipc"] else 0.0
    data["baseline_ipc"] = baseline["ipc"]
    data["ipc_ratio"] = ratio
    data["paper_ipc_ratio"] = 1.9
    data["render"] += (f"\nIPC ratio vs PDOM: {ratio:.2f}x "
                       f"(paper: 1.9x)")
    return data


def fig9(preset: SimPreset, scene: str = "conference",
         results: SweepResults | None = None) -> dict:
    """Figure 9: µ-kernel divergence with spawn-memory bank conflicts;
    paper reports IPC 429 (1.3x over PDOM)."""
    data = _divergence_figure("spawn_conflicts", preset, scene,
                              "Figure 9 — divergence, µ-kernels + conflicts",
                              results)
    baseline = _divergence_figure("pdom_block", preset, scene, "baseline",
                                  results)
    ratio = data["ipc"] / baseline["ipc"] if baseline["ipc"] else 0.0
    data["baseline_ipc"] = baseline["ipc"]
    data["ipc_ratio"] = ratio
    data["paper_ipc_ratio"] = 1.3
    data["render"] += (f"\nIPC ratio vs PDOM: {ratio:.2f}x "
                       f"(paper: 1.3x)")
    return data


def fig8(preset: SimPreset, modes=("pdom_block", "pdom_warp", "spawn"),
         results: SweepResults | None = None,
         jobs: int | None = None) -> dict:
    """Figure 8: rays/second per scene and branching/scheduling method.

    The full scene x mode grid is one parallel sweep when ``jobs`` asks
    for workers (or when precomputed ``results`` are passed in).
    """
    if results is None and jobs is not None and resolve_jobs(jobs) > 1:
        warm_workloads(BENCHMARK_SCENES, preset.name, jobs_n=jobs)
        results = run_sweep([SweepJob(scene=scene, mode=mode,
                                      preset=preset.name)
                             for scene in BENCHMARK_SCENES
                             for mode in modes], jobs_n=jobs)
    rows = []
    for scene in BENCHMARK_SCENES:
        for mode in modes:
            result = _sim(results, scene, mode, preset)
            rows.append({
                "scene": scene,
                "mode": mode,
                "mrays_per_s": round(result.rays_per_second / 1e6, 2),
                "ipc": round(result.ipc, 1),
                "efficiency": round(result.simt_efficiency, 3),
                "completed": round(result.completed_fraction, 3),
                "verified": result.verify(),
            })
    speedups = []
    for scene in BENCHMARK_SCENES:
        base = next(r for r in rows if r["scene"] == scene
                    and r["mode"] == "pdom_block")
        dyn = next(r for r in rows if r["scene"] == scene
                   and r["mode"] == "spawn")
        if base["mrays_per_s"]:
            speedups.append(dyn["mrays_per_s"] / base["mrays_per_s"])
    summary = {
        "mean_speedup_vs_pdom_block": (round(sum(speedups) / len(speedups), 2)
                                       if speedups else 0.0),
        "paper_mean_speedup": 1.4,
    }
    render = format_table(rows, title="Figure 8 — rays per second")
    render += (f"\n\nmean dynamic speedup vs PDOM block: "
               f"{summary['mean_speedup_vs_pdom_block']}x (paper: 1.4x)")
    return {"rows": rows, "summary": summary, "render": render}


def fig10(preset: SimPreset, scene: str = "conference",
          results: SweepResults | None = None,
          jobs: int | None = None) -> dict:
    """Figure 10: branching performance vs the MIMD theoretical ideal.

    The paper's shape: PDOM gains nothing from an ideal memory system
    (branch-bound); µ-kernels reach ~45% of MIMD with real memory and ~60%
    with ideal memory.
    """
    modes = ("pdom_block", "pdom_ideal", "spawn", "spawn_ideal")
    if results is None and jobs is not None and resolve_jobs(jobs) > 1:
        results = run_sweep([SweepJob(scene=scene, mode=mode,
                                      preset=preset.name)
                             for mode in modes], jobs_n=jobs)
    workload = prepare_workload(scene, preset)
    mimd = mimd_rays_per_second(workload)
    bars = []
    mode_results = {}
    for mode in modes:
        result = _sim(results, scene, mode, preset)
        mode_results[mode] = result
        bars.append((mode, result.rays_per_second))
    bars.append(("mimd_theoretical", mimd))
    fractions = {mode: (value / mimd if mimd else 0.0)
                 for mode, value in bars}
    rows = [{"mode": mode, "mrays_per_s": round(value / 1e6, 2),
             "fraction_of_mimd": round(fractions[mode], 3)}
            for mode, value in bars]
    render = format_table(rows, title=f"Figure 10 — vs MIMD ({scene})")
    render += ("\n\npaper shape: PDOM flat under ideal memory; µ-kernels "
               ">=45% of MIMD, up to ~60% ideal")
    return {"rows": rows, "fractions": fractions, "results": mode_results,
            "mimd_rays_per_second": mimd, "render": render}


def ablation_dwf(preset: SimPreset, workload=None,
                 results: SweepResults | None = None) -> dict:
    """Regrouping mechanisms: PDOM vs idealized DWF vs dynamic µ-kernels."""
    import numpy as np

    from repro.api import config_for_mode
    from repro.kernels.layout import build_memory_image
    from repro.kernels.traditional import traditional_program
    from repro.simt.dwf import run_dwf

    workload = workload or prepare_workload("conference", preset)
    config = config_for_mode("pdom_warp", preset)
    image = build_memory_image(workload.tree, workload.origins,
                               workload.directions, workload.t_max)
    dwf = run_dwf(config, traditional_program(), "trace", image.global_mem,
                  image.const_mem,
                  num_threads=min(workload.num_rays, 736),
                  max_cycles=preset.max_cycles)
    t, tri = image.results()
    done = ~np.isnan(t)
    verified = bool(np.array_equal(tri[done],
                                   workload.reference.triangle[done]))
    pdom = _sim(results, workload.scene_name, "pdom_warp", preset)
    spawn = _sim(results, workload.scene_name, "spawn", preset)
    rows = [
        {"mechanism": "PDOM (stack)", "ipc": round(pdom.ipc, 1),
         "efficiency": round(pdom.simt_efficiency, 3),
         "rays_done": pdom.stats.rays_completed},
        {"mechanism": "DWF (idealized)", "ipc": round(dwf.ipc, 1),
         "efficiency": round(dwf.simt_efficiency, 3),
         "rays_done": dwf.rays_completed},
        {"mechanism": "dynamic µ-kernels", "ipc": round(spawn.ipc, 1),
         "efficiency": round(spawn.simt_efficiency, 3),
         "rays_done": spawn.stats.rays_completed},
    ]
    return {"rows": rows, "verified": verified,
            "render": format_table(rows, title="Ablation — regrouping "
                                                "mechanisms (conference)")}


def ablation_persistent(preset: SimPreset, workload=None,
                        results: SweepResults | None = None) -> dict:
    """Work scheduling: grid launch vs persistent threads vs µ-kernels."""
    import numpy as np

    from repro.api import config_for_mode
    from repro.kernels.layout import build_memory_image
    from repro.kernels.persistent import (
        persistent_launch_spec,
        persistent_thread_count,
    )
    from repro.simt import GPU

    workload = workload or prepare_workload("conference", preset)
    config = config_for_mode("pdom_warp", preset)
    image = build_memory_image(workload.tree, workload.origins,
                               workload.directions, workload.t_max)
    launch = persistent_launch_spec(persistent_thread_count(config))
    gpu = GPU(config, launch, image.global_mem, image.const_mem,
              divergence_window=preset.divergence_window)
    persistent = gpu.run()
    t, tri = image.results()
    done = ~np.isnan(t)
    verified = bool(np.array_equal(tri[done],
                                   workload.reference.triangle[done]))
    grid = _sim(results, workload.scene_name, "pdom_warp", preset)
    spawn = _sim(results, workload.scene_name, "spawn", preset)
    rows = [
        {"approach": "grid launch (PDOM)", "ipc": round(grid.ipc, 1),
         "efficiency": round(grid.simt_efficiency, 3),
         "rays_done": grid.stats.rays_completed},
        {"approach": "persistent threads", "ipc": round(persistent.ipc, 1),
         "efficiency": round(persistent.simt_efficiency, 3),
         "rays_done": persistent.sm_stats.rays_completed},
        {"approach": "dynamic µ-kernels", "ipc": round(spawn.ipc, 1),
         "efficiency": round(spawn.simt_efficiency, 3),
         "rays_done": spawn.stats.rays_completed},
    ]
    return {"rows": rows, "verified": verified,
            "render": format_table(rows, title="Ablation — work "
                                                "scheduling (conference)")}


def _family_figure(title: str, preset: SimPreset, scenes, ray_kind: str,
                   results: SweepResults | None = None,
                   jobs: int | None = None) -> dict:
    """Scene x mode grid for one workload family (path tracing, BFS)."""
    if results is None and jobs is not None and resolve_jobs(jobs) > 1:
        warm_workloads([(scene, ray_kind) for scene in scenes],
                       preset.name, jobs_n=jobs)
        results = run_sweep([SweepJob(scene=scene, mode=mode,
                                      preset=preset.name, ray_kind=ray_kind)
                             for scene in scenes
                             for mode in WORKLOAD_MODES], jobs_n=jobs)
    rows = []
    for scene in scenes:
        for mode in WORKLOAD_MODES:
            result = _sim(results, scene, mode, preset, ray_kind=ray_kind)
            rows.append({
                "scene": scene,
                "mode": mode,
                "cycles": result.stats.cycles,
                "ipc": round(result.ipc, 1),
                "efficiency": round(result.simt_efficiency, 3),
                "completed": round(result.completed_fraction, 3),
                "verified": result.verify(),
            })
    ratios = []
    for scene in scenes:
        base = next(r for r in rows if r["scene"] == scene
                    and r["mode"] == "pdom_block")
        dyn = next(r for r in rows if r["scene"] == scene
                   and r["mode"] == "spawn")
        if base["efficiency"]:
            ratios.append(dyn["efficiency"] / base["efficiency"])
    summary = {"mean_efficiency_ratio_vs_pdom_block":
               round(sum(ratios) / len(ratios), 2) if ratios else 0.0}
    render = format_table(rows, title=title)
    render += (f"\n\nmean SIMT-efficiency ratio, µ-kernels vs PDOM block: "
               f"{summary['mean_efficiency_ratio_vs_pdom_block']}x")
    return {"rows": rows, "summary": summary, "render": render}


def pathtrace(preset: SimPreset, results: SweepResults | None = None,
              jobs: int | None = None) -> dict:
    """Multi-bounce path tracing: the roulette loop as a spawn chain.

    The russian-roulette termination is a data-dependent *outer* loop on
    top of the traversal loops, so reconvergence-stack divergence compounds
    with bounce depth — the workload the µ-kernel decomposition is supposed
    to shine on beyond the paper's single-bounce batches.
    """
    return _family_figure(
        "Path tracing — roulette bounce loops (ray_kind=path)",
        preset, ("conference",), "path", results, jobs)


def bfs(preset: SimPreset, results: SweepResults | None = None,
        jobs: int | None = None) -> dict:
    """Graph traversal: frontier expansion over a shared worklist.

    A non-rendering irregular workload: per-vertex work varies with
    out-degree (``graph-skew`` concentrates edges on a few hubs), so warp
    lanes diverge on the expansion loop and µ-kernel spawning regroups
    them; verification bounds levels against true BFS order.
    """
    return _family_figure(
        "Graph traversal — frontier BFS (ray_kind=bfs)",
        preset, GRAPH_SCENES, "bfs", results, jobs)


def _pairs(preset: SimPreset, pairs) -> list[SweepJob]:
    return [SweepJob(scene=scene, mode=mode, preset=preset.name)
            for scene, mode in pairs]


#: Simulations each figure needs, as declarative job specs. The union over
#: requested figures is deduplicated before the sweep runs, so shared
#: baselines (conference pdom_block appears in five figures) run once.
FIGURE_JOBS = {
    "fig3": lambda preset: _pairs(preset, [("conference", "pdom_block")]),
    "fig7": lambda preset: _pairs(preset, [("conference", "spawn"),
                                           ("conference", "pdom_block")]),
    "fig8": lambda preset: _pairs(preset, [
        (scene, mode) for scene in BENCHMARK_SCENES
        for mode in ("pdom_block", "pdom_warp", "spawn")]),
    "fig9": lambda preset: _pairs(preset, [("conference", "spawn_conflicts"),
                                           ("conference", "pdom_block")]),
    "fig10": lambda preset: _pairs(preset, [
        ("conference", mode) for mode in ("pdom_block", "pdom_ideal",
                                          "spawn", "spawn_ideal")]),
    "ablation_dwf": lambda preset: _pairs(preset, [
        ("conference", "pdom_warp"), ("conference", "spawn")]),
    "ablation_persistent": lambda preset: _pairs(preset, [
        ("conference", "pdom_warp"), ("conference", "spawn")]),
    "pathtrace": lambda preset: [
        SweepJob(scene="conference", mode=mode, preset=preset.name,
                 ray_kind="path") for mode in WORKLOAD_MODES],
    "bfs": lambda preset: [
        SweepJob(scene=scene, mode=mode, preset=preset.name, ray_kind="bfs")
        for scene in GRAPH_SCENES for mode in WORKLOAD_MODES],
}

def _no_jobs(preset: SimPreset) -> list:
    """Job source for experiments that need no simulations (the tables)."""
    return []


#: Uniform call surface for the CLI and :func:`run_selected`.
EXPERIMENTS = {
    "table1": lambda preset, results=None: table1(),
    "table2": lambda preset, results=None: table2(),
    "table3": lambda preset, results=None: table3(preset),
    "table4": lambda preset, results=None: table4(preset),
    "fig3": lambda preset, results=None: fig3(preset, results=results),
    "fig7": lambda preset, results=None: fig7(preset, results=results),
    "fig8": lambda preset, results=None: fig8(preset, results=results),
    "fig9": lambda preset, results=None: fig9(preset, results=results),
    "fig10": lambda preset, results=None: fig10(preset, results=results),
    "ablation_dwf": lambda preset, results=None: ablation_dwf(
        preset, results=results),
    "ablation_persistent": lambda preset, results=None: ablation_persistent(
        preset, results=results),
    "pathtrace": lambda preset, results=None: pathtrace(
        preset, results=results),
    "bfs": lambda preset, results=None: bfs(preset, results=results),
}


def sweep_jobs_for(names, preset: SimPreset) -> list[SweepJob]:
    """Deduplicated union of the jobs the named experiments need."""
    jobs: list[SweepJob] = []
    seen: set = set()
    for name in names:
        for job in FIGURE_JOBS.get(name, lambda preset: [])(preset):
            if job not in seen:
                seen.add(job)
                jobs.append(job)
    return jobs


def run_selected(names, preset: SimPreset, jobs: int | None = None,
                 progress=None, *, strict: bool = True, retry=None,
                 checkpoint=None, resume: bool = False, results_out=None):
    """Yield ``(name, data)`` for each experiment, sharing one sweep.

    All simulations the requested figures need run first — as a single
    deduplicated sweep over ``jobs`` workers (workloads are pre-warmed
    into the cache so pool workers never race on a scene build) — then
    each figure renders from the shared results.

    ``strict``/``retry``/``checkpoint``/``resume`` forward to
    :func:`~repro.harness.sweep.run_sweep` (retry policy, raise-vs-partial
    contract, and the resumable checkpoint manifest). ``results_out``, when
    given a list, receives the shared :class:`SweepResults` so callers
    (the CLI exit-code path) can inspect failures and verification flags
    after the figures render.
    """
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments {unknown}; choose from "
                       f"{', '.join(EXPERIMENTS)}")
    sim_jobs = sweep_jobs_for(names, preset)
    # jobs=None means serial here (the safe library default); the CLI
    # resolves its own default to REPRO_JOBS / os.cpu_count() first.
    workers = 1 if jobs is None else resolve_jobs(jobs)
    results = None
    if sim_jobs:
        if workers > 1:
            warm_workloads(sorted({(job.scene, job.ray_kind)
                                   for job in sim_jobs}),
                           preset.name, jobs_n=workers)
        results = run_sweep(sim_jobs, jobs_n=workers, progress=progress,
                            strict=strict, retry=retry,
                            checkpoint=checkpoint, resume=resume)
        if results_out is not None:
            results_out.append(results)
    failed_keys = {failure.job.key for failure in results.failures} \
        if results is not None else set()
    for name in names:
        # A partial (strict=False) sweep may be missing simulations a
        # figure needs; render a skip notice instead of crashing so the
        # surviving figures still come out.
        missing = [job for job in FIGURE_JOBS.get(name, _no_jobs)(preset)
                   if job.key in failed_keys] if failed_keys else []
        if missing:
            yield name, {"render": (
                f"{name}: skipped — required simulation(s) failed: "
                + ", ".join(job.describe() for job in missing))}
            continue
        yield name, EXPERIMENTS[name](preset, results=results)


def export_all_csv(preset: SimPreset, out_dir: str,
                   jobs: int | None = None) -> list[str]:
    """Regenerate the figure data and write CSVs under ``out_dir``."""
    from repro.analysis.export import write_breakdown_csv, write_rows_csv

    names = ("table2", "table3", "table4", "fig3", "fig7", "fig8", "fig9",
             "fig10")
    data = dict(run_selected(names, preset, jobs=jobs))
    written = []
    for name in ("table2", "table3", "table4", "fig8", "fig10"):
        written.append(str(write_rows_csv(f"{out_dir}/{name}.csv",
                                          data[name]["rows"])))
    for name in ("fig3", "fig7", "fig9"):
        written.append(str(write_breakdown_csv(f"{out_dir}/{name}.csv",
                                               data[name]["breakdown"])))
    return written


def run_all(preset_name: str = "fast", jobs: int | None = None,
            progress=None, *, strict: bool = True, checkpoint=None,
            resume: bool = False) -> str:
    """Regenerate every table and figure; returns the combined report.

    ``jobs`` fans the underlying simulations over that many worker
    processes (``None`` keeps the serial reference path);
    ``checkpoint``/``resume`` make the shared sweep resumable.
    """
    preset = get_preset(preset_name)
    sections = [data["render"] for _, data in
                run_selected(list(EXPERIMENTS), preset, jobs=jobs,
                             progress=progress, strict=strict,
                             checkpoint=checkpoint, resume=resume)]
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    preset = argv[0] if argv else "fast"
    jobs = int(argv[1]) if len(argv) > 1 else None
    print(run_all(preset, jobs=jobs))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
