"""Parallel sweep engine: fan independent simulations over worker processes.

Every paper artifact is a sweep of independent ``(scene, ray_kind, mode)``
simulations. This module enumerates them as declarative, pickle-cheap
:class:`SweepJob` specs and executes them either serially in-process
(``jobs=1`` — the determinism reference path) or over a
``concurrent.futures.ProcessPoolExecutor``.

Worker protocol: only the job spec crosses the process boundary on the way
in (the preset travels by *name*), and only the :class:`JobResult` — stats
plus a handful of scalars — on the way out. Workers never receive or
return ``GPU``/``Workload`` objects; they hydrate workloads themselves
through the persistent cache (:mod:`repro.harness.cache`), so a sweep's
second run skips every scene build, kd-tree build, and reference trace.

The simulator is deterministic, so ``--jobs N``, ``--jobs 1``, and a
direct :func:`~repro.harness.runner.run_mode` call produce bit-identical
:class:`~repro.simt.gpu.RunStats` (locked down by
``tests/harness/test_sweep.py`` against golden digests).
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.harness.presets import get_preset
from repro.harness.runner import StatsView, _run_mode, prepare_workload
from repro.simt.gpu import RunStats


@dataclass(frozen=True)
class SweepJob:
    """One independent simulation: everything a worker needs, by value."""

    scene: str
    mode: str
    preset: str                      # preset *name*; workers re-resolve it
    ray_kind: str = "primary"
    seed: int = 0
    max_cycles: int | None = None
    fast_forward: bool | None = None

    @property
    def key(self) -> tuple[str, str, str, int]:
        return (self.scene, self.mode, self.ray_kind, self.seed)

    def describe(self) -> str:
        tail = "" if self.ray_kind == "primary" else f"/{self.ray_kind}"
        return f"{self.scene}{tail}:{self.mode}"


@dataclass
class JobResult(StatsView):
    """What comes back from a worker: stats plus derived scalars.

    Exposes the same metric surface as
    :class:`~repro.harness.runner.RunResult` (both mix in
    :class:`~repro.harness.runner.StatsView`), so figure code can consume
    either interchangeably.
    """

    job: SweepJob
    stats: RunStats
    num_rays: int
    verified: bool
    wall_seconds: float

    @property
    def completed_fraction(self) -> float:
        return self.stats.rays_completed / self.num_rays

    def verify(self) -> bool:
        return self.verified


class SweepResults:
    """Ordered job results with lookup by (scene, mode, ray_kind, seed)."""

    def __init__(self, results: Iterable[JobResult]):
        self.results = list(results)
        self._by_key = {result.job.key: result for result in self.results}

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def get(self, scene: str, mode: str, ray_kind: str = "primary",
            seed: int = 0) -> JobResult:
        key = (scene, mode, ray_kind, seed)
        if key not in self._by_key:
            raise KeyError(f"no sweep result for {key}; have "
                           f"{sorted(self._by_key)}")
        return self._by_key[key]

    @property
    def total_wall_seconds(self) -> float:
        return sum(result.wall_seconds for result in self.results)


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit value > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def execute_job(job: SweepJob) -> JobResult:
    """Run one job (in a worker or inline); workloads come via the cache."""
    preset = get_preset(job.preset)
    start = time.perf_counter()
    workload = prepare_workload(job.scene, preset, ray_kind=job.ray_kind,
                                seed=job.seed)
    result = _run_mode(job.mode, workload, max_cycles=job.max_cycles,
                       fast_forward=job.fast_forward)
    wall = time.perf_counter() - start
    return JobResult(job=job, stats=result.stats, num_rays=workload.num_rays,
                     verified=result.verify(), wall_seconds=wall)


def stderr_progress(line: str) -> None:
    """Default progress sink for CLI sweeps."""
    print(line, file=sys.stderr, flush=True)


def _progress_line(done: int, total: int, result: JobResult) -> str:
    flag = "" if result.verified else "  UNVERIFIED"
    return (f"[{done}/{total}] {result.job.describe()}  "
            f"{result.stats.cycles} cycles  "
            f"{result.wall_seconds:.2f}s{flag}")


def run_sweep(jobs: Iterable[SweepJob], jobs_n: int | None = None,
              progress: Callable[[str], None] | None = None) -> SweepResults:
    """Execute all jobs; results keep the input order.

    ``jobs_n=1`` (or a single job) runs serially in-process — the exact
    same :func:`execute_job` code path the pool workers run, so the two can
    be diffed bit-for-bit. Larger values fan out over a process pool.
    """
    job_list = list(jobs)
    workers = min(resolve_jobs(jobs_n), max(1, len(job_list)))
    emit = progress if progress is not None else (lambda line: None)
    results: list[JobResult | None] = [None] * len(job_list)
    if workers <= 1:
        for index, job in enumerate(job_list):
            results[index] = execute_job(job)
            emit(_progress_line(index + 1, len(job_list), results[index]))
        return SweepResults(results)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {pool.submit(execute_job, job): index
                   for index, job in enumerate(job_list)}
        done = 0
        for future in as_completed(futures):
            index = futures[future]
            results[index] = future.result()
            done += 1
            emit(_progress_line(done, len(job_list), results[index]))
    return SweepResults(results)


def _warm_one(spec: tuple[str, str, str, int]) -> int:
    scene, preset_name, ray_kind, seed = spec
    preset = get_preset(preset_name)
    workload = prepare_workload(scene, preset, ray_kind=ray_kind, seed=seed)
    return workload.num_rays


def warm_workloads(scenes: Iterable[str], preset_name: str,
                   ray_kinds: Iterable[str] = ("primary",),
                   jobs_n: int | None = None, seed: int = 0) -> int:
    """Pre-populate the persistent cache, one worker per workload.

    Run before a sweep so pool workers racing on the same scene all find a
    finished entry instead of each rebuilding it. A no-op when the cache is
    disabled (nothing would be retained across processes).
    """
    from repro.harness.cache import cache_enabled

    if not cache_enabled():
        return 0
    specs = [(scene, preset_name, kind, seed)
             for scene in scenes for kind in ray_kinds]
    workers = min(resolve_jobs(jobs_n), max(1, len(specs)))
    if workers <= 1 or len(specs) <= 1:
        for spec in specs:
            _warm_one(spec)
        return len(specs)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        list(pool.map(_warm_one, specs))
    return len(specs)


def run_stats_digest(stats: RunStats) -> dict:
    """JSON-able fingerprint of a run's full counter state.

    Covers every headline counter plus the complete divergence histogram
    and per-thread commit counts — two runs with equal digests executed
    identically for all reporting purposes. Used by the sweep determinism
    tests to compare ``--jobs N`` / ``--jobs 1`` / direct execution.

    Derived from the versioned :meth:`RunStats.to_dict` document so the
    digest and the serialization schema cannot drift apart; the key set
    and value layout are frozen by the golden files under
    ``tests/harness/golden/``.
    """
    document = stats.to_dict()
    sm = document["sm"]
    divergence = document["divergence"]
    return {
        "cycles": document["cycles"],
        "rays_completed": document["rays_completed"],
        "issued_instructions": sm["issued_instructions"],
        "committed_thread_instructions": sm["committed_thread_instructions"],
        "idle_cycles": sm["idle_cycles"],
        "stall_cycles": sm["stall_cycles"],
        "threads_spawned": sm["threads_spawned"],
        "full_warps_formed": sm["full_warps_formed"],
        "partial_warps_flushed": sm["partial_warps_flushed"],
        "bank_conflict_cycles": sm["bank_conflict_cycles"],
        "dram_read_bytes": document["dram_read_bytes"],
        "dram_write_bytes": document["dram_write_bytes"],
        "dram_transactions": document["dram_transactions"],
        "thread_commits": document["thread_commits"],
        "divergence": {
            "window": divergence["window"],
            "issues": divergence["issues"],
            "idle": divergence["idle"],
            "stall": divergence["stall"],
        },
    }
