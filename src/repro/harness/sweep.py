"""Parallel sweep engine: fan independent simulations over worker processes.

Every paper artifact is a sweep of independent ``(scene, ray_kind, mode)``
simulations. This module enumerates them as declarative, pickle-cheap
:class:`SweepJob` specs and executes them either serially in-process
(``jobs=1`` — the determinism reference path) or over a
``concurrent.futures.ProcessPoolExecutor``.

Worker protocol: only the job spec crosses the process boundary on the way
in (the preset travels by *name*), and only the :class:`JobResult` — stats
plus a handful of scalars — on the way out. Workers never receive or
return ``GPU``/``Workload`` objects; they hydrate workloads themselves
through the persistent cache (:mod:`repro.harness.cache`), so a sweep's
second run skips every scene build, kd-tree build, and reference trace.

The simulator is deterministic, so ``--jobs N``, ``--jobs 1``, and a
direct :func:`~repro.harness.runner.run_mode` call produce bit-identical
:class:`~repro.simt.gpu.RunStats` (locked down by
``tests/harness/test_sweep.py`` against golden digests).

Fault tolerance (see ``docs/architecture.md`` for the failure model):

- each job gets a retry budget with exponential backoff and an optional
  per-job wall-clock timeout (:class:`RetryPolicy`);
- a worker crash (``BrokenProcessPool``) respawns the pool, requeues the
  surviving jobs without penalty, and quarantines the offending job as a
  :class:`FailedJob` once its attempts are spent — the rest of the sweep
  keeps running;
- ``strict=True`` (the default) raises :class:`~repro.errors.SweepError`
  if anything permanently failed; ``strict=False`` returns partial
  :class:`SweepResults` carrying the failure records;
- completed jobs stream into an on-disk JSONL checkpoint manifest
  (:class:`SweepCheckpoint`) keyed by job key + preset + config digest;
  ``resume=True`` serves matching records bit-identically instead of
  re-simulating them;
- :class:`FaultInjector` (``REPRO_FAULT_SPEC``) deterministically injects
  crash/hang/exception faults into :func:`execute_job` so every recovery
  path is testable in CI without flakes.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import signal
import sys
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import (
    ConfigError,
    FaultInjectionError,
    SchedulingError,
    SweepError,
)
from repro.harness.cache import (
    atomic_write_text,
    resolve_cache_dir,
    resolve_env_dir,
)
from repro.harness.presets import get_preset
from repro.harness.runner import StatsView, prepare_workload, run_mode
from repro.simt.gpu import RunStats

#: Legacy schema tag of pre-wire checkpoint manifests; still accepted on
#: load (new lines are ``repro-wire/1`` — see :mod:`repro.serve.wire`).
CHECKPOINT_SCHEMA = "repro-sweep-checkpoint/1"

#: How often the pool loop polls futures for completion and watchdog
#: expiry — see ``_run_pool``.
_POLL_SECONDS = 0.1


@dataclass(frozen=True)
class SweepJob:
    """One independent simulation: everything a worker needs, by value."""

    scene: str
    mode: str
    preset: str                      # preset *name*; workers re-resolve it
    ray_kind: str = "primary"
    seed: int = 0
    max_cycles: int | None = None
    fast_forward: bool | None = None
    executor: str | None = None
    scheduler: str | None = None

    @property
    def key(self) -> tuple[str, str, str, int]:
        return (self.scene, self.mode, self.ray_kind, self.seed)

    def describe(self) -> str:
        tail = "" if self.ray_kind == "primary" else f"/{self.ray_kind}"
        return f"{self.scene}{tail}:{self.mode}"

    def config_digest(self) -> str:
        """Hash of every field that determines the job's result.

        Checkpoint records are keyed by :attr:`key` *and* this digest, so
        a resumed sweep never serves a result that was computed under a
        different preset, cycle budget, or clock. ``executor`` and
        ``scheduler`` join the hash only when set — both backends are
        bit-identical by contract, and leaving the defaults out keeps
        digests (and therefore existing checkpoint manifests) stable for
        every job spec that predates the fields.
        """
        parts = [
            "sweep-job-v1", self.scene, self.mode, self.preset,
            self.ray_kind, f"seed={self.seed}",
            f"max_cycles={self.max_cycles}",
            f"fast_forward={self.fast_forward}",
        ]
        if self.executor is not None:
            parts.append(f"executor={self.executor}")
        if self.scheduler is not None:
            parts.append(f"scheduler={self.scheduler}")
        return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


@dataclass
class JobResult(StatsView):
    """What comes back from a worker: stats plus derived scalars.

    Exposes the same metric surface as
    :class:`~repro.harness.runner.RunResult` (both mix in
    :class:`~repro.harness.runner.StatsView`), so figure code can consume
    either interchangeably.
    """

    job: SweepJob
    stats: RunStats
    num_rays: int
    verified: bool
    wall_seconds: float

    @property
    def completed_fraction(self) -> float:
        # An empty/truncated workload completes nothing, not a div-zero.
        if self.num_rays == 0:
            return 0.0
        return self.stats.rays_completed / self.num_rays

    def verify(self) -> bool:
        return self.verified


@dataclass
class FailedJob:
    """A job the sweep gave up on after exhausting its retry budget."""

    job: SweepJob
    attempts: int
    kind: str        # "exception" | "crash" | "timeout"
    error: str

    def describe(self) -> str:
        return (f"{self.job.describe()}  FAILED ({self.kind}) after "
                f"{self.attempts} attempt(s): {self.error}")


@dataclass(frozen=True)
class RetryPolicy:
    """Per-job fault-tolerance policy for :func:`run_sweep`.

    ``max_attempts`` bounds how many times one job may execute (first try
    included) before it is quarantined as a :class:`FailedJob`.
    ``backoff_seconds`` is the base delay before a retry; it doubles on
    every further attempt. ``timeout_seconds`` is a per-job wall-clock
    budget: a ``SIGALRM`` timer inside the worker turns hangs in Python
    code into retryable ``TimeoutError``s, and a driver-side watchdog
    kills and respawns the pool for hard hangs the signal cannot reach.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.25
    timeout_seconds: float | None = None

    def backoff_for(self, attempt: int) -> float:
        """Delay before retrying after ``attempt`` failed executions."""
        if self.backoff_seconds <= 0:
            return 0.0
        return self.backoff_seconds * (2.0 ** max(0, attempt - 1))


class SweepResults:
    """Ordered job results with lookup by (scene, mode, ray_kind, seed).

    ``failures`` carries the :class:`FailedJob` records of a partial
    (``strict=False``) sweep; a fully-successful sweep has ``ok == True``.
    """

    def __init__(self, results: Iterable[JobResult],
                 failures: Iterable[FailedJob] = ()):
        self.results = list(results)
        self.failures = list(failures)
        self._by_key: dict[tuple, JobResult] = {}
        for result in self.results:
            key = result.job.key
            if key in self._by_key:
                raise SchedulingError(
                    f"duplicate sweep results for key {key}: jobs "
                    f"{self._by_key[key].job!r} and {result.job!r} would "
                    f"clobber each other; deduplicate the job list")
            self._by_key[key] = result

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def get(self, scene: str, mode: str, ray_kind: str = "primary",
            seed: int = 0) -> JobResult:
        key = (scene, mode, ray_kind, seed)
        if key not in self._by_key:
            raise KeyError(f"no sweep result for {key}; have "
                           f"{sorted(self._by_key)}")
        return self._by_key[key]

    @property
    def ok(self) -> bool:
        """True when no job permanently failed."""
        return not self.failures

    @property
    def unverified(self) -> list[JobResult]:
        """Completed jobs whose results failed reference verification."""
        return [result for result in self.results if not result.verified]

    @property
    def total_wall_seconds(self) -> float:
        return sum(result.wall_seconds for result in self.results)


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit value > ``REPRO_JOBS`` > ``os.cpu_count()``.

    An unset or empty ``REPRO_JOBS`` falls through to the CPU count; a
    non-integer value (``REPRO_JOBS=auto``) raises
    :class:`~repro.errors.ConfigError` naming the offending value.
    """
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ConfigError(
                f"REPRO_JOBS must be an integer worker count, got {env!r} "
                f"(unset it or leave it empty to use all cores)") from None
        return max(1, value)
    return os.cpu_count() or 1


# -- fault injection ---------------------------------------------------------


@dataclass(frozen=True)
class FaultClause:
    """One injected fault: fire ``kind`` on ``count`` executions of a job."""

    kind: str        # "crash" | "hang" | "exception"
    scene: str
    mode: str
    count: int = 1

    @property
    def ident(self) -> str:
        return f"{self.kind}-{self.scene}-{self.mode}"


class FaultInjector:
    """Deterministic fault injection for the sweep recovery paths.

    Spec grammar (``REPRO_FAULT_SPEC``): comma-separated clauses of the
    form ``kind@scene:mode`` with an optional ``*count`` suffix, e.g.
    ``crash@conference:spawn,hang@fairyforest:pdom_block*2``. Kinds:

    - ``exception`` — raise :class:`~repro.errors.FaultInjectionError`;
    - ``hang`` — sleep far past any sane job budget (exercises the
      timeout/watchdog path; only use with a ``timeout_seconds`` policy);
    - ``crash`` — ``os._exit`` the process. Only meaningful under a
      process pool, where it becomes a ``BrokenProcessPool``; in a serial
      sweep it would kill the driver, exactly like a real crash would.

    Each clause fires on the first ``count`` executions of the matching
    job and never again — the firing count is claimed through exclusive
    token files in ``REPRO_FAULT_DIR`` (default: a per-spec directory
    under the system temp dir), so the count holds across retries, pool
    respawns, and worker processes.
    """

    KINDS = ("crash", "hang", "exception")

    def __init__(self, clauses: Iterable[FaultClause],
                 state_dir: str | pathlib.Path | None = None,
                 hang_seconds: float = 3600.0):
        self.clauses = list(clauses)
        self.state_dir = pathlib.Path(state_dir) if state_dir is not None \
            else None
        self.hang_seconds = hang_seconds

    @classmethod
    def parse(cls, spec: str,
              state_dir: str | pathlib.Path | None = None) -> "FaultInjector":
        clauses = []
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            count = 1
            if "*" in chunk:
                chunk, _, count_text = chunk.rpartition("*")
                try:
                    count = int(count_text)
                except ValueError:
                    raise ConfigError(
                        f"bad fault count {count_text!r} in spec chunk "
                        f"{chunk!r}") from None
            kind, sep, target = chunk.partition("@")
            scene, sep2, mode = target.partition(":")
            if kind not in cls.KINDS or not sep or not sep2 \
                    or not scene or not mode:
                raise ConfigError(
                    f"bad fault clause {chunk!r}; expected "
                    f"kind@scene:mode[*count] with kind in {cls.KINDS}")
            clauses.append(FaultClause(kind=kind, scene=scene, mode=mode,
                                       count=count))
        if state_dir is None:
            state_dir = os.environ.get("REPRO_FAULT_DIR")
        if state_dir is None:
            digest = hashlib.sha256(spec.encode()).hexdigest()[:16]
            state_dir = pathlib.Path(tempfile.gettempdir()) \
                / f"repro-faults-{digest}"
        return cls(clauses, state_dir=state_dir)

    @classmethod
    def from_env(cls) -> "FaultInjector | None":
        spec = os.environ.get("REPRO_FAULT_SPEC")
        if not spec:
            return None
        return cls.parse(spec)

    def _claim(self, clause: FaultClause) -> bool:
        """Atomically claim one of the clause's firing tokens."""
        if self.state_dir is None:
            return True
        self.state_dir.mkdir(parents=True, exist_ok=True)
        for n in range(1, clause.count + 1):
            token = self.state_dir / f"{clause.ident}.{n}"
            try:
                fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    def fire(self, job: SweepJob) -> None:
        """Inject the configured fault for ``job``, if any remain."""
        for clause in self.clauses:
            if clause.scene != job.scene or clause.mode != job.mode:
                continue
            if not self._claim(clause):
                continue
            if clause.kind == "exception":
                raise FaultInjectionError(
                    f"injected exception in {job.describe()}")
            if clause.kind == "hang":
                time.sleep(self.hang_seconds)
                raise FaultInjectionError(
                    f"injected hang in {job.describe()} was not interrupted")
            # "crash": die the way a segfaulting worker would — no cleanup,
            # no exception, just a dead process.
            os._exit(66)


# -- job execution -----------------------------------------------------------


def execute_job(job: SweepJob, injector: FaultInjector | None = None) -> JobResult:
    """Run one job (in a worker or inline); workloads come via the cache.

    ``injector`` overrides the ``REPRO_FAULT_SPEC``-derived fault injector
    (tests pass one explicitly; production runs have neither).
    """
    if injector is None:
        injector = FaultInjector.from_env()
    if injector is not None:
        injector.fire(job)
    preset = get_preset(job.preset)
    start = time.perf_counter()
    workload = prepare_workload(job.scene, preset, ray_kind=job.ray_kind,
                                seed=job.seed)
    result = run_mode(job.mode, workload, max_cycles=job.max_cycles,
                      fast_forward=job.fast_forward,
                      executor=job.executor, scheduler=job.scheduler)
    wall = time.perf_counter() - start
    return JobResult(job=job, stats=result.stats, num_rays=workload.num_rays,
                     verified=result.verify(), wall_seconds=wall)


def _execute_with_deadline(job: SweepJob,
                           timeout_seconds: float | None,
                           start_log: str | None = None,
                           token: str | None = None) -> JobResult:
    """Run one job under a ``SIGALRM`` wall-clock budget.

    This is the pool-worker entry point (and the serial path when a
    timeout is set): a hang inside Python code becomes an ordinary
    ``TimeoutError`` the driver can retry. The driver's deadline watchdog
    (pool kill + respawn) remains the backstop for hard hangs the signal
    cannot interrupt. Platforms without ``SIGALRM``, and non-main threads,
    fall back to an unguarded run.

    ``start_log``/``token``: before anything else runs, the worker appends
    ``token=pid`` to the driver's breadcrumb file (O_APPEND — atomic for
    lines this short). The breadcrumb survives worker death, so when the
    pool breaks the driver knows which worker process each in-flight
    attempt was running in and can pin the blame on the job whose worker
    actually died abnormally (see ``_run_pool``).
    """
    if start_log is not None and token is not None:
        with open(start_log, "a") as handle:
            handle.write(f"{token}={os.getpid()}\n")
    if (timeout_seconds is None or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        return execute_job(job)

    def _alarm(signum, frame):
        raise TimeoutError(
            f"{job.describe()} exceeded its {timeout_seconds:.1f}s "
            f"wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_seconds)
    try:
        return execute_job(job)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# -- checkpoint manifest -----------------------------------------------------


def default_checkpoint_path(tag: str) -> pathlib.Path:
    """Where ``repro experiments --resume`` keeps its manifest by default.

    ``REPRO_CHECKPOINT_DIR`` overrides the directory so multi-host workers
    can point at a shared filesystem without passing ``--checkpoint``
    everywhere; the default stays ``<cache-dir>/checkpoints``. An override
    that cannot be created or written raises
    :class:`~repro.errors.ConfigError` immediately — a sweep must not run
    for minutes and then fail on its first checkpoint append.
    """
    override = os.environ.get("REPRO_CHECKPOINT_DIR")
    if override:
        # Pin a relative override to the CWD at first resolution: workers
        # spawned with a different CWD must not open a second manifest.
        directory = resolve_env_dir("REPRO_CHECKPOINT_DIR", override)
        try:
            directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigError(
                f"REPRO_CHECKPOINT_DIR={override!r} cannot be created: "
                f"{exc}") from None
        if not os.access(directory, os.W_OK):
            raise ConfigError(
                f"REPRO_CHECKPOINT_DIR={override!r} is not writable")
        return directory / f"{tag}.jsonl"
    return resolve_cache_dir() / "checkpoints" / f"{tag}.jsonl"


class SweepCheckpoint:
    """On-disk JSONL manifest of completed sweep jobs.

    One ``repro-wire/1`` ``result`` record per line (see
    :mod:`repro.serve.wire`), each embedding the versioned
    ``RunStats.to_dict`` payload plus the job key, preset name, and the
    job's :meth:`SweepJob.config_digest`. Lookup requires key *and* digest
    to match, so a resumed sweep never serves a result computed under
    different settings, and :meth:`lookup` reconstructs the
    :class:`JobResult` through ``RunStats.from_dict`` — bit-identical for
    every reported counter. The file is replaced atomically on every
    append (:func:`repro.harness.cache.atomic_write_text`); corrupt or
    foreign lines are skipped on load, never fatal, and manifests written
    by the pre-wire ``repro-sweep-checkpoint/1`` schema keep loading (and
    resuming bit-identically) through the wire module's compat path.
    """

    def __init__(self, path: str | pathlib.Path):
        self.path = pathlib.Path(path)
        self._records: dict[tuple, dict] = {}
        self._lines: list[str] = []

    def load(self) -> int:
        """(Re-)read the manifest; returns the number of usable records."""
        from repro.serve import wire

        self._records.clear()
        self._lines = []
        if not self.path.exists():
            return 0
        for line in self.path.read_text().splitlines():
            record = wire.parse_line(line)
            if record is None or record.get("kind") != "result":
                continue
            try:
                key = wire.record_key(record)
            except (KeyError, TypeError):
                continue
            self._records[key] = record
            self._lines.append(wire.dump_line(record))
        return len(self._records)

    def lookup(self, job: SweepJob) -> JobResult | None:
        """The checkpointed result for ``job``, or None if absent/stale."""
        from repro.serve import wire

        record = self._records.get((job.key, job.config_digest()))
        if record is None:
            return None
        try:
            return wire.result_from_wire(record, job=job)
        except (ConfigError, KeyError, TypeError, ValueError):
            return None  # schema drift: re-simulate rather than fail

    def record(self, result: JobResult) -> None:
        """Append one completed job and atomically republish the file."""
        from repro.serve import wire

        record = wire.result_to_wire(result)
        self._records[wire.record_key(record)] = record
        self._lines.append(wire.dump_line(record))
        atomic_write_text(self.path, "\n".join(self._lines) + "\n")


# -- sweep driver ------------------------------------------------------------


def stderr_progress(line: str) -> None:
    """Default progress sink for CLI sweeps."""
    print(line, file=sys.stderr, flush=True)


def _progress_line(done: int, total: int, result: JobResult) -> str:
    flag = "" if result.verified else "  UNVERIFIED"
    return (f"[{done}/{total}] {result.job.describe()}  "
            f"{result.stats.cycles} cycles  "
            f"{result.wall_seconds:.2f}s{flag}")


def _check_duplicate_jobs(job_list: list[SweepJob]) -> None:
    seen: dict[tuple, SweepJob] = {}
    for job in job_list:
        if job.key in seen:
            raise SchedulingError(
                f"duplicate sweep jobs for key {job.key}: {seen[job.key]!r} "
                f"and {job!r}; results are keyed by (scene, mode, ray_kind, "
                f"seed), so one of them would be silently lost — "
                f"deduplicate the job list")
        seen[job.key] = job


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a pool down hard, terminating workers so hung or crashed jobs
    can never block driver exit. Uses the executor's private process table
    (there is no public kill API); terminating an idle worker is harmless."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        if process.is_alive():
            process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def run_sweep(jobs: Iterable[SweepJob], jobs_n: int | None = None,
              progress: Callable[[str], None] | None = None, *,
              retry: RetryPolicy | None = None, strict: bool = True,
              checkpoint: str | pathlib.Path | SweepCheckpoint | None = None,
              resume: bool = False) -> SweepResults:
    """Execute all jobs; results keep the input order.

    ``jobs_n=1`` (or a single job) runs serially in-process — the exact
    same :func:`execute_job` code path the pool workers run, so the two can
    be diffed bit-for-bit. Larger values fan out over a process pool.

    Fault tolerance: every job gets ``retry.max_attempts`` executions with
    exponential backoff (and a per-job wall-clock timeout when
    ``retry.timeout_seconds`` is set); a worker crash respawns the pool and
    requeues the innocent jobs without penalty. With ``strict=True`` (the
    default) any permanently-failed job raises
    :class:`~repro.errors.SweepError` once the rest of the sweep has
    finished; ``strict=False`` returns partial :class:`SweepResults` whose
    ``failures`` list the quarantined jobs.

    ``checkpoint`` (a path or :class:`SweepCheckpoint`) streams every
    completed job into a JSONL manifest; ``resume=True`` additionally
    serves jobs already present in the manifest — matched by job key *and*
    config digest — without re-simulating them, bit-identically.
    """
    job_list = list(jobs)
    _check_duplicate_jobs(job_list)
    retry = RetryPolicy() if retry is None else retry
    if resume and checkpoint is None:
        raise ConfigError("resume=True requires a checkpoint manifest path")
    manifest: SweepCheckpoint | None = None
    if checkpoint is not None:
        manifest = checkpoint if isinstance(checkpoint, SweepCheckpoint) \
            else SweepCheckpoint(checkpoint)
        manifest.load()
    emit = progress if progress is not None else (lambda line: None)
    total = len(job_list)
    results: list[JobResult | None] = [None] * total
    failures: list[FailedJob] = []
    done = 0

    def finish(index: int, result: JobResult) -> None:
        nonlocal done
        results[index] = result
        done += 1
        if manifest is not None:
            manifest.record(result)
        # Opt-in results warehouse: every freshly executed job records one
        # store line (resumed-from-checkpoint jobs don't come through here,
        # so a resume never double-records). No-op without
        # REPRO_RESULTS_DIR.
        from repro.results.store import maybe_record
        maybe_record(result, source="sweep")
        emit(_progress_line(done, total, result))

    def quarantine(failure: FailedJob) -> None:
        nonlocal done
        failures.append(failure)
        done += 1
        emit(f"[{done}/{total}] {failure.describe()}")

    remaining: list[int] = []
    for index, job in enumerate(job_list):
        cached = manifest.lookup(job) if (manifest is not None
                                          and resume) else None
        if cached is not None:
            results[index] = cached
            done += 1
            emit(f"[{done}/{total}] {job.describe()}  "
                 f"resumed from checkpoint")
        else:
            remaining.append(index)

    if remaining:
        workers = min(resolve_jobs(jobs_n), len(remaining))
        if workers <= 1:
            _run_serial(job_list, remaining, retry, finish, quarantine, emit)
        else:
            _run_pool(job_list, remaining, workers, retry, finish,
                      quarantine, emit)

    swept = SweepResults([r for r in results if r is not None],
                         failures=failures)
    if strict and failures:
        names = ", ".join(failure.job.describe() for failure in failures)
        error = SweepError(
            f"{len(failures)} of {total} sweep jobs permanently failed: "
            f"{names} (pass strict=False for partial results)", failures)
        error.results = swept
        raise error
    return swept


def _run_serial(job_list, remaining, retry, finish, quarantine, emit) -> None:
    """In-process execution with the same retry/backoff policy as the pool.

    There is no crash isolation here — a worker-killing fault takes the
    driver with it, exactly as any in-process crash would — but exceptions
    and (via ``SIGALRM``) hangs retry and quarantine identically.
    """
    for index in remaining:
        job = job_list[index]
        for attempt in range(1, retry.max_attempts + 1):
            try:
                finish(index, _execute_with_deadline(job,
                                                     retry.timeout_seconds))
                break
            except Exception as exc:  # quarantine, don't kill the sweep
                kind = "timeout" if isinstance(exc, TimeoutError) \
                    else "exception"
                error = f"{type(exc).__name__}: {exc}"
                if attempt >= retry.max_attempts:
                    quarantine(FailedJob(job=job, attempts=attempt,
                                         kind=kind, error=error))
                    break
                emit(f"[retry] {job.describe()}  attempt "
                     f"{attempt + 1}/{retry.max_attempts} after {error}")
                delay = retry.backoff_for(attempt)
                if delay:
                    time.sleep(delay)


def _run_pool(job_list, remaining, workers, retry, finish, quarantine,
              emit) -> None:
    """Pool execution with crash recovery and a hang watchdog.

    Crash attribution: every worker appends ``token=pid`` to a breadcrumb
    file the moment it picks a job up (see :func:`_execute_with_deadline`).
    When the pool breaks, the culprit's worker has died with its own
    abnormal exit code, while the executor tears the *other* workers down
    with SIGTERM — so only the broken future whose breadcrumb pid exited
    abnormally is penalized; co-running jobs whose workers were merely
    torn down requeue without burning an attempt. If no broken future can
    be pinned that way (no breadcrumb, or exit codes unavailable), every
    broken future is penalized so progress is guaranteed; the respawn
    budget below backstops a pathologically crashy environment.
    """
    pending = deque(remaining)
    attempts = dict.fromkeys(remaining, 0)
    not_before = dict.fromkeys(remaining, 0.0)
    log_fd, start_log = tempfile.mkstemp(prefix="repro-sweep-started-")
    os.close(log_fd)
    pool = ProcessPoolExecutor(max_workers=workers)
    running: dict = {}      # future -> job index
    tokens: dict = {}       # future -> breadcrumb token of this attempt
    deadline: dict = {}     # future -> driver-side watchdog deadline
    respawns = 0
    max_respawns = workers + retry.max_attempts * len(remaining) + 4
    # The in-worker SIGALRM should fire first; the driver watchdog only
    # steps in for hard hangs, so give the signal a generous head start.
    watchdog_budget = None if retry.timeout_seconds is None \
        else retry.timeout_seconds * 2.0 + 1.0

    def breadcrumb_pids() -> dict:
        """token -> worker pid, parsed from the breadcrumb file."""
        mapping: dict = {}
        try:
            lines = pathlib.Path(start_log).read_text().split()
        except OSError:
            return mapping
        for line in lines:
            token, sep, pid = line.partition("=")
            if sep and pid.isdigit():
                mapping[token] = int(pid)
        return mapping

    def guilty_worker_pids() -> set:
        """Pids of pool workers that died abnormally.

        The executor tears surviving workers down with SIGTERM when the
        pool breaks, so ``-SIGTERM`` (and a clean 0) mark innocents; any
        other exit code is the crash culprit. Waits briefly for the
        executor's teardown to settle so exit codes are readable.
        """
        procs = dict(getattr(pool, "_processes", None) or {})
        settle = time.monotonic() + 1.0
        while time.monotonic() < settle \
                and any(p.exitcode is None for p in procs.values()):
            time.sleep(0.01)
        teardown = -int(getattr(signal, "SIGTERM", 15))
        return {pid for pid, proc in procs.items()
                if proc.exitcode not in (None, 0, teardown)}

    def requeue(index: int, kind: str, error: str,
                penalized: bool = True) -> None:
        if not penalized:
            attempts[index] -= 1
            pending.appendleft(index)
            return
        if attempts[index] >= retry.max_attempts:
            quarantine(FailedJob(job=job_list[index], attempts=attempts[index],
                                 kind=kind, error=error))
            return
        emit(f"[retry] {job_list[index].describe()}  attempt "
             f"{attempts[index] + 1}/{retry.max_attempts} after {kind}: "
             f"{error}")
        not_before[index] = time.monotonic() \
            + retry.backoff_for(attempts[index])
        pending.append(index)

    clean = False
    try:
        while pending or running:
            # (1) fill free slots with jobs whose backoff has elapsed
            now = time.monotonic()
            deferred = []
            while pending and len(running) < workers:
                index = pending.popleft()
                if not_before[index] > now:
                    deferred.append(index)
                    continue
                attempts[index] += 1
                token = f"{index}:{attempts[index]}"
                future = pool.submit(_execute_with_deadline, job_list[index],
                                     retry.timeout_seconds, start_log, token)
                running[future] = index
                tokens[future] = token
                if watchdog_budget is not None:
                    deadline[future] = now + watchdog_budget
            for index in reversed(deferred):
                pending.appendleft(index)
            if not running:
                wake = min(not_before[index] for index in pending)
                time.sleep(min(max(wake - time.monotonic(), 0.01), 0.5))
                continue
            # (2) collect completions
            finished, _ = wait(list(running), timeout=_POLL_SECONDS,
                               return_when=FIRST_COMPLETED)
            broken: list = []
            pool_broken = False
            for future in finished:
                index = running.pop(future)
                deadline.pop(future, None)
                try:
                    result = future.result()
                except BrokenProcessPool:
                    pool_broken = True
                    broken.append((index, tokens.get(future)))
                except TimeoutError as exc:
                    requeue(index, "timeout", str(exc))
                except Exception as exc:
                    requeue(index, "exception",
                            f"{type(exc).__name__}: {exc}")
                else:
                    finish(index, result)
                tokens.pop(future, None)
            if broken:
                guilty_pids = guilty_worker_pids()
                crumbs = breadcrumb_pids()
                suspect = [crumbs.get(token) in guilty_pids
                           for _, token in broken]
                blame_all = not any(suspect)
                for (index, token), guilty in zip(broken, suspect):
                    requeue(index, "crash",
                            "worker process died (BrokenProcessPool)",
                            penalized=blame_all or guilty)
            # (3) watchdog: hard hangs the in-worker SIGALRM never reached
            now = time.monotonic()
            expired = [future for future, limit in deadline.items()
                       if now > limit]
            for future in expired:
                index = running.pop(future)
                deadline.pop(future, None)
                tokens.pop(future, None)
                pool_broken = True
                requeue(index, "timeout",
                        f"exceeded the {watchdog_budget:.1f}s driver "
                        f"watchdog; worker killed")
            # (4) respawn a broken/poisoned pool; survivors requeue freely
            if pool_broken:
                for future, index in running.items():
                    requeue(index, "crash", "pool respawned",
                            penalized=False)
                running.clear()
                tokens.clear()
                deadline.clear()
                respawns += 1
                if respawns > max_respawns:
                    raise SweepError(
                        f"worker pool died {respawns} times; giving up "
                        f"(is the environment killing workers?)")
                _kill_pool(pool)
                pool = ProcessPoolExecutor(max_workers=workers)
        clean = True
    finally:
        pathlib.Path(start_log).unlink(missing_ok=True)
        if clean:
            pool.shutdown(wait=True, cancel_futures=True)
        else:
            _kill_pool(pool)


def _warm_one(spec: tuple[str, str, str, int]) -> int:
    scene, preset_name, ray_kind, seed = spec
    preset = get_preset(preset_name)
    workload = prepare_workload(scene, preset, ray_kind=ray_kind, seed=seed)
    return workload.num_rays


def warm_workloads(scenes: Iterable, preset_name: str,
                   ray_kinds: Iterable[str] = ("primary",),
                   jobs_n: int | None = None, seed: int = 0) -> int:
    """Pre-populate the persistent cache, one worker per workload.

    Run before a sweep so pool workers racing on the same scene all find a
    finished entry instead of each rebuilding it. A no-op when the cache is
    disabled (nothing would be retained across processes).

    ``scenes`` entries are either plain scene names (crossed with
    ``ray_kinds``) or ``(scene, ray_kind)`` pairs naming one workload each
    — the form mixed-family sweeps use, since a graph scene has no
    "primary" ray batch to warm.
    """
    from repro.harness.cache import cache_enabled

    if not cache_enabled():
        return 0
    specs = []
    for item in scenes:
        if isinstance(item, tuple):
            scene, kind = item
            specs.append((scene, preset_name, kind, seed))
        else:
            specs.extend((item, preset_name, kind, seed)
                         for kind in ray_kinds)
    workers = min(resolve_jobs(jobs_n), max(1, len(specs)))
    if workers <= 1 or len(specs) <= 1:
        for spec in specs:
            _warm_one(spec)
        return len(specs)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        list(pool.map(_warm_one, specs))
    return len(specs)


def run_stats_digest(stats: RunStats) -> dict:
    """JSON-able fingerprint of a run's full counter state.

    Covers every headline counter plus the complete divergence histogram
    and per-thread commit counts — two runs with equal digests executed
    identically for all reporting purposes. Used by the sweep determinism
    tests to compare ``--jobs N`` / ``--jobs 1`` / direct execution.

    Derived from the versioned :meth:`RunStats.to_dict` document so the
    digest and the serialization schema cannot drift apart; the key set
    and value layout are frozen by the golden files under
    ``tests/harness/golden/``.
    """
    document = stats.to_dict()
    sm = document["sm"]
    divergence = document["divergence"]
    return {
        "cycles": document["cycles"],
        "rays_completed": document["rays_completed"],
        "issued_instructions": sm["issued_instructions"],
        "committed_thread_instructions": sm["committed_thread_instructions"],
        "idle_cycles": sm["idle_cycles"],
        "stall_cycles": sm["stall_cycles"],
        "threads_spawned": sm["threads_spawned"],
        "full_warps_formed": sm["full_warps_formed"],
        "partial_warps_flushed": sm["partial_warps_flushed"],
        "bank_conflict_cycles": sm["bank_conflict_cycles"],
        "dram_read_bytes": document["dram_read_bytes"],
        "dram_write_bytes": document["dram_write_bytes"],
        "dram_transactions": document["dram_transactions"],
        "thread_commits": document["thread_commits"],
        "divergence": {
            "window": divergence["window"],
            "issues": divergence["issues"],
            "idle": divergence["idle"],
            "stall": divergence["stall"],
        },
    }
