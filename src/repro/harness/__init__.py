"""Experiment harness: presets, workload runner, sweep engine, cache."""

from repro.harness.presets import PRESETS, SimPreset, get_preset
from repro.harness.runner import (
    MODES,
    RunResult,
    Workload,
    build_workload,
    prepare_workload,
    run_mode,
)
from repro.harness.cache import WorkloadCache, cache_enabled, default_cache
from repro.harness.sweep import (
    JobResult,
    SweepJob,
    SweepResults,
    resolve_jobs,
    run_sweep,
    run_stats_digest,
)
from repro.harness import experiments

__all__ = [
    "MODES",
    "PRESETS",
    "JobResult",
    "RunResult",
    "SimPreset",
    "SweepJob",
    "SweepResults",
    "Workload",
    "WorkloadCache",
    "build_workload",
    "cache_enabled",
    "default_cache",
    "experiments",
    "get_preset",
    "prepare_workload",
    "resolve_jobs",
    "run_mode",
    "run_stats_digest",
    "run_sweep",
]
