"""Experiment harness: presets, workload runner, per-figure experiments."""

from repro.harness.presets import PRESETS, SimPreset, get_preset
from repro.harness.runner import (
    MODES,
    RunResult,
    Workload,
    prepare_workload,
    run_mode,
)
from repro.harness import experiments

__all__ = [
    "MODES",
    "PRESETS",
    "RunResult",
    "SimPreset",
    "Workload",
    "experiments",
    "get_preset",
    "prepare_workload",
    "run_mode",
]
