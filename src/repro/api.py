"""Stable public façade over the experiment harness.

Two calls cover the whole workflow:

- :func:`simulate` — one (scene, mode) simulation, optionally observed by
  a :class:`repro.obs.TraceSession`;
- :func:`sweep` — many independent simulations fanned over worker
  processes.

Everything else (workload building, per-mode configs and launch specs,
``run_mode``) is re-exported here under its stable public name. The
pre-1.0 underscore spellings on :mod:`repro.harness.runner`
(``_build_workload``, ``_config_for_mode``, ``_launch_for_mode``,
``_run_mode``) still work but emit ``DeprecationWarning``; new code
should import from ``repro.api`` (or ``repro`` directly)::

    from repro import api
    result = api.simulate("conference", "spawn", preset="fast")
    print(result.ipc, result.simt_efficiency)
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

from repro.errors import ConfigError
from repro.fuzz import (
    FuzzReport,
    load_case,
    run_case,
    run_fuzz,
    save_case,
    shrink_case,
)
from repro.harness.presets import PRESETS, SimPreset, get_preset
from repro.harness.runner import (
    MODES,
    PAPER_SMS,
    RunResult,
    Workload,
    build_workload,
    config_for_mode,
    launch_for_mode,
    prepare_workload,
    run_mode,
)
from repro.harness.sweep import (
    FailedJob,
    FaultInjector,
    JobResult,
    RetryPolicy,
    SweepCheckpoint,
    SweepJob,
    SweepResults,
    run_stats_digest,
    run_sweep,
)
from repro.obs.probe import TraceSession
from repro.results.store import ResultsStore, default_store, maybe_record


def _resolve_probes(probes) -> TraceSession | None:
    """Normalize the ``probes`` argument of :func:`simulate`.

    ``None``/``False`` → no instrumentation; ``True`` → a fresh session at
    the default interval; an ``int`` → a fresh session with that interval;
    a :class:`TraceSession` → used as-is (must be unused).
    """
    if probes is None or probes is False:
        return None
    if probes is True:
        return TraceSession()
    if isinstance(probes, TraceSession):
        return probes
    if isinstance(probes, int):
        return TraceSession(interval=probes)
    raise ConfigError(
        f"probes must be None, a bool, an interval in cycles, or a "
        f"TraceSession; got {type(probes).__name__}")


def _resolve_preset(preset) -> SimPreset:
    if isinstance(preset, SimPreset):
        return preset
    return get_preset(preset)


def simulate(scene, mode: str, *, preset="fast", ray_kind: str = "primary",
             seed: int = 0, max_cycles: int | None = None,
             fast_forward: bool | None = None, executor: str | None = None,
             scheduler: str | None = None, probes=None,
             cache=None) -> RunResult:
    """Simulate one machine mode on one workload; returns a ``RunResult``.

    ``scene`` is either a scene name (the workload is prepared through the
    persistent cache, honouring ``preset``/``ray_kind``/``seed``/``cache``)
    or an already-prepared :class:`~repro.harness.runner.Workload` (those
    arguments are then ignored — the workload is used as-is).

    ``probes`` attaches cycle-attribution instrumentation (see
    :func:`_resolve_probes`); the session comes back finalized as
    ``result.trace``. With ``probes`` unset the simulation runs with zero
    instrumentation overhead and bit-identical statistics.

    ``executor`` selects the instruction-execution backend
    (:data:`repro.config.EXECUTORS`): ``"reference"`` interprets one warp
    instruction at a time, ``"batched"`` compiles straight-line runs into
    structure-of-arrays kernels with bit-identical results. None keeps
    the :class:`~repro.config.GPUConfig` default (reference).

    ``scheduler`` selects the warp-scheduler implementation
    (:data:`repro.config.SCHEDULERS`): ``"scan"`` is the reference
    per-cycle round-robin scan, ``"calendar"`` the event-driven wake
    calendar with bit-identical results. None keeps the default (scan).
    """
    if isinstance(scene, Workload):
        workload = scene
    else:
        workload = prepare_workload(scene, _resolve_preset(preset),
                                    ray_kind=ray_kind, seed=seed, cache=cache)
    started = time.perf_counter()
    result = run_mode(mode, workload, max_cycles=max_cycles,
                      fast_forward=fast_forward, executor=executor,
                      scheduler=scheduler, trace=_resolve_probes(probes))
    # Opt-in results warehouse (no-op without REPRO_RESULTS_DIR): the wall
    # clock covers the simulation only, not workload preparation, matching
    # what JobResult.wall_seconds measures on the sweep path. The explicit
    # job spec carries max_cycles/fast_forward/executor/scheduler so the
    # recorded config_digest matches an identically-configured sweep job.
    maybe_record(result, source="simulate",
                 wall_seconds=time.perf_counter() - started, seed=seed,
                 job=SweepJob(scene=workload.scene_name, mode=mode,
                              preset=workload.preset.name,
                              ray_kind=workload.ray_kind, seed=seed,
                              max_cycles=max_cycles,
                              fast_forward=fast_forward, executor=executor,
                              scheduler=scheduler))
    return result


def sweep(jobs: Iterable, jobs_n: int | None = None,
          progress: Callable[[str], None] | None = None, *,
          strict: bool = True, retry: RetryPolicy | None = None,
          checkpoint=None, resume: bool = False) -> SweepResults:
    """Execute many independent simulations, optionally in parallel.

    ``jobs`` may mix :class:`SweepJob` specs, mappings of ``SweepJob``
    fields, and positional tuples ``(scene, mode, preset[, ray_kind,
    seed])``. ``jobs_n`` picks the worker count (default: ``REPRO_JOBS``
    or the CPU count); results keep the input order and are bit-identical
    across worker counts.

    Fault tolerance: failing jobs retry per ``retry`` (a
    :class:`RetryPolicy` — attempts, exponential backoff, per-job
    timeout); worker crashes respawn the pool and quarantine the culprit.
    ``strict=True`` (default) raises :class:`repro.errors.SweepError` if
    any job permanently failed; ``strict=False`` returns partial results
    with the ``failures`` records attached. ``checkpoint`` streams
    completed jobs into a JSONL manifest and ``resume=True`` serves
    already-checkpointed jobs bit-identically instead of re-running them.
    """
    job_list = []
    for job in jobs:
        if isinstance(job, SweepJob):
            job_list.append(job)
        elif isinstance(job, dict):
            job_list.append(SweepJob(**job))
        else:
            job_list.append(SweepJob(*job))
    return run_sweep(job_list, jobs_n=jobs_n, progress=progress,
                     strict=strict, retry=retry, checkpoint=checkpoint,
                     resume=resume)


__all__ = [
    "MODES",
    "PAPER_SMS",
    "PRESETS",
    "FailedJob",
    "FaultInjector",
    "FuzzReport",
    "JobResult",
    "ResultsStore",
    "RetryPolicy",
    "RunResult",
    "SimPreset",
    "SweepCheckpoint",
    "SweepJob",
    "SweepResults",
    "TraceSession",
    "Workload",
    "build_workload",
    "config_for_mode",
    "default_store",
    "get_preset",
    "launch_for_mode",
    "load_case",
    "maybe_record",
    "prepare_workload",
    "run_case",
    "run_fuzz",
    "run_mode",
    "run_stats_digest",
    "save_case",
    "shrink_case",
    "simulate",
    "sweep",
]
