"""Analysis utilities: divergence breakdowns, bandwidth model, reports."""

from repro.analysis.bandwidth import BandwidthModel, bandwidth_table
from repro.analysis.divergence import (
    DivergenceBreakdown,
    breakdown_from_stats,
    render_breakdown,
)
from repro.analysis.report import format_table, format_series

__all__ = [
    "BandwidthModel",
    "DivergenceBreakdown",
    "bandwidth_table",
    "breakdown_from_stats",
    "format_series",
    "format_table",
    "render_breakdown",
]
