"""CSV/plot-data export for experiment results.

The benchmarks print ASCII renderings; for publication-quality plots the
same data can be exported as CSV and re-plotted with any tool. Every
writer returns the path it wrote.
"""

from __future__ import annotations

import csv
import pathlib
from collections.abc import Sequence

from repro.analysis.divergence import DivergenceBreakdown


def write_rows_csv(path: str | pathlib.Path, rows: Sequence[dict],
                   columns: Sequence[str] | None = None) -> pathlib.Path:
    """Write dict rows (e.g. a table/figure's ``rows``) as CSV."""
    path = pathlib.Path(path)
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns),
                                restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow({key: row.get(key, "") for key in columns})
    return path


def write_breakdown_csv(path: str | pathlib.Path,
                        breakdown: DivergenceBreakdown) -> pathlib.Path:
    """Export a divergence breakdown time series (Figures 3/7/9 data).

    One row per time window: window start cycle followed by the fraction
    of that window spent in each W category, idle, and stall.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["window_start_cycle", *breakdown.labels])
        for index in range(breakdown.num_windows):
            start = index * breakdown.window_cycles
            writer.writerow([start,
                             *(f"{value:.6f}"
                               for value in breakdown.fractions[index])])
    return path


def write_series_csv(path: str | pathlib.Path, name: str,
                     labels: Sequence[str], values: Sequence[float]
                     ) -> pathlib.Path:
    """Export labelled bars (Figure 8/10 style data)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal lengths")
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["label", name])
        for label, value in zip(labels, values):
            writer.writerow([label, value])
    return path
