"""Analytic per-frame bandwidth model — paper Table IV.

The paper computes Table IV "from the number of down traversals and
intersection tests required to render a single frame ... without any
caching or separation between off-chip and on-chip memory spaces". We do
the same from the reference tracer's :class:`~repro.rt.trace.TraceCounters`:

Traditional kernel per frame:

- reads: ray records, one node record per down traversal and per leaf
  entered, and one leaf index plus one Wald record per intersection test;
- writes: the per-ray result pair only (the paper's ~0.25 MB column —
  traversal-stack traffic is excluded, as in the paper).

Dynamic µ-kernels add, per spawned thread, a 48-byte state store by the
parent, a 48-byte state load by the child, and the 4-byte warp-formation
metadata write/read. Thread counts per chain follow the µ-kernel
decomposition: one ``uk_traverse`` per node visit *and* per leaf arrival,
one ``uk_isect`` per intersection test, one ``uk_pop`` per leaf finished.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rt.trace import TraceCounters

#: Byte costs (32-bit words on the modelled hardware).
NODE_BYTES = 16
TRIANGLE_BYTES = 48
LEAF_INDEX_BYTES = 4
RAY_BYTES = 32
RESULT_BYTES = 8
STATE_BYTES = 48
METADATA_BYTES = 4


@dataclass(frozen=True)
class BandwidthModel:
    """Modelled per-frame traffic for one scene and kernel variant."""

    name: str
    read_bytes: int
    write_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    def as_megabytes(self) -> tuple[float, float, float]:
        scale = 1.0 / (1024 * 1024)
        return (self.read_bytes * scale, self.write_bytes * scale,
                self.total_bytes * scale)


def spawned_threads(counters: TraceCounters) -> int:
    """Dynamic threads created per frame under the naïve µ-kernel scheme.

    One ``uk_traverse`` instance per node visit and per leaf arrival, one
    ``uk_isect`` per triangle test, one ``uk_pop`` per leaf finished —
    every instance is one spawn event. Rays that miss the world bounds
    never spawn and contribute nothing to the counters.
    """
    totals = counters.totals()
    return (totals["node_visits"] + 2 * totals["leaf_visits"]
            + totals["triangle_tests"])


def traditional_bandwidth(counters: TraceCounters, num_rays: int
                          ) -> BandwidthModel:
    totals = counters.totals()
    reads = (num_rays * RAY_BYTES
             + (totals["node_visits"] + totals["leaf_visits"]) * NODE_BYTES
             + totals["triangle_tests"] * (LEAF_INDEX_BYTES + TRIANGLE_BYTES))
    writes = num_rays * RESULT_BYTES
    return BandwidthModel(name="Traditional", read_bytes=reads,
                          write_bytes=writes)


def dynamic_bandwidth(counters: TraceCounters, num_rays: int
                      ) -> BandwidthModel:
    """Traffic with dynamic thread creation: each spawn event moves the
    48-byte state plus 4 bytes of warp-formation metadata in each
    direction (parent store + hardware metadata write; child reads both)."""
    base = traditional_bandwidth(counters, num_rays)
    threads = spawned_threads(counters)
    reads = base.read_bytes + threads * (STATE_BYTES + METADATA_BYTES)
    writes = base.write_bytes + threads * (STATE_BYTES + METADATA_BYTES)
    return BandwidthModel(name="Dynamic", read_bytes=reads,
                          write_bytes=writes)


def bandwidth_table(per_scene: dict[str, tuple[TraceCounters, int]]
                    ) -> list[dict]:
    """Table IV rows for ``{scene: (counters, num_rays)}``.

    Returns one row per scene and variant with MB columns plus the
    dynamic/traditional ratios the paper quotes (4.4x read, 7.3x total on
    its scenes).
    """
    rows = []
    for scene, (counters, num_rays) in per_scene.items():
        trad = traditional_bandwidth(counters, num_rays)
        dyn = dynamic_bandwidth(counters, num_rays)
        trad_mb = trad.as_megabytes()
        dyn_mb = dyn.as_megabytes()
        rows.append({
            "scene": scene, "variant": "Traditional",
            "read_mb": round(trad_mb[0], 2), "write_mb": round(trad_mb[1], 2),
            "total_mb": round(trad_mb[2], 2),
        })
        rows.append({
            "scene": scene, "variant": "Dynamic",
            "read_mb": round(dyn_mb[0], 2), "write_mb": round(dyn_mb[1], 2),
            "total_mb": round(dyn_mb[2], 2),
            "read_ratio": round(dyn.read_bytes / trad.read_bytes, 2),
            "total_ratio": round(dyn.total_bytes / trad.total_bytes, 2),
        })
    return rows
