"""Warp-occupancy (divergence) breakdowns — paper Figures 3, 7 and 9.

The AerialVision plots classify every issued warp instruction by its count
of active threads into categories W1:4 ... W29:32 and show the mix over
time. :func:`breakdown_from_stats` extracts the same series from a
simulation run; :func:`render_breakdown` draws a terminal-friendly stacked
chart so benchmarks can print the figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simt.gpu import RunStats
from repro.simt.stats import NUM_W_BUCKETS, w_labels


@dataclass(frozen=True)
class DivergenceBreakdown:
    """Time series of warp-occupancy category fractions.

    ``fractions`` has one row per time window; columns are the W buckets
    (low to high occupancy) followed by idle and stall fractions.
    """

    window_cycles: int
    labels: tuple[str, ...]
    fractions: np.ndarray
    totals: np.ndarray
    mean_active_lanes: float
    warp_size: int

    @property
    def num_windows(self) -> int:
        return self.fractions.shape[0]

    def category_share(self, label: str) -> float:
        """Whole-run issue share of one W category."""
        index = self.labels.index(label)
        total = self.totals.sum()
        return float(self.totals[index] / total) if total else 0.0

    def high_occupancy_share(self, buckets: int = 2) -> float:
        """Issue share of the top ``buckets`` occupancy categories."""
        total = self.totals.sum()
        if not total:
            return 0.0
        return float(self.totals[-buckets:].sum() / total)

    def low_occupancy_share(self, buckets: int = 2) -> float:
        total = self.totals.sum()
        if not total:
            return 0.0
        return float(self.totals[:buckets].sum() / total)


def breakdown_from_stats(stats: RunStats) -> DivergenceBreakdown:
    """Build the figure data from a run's divergence sampler."""
    sampler = stats.divergence
    labels = tuple(w_labels(sampler.warp_size)) + ("idle", "stall")
    return DivergenceBreakdown(
        window_cycles=sampler.window,
        labels=labels,
        fractions=sampler.fractions_over_time(),
        totals=sampler.totals(),
        mean_active_lanes=sampler.mean_active_lanes(),
        warp_size=sampler.warp_size,
    )


_SHADES = " .:-=+*#%@"


def render_breakdown(breakdown: DivergenceBreakdown, *,
                     max_windows: int = 40, include_idle: bool = False
                     ) -> str:
    """ASCII rendering: one row per W category, one column per window.

    Darker glyphs mean that category held a larger share of that window's
    issues — the terminal analogue of the stacked AerialVision plot.
    """
    fractions = breakdown.fractions
    if fractions.shape[0] > max_windows:
        # Downsample by averaging consecutive windows.
        chunks = np.array_split(fractions, max_windows, axis=0)
        fractions = np.stack([chunk.mean(axis=0) for chunk in chunks])
    count = NUM_W_BUCKETS + (2 if include_idle else 0)
    lines = []
    for category in range(count - 1, -1, -1):
        row = fractions[:, category] if fractions.size else np.zeros(0)
        glyphs = "".join(
            _SHADES[min(len(_SHADES) - 1, int(value * (len(_SHADES) - 1) + 0.5))]
            for value in row)
        lines.append(f"{breakdown.labels[category]:>7} |{glyphs}|")
    lines.append(f"{'':>7}  window = {breakdown.window_cycles} cycles, "
                 f"mean active lanes = {breakdown.mean_active_lanes:.1f}"
                 f"/{breakdown.warp_size}")
    return "\n".join(lines)
