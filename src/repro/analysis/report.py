"""Plain-text table and series renderers for benchmark output."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render dict rows as an aligned ASCII table.

    Missing keys render as empty cells; column order defaults to the union
    of keys in first-seen order.
    """
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    cells = [[str(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(row[i]) for row in cells)) if cells
              else len(col) for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, values: Sequence[float], *,
                  width: int = 50, unit: str = "") -> str:
    """Render a numeric series as a horizontal bar chart."""
    if not values:
        return f"{name}: (empty)"
    peak = max(values) or 1.0
    lines = [name]
    for index, value in enumerate(values):
        bar = "#" * max(1, int(round(width * value / peak))) if value else ""
        lines.append(f"  [{index:>3}] {value:>12.3f}{unit} {bar}")
    return "\n".join(lines)


def format_bars(items: Sequence[tuple[str, float]], *, width: int = 50,
                unit: str = "", title: str | None = None) -> str:
    """Render labelled values as a bar chart (figure-style output)."""
    if not items:
        return title or ""
    peak = max(value for _, value in items) or 1.0
    label_width = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        bar = "#" * max(1, int(round(width * value / peak))) if value else ""
        lines.append(f"  {label.ljust(label_width)} {value:>12.3f}{unit} {bar}")
    return "\n".join(lines)
