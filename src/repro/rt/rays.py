"""Secondary-ray generators (paper §III-A's three ray-tracing usages).

The paper motivates ray tracing with three global-rendering ray types:
shadow rays toward a light, reflection rays off specular surfaces, and
randomly distributed global-illumination rays. These generators build each
kind from a primary-hit batch so examples and benchmarks can exercise the
incoherent workloads that stress SIMT divergence hardest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SceneError
from repro.rt.geometry import Triangle
from repro.rt.vecmath import normalize, orthonormal_basis, reflect

#: Offset along the surface normal to avoid self-intersection.
SURFACE_EPS = 1e-4


@dataclass(frozen=True)
class RayBatch:
    """A batch of rays with optional per-ray maximum distance."""

    origins: np.ndarray     # (N, 3)
    directions: np.ndarray  # (N, 3) unit vectors
    t_max: np.ndarray       # (N,) parametric limit (inf = unbounded)

    def __post_init__(self) -> None:
        if self.origins.shape != self.directions.shape:
            raise SceneError("origins and directions must have equal shapes")
        if self.t_max.shape[0] != self.origins.shape[0]:
            raise SceneError("t_max length must match ray count")

    @property
    def num_rays(self) -> int:
        return self.origins.shape[0]

    @staticmethod
    def unbounded(origins: np.ndarray, directions: np.ndarray) -> "RayBatch":
        origins = np.asarray(origins, float).reshape(-1, 3)
        directions = np.asarray(directions, float).reshape(-1, 3)
        return RayBatch(origins, directions, np.full(origins.shape[0], np.inf))


def _hit_geometry(triangles: list[Triangle], hit_triangle: np.ndarray,
                  hit_t: np.ndarray, origins: np.ndarray,
                  directions: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(points, shading normals, mask) for rays that hit something."""
    mask = hit_triangle >= 0
    points = origins + hit_t[:, None] * directions
    normals = np.zeros_like(origins)
    for index in np.nonzero(mask)[0]:
        normal = normalize(triangles[int(hit_triangle[index])].normal)
        # Face the normal against the incoming ray.
        if float(np.dot(normal, directions[index])) > 0.0:
            normal = -normal
        normals[index] = normal
    return points, normals, mask


def shadow_rays(triangles: list[Triangle], hit_triangle: np.ndarray,
                hit_t: np.ndarray, origins: np.ndarray,
                directions: np.ndarray, light: np.ndarray) -> RayBatch:
    """Rays from hit points toward a point light, bounded at the light.

    Missed primary rays produce degenerate rays with ``t_max = 0`` so the
    batch stays aligned with the pixel grid (one thread per pixel).
    """
    points, normals, mask = _hit_geometry(
        triangles, hit_triangle, hit_t, origins, directions)
    to_light = np.asarray(light, float)[None, :] - points
    distance = np.sqrt(np.sum(to_light * to_light, axis=1))
    safe = np.where(distance == 0.0, 1.0, distance)
    dirs = to_light / safe[:, None]
    new_origins = points + SURFACE_EPS * normals
    t_max = np.where(mask, np.maximum(distance - 2 * SURFACE_EPS, 0.0), 0.0)
    return RayBatch(new_origins, dirs, t_max)


def reflection_rays(triangles: list[Triangle], hit_triangle: np.ndarray,
                    hit_t: np.ndarray, origins: np.ndarray,
                    directions: np.ndarray) -> RayBatch:
    """Mirror-reflection rays from hit points (paper's second usage)."""
    points, normals, mask = _hit_geometry(
        triangles, hit_triangle, hit_t, origins, directions)
    dirs = reflect(directions, normals)
    dirs[~mask] = directions[~mask]
    new_origins = points + SURFACE_EPS * normals
    t_max = np.where(mask, np.inf, 0.0)
    return RayBatch(new_origins, dirs, t_max)


def gi_rays(triangles: list[Triangle], hit_triangle: np.ndarray,
            hit_t: np.ndarray, origins: np.ndarray, directions: np.ndarray,
            samples_per_hit: int = 1, seed: int = 0) -> RayBatch:
    """Cosine-weighted hemisphere rays (paper's global-illumination usage).

    Produces ``samples_per_hit`` rays per primary ray; rays for missed
    pixels get ``t_max = 0``. This is the most warp-incoherent workload.
    """
    if samples_per_hit < 1:
        raise SceneError("samples_per_hit must be >= 1")
    points, normals, mask = _hit_geometry(
        triangles, hit_triangle, hit_t, origins, directions)
    rng = np.random.default_rng(seed)
    num = points.shape[0] * samples_per_hit
    rep_points = np.repeat(points, samples_per_hit, axis=0)
    rep_normals = np.repeat(normals, samples_per_hit, axis=0)
    rep_mask = np.repeat(mask, samples_per_hit)
    u1 = rng.uniform(size=num)
    u2 = rng.uniform(size=num)
    radius = np.sqrt(u1)
    phi = 2.0 * np.pi * u2
    local = np.stack([radius * np.cos(phi), radius * np.sin(phi),
                      np.sqrt(np.maximum(0.0, 1.0 - u1))], axis=1)
    fallback = np.tile(np.array([0.0, 0.0, 1.0]), (num, 1))
    basis_n = np.where(rep_mask[:, None], rep_normals, fallback)
    t1, t2 = orthonormal_basis(basis_n)
    dirs = (local[:, 0:1] * t1 + local[:, 1:2] * t2 + local[:, 2:3] * basis_n)
    dirs = normalize(dirs)
    new_origins = rep_points + SURFACE_EPS * basis_n
    t_max = np.where(rep_mask, np.inf, 0.0)
    return RayBatch(new_origins, dirs, t_max)
