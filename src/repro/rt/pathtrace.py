"""Reference multi-bounce diffuse path tracer with russian roulette.

This is the functional oracle for the path-tracing kernel family in
:mod:`repro.kernels.pathtrace`. It mirrors the kernel **operation for
operation** in float64 — same op order, same separately-rounded
multiply/add pairs wherever the kernel uses ``mad``, the same integer LCG
realized in exact float64 arithmetic, the same ``selp`` fallbacks — so the
simulated result words can be compared for *exact* equality, the same bar
the single-bounce tracer meets.

Per-ray algorithm (both sides implement exactly this):

1. Seed a Park–Miller LCG from ``(ray_id, seed)``; every draw is
   ``state = (state * 48271) mod 2147483647`` followed by
   ``u = state / 2147483647`` — the product stays below 2**47, so float64
   arithmetic is exact and the kernel's ``mul``/``rem``/``div`` sequence
   reproduces it bit for bit.
2. Trace a segment through the kd-tree (identical traversal to
   :func:`repro.rt.trace._trace_one`). A miss terminates the path.
3. On a hit: advance the origin to the hit point, count the bounce, and
   terminate if the bounce budget is exhausted. Otherwise draw one
   roulette uniform — the path *continues* only while ``u < q`` — then
   draw three uniforms for a rejection-free sphere-offset diffuse bounce
   about the (incidence-flipped) geometric normal, nudge the origin off
   the surface, and trace the next segment.

The result record per ray is ``(bounce_count, last_hit_triangle)``: the
data-dependent quantity the roulette loop produces, stored where the
single-bounce kernels store ``(t, triangle)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.rt.geometry import WaldTriangle, triangles_to_wald_array
from repro.rt.kdtree import KDTree
from repro.rt.trace import TraceCounters, TraceResult, _trace_one

#: Park–Miller ("minimal standard") LCG constants. 48271 * (2**31 - 2) is
#: below 2**47, so the kernel's float64 ``mul`` is exact and ``rem`` (an
#: int64 modulus) recovers the integer sequence without drift.
LCG_MODULUS = 2147483647
LCG_MULTIPLIER = 48271

#: Draws consumed per *continuing* bounce: one roulette + three direction.
DRAWS_PER_BOUNCE = 4

_NORMAL_EPS = 1e-12
_ORIGIN_EPS = 1e-7


def rng_init(ray_id: int, seed: int) -> float:
    """Initial LCG state for one ray, as the kernel computes it."""
    state = float(int(ray_id * 9973.0 + seed * 12345.0 + 1.0) % LCG_MODULUS)
    return max(state, 1.0)


def rng_next(state: float) -> float:
    """One LCG step; exact in float64 (see :data:`LCG_MODULUS`)."""
    return float(int(state * float(LCG_MULTIPLIER)) % LCG_MODULUS)


def _decode_normal(words: np.ndarray) -> tuple[float, float, float]:
    """Unnormalized geometric normal from a Wald record's (k, n_u, n_v).

    The dominant-axis component is exactly 1, so the squared length is at
    least 1 and ``rsqrt`` is always finite — the kernel relies on this.
    """
    k = int(words[0])
    nu = float(words[1])
    nv = float(words[2])
    if k == 0:
        return 1.0, nu, nv
    if k == 1:
        return nv, 1.0, nu
    return nu, nv, 1.0


def path_trace_rays(tree: KDTree, origins: np.ndarray,
                    directions: np.ndarray,
                    t_max: float | np.ndarray = np.inf, *,
                    max_depth: int, roulette_q: float,
                    seed: int = 0) -> TraceResult:
    """Path-trace rays; ``t``/``triangle`` carry bounce count and last hit.

    ``t[r]`` is the bounce count as a float (0.0 when the primary segment
    missed), ``triangle[r]`` the last triangle hit (-1 when nothing was
    ever hit). Traversal counters accumulate across all segments of a
    path, so the bandwidth model sees the full multi-bounce footprint.
    """
    origins = np.asarray(origins, dtype=np.float64).reshape(-1, 3)
    directions = np.asarray(directions, dtype=np.float64).reshape(-1, 3)
    num_rays = origins.shape[0]
    limits = np.broadcast_to(np.asarray(t_max, dtype=np.float64), (num_rays,))
    wald_rows = triangles_to_wald_array(tree.triangles)
    wald = [WaldTriangle.from_words(row) for row in wald_rows]
    nodes = tree.nodes
    leaf_indices = tree.leaf_indices
    out_bounces = np.zeros(num_rays, dtype=np.float64)
    out_tri = np.full(num_rays, -1, dtype=np.int64)
    counters = TraceCounters(
        node_visits=np.zeros(num_rays, np.int64),
        leaf_visits=np.zeros(num_rays, np.int64),
        triangle_tests=np.zeros(num_rays, np.int64),
        stack_pushes=np.zeros(num_rays, np.int64),
    )
    q = float(roulette_q)
    for ray in range(num_rays):
        bounces, last_tri = _path_trace_one(
            nodes, leaf_indices, wald, wald_rows, tree,
            origins[ray], directions[ray], float(limits[ray]),
            int(max_depth), q, rng_init(ray, seed), counters, ray)
        out_bounces[ray] = float(bounces)
        out_tri[ray] = last_tri
    return TraceResult(t=out_bounces, triangle=out_tri, counters=counters)


def _path_trace_one(nodes, leaf_indices, wald, wald_rows, tree,
                    origin, direction, t_limit, max_depth, q, state,
                    counters, ray) -> tuple[int, int]:
    ox, oy, oz = float(origin[0]), float(origin[1]), float(origin[2])
    dx, dy, dz = float(direction[0]), float(direction[1]), float(direction[2])
    bounces = 0
    last_tri = -1
    while True:
        hit = _trace_one(nodes, leaf_indices, wald, tree,
                         np.array((ox, oy, oz)), np.array((dx, dy, dz)),
                         t_limit, counters, ray)
        if hit is None:
            return bounces, last_tri
        best_t, best_tri = hit
        bounces += 1
        last_tri = best_tri
        # Hit point via mad (separately rounded mul + add, like the kernel).
        ox = best_t * dx + ox
        oy = best_t * dy + oy
        oz = best_t * dz + oz
        if bounces >= max_depth:
            return bounces, last_tri
        state = rng_next(state)
        u = state / float(LCG_MODULUS)
        if u >= q:
            return bounces, last_tri
        state = rng_next(state)
        u1 = state / float(LCG_MODULUS)
        state = rng_next(state)
        u2 = state / float(LCG_MODULUS)
        state = rng_next(state)
        u3 = state / float(LCG_MODULUS)
        nx, ny, nz = _decode_normal(wald_rows[best_tri])
        # Flip toward the incoming side: left-associated dot, like the
        # kernel's mul + two mads.
        dot = nx * dx
        dot = ny * dy + dot
        dot = nz * dz + dot
        if dot > 0.0:
            nx, ny, nz = -nx, -ny, -nz
        nn = nx * nx
        nn = ny * ny + nn
        nn = nz * nz + nn
        ninv = 1.0 / math.sqrt(nn)
        nx *= ninv
        ny *= ninv
        nz *= ninv
        sx = u1 * 2.0 + -1.0
        sy = u2 * 2.0 + -1.0
        sz = u3 * 2.0 + -1.0
        slen = sx * sx
        slen = sy * sy + slen
        slen = sz * sz + slen
        with np.errstate(divide="ignore"):
            sinv = float(1.0 / np.sqrt(slen))
        if slen >= _NORMAL_EPS:
            sx, sy, sz = sx * sinv, sy * sinv, sz * sinv
        else:
            sx, sy, sz = nx, ny, nz
        bx = nx + sx
        by = ny + sy
        bz = nz + sz
        blen = bx * bx
        blen = by * by + blen
        blen = bz * bz + blen
        with np.errstate(divide="ignore"):
            binv = float(1.0 / np.sqrt(blen))
        if blen >= _NORMAL_EPS:
            dx, dy, dz = bx * binv, by * binv, bz * binv
        else:
            dx, dy, dz = nx, ny, nz
        ox = nx * _ORIGIN_EPS + ox
        oy = ny * _ORIGIN_EPS + oy
        oz = nz * _ORIGIN_EPS + oz
        t_limit = math.inf
