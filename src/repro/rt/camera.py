"""Pinhole camera and primary-ray generation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SceneError
from repro.rt.vecmath import cross, normalize


@dataclass(frozen=True)
class Camera:
    """A pinhole camera generating one primary ray per pixel.

    The paper renders at 256x256 with one thread per pixel; ray order is
    row-major so consecutive threads map to horizontally adjacent pixels
    (which is what makes warp-coherent primary rays, and what secondary
    rays subsequently destroy).
    """

    eye: np.ndarray
    look_at: np.ndarray
    up: np.ndarray
    fov_degrees: float = 60.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fov_degrees < 180.0:
            raise SceneError("fov must be in (0, 180) degrees")
        forward = np.asarray(self.look_at, float) - np.asarray(self.eye, float)
        if float(np.dot(forward, forward)) == 0.0:
            raise SceneError("eye and look_at must differ")

    def basis(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Right-handed (right, up, forward) unit basis."""
        forward = normalize(np.asarray(self.look_at, float) - np.asarray(self.eye, float))
        right = normalize(cross(forward, np.asarray(self.up, float)))
        true_up = cross(right, forward)
        return right, true_up, forward

    def primary_rays(self, width: int, height: int
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Ray (origins, directions) for a width x height pixel grid.

        Returns arrays of shape (width*height, 3); directions are unit
        length; origin is the camera eye for every ray.
        """
        if width <= 0 or height <= 0:
            raise SceneError("image dimensions must be positive")
        right, true_up, forward = self.basis()
        tan_half = np.tan(np.radians(self.fov_degrees) / 2.0)
        aspect = width / height
        xs = (np.arange(width) + 0.5) / width * 2.0 - 1.0
        ys = 1.0 - (np.arange(height) + 0.5) / height * 2.0
        px, py = np.meshgrid(xs * tan_half * aspect, ys * tan_half)
        directions = (forward[None, :]
                      + px.reshape(-1, 1) * right[None, :]
                      + py.reshape(-1, 1) * true_up[None, :])
        directions = normalize(directions)
        origins = np.broadcast_to(np.asarray(self.eye, float),
                                  directions.shape).copy()
        return origins, directions

    @staticmethod
    def for_scene(scene) -> "Camera":
        """Camera using the scene's suggested view parameters."""
        return Camera(eye=scene.eye, look_at=scene.look_at, up=scene.up,
                      fov_degrees=scene.fov_degrees)
