"""Ray-tracing substrate: geometry, acceleration structures, scenes.

This package is the from-scratch stand-in for Radius-CUDA's data structures
and algorithms: Wald ray-triangle intersection, a kd-tree accelerator, the
paper's three benchmark-scene archetypes (as procedural generators), and a
scalar reference tracer used as ground truth for the SIMT kernels.
"""

from repro.rt.camera import Camera
from repro.rt.geometry import AABB, Triangle, WaldTriangle
from repro.rt.kdtree import KDTree, KDTreeStats, build_kdtree
from repro.rt.bvh import BVH, build_bvh
from repro.rt.rays import RayBatch, gi_rays, reflection_rays, shadow_rays
from repro.rt.scenes import (
    BENCHMARK_SCENES,
    Scene,
    atrium_like,
    conference_like,
    fairyforest_like,
    make_scene,
)
from repro.rt.pathtrace import path_trace_rays
from repro.rt.trace import TraceCounters, TraceResult, trace_rays
from repro.rt.image import Framebuffer

__all__ = [
    "AABB",
    "BENCHMARK_SCENES",
    "BVH",
    "Camera",
    "Framebuffer",
    "KDTree",
    "KDTreeStats",
    "RayBatch",
    "Scene",
    "TraceCounters",
    "TraceResult",
    "Triangle",
    "WaldTriangle",
    "atrium_like",
    "build_bvh",
    "build_kdtree",
    "conference_like",
    "fairyforest_like",
    "gi_rays",
    "make_scene",
    "path_trace_rays",
    "reflection_rays",
    "shadow_rays",
    "trace_rays",
]
