"""Framebuffer and simple shading for example renders."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SceneError
from repro.rt.vecmath import normalize


@dataclass
class Framebuffer:
    """An RGB image with float [0,1] channels."""

    width: int
    height: int
    pixels: np.ndarray

    @staticmethod
    def blank(width: int, height: int) -> "Framebuffer":
        if width <= 0 or height <= 0:
            raise SceneError("framebuffer dimensions must be positive")
        return Framebuffer(width, height, np.zeros((height, width, 3)))

    def write_ppm(self, path: str) -> None:
        """Write a binary PPM (P6) image."""
        data = np.clip(self.pixels, 0.0, 1.0)
        bytes_ = (data * 255.0 + 0.5).astype(np.uint8)
        with open(path, "wb") as handle:
            handle.write(f"P6 {self.width} {self.height} 255\n".encode())
            handle.write(bytes_.tobytes())

    def mean_luminance(self) -> float:
        weights = np.array([0.2126, 0.7152, 0.0722])
        return float(np.mean(self.pixels @ weights))


def shade_hits(width: int, height: int, triangles, hit_triangle: np.ndarray,
               hit_t: np.ndarray, directions: np.ndarray,
               shadowed: np.ndarray | None = None) -> Framebuffer:
    """Lambert-ish shading by triangle normal; misses are sky-blue.

    ``shadowed`` (optional boolean per ray) darkens pixels whose shadow ray
    was occluded — used by the shadow-ray example.
    """
    frame = Framebuffer.blank(width, height)
    colors = np.tile(np.array([0.55, 0.68, 0.90]), (width * height, 1))  # sky
    hits = np.nonzero(hit_triangle >= 0)[0]
    for index in hits:
        tri = triangles[int(hit_triangle[index])]
        normal = normalize(tri.normal)
        facing = abs(float(np.dot(normal, directions[index])))
        base = 0.25 + 0.75 * facing
        colors[index] = np.array([base, base * 0.95, base * 0.85])
    if shadowed is not None:
        dark = np.nonzero((hit_triangle >= 0) & shadowed)[0]
        colors[dark] *= 0.35
    frame.pixels = colors.reshape(height, width, 3)
    return frame
