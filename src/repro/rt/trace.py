"""Reference tracer over the flattened kd-tree.

This scalar tracer executes exactly the algorithm of the paper's Example 1
(outer restart loop over leaves, down-traversal loop, intersection loop)
against the *flattened* node arrays — the same data layout the SIMT kernels
read from simulated global memory — so it serves both as functional ground
truth and as the operation counter feeding the Table IV bandwidth model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rt.geometry import WaldTriangle, triangles_to_wald_array
from repro.rt.kdtree import KDTree, LEAF_AXIS

#: Epsilon added to leaf t-ranges to keep hits on leaf boundaries.
T_EPS = 1e-9


@dataclass
class TraceCounters:
    """Per-ray dynamic operation counts (drives the bandwidth model).

    ``node_visits`` counts *down traversals* (inner-node visits);
    ``leaf_visits`` counts leaves entered; ``triangle_tests`` counts
    ray-triangle intersection tests — the quantities the paper says
    Table IV's bandwidth values were computed from.
    """

    node_visits: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    leaf_visits: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    triangle_tests: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    stack_pushes: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))

    def totals(self) -> dict[str, int]:
        return {
            "node_visits": int(self.node_visits.sum()),
            "leaf_visits": int(self.leaf_visits.sum()),
            "triangle_tests": int(self.triangle_tests.sum()),
            "stack_pushes": int(self.stack_pushes.sum()),
        }


@dataclass
class TraceResult:
    """Hit results for a batch of rays."""

    t: np.ndarray           # hit distance, inf on miss
    triangle: np.ndarray    # hit triangle index, -1 on miss
    counters: TraceCounters

    @property
    def hit_mask(self) -> np.ndarray:
        return self.triangle >= 0

    @property
    def num_rays(self) -> int:
        return self.t.shape[0]


def trace_rays(tree: KDTree, origins: np.ndarray, directions: np.ndarray,
               t_max: float | np.ndarray = np.inf) -> TraceResult:
    """Trace rays through ``tree``; returns closest hits plus counters.

    ``t_max`` may be a scalar or a per-ray array (shadow rays bound each
    ray at its light distance).
    """
    origins = np.asarray(origins, dtype=np.float64).reshape(-1, 3)
    directions = np.asarray(directions, dtype=np.float64).reshape(-1, 3)
    num_rays = origins.shape[0]
    limits = np.broadcast_to(np.asarray(t_max, dtype=np.float64), (num_rays,))
    wald_rows = triangles_to_wald_array(tree.triangles)
    wald = [WaldTriangle.from_words(row) for row in wald_rows]
    nodes = tree.nodes
    leaf_indices = tree.leaf_indices
    out_t = np.full(num_rays, np.inf)
    out_tri = np.full(num_rays, -1, dtype=np.int64)
    counters = TraceCounters(
        node_visits=np.zeros(num_rays, np.int64),
        leaf_visits=np.zeros(num_rays, np.int64),
        triangle_tests=np.zeros(num_rays, np.int64),
        stack_pushes=np.zeros(num_rays, np.int64),
    )
    for ray in range(num_rays):
        result = _trace_one(nodes, leaf_indices, wald, tree,
                            origins[ray], directions[ray], float(limits[ray]),
                            counters, ray)
        if result is not None:
            out_t[ray], out_tri[ray] = result
    return TraceResult(t=out_t, triangle=out_tri, counters=counters)


def _trace_one(nodes: np.ndarray, leaf_indices: np.ndarray,
               wald: list[WaldTriangle], tree: KDTree,
               origin: np.ndarray, direction: np.ndarray, t_limit: float,
               counters: TraceCounters, ray: int
               ) -> tuple[float, int] | None:
    t_enter, t_exit = tree.bounds.ray_range(origin, direction)
    t_exit = min(t_exit, t_limit)
    if t_enter > t_exit:
        return None
    with np.errstate(divide="ignore"):
        inv_dir = 1.0 / direction
    # best_t starts at the ray's limit so hits beyond it are never recorded
    # (matches the SIMT kernels, which initialize best_t from the ray record).
    best_t = t_limit
    best_tri = -1
    stack: list[tuple[int, float, float]] = []
    node_index = 0
    t_min, t_max = t_enter, t_exit
    while True:
        axis = int(nodes[node_index, 0])
        # Down-traversal loop (Example 1 lines 2-7).
        while axis != LEAF_AXIS:
            counters.node_visits[ray] += 1
            split = nodes[node_index, 1]
            left = int(nodes[node_index, 2])
            right = int(nodes[node_index, 3])
            origin_a = origin[axis]
            with np.errstate(invalid="ignore"):
                t_split = (split - origin_a) * inv_dir[axis]
            if np.isnan(t_split):
                # Ray lies exactly in the split plane (d == 0, origin on
                # the plane): it never crosses, so only the near child
                # matters. +inf routes the t-range test to the near case.
                t_split = np.inf
            # Near child: the side holding the ray segment before the
            # crossing. With the origin exactly on the plane the forward
            # segment [ts, tmax] goes to the *far* child, which must then
            # be the side the direction points into.
            if origin_a < split or (origin_a == split and direction[axis] > 0.0):
                near, far = left, right
            else:
                near, far = right, left
            if t_split >= t_max + T_EPS or t_split < 0.0:
                node_index = near
            elif t_split <= t_min - T_EPS:
                node_index = far
            else:
                stack.append((far, max(t_split, t_min), t_max))
                counters.stack_pushes[ray] += 1
                node_index = near
                t_max = min(t_split, t_max)
            axis = int(nodes[node_index, 0])
        # Intersection loop (Example 1 lines 8-10).
        counters.leaf_visits[ray] += 1
        count = int(nodes[node_index, 1])
        first = int(nodes[node_index, 2])
        for slot in range(first, first + count):
            tri_index = int(leaf_indices[slot])
            counters.triangle_tests[ray] += 1
            t = wald[tri_index].intersect(origin, direction, best_t)
            if t is not None and t < best_t:
                best_t = t
                best_tri = tri_index
        # Early exit: a hit inside the current leaf's t-range is final.
        if best_tri >= 0 and best_t <= t_max + T_EPS:
            break
        if not stack:
            break
        node_index, t_min, t_max = stack.pop()
    if best_tri < 0:
        return None
    return float(best_t), int(best_tri)


def brute_force_trace(triangles, origins: np.ndarray, directions: np.ndarray,
                      t_max: float = np.inf) -> TraceResult:
    """O(N*M) ground truth used to validate kd-tree traversal."""
    origins = np.asarray(origins, dtype=np.float64).reshape(-1, 3)
    directions = np.asarray(directions, dtype=np.float64).reshape(-1, 3)
    wald = [WaldTriangle.precompute(tri) for tri in triangles]
    num_rays = origins.shape[0]
    out_t = np.full(num_rays, np.inf)
    out_tri = np.full(num_rays, -1, dtype=np.int64)
    counters = TraceCounters(
        node_visits=np.zeros(num_rays, np.int64),
        leaf_visits=np.zeros(num_rays, np.int64),
        triangle_tests=np.full(num_rays, len(wald), np.int64),
        stack_pushes=np.zeros(num_rays, np.int64),
    )
    for ray in range(num_rays):
        best_t, best_tri = t_max, -1
        for index, tri in enumerate(wald):
            t = tri.intersect(origins[ray], directions[ray], best_t)
            if t is not None and t < best_t:
                best_t, best_tri = t, index
        if best_tri >= 0:
            out_t[ray] = best_t
            out_tri[ray] = best_tri
    return TraceResult(t=out_t, triangle=out_tri, counters=counters)
