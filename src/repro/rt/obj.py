"""Wavefront OBJ mesh loading.

The paper's original scenes (fairyforest, atrium, conference) circulate as
OBJ meshes; this loader lets users who have those files run the benchmarks
on the real geometry instead of the procedural stand-ins. Supports the
subset OBJ features those meshes use: ``v`` positions and ``f`` faces
(triangles and polygon fans, with ``v/vt/vn`` index syntax and negative
indices). Normals/texcoords/materials are parsed past, not stored —
the kernels need only positions.
"""

from __future__ import annotations

import pathlib
from collections.abc import Iterable

import numpy as np

from repro.errors import SceneError
from repro.rt.geometry import Triangle
from repro.rt.scenes import Scene
from repro.rt.vecmath import vec3


def _face_vertex_index(token: str, num_vertices: int, line_number: int) -> int:
    """Resolve one face-vertex token ('7', '7/1', '7//3', '-1/...')"""
    raw = token.split("/", 1)[0]
    try:
        index = int(raw)
    except ValueError:
        raise SceneError(f"line {line_number}: bad face index {token!r}") from None
    if index > 0:
        resolved = index - 1
    elif index < 0:
        resolved = num_vertices + index
    else:
        raise SceneError(f"line {line_number}: face index 0 is invalid")
    if not 0 <= resolved < num_vertices:
        raise SceneError(
            f"line {line_number}: face index {index} out of range "
            f"(mesh has {num_vertices} vertices)")
    return resolved


def parse_obj(lines: Iterable[str]) -> list[Triangle]:
    """Parse OBJ text into triangles (polygons become fans)."""
    vertices: list[np.ndarray] = []
    triangles: list[Triangle] = []
    for line_number, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        tag = parts[0]
        if tag == "v":
            if len(parts) < 4:
                raise SceneError(f"line {line_number}: vertex needs 3 coords")
            try:
                vertices.append(vec3(float(parts[1]), float(parts[2]),
                                     float(parts[3])))
            except ValueError:
                raise SceneError(
                    f"line {line_number}: bad vertex coordinates") from None
        elif tag == "f":
            if len(parts) < 4:
                raise SceneError(f"line {line_number}: face needs >= 3 "
                                 f"vertices")
            indices = [_face_vertex_index(token, len(vertices), line_number)
                       for token in parts[1:]]
            anchor = vertices[indices[0]]
            for second, third in zip(indices[1:-1], indices[2:]):
                tri = Triangle(anchor, vertices[second], vertices[third])
                if not tri.is_degenerate:
                    triangles.append(tri)
        # vn / vt / usemtl / mtllib / o / g / s: irrelevant here, skipped.
    if not triangles:
        raise SceneError("OBJ contained no (non-degenerate) triangles")
    return triangles


def load_obj(path: str | pathlib.Path) -> list[Triangle]:
    """Load triangles from an OBJ file."""
    path = pathlib.Path(path)
    with path.open("r", errors="replace") as handle:
        return parse_obj(handle)


def scene_from_obj(path: str | pathlib.Path, *, name: str | None = None,
                   fov_degrees: float = 60.0) -> Scene:
    """Build a :class:`Scene` from an OBJ file with an auto-framed camera.

    The camera is placed along the bounding box diagonal, looking at the
    centroid; the light sits above the box. Good enough to benchmark any
    mesh without hand-tuning a viewpoint.
    """
    triangles = load_obj(path)
    points = np.concatenate([[t.a, t.b, t.c] for t in triangles])
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    center = (lo + hi) / 2.0
    extent = float(np.linalg.norm(hi - lo))
    eye = center + np.array([0.7, 0.45, 0.7]) * extent
    light = center + np.array([0.0, 0.9, 0.0]) * extent
    return Scene(name=name or pathlib.Path(path).stem, triangles=triangles,
                 eye=eye, look_at=center, fov_degrees=fov_degrees,
                 light=light)
