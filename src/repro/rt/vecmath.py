"""Small 3D vector helpers over numpy arrays.

Vectors are plain ``numpy`` arrays: shape ``(3,)`` for a single vector or
``(N, 3)`` for batches. Functions work on both shapes (broadcasting over the
leading axis) so the camera and ray generators can stay vectorized.
"""

from __future__ import annotations

import numpy as np


def vec3(x: float, y: float, z: float) -> np.ndarray:
    """A single 3-vector as float64."""
    return np.array([x, y, z], dtype=np.float64)


def dot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise dot product (scalar for (3,) inputs)."""
    return np.sum(np.asarray(a) * np.asarray(b), axis=-1)


def cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise cross product."""
    return np.cross(np.asarray(a), np.asarray(b))


def length(a: np.ndarray) -> np.ndarray:
    """Euclidean length along the last axis."""
    return np.sqrt(dot(a, a))


def normalize(a: np.ndarray) -> np.ndarray:
    """Unit vector(s); zero vectors are returned unchanged."""
    a = np.asarray(a, dtype=np.float64)
    norm = length(a)
    safe = np.where(norm == 0.0, 1.0, norm)
    return a / np.expand_dims(safe, -1) if a.ndim > 1 else a / safe


def reflect(direction: np.ndarray, normal: np.ndarray) -> np.ndarray:
    """Mirror ``direction`` about ``normal`` (both may be batched)."""
    d = np.asarray(direction, dtype=np.float64)
    n = np.asarray(normal, dtype=np.float64)
    scale = 2.0 * dot(d, n)
    return d - np.expand_dims(scale, -1) * n if d.ndim > 1 else d - scale * n


def orthonormal_basis(normal: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Two unit tangents forming a right-handed basis with ``normal``.

    Accepts a single (3,) normal or an (N, 3) batch; uses the
    branch-free Frisvad construction.
    """
    n = np.asarray(normal, dtype=np.float64)
    single = n.ndim == 1
    if single:
        n = n[None, :]
    sign = np.where(n[:, 2] >= 0.0, 1.0, -1.0)
    a = -1.0 / (sign + n[:, 2])
    b = n[:, 0] * n[:, 1] * a
    t1 = np.stack([1.0 + sign * n[:, 0] ** 2 * a, sign * b, -sign * n[:, 0]], axis=1)
    t2 = np.stack([b, sign + n[:, 1] ** 2 * a, -n[:, 1]], axis=1)
    if single:
        return t1[0], t2[0]
    return t1, t2
