"""Bounding Volume Hierarchy — the paper's alternate acceleration structure.

Section III-A notes rendering engines use either kd-trees or BVHs
(Shirley & Morley 2003). The benchmark kernels use the kd-tree; the BVH is
provided for the reference tracer and as an ablation substrate (its
traversal produces a different loop-iteration distribution, hence different
divergence behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SceneError
from repro.rt.geometry import AABB, Triangle, WaldTriangle


@dataclass
class BVHNode:
    bounds: AABB
    left: "BVHNode | None" = None
    right: "BVHNode | None" = None
    triangle_indices: list[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.left is None


@dataclass
class BVH:
    """A built BVH with a scalar closest-hit query."""

    root: BVHNode
    triangles: list[Triangle]
    wald: list[WaldTriangle]

    def intersect(self, origin: np.ndarray, direction: np.ndarray,
                  t_max: float = np.inf) -> tuple[float, int] | None:
        """Closest hit as (t, triangle_index), or None."""
        best_t = t_max
        best_tri = -1
        stack = [self.root]
        while stack:
            node = stack.pop()
            t_enter, t_exit = node.bounds.ray_range(origin, direction)
            if t_enter > t_exit or t_enter > best_t:
                continue
            if node.is_leaf:
                for tri_index in node.triangle_indices:
                    t = self.wald[tri_index].intersect(origin, direction, best_t)
                    if t is not None:
                        best_t = t
                        best_tri = tri_index
            else:
                stack.append(node.left)
                stack.append(node.right)
        if best_tri < 0:
            return None
        return best_t, best_tri

    def depth(self) -> int:
        def walk(node: BVHNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        return walk(self.root)

    def num_nodes(self) -> int:
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend((node.left, node.right))
        return count


def build_bvh(triangles: list[Triangle], *, leaf_size: int = 4,
              max_depth: int = 32) -> BVH:
    """Median-centroid BVH build."""
    if not triangles:
        raise SceneError("cannot build a BVH over zero triangles")
    if leaf_size < 1 or max_depth < 0:
        raise SceneError("leaf_size must be >= 1 and max_depth >= 0")
    tri_bounds = [tri.bounds() for tri in triangles]
    centroids = np.stack([tri.centroid() for tri in triangles])

    def build(indices: list[int], depth: int) -> BVHNode:
        bounds = AABB.empty()
        for i in indices:
            bounds = bounds.union(tri_bounds[i])
        if len(indices) <= leaf_size or depth >= max_depth:
            return BVHNode(bounds=bounds, triangle_indices=indices)
        axis = int(np.argmax(bounds.extent))
        order = sorted(indices, key=lambda i: centroids[i][axis])
        mid = len(order) // 2
        if mid == 0 or mid == len(order):
            return BVHNode(bounds=bounds, triangle_indices=indices)
        node = BVHNode(bounds=bounds)
        node.left = build(order[:mid], depth + 1)
        node.right = build(order[mid:], depth + 1)
        return node

    root = build(list(range(len(triangles))), 0)
    wald = [WaldTriangle.precompute(tri) for tri in triangles]
    return BVH(root=root, triangles=list(triangles), wald=wald)
