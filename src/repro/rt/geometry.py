"""Geometric primitives: AABB, triangles, and Wald's intersection test.

The paper's workload uses Wald's precomputed ray-triangle intersection
(Wald 2004, §7.2): per triangle, the plane equation is projected onto the
dominant normal axis ``k`` so the hit test needs only 9 floats plus ``k``
(48 bytes in the paper's 32-bit layout — the exact per-thread state size
Table II reports for spawn memory is the same 48 bytes by design).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SceneError
from repro.rt.vecmath import cross, dot

#: Words (32-bit in hardware; one simulator word each) per Wald triangle
#: record: k, n_u, n_v, n_d, a_u, a_v, b_nu, b_nv, c_nu, c_nv, pad, pad.
WALD_TRIANGLE_WORDS = 12

_AXES = ((1, 2), (2, 0), (0, 1))  # (u, v) for each dominant axis k


@dataclass(frozen=True)
class AABB:
    """Axis-aligned bounding box."""

    lo: np.ndarray
    hi: np.ndarray

    @staticmethod
    def empty() -> "AABB":
        return AABB(np.full(3, np.inf), np.full(3, -np.inf))

    @staticmethod
    def of_points(points: np.ndarray) -> "AABB":
        points = np.asarray(points, dtype=np.float64).reshape(-1, 3)
        return AABB(points.min(axis=0), points.max(axis=0))

    def union(self, other: "AABB") -> "AABB":
        return AABB(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def grown(self, eps: float) -> "AABB":
        return AABB(self.lo - eps, self.hi + eps)

    @property
    def extent(self) -> np.ndarray:
        return self.hi - self.lo

    @property
    def surface_area(self) -> float:
        e = np.maximum(self.extent, 0.0)
        return float(2.0 * (e[0] * e[1] + e[1] * e[2] + e[2] * e[0]))

    @property
    def is_empty(self) -> bool:
        return bool(np.any(self.lo > self.hi))

    def contains(self, point: np.ndarray, eps: float = 1e-9) -> bool:
        point = np.asarray(point)
        return bool(np.all(point >= self.lo - eps) and np.all(point <= self.hi + eps))

    def split(self, axis: int, position: float) -> tuple["AABB", "AABB"]:
        """Cut along ``axis`` at ``position``; returns (left, right)."""
        if not self.lo[axis] <= position <= self.hi[axis]:
            raise SceneError(
                f"split position {position} outside box on axis {axis}")
        left_hi = self.hi.copy()
        left_hi[axis] = position
        right_lo = self.lo.copy()
        right_lo[axis] = position
        return AABB(self.lo.copy(), left_hi), AABB(right_lo, self.hi.copy())

    def ray_range(self, origin: np.ndarray, direction: np.ndarray
                  ) -> tuple[float, float]:
        """Parametric [t_enter, t_exit] of the ray inside the box.

        Returns ``t_enter > t_exit`` when the ray misses. Zero direction
        components are handled with IEEE infinities (slab method).
        """
        with np.errstate(divide="ignore", invalid="ignore"):
            inv = 1.0 / np.asarray(direction, dtype=np.float64)
            t0 = (self.lo - origin) * inv
            t1 = (self.hi - origin) * inv
        t0 = np.where(np.isnan(t0), -np.inf, t0)
        t1 = np.where(np.isnan(t1), np.inf, t1)
        t_enter = float(np.max(np.minimum(t0, t1)))
        t_exit = float(np.min(np.maximum(t0, t1)))
        return max(t_enter, 0.0), t_exit


@dataclass(frozen=True)
class Triangle:
    """A raw triangle with vertices A, B, C (each shape (3,))."""

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray

    @property
    def normal(self) -> np.ndarray:
        return cross(self.b - self.a, self.c - self.a)

    @property
    def is_degenerate(self) -> bool:
        n = self.normal
        return bool(dot(n, n) == 0.0)

    def bounds(self) -> AABB:
        return AABB.of_points(np.stack([self.a, self.b, self.c]))

    def centroid(self) -> np.ndarray:
        return (self.a + self.b + self.c) / 3.0


@dataclass(frozen=True)
class WaldTriangle:
    """Wald's precomputed intersection record for one triangle."""

    k: int
    n_u: float
    n_v: float
    n_d: float
    a_u: float
    a_v: float
    b_nu: float
    b_nv: float
    c_nu: float
    c_nv: float

    @staticmethod
    def precompute(tri: Triangle) -> "WaldTriangle":
        normal = tri.normal
        if dot(normal, normal) == 0.0:
            raise SceneError("cannot precompute a degenerate triangle")
        k = int(np.argmax(np.abs(normal)))
        u, v = _AXES[k]
        n_k = normal[k]
        n_u = normal[u] / n_k
        n_v = normal[v] / n_k
        n_d = dot(tri.a, normal) / n_k
        # Edge vectors: c_vec = B - A carries beta, b_vec = C - A carries gamma.
        b_vec = tri.c - tri.a
        c_vec = tri.b - tri.a
        det = c_vec[u] * b_vec[v] - c_vec[v] * b_vec[u]
        if det == 0.0:
            raise SceneError("triangle projects to a degenerate 2D triangle")
        return WaldTriangle(
            k=k,
            n_u=float(n_u), n_v=float(n_v), n_d=float(n_d),
            a_u=float(tri.a[u]), a_v=float(tri.a[v]),
            b_nu=float(b_vec[v] / det), b_nv=float(-b_vec[u] / det),
            c_nu=float(-c_vec[v] / det), c_nv=float(c_vec[u] / det),
        )

    def intersect(self, origin: np.ndarray, direction: np.ndarray,
                  t_max: float = np.inf) -> float | None:
        """Hit distance ``t`` in (0, t_max], or None on miss."""
        u, v = _AXES[self.k]
        denom = direction[self.k] + self.n_u * direction[u] + self.n_v * direction[v]
        if denom == 0.0:
            return None
        t = (self.n_d - origin[self.k]
             - self.n_u * origin[u] - self.n_v * origin[v]) / denom
        if not (0.0 < t <= t_max):
            return None
        h_u = origin[u] + t * direction[u] - self.a_u
        h_v = origin[v] + t * direction[v] - self.a_v
        beta = h_u * self.b_nu + h_v * self.b_nv
        if beta < 0.0:
            return None
        gamma = h_u * self.c_nu + h_v * self.c_nv
        if gamma < 0.0 or beta + gamma > 1.0:
            return None
        return float(t)

    def to_words(self) -> list[float]:
        """Flatten to :data:`WALD_TRIANGLE_WORDS` memory words."""
        return [float(self.k), self.n_u, self.n_v, self.n_d,
                self.a_u, self.a_v, self.b_nu, self.b_nv,
                self.c_nu, self.c_nv, 0.0, 0.0]

    @staticmethod
    def from_words(words) -> "WaldTriangle":
        return WaldTriangle(k=int(words[0]), n_u=words[1], n_v=words[2],
                            n_d=words[3], a_u=words[4], a_v=words[5],
                            b_nu=words[6], b_nv=words[7],
                            c_nu=words[8], c_nv=words[9])


def triangles_to_wald_array(triangles: list[Triangle]) -> np.ndarray:
    """Stack Wald records into an (N, 12) float array for simulated memory."""
    rows = [WaldTriangle.precompute(tri).to_words() for tri in triangles]
    if not rows:
        return np.zeros((0, WALD_TRIANGLE_WORDS), dtype=np.float64)
    return np.asarray(rows, dtype=np.float64)
