"""kd-tree acceleration structure (build, flatten, stats).

The paper's control workload (Radius-CUDA) uses a kd-tree: inner nodes
split space with an axis-aligned plane, leaf nodes list the triangles whose
bounds overlap the leaf volume. Build uses either a spatial-median split or
a binned surface-area heuristic (SAH); both terminate on depth or leaf size.

The flattened layout is what the SIMT kernels walk (4 words per node):

==========  ======================  ======================
word        inner node              leaf node
==========  ======================  ======================
0           split axis (0/1/2)      3 (leaf marker)
1           split position          triangle count
2           left child index        first index into the
                                    leaf-triangle index list
3           right child index       unused (0)
==========  ======================  ======================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SceneError
from repro.rt.geometry import AABB, Triangle

#: Marker stored in word 0 of leaf nodes.
LEAF_AXIS = 3

#: Words per flattened node.
NODE_WORDS = 4


@dataclass
class KDNode:
    """Build-time node; exactly one of (children, triangle_indices) is set."""

    bounds: AABB
    axis: int = LEAF_AXIS
    split: float = 0.0
    left: "KDNode | None" = None
    right: "KDNode | None" = None
    triangle_indices: list[int] = field(default_factory=list)
    index: int = -1

    @property
    def is_leaf(self) -> bool:
        return self.left is None


@dataclass(frozen=True)
class KDTreeStats:
    """Tree shape statistics (paper Table III reports these per scene)."""

    num_triangles: int
    num_nodes: int
    num_leaves: int
    max_depth: int
    avg_leaf_depth: float
    avg_triangles_per_leaf: float
    max_triangles_per_leaf: int
    empty_leaves: int


@dataclass
class KDTree:
    """A built kd-tree plus its flattened arrays.

    ``root`` is None for trees rehydrated from the workload cache: only the
    flattened arrays are persisted, which is all that traversal and memory
    layout need. Such trees carry ``precomputed_stats`` from build time so
    :meth:`stats` keeps working without the node objects.
    """

    root: KDNode | None
    bounds: AABB
    triangles: list[Triangle]
    nodes: np.ndarray        # (num_nodes, NODE_WORDS) float64
    leaf_indices: np.ndarray  # flat triangle-index list referenced by leaves
    precomputed_stats: KDTreeStats | None = None

    @property
    def num_nodes(self) -> int:
        return self.nodes.shape[0]

    def stats(self) -> KDTreeStats:
        if self.root is None:
            if self.precomputed_stats is None:
                raise SceneError(
                    "tree has neither build-time nodes nor precomputed stats")
            return self.precomputed_stats
        leaves = 0
        max_depth = 0
        depth_sum = 0
        tri_sum = 0
        tri_max = 0
        empty = 0
        stack = [(self.root, 0)]
        total_nodes = 0
        while stack:
            node, depth = stack.pop()
            total_nodes += 1
            max_depth = max(max_depth, depth)
            if node.is_leaf:
                leaves += 1
                depth_sum += depth
                count = len(node.triangle_indices)
                tri_sum += count
                tri_max = max(tri_max, count)
                if count == 0:
                    empty += 1
            else:
                stack.append((node.left, depth + 1))
                stack.append((node.right, depth + 1))
        return KDTreeStats(
            num_triangles=len(self.triangles),
            num_nodes=total_nodes,
            num_leaves=leaves,
            max_depth=max_depth,
            avg_leaf_depth=depth_sum / leaves if leaves else 0.0,
            avg_triangles_per_leaf=tri_sum / leaves if leaves else 0.0,
            max_triangles_per_leaf=tri_max,
            empty_leaves=empty,
        )


def _median_split(bounds: AABB, tri_bounds: list[AABB], indices: list[int]
                  ) -> tuple[int, float] | None:
    axis = int(np.argmax(bounds.extent))
    centers = np.array([(tri_bounds[i].lo[axis] + tri_bounds[i].hi[axis]) * 0.5
                        for i in indices])
    split = float(np.median(centers))
    if not bounds.lo[axis] < split < bounds.hi[axis]:
        split = float((bounds.lo[axis] + bounds.hi[axis]) * 0.5)
        if not bounds.lo[axis] < split < bounds.hi[axis]:
            return None
    return axis, split


def _sah_split(bounds: AABB, tri_bounds: list[AABB], indices: list[int],
               num_bins: int = 16) -> tuple[int, float] | None:
    """Binned SAH: minimize SA(L)*N_L + SA(R)*N_R over candidate planes."""
    best = None
    best_cost = len(indices) * bounds.surface_area  # cost of not splitting
    for axis in range(3):
        lo = bounds.lo[axis]
        hi = bounds.hi[axis]
        if hi - lo <= 0.0:
            continue
        for bin_index in range(1, num_bins):
            split = lo + (hi - lo) * bin_index / num_bins
            n_left = sum(1 for i in indices if tri_bounds[i].lo[axis] <= split)
            n_right = sum(1 for i in indices if tri_bounds[i].hi[axis] >= split)
            left_box, right_box = bounds.split(axis, split)
            cost = (left_box.surface_area * n_left
                    + right_box.surface_area * n_right)
            if cost < best_cost:
                best_cost = cost
                best = (axis, float(split))
    return best


_SPLITTERS = {"median": _median_split, "sah": _sah_split}


def build_kdtree(triangles: list[Triangle], *, max_depth: int = 18,
                 leaf_size: int = 8, method: str = "median",
                 bounds_eps: float = 1e-6) -> KDTree:
    """Build a kd-tree over ``triangles``.

    ``method`` selects the split heuristic (``"median"`` or ``"sah"``).
    ``leaf_size`` is the target triangle count below which nodes become
    leaves (the paper: "node subdivision is performed until leaf nodes
    contain a specified number of objects").
    """
    if method not in _SPLITTERS:
        raise SceneError(f"unknown kd-tree build method {method!r}")
    if not triangles:
        raise SceneError("cannot build a kd-tree over zero triangles")
    if max_depth < 0 or leaf_size < 1:
        raise SceneError("max_depth must be >= 0 and leaf_size >= 1")
    splitter = _SPLITTERS[method]
    tri_bounds = [tri.bounds() for tri in triangles]
    world = AABB.empty()
    for box in tri_bounds:
        world = world.union(box)
    world = world.grown(max(bounds_eps, bounds_eps * float(np.max(world.extent))))

    def build(bounds: AABB, indices: list[int], depth: int) -> KDNode:
        if depth >= max_depth or len(indices) <= leaf_size:
            return KDNode(bounds=bounds, triangle_indices=indices)
        plane = splitter(bounds, tri_bounds, indices)
        if plane is None:
            return KDNode(bounds=bounds, triangle_indices=indices)
        axis, split = plane
        left_idx = [i for i in indices if tri_bounds[i].lo[axis] <= split]
        right_idx = [i for i in indices if tri_bounds[i].hi[axis] >= split]
        if len(left_idx) == len(indices) and len(right_idx) == len(indices):
            # Every triangle straddles the plane; splitting cannot help.
            return KDNode(bounds=bounds, triangle_indices=indices)
        left_box, right_box = bounds.split(axis, split)
        node = KDNode(bounds=bounds, axis=axis, split=split)
        node.left = build(left_box, left_idx, depth + 1)
        node.right = build(right_box, right_idx, depth + 1)
        return node

    root = build(world, list(range(len(triangles))), 0)
    nodes, leaf_indices = _flatten(root)
    return KDTree(root=root, bounds=world, triangles=list(triangles),
                  nodes=nodes, leaf_indices=leaf_indices)


def _flatten(root: KDNode) -> tuple[np.ndarray, np.ndarray]:
    """Depth-first flatten into the documented array layout."""
    rows: list[list[float]] = []
    leaf_list: list[int] = []
    order: list[KDNode] = []

    def number(node: KDNode) -> None:
        node.index = len(order)
        order.append(node)
        rows.append([0.0] * NODE_WORDS)
        if not node.is_leaf:
            number(node.left)
            number(node.right)

    number(root)
    for node in order:
        if node.is_leaf:
            rows[node.index] = [float(LEAF_AXIS),
                                float(len(node.triangle_indices)),
                                float(len(leaf_list)), 0.0]
            leaf_list.extend(node.triangle_indices)
        else:
            rows[node.index] = [float(node.axis), node.split,
                                float(node.left.index),
                                float(node.right.index)]
    nodes = np.asarray(rows, dtype=np.float64)
    indices = np.asarray(leaf_list, dtype=np.int64)
    return nodes, indices
