"""Procedural benchmark scenes.

The paper evaluates on three classic scenes whose meshes we cannot ship:

- **fairyforest** — "large open spaces with areas of highly dense object
  count" (clustered vegetation over terrain, ~174k triangles),
- **atrium** — "a uniform distribution of highly dense objects through the
  entire scene" (the Sponza-style colonnade),
- **conference** — "a high number of objects that are not evenly
  distributed" (a room with furniture clusters, ~283k triangles).

Each generator below reproduces the *spatial character* that drives the
paper's divergence behaviour — the variance in kd-tree traversal depth,
leaf occupancy, and leaves-per-ray — at a triangle count scaled by
``detail`` so the pure-Python simulator stays tractable. This substitution
is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SceneError
from repro.rt.geometry import Triangle
from repro.rt.vecmath import vec3

#: Scene names in paper order.
BENCHMARK_SCENES = ("fairyforest", "atrium", "conference")

#: Approximate triangle counts of the original meshes (for Table III's
#: paper column; the classic assets are ~174k / ~66k / ~283k triangles).
PAPER_TRIANGLE_COUNTS = {
    "fairyforest": 174_117,
    "atrium": 66_454,
    "conference": 282_801,
}


@dataclass
class Scene:
    """A renderable scene: geometry plus a default view and light."""

    name: str
    triangles: list[Triangle]
    eye: np.ndarray
    look_at: np.ndarray
    up: np.ndarray = field(default_factory=lambda: vec3(0, 1, 0))
    fov_degrees: float = 60.0
    light: np.ndarray = field(default_factory=lambda: vec3(0, 40, 0))

    @property
    def num_triangles(self) -> int:
        return len(self.triangles)


def _quad(a, b, c, d) -> list[Triangle]:
    """Two triangles covering the quad a-b-c-d (in winding order)."""
    return [Triangle(np.asarray(a, float), np.asarray(b, float), np.asarray(c, float)),
            Triangle(np.asarray(a, float), np.asarray(c, float), np.asarray(d, float))]


def _box(lo, hi) -> list[Triangle]:
    """12 triangles for the axis-aligned box [lo, hi]."""
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    x0, y0, z0 = lo
    x1, y1, z1 = hi
    tris: list[Triangle] = []
    tris += _quad((x0, y0, z0), (x1, y0, z0), (x1, y1, z0), (x0, y1, z0))  # front
    tris += _quad((x1, y0, z1), (x0, y0, z1), (x0, y1, z1), (x1, y1, z1))  # back
    tris += _quad((x0, y0, z1), (x0, y0, z0), (x0, y1, z0), (x0, y1, z1))  # left
    tris += _quad((x1, y0, z0), (x1, y0, z1), (x1, y1, z1), (x1, y1, z0))  # right
    tris += _quad((x0, y1, z0), (x1, y1, z0), (x1, y1, z1), (x0, y1, z1))  # top
    tris += _quad((x0, y0, z1), (x1, y0, z1), (x1, y0, z0), (x0, y0, z0))  # bottom
    return tris


def _ground(size: float, cells: int, y: float = 0.0,
            jitter: float = 0.0, rng: np.random.Generator | None = None
            ) -> list[Triangle]:
    """A subdivided ground plane (optionally height-jittered terrain)."""
    tris: list[Triangle] = []
    xs = np.linspace(-size / 2, size / 2, cells + 1)
    heights = np.full((cells + 1, cells + 1), y)
    if jitter > 0.0 and rng is not None:
        heights = y + rng.uniform(-jitter, jitter, size=(cells + 1, cells + 1))
    for i in range(cells):
        for j in range(cells):
            p00 = (xs[i], heights[i, j], xs[j])
            p10 = (xs[i + 1], heights[i + 1, j], xs[j])
            p11 = (xs[i + 1], heights[i + 1, j + 1], xs[j + 1])
            p01 = (xs[i], heights[i, j + 1], xs[j + 1])
            tris += _quad(p00, p10, p11, p01)
    return tris


def _tree(base: np.ndarray, height: float, radius: float, segments: int,
          rng: np.random.Generator) -> list[Triangle]:
    """A low-poly tree: trunk box + a cone canopy of ``segments`` triangles."""
    tris = _box(base + vec3(-radius * 0.15, 0, -radius * 0.15),
                base + vec3(radius * 0.15, height * 0.45, radius * 0.15))
    apex = base + vec3(0, height, 0)
    ring_y = base[1] + height * 0.35
    angles = np.linspace(0, 2 * np.pi, segments + 1)
    jitter = rng.uniform(0.85, 1.15, size=segments + 1)
    for s in range(segments):
        p0 = vec3(base[0] + radius * jitter[s] * np.cos(angles[s]), ring_y,
                  base[2] + radius * jitter[s] * np.sin(angles[s]))
        p1 = vec3(base[0] + radius * jitter[s + 1] * np.cos(angles[s + 1]), ring_y,
                  base[2] + radius * jitter[s + 1] * np.sin(angles[s + 1]))
        tris.append(Triangle(p0, p1, apex))
    return tris


def fairyforest_like(detail: float = 1.0, seed: int = 7) -> Scene:
    """Open terrain with dense clustered vegetation.

    Divergence driver: rays over open ground finish traversal in a few
    steps while rays into a cluster take many — high variance in loop trip
    counts, exactly the paper's fairyforest characterization.
    """
    _check_detail(detail)
    rng = np.random.default_rng(seed)
    tris = _ground(100.0, max(4, int(10 * np.sqrt(detail))), jitter=0.6, rng=rng)
    num_clusters = max(2, int(round(4 * np.sqrt(detail))))
    trees_per_cluster = max(3, int(round(14 * detail)))
    cluster_centers = rng.uniform(-38, 38, size=(num_clusters, 2))
    for cx, cz in cluster_centers:
        for _ in range(trees_per_cluster):
            dx, dz = rng.normal(0.0, 4.0, size=2)
            base = vec3(cx + dx, 0.0, cz + dz)
            height = rng.uniform(4.0, 9.0)
            radius = rng.uniform(1.2, 2.8)
            tris += _tree(base, height, radius, segments=6, rng=rng)
    return Scene(name="fairyforest", triangles=tris,
                 eye=vec3(0, 14, 52), look_at=vec3(0, 3, 0),
                 light=vec3(20, 60, 20))


def atrium_like(detail: float = 1.0, seed: int = 11) -> Scene:
    """A colonnaded atrium: uniformly dense geometry everywhere.

    Divergence driver: every ray hits comparable geometry density, so
    divergence comes from differing traversal *paths* rather than from
    open-vs-dense contrast — the paper's atrium characterization.
    """
    _check_detail(detail)
    rng = np.random.default_rng(seed)
    tris = _ground(60.0, max(3, int(6 * np.sqrt(detail))))
    grid = max(3, int(round(5 * np.sqrt(detail))))
    spacing = 50.0 / grid
    for i in range(grid):
        for j in range(grid):
            x = -25.0 + (i + 0.5) * spacing
            z = -25.0 + (j + 0.5) * spacing
            width = rng.uniform(0.8, 1.2)
            height = rng.uniform(8.0, 12.0)
            tris += _box(vec3(x - width, 0, z - width), vec3(x + width, height, z + width))
            # Capital block and arch wedge atop each column.
            tris += _box(vec3(x - 1.6 * width, height, z - 1.6 * width),
                         vec3(x + 1.6 * width, height + 1.0, z + 1.6 * width))
            apex = vec3(x, height + 3.0, z)
            tris.append(Triangle(vec3(x - 1.6 * width, height + 1.0, z - 1.6 * width),
                                 vec3(x + 1.6 * width, height + 1.0, z - 1.6 * width), apex))
            tris.append(Triangle(vec3(x - 1.6 * width, height + 1.0, z + 1.6 * width),
                                 vec3(x + 1.6 * width, height + 1.0, z + 1.6 * width), apex))
    return Scene(name="atrium", triangles=tris,
                 eye=vec3(-28, 9, 28), look_at=vec3(0, 5, 0),
                 light=vec3(0, 50, 0))


def conference_like(detail: float = 1.0, seed: int = 3) -> Scene:
    """A conference room: many objects, unevenly distributed.

    Divergence driver: rays toward furniture clusters traverse deep, dense
    subtrees; rays toward bare walls terminate quickly — the paper's
    conference characterization.
    """
    _check_detail(detail)
    rng = np.random.default_rng(seed)
    room = 40.0
    wall_cells = max(2, int(4 * np.sqrt(detail)))
    tris = _ground(room, wall_cells)                       # floor
    tris += _ground(room, wall_cells, y=12.0)              # ceiling
    # Four walls as thin boxes.
    half = room / 2
    thickness = 0.3
    tris += _box(vec3(-half, 0, -half - thickness), vec3(half, 12, -half))
    tris += _box(vec3(-half, 0, half), vec3(half, 12, half + thickness))
    tris += _box(vec3(-half - thickness, 0, -half), vec3(-half, 12, half))
    tris += _box(vec3(half, 0, -half), vec3(half + thickness, 12, half))
    num_tables = max(1, int(round(3 * detail)))
    chairs_per_table = max(4, int(round(10 * detail)))
    # Tables cluster toward one side of the room (uneven distribution).
    for _ in range(num_tables):
        cx = rng.uniform(-half * 0.7, 0.0)
        cz = rng.uniform(-half * 0.6, half * 0.6)
        length, width = rng.uniform(6, 9), rng.uniform(2.5, 3.5)
        tris += _box(vec3(cx - length / 2, 1.9, cz - width / 2),
                     vec3(cx + length / 2, 2.2, cz + width / 2))
        for leg_x in (cx - length / 2 + 0.3, cx + length / 2 - 0.3):
            for leg_z in (cz - width / 2 + 0.3, cz + width / 2 - 0.3):
                tris += _box(vec3(leg_x - 0.1, 0, leg_z - 0.1),
                             vec3(leg_x + 0.1, 1.9, leg_z + 0.1))
        for _ in range(chairs_per_table):
            ang = rng.uniform(0, 2 * np.pi)
            cx2 = cx + (length / 2 + 1.2) * np.cos(ang)
            cz2 = cz + (width / 2 + 1.2) * np.sin(ang)
            tris += _box(vec3(cx2 - 0.5, 0, cz2 - 0.5), vec3(cx2 + 0.5, 1.1, cz2 + 0.5))
            tris += _box(vec3(cx2 - 0.5, 1.1, cz2 - 0.6), vec3(cx2 + 0.5, 2.4, cz2 - 0.4))
    return Scene(name="conference", triangles=tris,
                 eye=vec3(14, 6, 16), look_at=vec3(-6, 2, -2),
                 light=vec3(0, 11, 0))


_GENERATORS = {
    "fairyforest": fairyforest_like,
    "atrium": atrium_like,
    "conference": conference_like,
}


def make_scene(name: str, detail: float = 1.0, seed: int | None = None) -> Scene:
    """Construct a benchmark scene by name (see :data:`BENCHMARK_SCENES`)."""
    if name not in _GENERATORS:
        raise SceneError(
            f"unknown scene {name!r}; expected one of {BENCHMARK_SCENES}")
    if seed is None:
        return _GENERATORS[name](detail)
    return _GENERATORS[name](detail, seed)


def _check_detail(detail: float) -> None:
    if not detail > 0:
        raise SceneError("detail must be positive")
