"""Ray-order (warp coherence) utilities.

Which rays share a warp is fixed at launch on traditional SIMT hardware,
so the *order* of the ray buffer controls warp coherence: row-major order
groups horizontally adjacent pixels, Morton (Z-curve) order groups square
tiles (more coherent), and a random shuffle destroys coherence entirely.
Dynamic µ-kernels regroup threads at runtime, so they should be much less
sensitive to the launch order — the ordering ablation quantifies that.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SceneError


def _part1by1(values: np.ndarray) -> np.ndarray:
    """Spread the low 16 bits of each value over even bit positions."""
    v = values.astype(np.uint32)
    v &= np.uint32(0x0000FFFF)
    v = (v | (v << np.uint32(8))) & np.uint32(0x00FF00FF)
    v = (v | (v << np.uint32(4))) & np.uint32(0x0F0F0F0F)
    v = (v | (v << np.uint32(2))) & np.uint32(0x33333333)
    v = (v | (v << np.uint32(1))) & np.uint32(0x55555555)
    return v


def morton_codes(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Interleaved-bit Z-curve codes for 2D coordinates (< 2^16 each)."""
    x = np.asarray(x)
    y = np.asarray(y)
    if np.any(x < 0) or np.any(y < 0) or np.any(x >= 1 << 16) or np.any(y >= 1 << 16):
        raise SceneError("morton coordinates must be in [0, 65536)")
    return (_part1by1(x) | (_part1by1(y) << np.uint32(1))).astype(np.int64)


def morton_order(width: int, height: int) -> np.ndarray:
    """Permutation mapping new position -> row-major ray index.

    ``origins[morton_order(w, h)]`` reorders a row-major pixel grid into
    Z-curve order; tiles of 2^k x 2^k pixels become contiguous, so warps
    cover compact screen tiles.
    """
    if width <= 0 or height <= 0:
        raise SceneError("grid dimensions must be positive")
    ys, xs = np.divmod(np.arange(width * height), width)
    codes = morton_codes(xs, ys)
    return np.argsort(codes, kind="stable")


def shuffled_order(count: int, seed: int = 0) -> np.ndarray:
    """A random permutation (destroys warp coherence)."""
    if count <= 0:
        raise SceneError("count must be positive")
    return np.random.default_rng(seed).permutation(count)


def apply_order(order: np.ndarray, *arrays: np.ndarray) -> tuple:
    """Apply one permutation to several parallel per-ray arrays."""
    return tuple(np.asarray(array)[order] for array in arrays)


def invert_order(order: np.ndarray) -> np.ndarray:
    """The inverse permutation (to scatter results back to pixels)."""
    inverse = np.empty_like(order)
    inverse[order] = np.arange(order.shape[0])
    return inverse
