"""Text assembler and disassembler for the repro ISA.

The syntax is PTX-flavoured, matching the paper's Example 2:

.. code-block:: text

    .kernel microKernel regs=20 state=12 shared=56 local=384 const=24
    microKernel:
        mov rd1, SREG.spawnMemAddr;        # special register read
        ld.spawnMem r1, [rd1+0];           # scalar spawn-memory load
        ld.global.v4 r4, [r2+8];           # 4-wide vector load
        setp.lt p0, r1, r2;                # predicate set
        @p0 bra LOOP;                      # predicated branch
        @p0 spawn $microKernel_option_1, rd1;
        @p0 exit;
        st.spawnMem [rd1+4], r2;
        exit;

Register tokens ``r<N>`` and ``rd<N>`` share one namespace (``rd`` is
PTX's 64-bit flavour; our simulator registers are 64-bit lanes already).
Comments start with ``#`` or ``//``; trailing semicolons are optional.
"""

from __future__ import annotations

import re

from repro.errors import AssemblerError
from repro.isa.instructions import (
    ARITH_OPS,
    ATOMIC_OPS,
    CMP_OPS,
    MEMORY_SPACES,
    SPECIAL_REGISTERS,
    UNARY_OPS,
    Instruction,
    Operand,
    imm,
    preg,
    reg,
    sreg,
)
from repro.isa.program import Program

_LABEL_RE = re.compile(r"^([A-Za-z_][\w.$]*):$")
_KERNEL_RE = re.compile(r"^\.kernel\s+([A-Za-z_][\w.$]*)\s*(.*)$")
_KV_RE = re.compile(r"([a-z_]+)\s*=\s*(\d+)")
_GUARD_RE = re.compile(r"^@(!?)p(\d+)\s+(.*)$")
_MEM_RE = re.compile(r"^\[\s*(rd?\d+)\s*([+-]\s*\d+)?\s*\]$")

#: Accepted aliases for memory spaces in opcode suffixes.
_SPACE_ALIASES = {
    "global": "global", "local": "local", "const": "const",
    "shared": "shared", "spawn": "spawn", "spawnmem": "spawn",
}


def _parse_operand(token: str, line_number: int) -> Operand:
    token = token.strip()
    match = re.fullmatch(r"rd?(\d+)", token)
    if match:
        return reg(int(match.group(1)))
    match = re.fullmatch(r"p(\d+)", token)
    if match:
        return preg(int(match.group(1)))
    if token.startswith("SREG."):
        name = token[len("SREG."):]
        if name not in SPECIAL_REGISTERS:
            raise AssemblerError(f"unknown special register {name!r}", line_number)
        return sreg(name)
    try:
        return imm(float(int(token, 0)))
    except ValueError:
        pass
    try:
        return imm(float(token))
    except ValueError:
        raise AssemblerError(f"cannot parse operand {token!r}", line_number) from None


def _parse_memref(token: str, line_number: int) -> tuple[Operand, int]:
    match = _MEM_RE.match(token.strip())
    if not match:
        raise AssemblerError(f"malformed memory reference {token!r}", line_number)
    base = _parse_operand(match.group(1), line_number)
    offset = int(match.group(2).replace(" ", "")) if match.group(2) else 0
    return base, offset


def _split_operands(text: str) -> list[str]:
    """Split on commas not inside brackets."""
    parts, depth, current = [], 0, []
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_opcode(word: str, line_number: int) -> tuple[str, str | None, int, str | None]:
    """Return (op, space, width, cmp) from a dotted opcode token."""
    parts = word.split(".")
    op = parts[0]
    space: str | None = None
    width = 1
    cmp: str | None = None
    for suffix in parts[1:]:
        lowered = suffix.lower()
        if lowered in _SPACE_ALIASES:
            space = _SPACE_ALIASES[lowered]
        elif lowered in CMP_OPS or (op == "atom" and lowered in ATOMIC_OPS):
            cmp = lowered
        elif re.fullmatch(r"v[124]", lowered):
            width = int(lowered[1])
        elif lowered in ("f32", "f64", "s32", "u32", "s64", "u64", "pred"):
            continue  # type suffixes are accepted and ignored
        else:
            raise AssemblerError(f"unknown opcode suffix {suffix!r}", line_number)
    return op, space, width, cmp


def _parse_instruction(text: str, line_number: int) -> Instruction:
    pred = None
    pred_neg = False
    guard = _GUARD_RE.match(text)
    if guard:
        pred_neg = guard.group(1) == "!"
        pred = preg(int(guard.group(2)))
        text = guard.group(3)
    pieces = text.split(None, 1)
    opcode_word = pieces[0]
    operand_text = pieces[1] if len(pieces) > 1 else ""
    op, space, width, cmp = _parse_opcode(opcode_word, line_number)
    operands = _split_operands(operand_text)
    common = dict(pred=pred, pred_neg=pred_neg)

    try:
        if op in ("exit", "nop", "bar"):
            if operands:
                raise AssemblerError(f"{op} takes no operands", line_number)
            if op == "bar" and pred is not None:
                raise AssemblerError("bar cannot be predicated (all "
                                     "threads must reach it)", line_number)
            return Instruction(op, **common)
        if op == "bra":
            if len(operands) != 1:
                raise AssemblerError("bra takes one label", line_number)
            return Instruction(op, label=operands[0].lstrip("$"), **common)
        if op == "spawn":
            if len(operands) != 2:
                raise AssemblerError("spawn takes a label and a register", line_number)
            pointer = _parse_operand(operands[1], line_number)
            return Instruction(op, label=operands[0].lstrip("$"),
                               srcs=(pointer,), **common)
        if op == "ld":
            if len(operands) != 2:
                raise AssemblerError("ld takes dst and [addr]", line_number)
            dst = _parse_operand(operands[0], line_number)
            base, offset = _parse_memref(operands[1], line_number)
            return Instruction(op, dst=dst, srcs=(base,), space=space,
                               width=width, offset=offset, **common)
        if op == "st":
            if len(operands) != 2:
                raise AssemblerError("st takes [addr] and src", line_number)
            base, offset = _parse_memref(operands[0], line_number)
            src = _parse_operand(operands[1], line_number)
            return Instruction(op, srcs=(base, src), space=space,
                               width=width, offset=offset, **common)
        if op == "atom":
            if len(operands) != 3:
                raise AssemblerError("atom takes dst, [addr], src",
                                     line_number)
            dst = _parse_operand(operands[0], line_number)
            base, offset = _parse_memref(operands[1], line_number)
            src = _parse_operand(operands[2], line_number)
            return Instruction(op, dst=dst, srcs=(base, src),
                               space=space or "global", cmp=cmp,
                               offset=offset, **common)
        if op == "setp":
            if len(operands) != 3:
                raise AssemblerError("setp takes pdst, a, b", line_number)
            dst = _parse_operand(operands[0], line_number)
            if dst.kind != "p":
                raise AssemblerError("setp destination must be a predicate", line_number)
            a = _parse_operand(operands[1], line_number)
            b = _parse_operand(operands[2], line_number)
            return Instruction(op, dst=dst, srcs=(a, b), cmp=cmp, **common)
        if op == "selp":
            if len(operands) != 4:
                raise AssemblerError("selp takes dst, a, b, p", line_number)
            parsed = [_parse_operand(token, line_number) for token in operands]
            return Instruction(op, dst=parsed[0], srcs=tuple(parsed[1:]), **common)
        if op == "mad":
            if len(operands) != 4:
                raise AssemblerError("mad takes dst, a, b, c", line_number)
            parsed = [_parse_operand(token, line_number) for token in operands]
            return Instruction(op, dst=parsed[0], srcs=tuple(parsed[1:]), **common)
        if op in ARITH_OPS:
            if len(operands) != 3:
                raise AssemblerError(f"{op} takes dst, a, b", line_number)
            parsed = [_parse_operand(token, line_number) for token in operands]
            return Instruction(op, dst=parsed[0], srcs=tuple(parsed[1:]), **common)
        if op in UNARY_OPS:
            if len(operands) != 2:
                raise AssemblerError(f"{op} takes dst, a", line_number)
            dst = _parse_operand(operands[0], line_number)
            src = _parse_operand(operands[1], line_number)
            return Instruction(op, dst=dst, srcs=(src,), **common)
    except ValueError as exc:
        raise AssemblerError(str(exc), line_number) from exc
    raise AssemblerError(f"unknown opcode {op!r}", line_number)


def assemble(source: str) -> Program:
    """Assemble ``source`` text into a finalized :class:`Program`."""
    program = Program()
    kernel_directives: list[tuple[str, dict[str, int], int]] = []
    for line_number, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].split("//", 1)[0].strip()
        if line.endswith(";"):
            line = line[:-1].rstrip()
        if not line:
            continue
        kernel_match = _KERNEL_RE.match(line)
        if kernel_match:
            name = kernel_match.group(1)
            params = {key: int(value) for key, value in _KV_RE.findall(kernel_match.group(2))}
            kernel_directives.append((name, params, line_number))
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            try:
                program.add_label(label_match.group(1))
            except Exception as exc:
                raise AssemblerError(str(exc), line_number) from exc
            continue
        program.add(_parse_instruction(line, line_number))
    for name, params, line_number in kernel_directives:
        if name not in program.labels:
            raise AssemblerError(f".kernel {name!r} has no matching label", line_number)
        program.add_kernel(
            name,
            registers=params.get("regs", 16),
            state_words=params.get("state", 0),
            shared_bytes=params.get("shared", 0),
            local_bytes=params.get("local", 0),
            const_bytes=params.get("const", 0),
        )
    try:
        return program.finalize()
    except Exception as exc:
        raise AssemblerError(str(exc)) from exc


def _format_operand(operand: Operand) -> str:
    if operand.kind == "r":
        return f"r{operand.value}"
    if operand.kind == "p":
        return f"p{operand.value}"
    if operand.kind == "sreg":
        return f"SREG.{operand.value}"
    value = operand.value
    if float(value).is_integer():
        return str(int(value))
    return repr(value)


def disassemble(program: Program) -> str:
    """Render a program back to assembly text (round-trips via assemble)."""
    pc_labels: dict[int, list[str]] = {}
    for name, pc in program.labels.items():
        pc_labels.setdefault(pc, []).append(name)
    lines: list[str] = []
    for info in sorted(program.kernels.values(), key=lambda k: k.entry_pc):
        lines.append(
            f".kernel {info.name} regs={info.registers} state={info.state_words} "
            f"shared={info.shared_bytes} local={info.local_bytes} "
            f"const={info.const_bytes}")
    for pc, inst in enumerate(program.instructions):
        for name in pc_labels.get(pc, ()):
            lines.append(f"{name}:")
        lines.append("    " + _format_instruction(inst))
    for name in pc_labels.get(len(program.instructions), ()):
        lines.append(f"{name}:")
    return "\n".join(lines) + "\n"


def _format_instruction(inst: Instruction) -> str:
    guard = inst.guard_repr()
    op = inst.op
    if inst.cmp:
        op += f".{inst.cmp}"
    if inst.space:
        op += f".{inst.space}"
    if inst.width > 1:
        op += f".v{inst.width}"
    if inst.op in ("exit", "nop", "bar"):
        return f"{guard}{op};"
    if inst.op == "bra":
        return f"{guard}{op} {inst.label};"
    if inst.op == "spawn":
        return f"{guard}{op} ${inst.label}, {_format_operand(inst.srcs[0])};"
    if inst.op == "ld":
        addr = f"[{_format_operand(inst.srcs[0])}{inst.offset:+d}]"
        return f"{guard}{op} {_format_operand(inst.dst)}, {addr};"
    if inst.op == "st":
        addr = f"[{_format_operand(inst.srcs[0])}{inst.offset:+d}]"
        return f"{guard}{op} {addr}, {_format_operand(inst.srcs[1])};"
    if inst.op == "atom":
        addr = f"[{_format_operand(inst.srcs[0])}{inst.offset:+d}]"
        return (f"{guard}{op} {_format_operand(inst.dst)}, {addr}, "
                f"{_format_operand(inst.srcs[1])};")
    parts = [_format_operand(inst.dst)] + [_format_operand(s) for s in inst.srcs]
    return f"{guard}{op} {', '.join(parts)};"
