"""JSON serialization for assembled programs.

The conformance fuzzer (:mod:`repro.fuzz`) persists failing generated
programs to a JSON regression corpus; this module defines that encoding.
Design goals:

- **Canonical**: :func:`program_to_dict` is deterministic (instructions in
  PC order, kernels sorted by entry PC, defaults omitted), so
  ``json.dumps(..., sort_keys=True)`` of a round-tripped program is
  byte-identical to the original dump.
- **Self-validating**: :func:`program_from_dict` rejects malformed
  documents with a :class:`~repro.errors.ProgramError` naming the exact
  offending field (``instructions[3].srcs[1]``), so a corrupted corpus
  file points at its own defect.

Operands are encoded as ``"r4"`` / ``"p2"`` / ``"SREG.tid"`` strings or
bare numbers for immediates; non-finite immediates use the strings
``"nan"``, ``"inf"``, and ``"-inf"`` (standard JSON has no literals for
them). Guards are ``"p0"`` / ``"!p0"``. Branch/spawn targets stay
symbolic (labels); PCs are recomputed by ``Program.finalize``.
"""

from __future__ import annotations

import json
import math

from repro.errors import ProgramError
from repro.isa.instructions import Instruction, Operand, imm, preg, reg, sreg
from repro.isa.program import Program

#: Document schema identifier embedded in every serialized program.
PROGRAM_SCHEMA = "repro-program/1"

_KERNEL_FIELDS = ("registers", "state_words", "shared_bytes", "local_bytes",
                  "const_bytes")


def _operand_to_json(operand: Operand):
    if operand.kind == "r":
        return f"r{operand.value}"
    if operand.kind == "p":
        return f"p{operand.value}"
    if operand.kind == "sreg":
        return f"SREG.{operand.value}"
    value = float(operand.value)
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _operand_from_json(value, path: str) -> Operand:
    if isinstance(value, bool):
        raise ProgramError(f"{path}: operand must be a register string or "
                           f"a number, got {value!r}")
    if isinstance(value, (int, float)):
        return imm(float(value))
    if isinstance(value, str):
        if value == "nan":
            return imm(float("nan"))
        if value == "inf":
            return imm(float("inf"))
        if value == "-inf":
            return imm(float("-inf"))
        if value.startswith("SREG."):
            try:
                return sreg(value[len("SREG."):])
            except ValueError as error:
                raise ProgramError(f"{path}: {error}") from error
        if len(value) > 1 and value[0] == "r" and value[1:].isdigit():
            return reg(int(value[1:]))
        if len(value) > 1 and value[0] == "p" and value[1:].isdigit():
            return preg(int(value[1:]))
    raise ProgramError(f"{path}: cannot parse operand {value!r}; expected "
                       f"'r<i>', 'p<i>', 'SREG.<name>', a number, or "
                       f"'nan'/'inf'/'-inf'")


def _instruction_to_dict(inst: Instruction) -> dict:
    doc: dict = {"op": inst.op}
    if inst.dst is not None:
        doc["dst"] = _operand_to_json(inst.dst)
    if inst.srcs:
        doc["srcs"] = [_operand_to_json(op) for op in inst.srcs]
    if inst.pred is not None:
        doc["guard"] = f"{'!' if inst.pred_neg else ''}p{inst.pred.value}"
    if inst.space is not None:
        doc["space"] = inst.space
    if inst.width != 1:
        doc["width"] = inst.width
    if inst.cmp is not None:
        doc["cmp"] = inst.cmp
    if inst.label is not None:
        doc["label"] = inst.label
    if inst.offset:
        doc["offset"] = inst.offset
    return doc


def _expect_type(value, types, path: str, what: str):
    if not isinstance(value, types) or isinstance(value, bool):
        raise ProgramError(f"{path}: {what} expected, "
                           f"got {type(value).__name__}")
    return value


def _instruction_from_dict(doc, path: str) -> Instruction:
    _expect_type(doc, dict, path, "instruction object")
    known = {"op", "dst", "srcs", "guard", "space", "width", "cmp", "label",
             "offset"}
    for key in doc:
        if key not in known:
            raise ProgramError(f"{path}.{key}: unknown instruction field")
    op = _expect_type(doc.get("op"), str, f"{path}.op", "opcode string")
    dst = (None if "dst" not in doc
           else _operand_from_json(doc["dst"], f"{path}.dst"))
    srcs_doc = doc.get("srcs", [])
    _expect_type(srcs_doc, list, f"{path}.srcs", "operand list")
    srcs = tuple(_operand_from_json(value, f"{path}.srcs[{index}]")
                 for index, value in enumerate(srcs_doc))
    pred = None
    pred_neg = False
    if "guard" in doc:
        guard = _expect_type(doc["guard"], str, f"{path}.guard",
                             "guard string")
        pred_neg = guard.startswith("!")
        operand = _operand_from_json(guard.lstrip("!"), f"{path}.guard")
        if operand.kind != "p":
            raise ProgramError(f"{path}.guard: guard must be a predicate "
                               f"register, got {guard!r}")
        pred = operand
    space = (None if "space" not in doc
             else _expect_type(doc["space"], str, f"{path}.space",
                               "memory-space string"))
    width = doc.get("width", 1)
    _expect_type(width, int, f"{path}.width", "integer width")
    cmp = (None if "cmp" not in doc
           else _expect_type(doc["cmp"], str, f"{path}.cmp",
                             "comparison string"))
    label = (None if "label" not in doc
             else _expect_type(doc["label"], str, f"{path}.label",
                               "label string"))
    offset = doc.get("offset", 0)
    _expect_type(offset, int, f"{path}.offset", "integer offset")
    try:
        return Instruction(op, dst=dst, srcs=srcs, pred=pred,
                           pred_neg=pred_neg, space=space, width=width,
                           cmp=cmp, label=label, offset=offset)
    except ValueError as error:
        raise ProgramError(f"{path}: {error}") from error


def program_to_dict(program: Program) -> dict:
    """Canonical JSON-compatible encoding of a finalized program."""
    kernels = sorted(program.kernels.values(),
                     key=lambda info: (info.entry_pc, info.name))
    return {
        "schema": PROGRAM_SCHEMA,
        "instructions": [_instruction_to_dict(inst)
                         for inst in program.instructions],
        "labels": {name: pc for name, pc in sorted(program.labels.items())},
        "kernels": [
            {"name": info.name,
             **{field: getattr(info, field) for field in _KERNEL_FIELDS
                if getattr(info, field)}}
            for info in kernels],
    }


def program_from_dict(doc) -> Program:
    """Rebuild and finalize a program; raises :class:`ProgramError` with
    the offending field's path on any malformed content."""
    _expect_type(doc, dict, "program", "program object")
    for key in doc:
        if key not in {"schema", "instructions", "labels", "kernels"}:
            raise ProgramError(f"program.{key}: unknown program field")
    schema = doc.get("schema")
    if schema != PROGRAM_SCHEMA:
        raise ProgramError(f"program.schema: expected {PROGRAM_SCHEMA!r}, "
                           f"got {schema!r}")
    instructions = _expect_type(doc.get("instructions"), list,
                                "program.instructions", "instruction list")
    program = Program()
    labels = _expect_type(doc.get("labels", {}), dict, "program.labels",
                          "label mapping")
    # Labels are attached by position so Program.add_label keeps its
    # "next instruction" semantics during reconstruction.
    by_pc: dict[int, list[str]] = {}
    for name, pc in labels.items():
        _expect_type(name, str, "program.labels", "label name string")
        _expect_type(pc, int, f"program.labels[{name!r}]", "integer PC")
        if not 0 <= pc <= len(instructions):
            raise ProgramError(f"program.labels[{name!r}]: PC {pc} outside "
                               f"program of {len(instructions)} instructions")
        by_pc.setdefault(pc, []).append(name)
    for pc, inst_doc in enumerate(instructions):
        for name in sorted(by_pc.get(pc, [])):
            program.add_label(name)
        program.add(_instruction_from_dict(inst_doc,
                                           f"program.instructions[{pc}]"))
    for name in sorted(by_pc.get(len(instructions), [])):
        program.add_label(name)
    kernels = doc.get("kernels", [])
    _expect_type(kernels, list, "program.kernels", "kernel list")
    for index, kernel_doc in enumerate(kernels):
        path = f"program.kernels[{index}]"
        _expect_type(kernel_doc, dict, path, "kernel object")
        for key in kernel_doc:
            if key != "name" and key not in _KERNEL_FIELDS:
                raise ProgramError(f"{path}.{key}: unknown kernel field")
        name = _expect_type(kernel_doc.get("name"), str, f"{path}.name",
                            "kernel name string")
        params = {}
        for field in _KERNEL_FIELDS:
            if field in kernel_doc:
                params[field] = _expect_type(kernel_doc[field], int,
                                             f"{path}.{field}",
                                             "integer value")
        if "registers" not in params:
            raise ProgramError(f"{path}.registers: required field missing")
        try:
            program.add_kernel(name, **params)
        except ProgramError as error:
            raise ProgramError(f"{path}: {error}") from error
    try:
        return program.finalize()
    except ProgramError as error:
        raise ProgramError(f"program: {error}") from error


def program_to_json(program: Program) -> str:
    """Canonical JSON text (sorted keys, two-space indent)."""
    return json.dumps(program_to_dict(program), sort_keys=True, indent=2)


def program_from_json(text: str) -> Program:
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as error:
        raise ProgramError(f"program: invalid JSON: {error}") from error
    return program_from_dict(doc)
