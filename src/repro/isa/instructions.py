"""Instruction and operand representations.

Operands are small tagged tuples wrapped in :class:`Operand` so the
executor can dispatch on ``kind`` without string parsing in the hot loop:

- ``reg(i)``   — general-purpose register ``r<i>`` (one 64-bit lane value),
- ``preg(i)``  — predicate register ``p<i>`` (boolean lane value),
- ``imm(v)``   — immediate constant,
- ``sreg(n)``  — special read-only register (``tid``, ``ntid``, ``warpid``,
  ``smid``, ``spawnMemAddr``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Special registers readable via ``mov rd, SREG.<name>``.
SPECIAL_REGISTERS = ("tid", "ntid", "warpid", "smid", "spawnMemAddr")

#: State spaces for ld/st. ``local`` is per-thread off-chip memory backed by
#: the global partition (the paper stores the kd-tree traversal stack there);
#: ``const`` is read-only off-chip; ``shared`` and ``spawn`` are on-chip.
MEMORY_SPACES = ("global", "local", "const", "shared", "spawn")

#: Two-source arithmetic ops (dst, a, b).
ARITH_OPS = (
    "add", "sub", "mul", "div", "min", "max", "rem",
    "and", "or", "xor", "shl", "shr",
)

#: One-source ops (dst, a).
UNARY_OPS = ("mov", "neg", "abs", "not", "rcp", "sqrt", "rsqrt", "floor", "cvt")

#: Comparison kinds for setp.
CMP_OPS = ("lt", "le", "gt", "ge", "eq", "ne")

#: Atomic read-modify-write kinds for atom.
ATOMIC_OPS = ("add", "max", "min", "exch")

#: All opcodes understood by the executor.
OPCODES = ARITH_OPS + UNARY_OPS + (
    "mad",    # dst = a*b + c
    "setp",   # pdst = cmp(a, b)
    "selp",   # dst = p ? a : b
    "ld",     # dst[, dst+1, ...] = mem[addr + off ...]
    "st",     # mem[addr + off ...] = src[, src+1, ...]
    "atom",   # dst = mem[addr]; mem[addr] = op(mem[addr], src) — serialized
    "bra",    # branch to label (divergence point when predicated)
    "spawn",  # create child threads running the labelled µ-kernel
    "exit",   # retire the lane
    "bar",    # block-wide barrier (block scheduling only; paper SIX
              # future work: "thread block level restrictions, such as
              # thread synchronization")
    "nop",
)


@dataclass(frozen=True)
class Operand:
    """A tagged operand: ``kind`` in {'r','p','imm','sreg'}."""

    kind: str
    value: object

    def __repr__(self) -> str:  # keep asserts/debug output compact
        if self.kind == "r":
            return f"r{self.value}"
        if self.kind == "p":
            return f"p{self.value}"
        if self.kind == "sreg":
            return f"SREG.{self.value}"
        return repr(self.value)


def reg(index: int) -> Operand:
    """General register ``r<index>``."""
    if index < 0:
        raise ValueError("register index must be non-negative")
    return Operand("r", index)


def preg(index: int) -> Operand:
    """Predicate register ``p<index>``."""
    if index < 0:
        raise ValueError("predicate index must be non-negative")
    return Operand("p", index)


def imm(value: float) -> Operand:
    """Immediate constant operand."""
    return Operand("imm", float(value))


def sreg(name: str) -> Operand:
    """Special register operand (see :data:`SPECIAL_REGISTERS`)."""
    if name not in SPECIAL_REGISTERS:
        raise ValueError(f"unknown special register {name!r}")
    return Operand("sreg", name)


@dataclass
class Instruction:
    """One decoded instruction.

    ``pred``/``pred_neg`` guard execution (``@p0`` / ``@!p0``); lanes whose
    guard is false commit nothing. ``label`` names a branch or spawn target
    and is resolved to ``target`` (a PC) by :class:`repro.isa.program.Program`.
    For ld/st, ``srcs[0]`` is the address register and ``offset`` the
    immediate word offset; ``width`` > 1 selects vector transfers over
    consecutive registers and words.
    """

    op: str
    dst: Operand | None = None
    srcs: tuple[Operand, ...] = ()
    pred: Operand | None = None
    pred_neg: bool = False
    space: str | None = None
    width: int = 1
    cmp: str | None = None
    label: str | None = None
    target: int | None = None
    offset: int = 0
    pc: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.op not in OPCODES:
            raise ValueError(f"unknown opcode {self.op!r}")
        if self.op == "setp" and self.cmp not in CMP_OPS:
            raise ValueError(f"setp requires a comparison kind, got {self.cmp!r}")
        if self.op == "atom":
            if self.cmp not in ATOMIC_OPS:
                raise ValueError(f"atom requires an atomic kind, got {self.cmp!r}")
            if self.space != "global":
                raise ValueError("atomics are supported on global memory only")
        if self.op in ("ld", "st"):
            if self.space not in MEMORY_SPACES:
                raise ValueError(f"{self.op} requires a memory space, got {self.space!r}")
            if self.width not in (1, 2, 4):
                raise ValueError(f"vector width must be 1, 2, or 4, got {self.width}")
        if self.op in ("bra", "spawn") and self.label is None and self.target is None:
            raise ValueError(f"{self.op} requires a label or resolved target")

    @property
    def is_control(self) -> bool:
        """True for instructions that change control flow (bra/exit)."""
        return self.op in ("bra", "exit")

    @property
    def is_memory(self) -> bool:
        return self.op in ("ld", "st", "atom")

    @property
    def is_offchip_memory(self) -> bool:
        return self.is_memory and self.space in ("global", "local", "const")

    @property
    def is_onchip_memory(self) -> bool:
        return self.is_memory and self.space in ("shared", "spawn")

    def guard_repr(self) -> str:
        if self.pred is None:
            return ""
        bang = "!" if self.pred_neg else ""
        return f"@{bang}p{self.pred.value} "
