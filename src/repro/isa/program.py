"""Program container: instructions, labels, and kernel entry points.

A :class:`Program` is an ordered list of instructions sharing one flat PC
space (as on real SIMT hardware, where all µ-kernels of an application are
compiled into one image and the spawn LUT is indexed by PC). Kernel entry
points — including every µ-kernel a `spawn` may target — are declared with
labels registered via :meth:`Program.add_kernel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProgramError
from repro.isa.instructions import Instruction


@dataclass(frozen=True)
class KernelInfo:
    """Metadata for one kernel entry point.

    ``state_words`` is the number of spawn-memory words the kernel's threads
    pass between parent and child (paper: 48 bytes = 12 words for the ray
    tracing µ-kernels). ``registers`` is the per-thread register requirement
    used for occupancy (paper Table II).
    """

    name: str
    entry_pc: int
    registers: int
    state_words: int = 0
    shared_bytes: int = 0
    local_bytes: int = 0
    const_bytes: int = 0


@dataclass
class Program:
    """An assembled program with resolved branch/spawn targets."""

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    kernels: dict[str, KernelInfo] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    def add(self, instruction: Instruction) -> int:
        """Append an instruction; returns its PC."""
        pc = len(self.instructions)
        instruction.pc = pc
        self.instructions.append(instruction)
        return pc

    def add_label(self, name: str) -> int:
        """Bind ``name`` to the next instruction's PC."""
        if name in self.labels:
            raise ProgramError(f"duplicate label {name!r}")
        pc = len(self.instructions)
        self.labels[name] = pc
        return pc

    def add_kernel(self, name: str, *, registers: int, state_words: int = 0,
                   shared_bytes: int = 0, local_bytes: int = 0,
                   const_bytes: int = 0) -> KernelInfo:
        """Declare the label ``name`` as a kernel entry point."""
        if name not in self.labels:
            raise ProgramError(f"kernel label {name!r} is not defined")
        if name in self.kernels:
            raise ProgramError(f"duplicate kernel {name!r}")
        info = KernelInfo(name=name, entry_pc=self.labels[name],
                          registers=registers, state_words=state_words,
                          shared_bytes=shared_bytes, local_bytes=local_bytes,
                          const_bytes=const_bytes)
        self.kernels[name] = info
        return info

    def finalize(self) -> "Program":
        """Resolve labels to PCs and validate the program. Returns self."""
        if not self.instructions:
            raise ProgramError("empty program")
        for inst in self.instructions:
            if inst.label is not None:
                if inst.label not in self.labels:
                    raise ProgramError(
                        f"pc={inst.pc}: undefined label {inst.label!r}")
                inst.target = self.labels[inst.label]
        for inst in self.instructions:
            if inst.op == "spawn":
                name = inst.label
                if name not in self.kernels:
                    raise ProgramError(
                        f"pc={inst.pc}: spawn target {name!r} is not a "
                        f"declared kernel")
        last = self.instructions[-1]
        if not (last.op == "exit" and last.pred is None) and last.op != "bra":
            raise ProgramError("program must end in an unconditional exit or branch")
        return self

    # -- static analysis helpers -------------------------------------------

    def kernel_for_pc(self, pc: int) -> KernelInfo | None:
        """The kernel whose entry is the greatest entry_pc <= pc."""
        best = None
        for info in self.kernels.values():
            if info.entry_pc <= pc and (best is None or info.entry_pc > best.entry_pc):
                best = info
        return best

    def max_register_index(self) -> int:
        """Highest general-register index referenced anywhere."""
        top = -1
        for inst in self.instructions:
            # Only the data operand of a vector ld/st spans width registers
            # (the address register does not).
            data = inst.dst if inst.op == "ld" else (
                inst.srcs[1] if inst.op == "st" else None)
            operands = list(inst.srcs)
            if inst.dst is not None:
                operands.append(inst.dst)
            for operand in operands:
                if operand.kind == "r":
                    span = inst.width - 1 if operand is data else 0
                    top = max(top, operand.value + span)
        return top

    def max_predicate_index(self) -> int:
        top = -1
        for inst in self.instructions:
            operands = list(inst.srcs)
            if inst.dst is not None:
                operands.append(inst.dst)
            if inst.pred is not None:
                operands.append(inst.pred)
            for operand in operands:
                if operand.kind == "p":
                    top = max(top, operand.value)
        return top

    def dynamic_spawn_targets(self) -> list[KernelInfo]:
        """Kernels reachable via spawn, ordered by entry PC (LUT order)."""
        names = {inst.label for inst in self.instructions if inst.op == "spawn"}
        infos = [self.kernels[name] for name in sorted(names, key=lambda n: self.kernels[n].entry_pc)]
        return infos

    def instruction_counts(self) -> dict[str, int]:
        """Static opcode histogram (useful for resource reporting)."""
        counts: dict[str, int] = {}
        for inst in self.instructions:
            counts[inst.op] = counts.get(inst.op, 0) + 1
        return counts
