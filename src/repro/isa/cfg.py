"""Control-flow graph and PDOM reconvergence-point analysis.

SIMT hardware reconverges diverged warps at the *immediate post-dominator*
of each branch (Fung et al., MICRO 2007; paper §II). Real toolchains compute
these points in the compiler and encode them in the binary; we compute them
offline from the assembled program with networkx and hand the table to the
simulator's reconvergence stack.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import ProgramError
from repro.isa.program import Program

#: Virtual CFG node representing thread exit.
EXIT = "EXIT"

#: Sentinel reconvergence PC meaning "reconverge only at thread exit".
RECONV_AT_EXIT = -1


def basic_block_leaders(program: Program) -> list[int]:
    """PCs that start a basic block, in ascending order."""
    leaders = {0}
    for info in program.kernels.values():
        leaders.add(info.entry_pc)
    for inst in program.instructions:
        if inst.op == "bra":
            leaders.add(inst.target)
            if inst.pc + 1 < len(program):
                leaders.add(inst.pc + 1)
        elif inst.op == "exit" and inst.pc + 1 < len(program):
            leaders.add(inst.pc + 1)
    return sorted(pc for pc in leaders if 0 <= pc < len(program))


def build_cfg(program: Program) -> nx.DiGraph:
    """Build the CFG over basic blocks.

    Nodes are block-leader PCs plus the virtual :data:`EXIT` node. Each node
    carries ``last`` (PC of the block's final instruction).
    """
    if program[0] is None:  # pragma: no cover - Program guarantees non-empty
        raise ProgramError("empty program")
    leaders = basic_block_leaders(program)
    leader_set = set(leaders)
    graph = nx.DiGraph()
    graph.add_node(EXIT)
    for index, leader in enumerate(leaders):
        end = leaders[index + 1] if index + 1 < len(leaders) else len(program)
        last_pc = end - 1
        graph.add_node(leader, last=last_pc)
        last = program[last_pc]
        if last.op == "bra":
            graph.add_edge(leader, last.target)
            if last.pred is not None and last_pc + 1 < len(program):
                graph.add_edge(leader, last_pc + 1)
        elif last.op == "exit":
            graph.add_edge(leader, EXIT)
            if last.pred is not None and last_pc + 1 < len(program):
                graph.add_edge(leader, last_pc + 1)
        else:
            if last_pc + 1 >= len(program):
                raise ProgramError("control falls off the end of the program")
            graph.add_edge(leader, last_pc + 1)
    for node in list(graph.nodes):
        if node != EXIT and node not in leader_set:
            raise ProgramError(f"branch target pc={node} is not a block leader")
    return graph


def immediate_post_dominators(program: Program) -> dict[int, object]:
    """Map each block leader to its immediate post-dominator leader.

    Values are leader PCs or :data:`EXIT`. Blocks unreachable from any
    kernel entry are still analyzed (they are part of the PC space).
    """
    graph = build_cfg(program)
    reversed_graph = graph.reverse(copy=False)
    # Blocks that cannot reach EXIT (e.g. infinite loops) would be absent
    # from the dominator tree; connect them so analysis is total.
    reachable = set(nx.descendants(reversed_graph, EXIT)) | {EXIT}
    for node in graph.nodes:
        if node not in reachable:
            reversed_graph = nx.DiGraph(reversed_graph)
            reversed_graph.add_edge(EXIT, node)
            reachable.add(node)
    idom = nx.immediate_dominators(reversed_graph, EXIT)
    return {node: idom[node] for node in graph.nodes if node != EXIT}


def reconvergence_table(program: Program) -> dict[int, int]:
    """Map each *divergent* branch PC to its reconvergence PC.

    Only predicated branches can diverge. The reconvergence PC is the leader
    of the branch block's immediate post-dominator, or
    :data:`RECONV_AT_EXIT` when control only rejoins at thread exit.
    """
    ipdom = immediate_post_dominators(program)
    graph = build_cfg(program)
    block_of_pc: dict[int, int] = {}
    for leader in (node for node in graph.nodes if node != EXIT):
        for pc in range(leader, graph.nodes[leader]["last"] + 1):
            block_of_pc[pc] = leader
    table: dict[int, int] = {}
    for inst in program.instructions:
        if inst.op == "bra" and inst.pred is not None:
            node = ipdom[block_of_pc[inst.pc]]
            table[inst.pc] = RECONV_AT_EXIT if node == EXIT else int(node)
    return table
