"""A small PTX-flavoured SIMT instruction set.

The ISA mirrors the subset of NVIDIA PTX 1.x the paper works at (it
hand-instruments Radius-CUDA at the PTX level), extended with the paper's
contribution: a ``spawn`` instruction and a ``spawnMem`` state space.

Public API:

- :class:`~repro.isa.instructions.Instruction` and the opcode tables,
- :class:`~repro.isa.program.Program` / :class:`~repro.isa.program.KernelInfo`,
- :func:`~repro.isa.assembler.assemble` / :func:`~repro.isa.assembler.disassemble`,
- :func:`~repro.isa.cfg.reconvergence_table` (PDOM points).
"""

from repro.isa.assembler import assemble, disassemble
from repro.isa.cfg import build_cfg, immediate_post_dominators, reconvergence_table
from repro.isa.instructions import (
    ARITH_OPS,
    CMP_OPS,
    MEMORY_SPACES,
    OPCODES,
    Instruction,
    Operand,
    imm,
    preg,
    reg,
    sreg,
)
from repro.isa.program import KernelInfo, Program
from repro.isa.serialize import (
    program_from_dict,
    program_from_json,
    program_to_dict,
    program_to_json,
)

__all__ = [
    "ARITH_OPS",
    "CMP_OPS",
    "MEMORY_SPACES",
    "OPCODES",
    "Instruction",
    "KernelInfo",
    "Operand",
    "Program",
    "assemble",
    "build_cfg",
    "disassemble",
    "imm",
    "immediate_post_dominators",
    "preg",
    "program_from_dict",
    "program_from_json",
    "program_to_dict",
    "program_to_json",
    "reconvergence_table",
    "reg",
    "sreg",
]
