"""Programmatic kernel builder: construct programs without assembly text.

The text assembler (:mod:`repro.isa.assembler`) is the primary authoring
path, but generated kernels (sweeps, fuzzing, DSLs) are easier to build
through an API. :class:`KernelBuilder` offers one method per opcode with
Python-level operand checking and label management:

>>> b = KernelBuilder()
>>> b.kernel("main", registers=8)
>>> b.mov("r0", "SREG.tid")
>>> b.label("LOOP")
>>> b.add("r1", "r1", 1)
>>> b.setp("lt", "p0", "r1", "r0")
>>> b.bra("LOOP", pred="p0")
>>> b.exit()
>>> program = b.build()
"""

from __future__ import annotations

import re

from repro.errors import ProgramError
from repro.isa.instructions import (
    ARITH_OPS,
    CMP_OPS,
    MEMORY_SPACES,
    SPECIAL_REGISTERS,
    UNARY_OPS,
    Instruction,
    Operand,
    imm,
    preg,
    reg,
    sreg,
)
from repro.isa.program import Program


def _operand(value) -> Operand:
    """Coerce a Python value into an operand.

    Accepts :class:`Operand`, register strings (``"r4"``/``"rd4"``/
    ``"p1"``/``"SREG.tid"``), or numbers (immediates).
    """
    if isinstance(value, Operand):
        return value
    if isinstance(value, (int, float)):
        return imm(float(value))
    if isinstance(value, str):
        match = re.fullmatch(r"rd?(\d+)", value)
        if match:
            return reg(int(match.group(1)))
        match = re.fullmatch(r"p(\d+)", value)
        if match:
            return preg(int(match.group(1)))
        if value.startswith("SREG."):
            name = value[len("SREG."):]
            if name in SPECIAL_REGISTERS:
                return sreg(name)
    raise ProgramError(f"cannot interpret operand {value!r}")


def _guard(pred) -> tuple[Operand | None, bool]:
    """Parse a guard spec: None, "p0", or "!p0"."""
    if pred is None:
        return None, False
    if isinstance(pred, Operand):
        return pred, False
    negated = pred.startswith("!")
    operand = _operand(pred.lstrip("!"))
    if operand.kind != "p":
        raise ProgramError(f"guard must be a predicate, got {pred!r}")
    return operand, negated


class KernelBuilder:
    """Incrementally build a :class:`~repro.isa.program.Program`."""

    def __init__(self):
        self._program = Program()
        self._pending_kernels: list[tuple[str, dict]] = []

    # -- structure ---------------------------------------------------------

    def kernel(self, name: str, *, registers: int, state_words: int = 0,
               shared_bytes: int = 0, local_bytes: int = 0,
               const_bytes: int = 0) -> "KernelBuilder":
        """Declare a kernel entry; also places its label here."""
        self.label(name)
        self._pending_kernels.append((name, dict(
            registers=registers, state_words=state_words,
            shared_bytes=shared_bytes, local_bytes=local_bytes,
            const_bytes=const_bytes)))
        return self

    def label(self, name: str) -> "KernelBuilder":
        self._program.add_label(name)
        return self

    def build(self) -> Program:
        """Finalize: register kernels, resolve labels, validate."""
        for name, params in self._pending_kernels:
            self._program.add_kernel(name, **params)
        self._pending_kernels = []
        return self._program.finalize()

    # -- instructions ------------------------------------------------------

    def _emit(self, instruction: Instruction) -> "KernelBuilder":
        self._program.add(instruction)
        return self

    def _binary(self, op: str, dst, a, b, pred=None) -> "KernelBuilder":
        guard, negated = _guard(pred)
        return self._emit(Instruction(
            op, dst=_operand(dst), srcs=(_operand(a), _operand(b)),
            pred=guard, pred_neg=negated))

    def _unary(self, op: str, dst, a, pred=None) -> "KernelBuilder":
        guard, negated = _guard(pred)
        return self._emit(Instruction(
            op, dst=_operand(dst), srcs=(_operand(a),),
            pred=guard, pred_neg=negated))

    def setp(self, cmp: str, dst, a, b, pred=None) -> "KernelBuilder":
        if cmp not in CMP_OPS:
            raise ProgramError(f"unknown comparison {cmp!r}")
        guard, negated = _guard(pred)
        destination = _operand(dst)
        if destination.kind != "p":
            raise ProgramError("setp destination must be a predicate")
        return self._emit(Instruction(
            "setp", dst=destination, srcs=(_operand(a), _operand(b)),
            cmp=cmp, pred=guard, pred_neg=negated))

    def selp(self, dst, a, b, chooser, pred=None) -> "KernelBuilder":
        guard, negated = _guard(pred)
        chooser_op = _operand(chooser)
        if chooser_op.kind != "p":
            raise ProgramError("selp chooser must be a predicate")
        return self._emit(Instruction(
            "selp", dst=_operand(dst),
            srcs=(_operand(a), _operand(b), chooser_op),
            pred=guard, pred_neg=negated))

    def mad(self, dst, a, b, c, pred=None) -> "KernelBuilder":
        guard, negated = _guard(pred)
        return self._emit(Instruction(
            "mad", dst=_operand(dst),
            srcs=(_operand(a), _operand(b), _operand(c)),
            pred=guard, pred_neg=negated))

    def ld(self, space: str, dst, address, offset: int = 0, width: int = 1,
           pred=None) -> "KernelBuilder":
        if space not in MEMORY_SPACES:
            raise ProgramError(f"unknown memory space {space!r}")
        guard, negated = _guard(pred)
        return self._emit(Instruction(
            "ld", dst=_operand(dst), srcs=(_operand(address),),
            space=space, width=width, offset=offset,
            pred=guard, pred_neg=negated))

    def st(self, space: str, address, src, offset: int = 0, width: int = 1,
           pred=None) -> "KernelBuilder":
        if space not in MEMORY_SPACES:
            raise ProgramError(f"unknown memory space {space!r}")
        guard, negated = _guard(pred)
        return self._emit(Instruction(
            "st", srcs=(_operand(address), _operand(src)),
            space=space, width=width, offset=offset,
            pred=guard, pred_neg=negated))

    def bra(self, target: str, pred=None) -> "KernelBuilder":
        guard, negated = _guard(pred)
        return self._emit(Instruction("bra", label=target, pred=guard,
                                      pred_neg=negated))

    def spawn(self, kernel: str, pointer, pred=None) -> "KernelBuilder":
        guard, negated = _guard(pred)
        return self._emit(Instruction("spawn", label=kernel,
                                      srcs=(_operand(pointer),),
                                      pred=guard, pred_neg=negated))

    def exit(self, pred=None) -> "KernelBuilder":
        guard, negated = _guard(pred)
        return self._emit(Instruction("exit", pred=guard, pred_neg=negated))

    def nop(self) -> "KernelBuilder":
        return self._emit(Instruction("nop"))

    def bar(self) -> "KernelBuilder":
        return self._emit(Instruction("bar"))


def _install_op_methods() -> None:
    """Generate one builder method per simple arithmetic opcode."""
    def make_binary(op):
        def method(self, dst, a, b, pred=None):
            return self._binary(op, dst, a, b, pred)
        method.__name__ = op
        method.__doc__ = f"Emit `{op} dst, a, b`."
        return method

    def make_unary(op):
        def method(self, dst, a, pred=None):
            return self._unary(op, dst, a, pred)
        method.__name__ = op
        method.__doc__ = f"Emit `{op} dst, a`."
        return method

    for op in ARITH_OPS:
        if not hasattr(KernelBuilder, op):
            setattr(KernelBuilder, op, make_binary(op))
    for op in UNARY_OPS:
        if not hasattr(KernelBuilder, op):
            setattr(KernelBuilder, op, make_unary(op))


_install_op_methods()
