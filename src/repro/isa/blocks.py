"""Basic-block and straight-line-run compilation for the batched backend.

The batched executor (:mod:`repro.simt.batched`) wants to know, for every
PC, how many consecutive instructions starting there can be issued as one
deferred *run*: a maximal straight line of simple ALU operations that

- touch only warp-private state (registers, predicates, special
  registers) — no memory, control flow, spawns, or barriers — so their
  functional effects can be executed lazily, and
- contains no basic-block leader after its first instruction, so no warp
  can enter (branch target, kernel entry) or leave (reconvergence pop —
  reconvergence PCs are always block leaders) the run mid-way.

:func:`compile_blocks` partitions the flat PC space into the program's
basic blocks (reusing :func:`repro.isa.cfg.basic_block_leaders` and the
CFG validation of :func:`repro.isa.cfg.build_cfg`) and carves each block
into its maximal runs. Every instruction belongs to exactly one block,
blocks preserve program order, and every batchable instruction belongs to
exactly one maximal run — properties pinned by the hypothesis suite in
``tests/isa/test_blocks_properties.py``. Malformed programs (branches to
non-leaders, control falling off the end, empty programs) are rejected
with a typed :class:`~repro.errors.ConfigError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, ProgramError
from repro.isa.cfg import basic_block_leaders, build_cfg
from repro.isa.instructions import ARITH_OPS, UNARY_OPS
from repro.isa.program import Program

#: Opcodes the batched backend may defer into a run. Exactly the set the
#: reference executor dispatches to its simple-ALU compiler
#: (:func:`repro.simt.executor._compile_alu`): every arithmetic/unary op
#: plus mad/setp/selp/nop. All of them read and write only warp-private
#: state and always fall through to ``pc + 1``.
BATCHABLE_OPS = frozenset(ARITH_OPS) | frozenset(UNARY_OPS) | frozenset(
    ("mad", "setp", "selp", "nop"))


@dataclass(frozen=True)
class RunSpec:
    """One maximal straight-line run of batchable instructions."""

    start: int
    length: int

    @property
    def end(self) -> int:
        """PC one past the run's last instruction."""
        return self.start + self.length


@dataclass(frozen=True)
class BlockPlan:
    """One basic block: the half-open PC range [leader, end) plus the
    maximal batchable runs inside it, in program order."""

    leader: int
    end: int
    runs: tuple[RunSpec, ...]

    @property
    def pcs(self) -> range:
        return range(self.leader, self.end)


@dataclass(frozen=True)
class BlockTable:
    """Compiled block/run layout of one program.

    ``run_len[pc]`` is the number of batchable instructions in the run
    *starting at* ``pc`` (0 when ``pc`` is not batchable). Entering a run
    mid-way is legal — ``run_len`` is defined for every PC — it simply
    names a shorter run with its own batch key.
    """

    blocks: tuple[BlockPlan, ...]
    run_len: tuple[int, ...]

    @property
    def num_instructions(self) -> int:
        return len(self.run_len)


def compile_blocks(program: Program) -> BlockTable:
    """Partition ``program`` into basic blocks and their maximal runs.

    Raises :class:`~repro.errors.ConfigError` for malformed inputs: empty
    programs, branch targets that are not block leaders, or control
    falling off the end of the program (the same structural conditions
    :func:`repro.isa.cfg.build_cfg` enforces, converted to the typed
    configuration error the backend contract promises).
    """
    if len(program) == 0:
        raise ConfigError("cannot compile blocks for an empty program")
    try:
        build_cfg(program)
    except ProgramError as error:
        raise ConfigError(f"cannot compile basic blocks: {error}") from error

    size = len(program)
    leaders = basic_block_leaders(program)
    leader_set = set(leaders)

    # Maximal run length starting at each PC, computed back to front: a
    # run extends through pc+1 only when pc+1 is not a leader (nobody can
    # jump or reconverge into the middle) and is itself batchable.
    run_len = [0] * size
    for pc in range(size - 1, -1, -1):
        if program[pc].op not in BATCHABLE_OPS:
            continue
        following = pc + 1
        if (following < size and following not in leader_set
                and run_len[following]):
            run_len[pc] = run_len[following] + 1
        else:
            run_len[pc] = 1

    blocks = []
    for index, leader in enumerate(leaders):
        end = leaders[index + 1] if index + 1 < len(leaders) else size
        runs = []
        pc = leader
        while pc < end:
            length = run_len[pc]
            if length:
                runs.append(RunSpec(start=pc, length=length))
                pc += length
            else:
                pc += 1
        blocks.append(BlockPlan(leader=leader, end=end, runs=tuple(runs)))

    return BlockTable(blocks=tuple(blocks), run_len=tuple(run_len))
