"""Simulator machine configuration (paper Table I) and presets.

The paper configures a modified GPGPU-Sim to resemble an NVIDIA Quadro
FX5800: 30 processor cores (SMs), 32-thread warps, 8 stream processors per
warp, 1024 threads and 8 thread blocks per SM, 16384 registers per SM, 64 KB
of on-chip memory, a 1024-byte spawn LUT, and 8 memory modules moving
8 bytes/cycle each with no L1/L2 caching.

Because the paper's SMs are fully independent (no inter-SM communication),
the reproduction exposes *presets* that simulate fewer SMs and scale the
memory partition proportionally; rays/s results are normalized back to the
30-SM machine by :mod:`repro.harness.runner`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import ConfigError, did_you_mean

#: Bytes per simulated memory word. Ray data is 32-bit floats/ints on the
#: paper's hardware, so one word of our functional memory models 4 bytes.
BYTES_PER_WORD = 4

#: Bytes per DRAM transaction segment (coalescing granularity). The
#: FX5800's GT200 memory system issues 32-byte minimum transactions for
#: scattered accesses; adjacent segments still merge via coalescing.
SEGMENT_BYTES = 32

#: Valid :attr:`GPUConfig.executor` backend names. ``reference`` is the
#: per-warp interpreter of :mod:`repro.simt.executor`; ``batched`` is the
#: structure-of-arrays backend of :mod:`repro.simt.batched`, which defers
#: straight-line ALU runs and executes them across all enqueued warps of
#: all SMs in one set of numpy array operations. The two backends are
#: bit-identical for every statistic (see docs/architecture.md).
EXECUTORS = ("reference", "batched")

#: Valid :attr:`GPUConfig.scheduler` implementation names. ``scan`` is
#: the reference per-cycle scheduler: every cycle each SM linearly scans
#: its warp list round-robin for the first issue-eligible warp.
#: ``calendar`` is the event-driven scheduler of the same policy: each SM
#: keeps an eligibility bitmask plus a ``ready_at`` wake-bucket calendar
#: maintained incrementally on every status/``ready_at`` transition (O(1)
#: pick), and the multi-SM run loop keeps a min-heap of per-SM next-wake
#: cycles so only SMs that can act are stepped. The two schedulers are
#: bit-identical for every statistic (see docs/architecture.md).
SCHEDULERS = ("scan", "calendar")


@dataclass(frozen=True)
class MemoryConfig:
    """Off-chip memory partition configuration."""

    num_modules: int = 8
    bandwidth_bytes_per_cycle: int = 8
    latency_cycles: int = 220
    segment_bytes: int = SEGMENT_BYTES
    ideal: bool = False
    """When True, every access completes with zero latency and infinite
    bandwidth (the paper's *ideal memory system* used for Figure 10)."""

    def validate(self) -> None:
        if self.num_modules <= 0:
            raise ConfigError("num_modules must be positive")
        if self.bandwidth_bytes_per_cycle <= 0:
            raise ConfigError("bandwidth_bytes_per_cycle must be positive")
        if self.latency_cycles < 0:
            raise ConfigError("latency_cycles must be non-negative")
        if self.segment_bytes <= 0 or self.segment_bytes % BYTES_PER_WORD:
            raise ConfigError("segment_bytes must be a positive word multiple")


@dataclass(frozen=True)
class SpawnConfig:
    """Dynamic µ-kernel (spawn) hardware configuration."""

    enabled: bool = False
    lut_bytes: int = 1024
    bank_conflicts: bool = False
    """Model spawn-memory bank conflicts (paper Figure 9). When False the
    paper's conflict-free assumption (Figure 7) applies."""
    num_banks: int = 16
    flush_partial_warps: bool = True
    """Force incomplete warps out of the partial-warp pool when the
    scheduler has nothing else to run (paper end-of-application behaviour)."""
    spawn_when_uniform: bool = True
    """Naïve spawning from the paper: spawn on every loop iteration even when
    the whole warp agrees. Setting this False enables the paper's stated
    future-work optimization (branch when the warp is uniform)."""

    def validate(self) -> None:
        if self.lut_bytes <= 0:
            raise ConfigError("lut_bytes must be positive")
        if self.num_banks <= 0:
            raise ConfigError("num_banks must be positive")


class SchedulingModel:
    """Thread scheduling model names (paper §VI)."""

    BLOCK = "block"
    """FX5800-like: a thread block is scheduled only when resources exist for
    the entire block; supports intra-block synchronization."""

    WARP = "warp"
    """Thread scheduling: ignores block granularity and schedules as many
    warps as other resources allow. Required for dynamic µ-kernels."""

    ALL = (BLOCK, WARP)


@dataclass(frozen=True)
class GPUConfig:
    """Full machine configuration (paper Table I)."""

    num_sms: int = 30
    warp_size: int = 32
    sps_per_sm: int = 8
    max_threads_per_sm: int = 1024
    max_blocks_per_sm: int = 8
    registers_per_sm: int = 16384
    onchip_memory_bytes: int = 64 * 1024
    clock_ghz: float = 1.3
    alu_latency: int = 6
    """Cycles until the next instruction from the same warp can issue after
    an ALU op. Real SIMT pipelines hide most ALU latency with result
    forwarding and instruction-level parallelism inside a thread; a small
    value models that without tracking per-register dependences."""
    onchip_latency: int = 12
    """Latency of shared/spawn/constant-memory accesses (on-chip)."""
    scheduling: str = SchedulingModel.WARP
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    spawn: SpawnConfig = field(default_factory=SpawnConfig)
    max_cycles: int = 300_000
    divergence_sample_interval: int = 1
    """Issue-granularity sampling interval for divergence breakdowns."""
    fast_forward: bool = True
    """Event-driven clock advance: when no SM can issue, jump straight to
    the next event time (earliest warp ``ready_at``, memory completion, or
    stall expiry) instead of ticking idle cycles one by one. The skipped
    span is credited to the idle/stall counters exactly as the cycle-by-
    cycle loop would, so all reported statistics are bit-identical to
    ``fast_forward=False`` (the *exact* mode); the differential test suite
    enforces this equivalence for every execution model."""
    executor: str = "reference"
    """Instruction-execution backend (see :data:`EXECUTORS`). The default
    ``reference`` interprets one warp instruction per issue; ``batched``
    compiles straight-line µ-kernel runs (via :mod:`repro.isa.blocks`)
    into structure-of-arrays numpy kernels executed across every enqueued
    warp of every SM at once. Both backends produce bit-identical
    :class:`~repro.simt.gpu.RunStats` and probe intervals; the batched
    backend only trades Python dispatch for array width."""
    scheduler: str = "scan"
    """Warp-scheduler implementation (see :data:`SCHEDULERS`). The default
    ``scan`` re-scans the warp list round-robin every cycle (the reference
    policy); ``calendar`` keeps the identical round-robin pick order in an
    eligibility bitmask fed by a ``ready_at`` wake calendar, and — with
    ``fast_forward`` on a multi-SM machine — drives the run loop from a
    min-heap of per-SM wake cycles so idle SMs are skipped even while
    other SMs are busy. Both schedulers produce bit-identical
    :class:`~repro.simt.gpu.RunStats` and probe intervals; the calendar
    scheduler only removes per-cycle bookkeeping work."""

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.num_sms <= 0:
            raise ConfigError("num_sms must be positive")
        if self.warp_size <= 0:
            raise ConfigError("warp_size must be positive")
        if self.sps_per_sm <= 0:
            raise ConfigError("sps_per_sm must be positive")
        if self.warp_size % self.sps_per_sm:
            raise ConfigError("warp_size must be a multiple of sps_per_sm")
        if self.max_threads_per_sm % self.warp_size:
            raise ConfigError("max_threads_per_sm must be a warp multiple")
        if self.max_blocks_per_sm <= 0:
            raise ConfigError("max_blocks_per_sm must be positive")
        if self.registers_per_sm <= 0:
            raise ConfigError("registers_per_sm must be positive")
        if self.scheduling not in SchedulingModel.ALL:
            raise ConfigError(f"unknown scheduling model {self.scheduling!r}")
        if self.clock_ghz <= 0:
            raise ConfigError("clock_ghz must be positive")
        if self.max_cycles <= 0:
            raise ConfigError("max_cycles must be positive")
        if self.executor not in EXECUTORS:
            raise ConfigError(
                f"unknown executor backend {self.executor!r}."
                f"{did_you_mean(self.executor, EXECUTORS)}")
        if self.scheduler not in SCHEDULERS:
            raise ConfigError(
                f"unknown scheduler {self.scheduler!r}."
                f"{did_you_mean(self.scheduler, SCHEDULERS)}")
        self.memory.validate()
        self.spawn.validate()

    @property
    def warps_per_sm_limit(self) -> int:
        """Hard warp-slot limit from the thread-count resource."""
        return self.max_threads_per_sm // self.warp_size

    @property
    def peak_ipc(self) -> int:
        """Peak thread-instructions per cycle for the whole machine.

        One warp instruction issues per SM per cycle, so the peak equals
        ``num_sms * warp_size`` (960 for the paper's Table I machine, which
        is consistent with the reported IPC scale of 326–615).
        """
        return self.num_sms * self.warp_size

    def replace(self, **changes) -> "GPUConfig":
        """Return a copy with ``changes`` applied (nested fields included).

        ``memory_<field>`` and ``spawn_<field>`` shorthand keys update the
        nested configs, e.g. ``cfg.replace(memory_ideal=True)``. Unknown
        keys raise :class:`ConfigError` with a close-match suggestion, and
        a whole nested config (``memory=...``) cannot be combined with its
        shorthand keys (``memory_*``) in one call — the merge order would
        be ambiguous.
        """
        own = {f.name for f in dataclasses.fields(self)}
        memory_fields = {f.name for f in dataclasses.fields(self.memory)}
        spawn_fields = {f.name for f in dataclasses.fields(self.spawn)}
        memory_changes = {}
        spawn_changes = {}
        plain = {}
        for key, value in changes.items():
            if key in own:
                plain[key] = value
            elif (key.startswith("memory_")
                    and key[len("memory_"):] in memory_fields):
                memory_changes[key[len("memory_"):]] = value
            elif (key.startswith("spawn_")
                    and key[len("spawn_"):] in spawn_fields):
                spawn_changes[key[len("spawn_"):]] = value
            else:
                valid = (own
                         | {f"memory_{name}" for name in memory_fields}
                         | {f"spawn_{name}" for name in spawn_fields})
                raise ConfigError(f"unknown GPUConfig option {key!r}."
                                  f"{did_you_mean(key, valid)}")
        if memory_changes:
            if "memory" in plain:
                raise ConfigError("pass either memory=... or memory_* "
                                  "shorthand overrides, not both")
            plain["memory"] = dataclasses.replace(self.memory, **memory_changes)
        if spawn_changes:
            if "spawn" in plain:
                raise ConfigError("pass either spawn=... or spawn_* "
                                  "shorthand overrides, not both")
            plain["spawn"] = dataclasses.replace(self.spawn, **spawn_changes)
        return dataclasses.replace(self, **plain)

    def to_dict(self) -> dict:
        """JSON-compatible mapping of every field, nested configs inline.

        The inverse is :meth:`from_dict`; :meth:`repro.simt.gpu.RunStats.
        to_dict` embeds this document so serialized results carry their
        full machine configuration.
        """
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "GPUConfig":
        data = dict(data)
        memory = MemoryConfig(**data.pop("memory"))
        spawn = SpawnConfig(**data.pop("spawn"))
        return GPUConfig(memory=memory, spawn=spawn, **data)

    def table1_rows(self) -> list[tuple[str, str]]:
        """Rows of paper Table I for this configuration."""
        caching = "None"  # the paper simulates without L1/L2 caches
        return [
            ("Processor Cores", str(self.num_sms)),
            ("Warp Size", str(self.warp_size)),
            ("Stream Processors per Warp", str(self.sps_per_sm)),
            ("Threads / Processor Core", str(self.max_threads_per_sm)),
            ("Thread Blocks / Processor Core", str(self.max_blocks_per_sm)),
            ("Registers / Processor Core", str(self.registers_per_sm)),
            ("On-chip Memory / Processor Core",
             f"{self.onchip_memory_bytes // 1024} KB"),
            ("Spawn LUT Size / Processor Core",
             f"{self.spawn.lut_bytes} Bytes"),
            ("Memory Modules", str(self.memory.num_modules)),
            ("Bandwidth per Memory Module",
             f"{self.memory.bandwidth_bytes_per_cycle} Bytes/Cycle"),
            ("L1 and L2 Memory Caching", caching),
        ]


def paper_config(**overrides) -> GPUConfig:
    """The exact Table I machine (30 SMs)."""
    return GPUConfig().replace(**overrides) if overrides else GPUConfig()


def scaled_config(num_sms: int, **overrides) -> GPUConfig:
    """A Table I machine scaled down to ``num_sms`` SMs.

    The full 8-module memory partition is kept regardless of SM count:
    module-level parallelism, not aggregate bandwidth, sets the service
    rate for the scattered accesses that dominate ray tracing, and the
    paper's own result is that performance is bound by control flow rather
    than memory bandwidth (its PDOM numbers do not improve under an ideal
    memory system). Scaling the partition down with the SM count would put
    the scaled machine in a bandwidth-bound regime the paper's machine is
    not in; see DESIGN.md.
    """
    if num_sms <= 0:
        raise ConfigError("num_sms must be positive")
    cfg = GPUConfig().replace(num_sms=num_sms)
    return cfg.replace(**overrides) if overrides else cfg
