"""Generative differential conformance testing for the SIMT models.

A seeded random µ-kernel program generator (:mod:`repro.fuzz.generator`)
produces small programs with data-dependent loops, predicated branches,
multi-target spawns, shared/banked memory traffic, and barriers. Each
program is executed on a scalar MIMD reference interpreter
(:mod:`repro.fuzz.reference`) and on the SIMT execution models; the
oracle (:mod:`repro.fuzz.oracle`) asserts functional equivalence of the
final memory images and register files, metamorphic invariance across
warp size / scheduler order / clock mode, and the structural counter
identities of :mod:`repro.obs.invariants`. Failing cases are reduced by
:mod:`repro.fuzz.shrink` and persisted to a JSON regression corpus
(:mod:`repro.fuzz.corpus`) that the test suite replays.

Entry points: ``repro fuzz`` on the command line, or
:func:`repro.fuzz.run_fuzz` / :func:`repro.fuzz.run_case` from Python.
"""

from repro.fuzz.corpus import (
    CASE_SCHEMA,
    case_from_dict,
    case_from_json,
    case_to_dict,
    case_to_json,
    load_case,
    load_corpus,
    save_case,
)
from repro.fuzz.generator import CASE_KINDS, Case, make_case
from repro.fuzz.oracle import (
    FUZZ_BACKENDS,
    FUZZ_MODELS,
    FUZZ_SCHEDULERS,
    CaseResult,
    FuzzReport,
    models_for,
    run_case,
    run_fuzz,
    run_model,
)
from repro.fuzz.reference import ReferenceLimitError, run_reference
from repro.fuzz.shrink import shrink_case

__all__ = [
    "CASE_KINDS",
    "CASE_SCHEMA",
    "FUZZ_BACKENDS",
    "FUZZ_MODELS",
    "FUZZ_SCHEDULERS",
    "Case",
    "CaseResult",
    "FuzzReport",
    "ReferenceLimitError",
    "case_from_dict",
    "case_from_json",
    "case_to_dict",
    "case_to_json",
    "load_case",
    "load_corpus",
    "make_case",
    "models_for",
    "run_case",
    "run_fuzz",
    "run_model",
    "run_reference",
    "save_case",
    "shrink_case",
]
