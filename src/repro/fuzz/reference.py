"""Scalar MIMD reference interpreter for generated programs.

Each thread runs to completion one instruction at a time with **no**
lockstep constraint — this is the semantics every SIMT model must agree
with. Arithmetic reuses the executor's own op tables
(:data:`repro.simt.executor._BINARY_OPS` etc.) applied to ``np.float64``
scalars, so results are bit-identical to the lane-vectorized path
(including NaN propagation and the int64 casts of the bitwise ops).

Spawns are executed as a FIFO work queue: a ``spawn`` enqueues
``(kernel, formation_cell)`` where the freshly allocated formation cell
holds the state pointer, exactly mirroring the hardware spawn unit's
data-passing protocol (the *addresses* differ from any SIMT model's —
which is why the oracle never compares pointer-carrying state).
Barriers are executed per block: every non-exited thread of a block runs
until it passes a ``bar`` (or exits), then the block proceeds.

Runaway programs (possible only for shrinker-mutated candidates — the
generator bounds all loops and spawn chains) hit a step cap and raise
:class:`ReferenceLimitError`, which callers treat as "case invalid",
never as a divergence.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, ExecutionError, MemoryError_, ReproError
from repro.simt.executor import _BINARY_OPS, _COMPARES, _UNARY_OPS
from repro.simt.warp import NUM_PREDICATES

#: Shared/on-chip words, matching ``onchip_memory_bytes // 4`` of the
#: Table I machine every oracle run uses.
ONCHIP_WORDS = 65536 // 4

MAX_STEPS_PER_THREAD = 20_000
MAX_TOTAL_STEPS = 2_000_000


class ReferenceLimitError(ReproError):
    """The reference interpreter hit a step cap (case is invalid)."""


@dataclass
class ReferenceResult:
    """Final architectural state of the reference execution."""

    global_mem: np.ndarray
    shared_mem: np.ndarray
    exit_state: dict[int, tuple[np.ndarray, np.ndarray]]
    threads_spawned: int
    total_steps: int


class _Thread:
    __slots__ = ("tid", "pc", "regs", "preds", "spawn_addr", "steps")

    def __init__(self, tid: int, pc: int, num_regs: int, spawn_addr: int):
        self.tid = tid
        self.pc = pc
        self.regs = np.zeros(num_regs, dtype=np.float64)
        self.preds = np.zeros(NUM_PREDICATES, dtype=bool)
        self.spawn_addr = spawn_addr
        self.steps = 0


class _Interpreter:
    def __init__(self, case):
        self.program = case.program
        self.num_regs = case.program.max_register_index() + 1
        self.global_mem = np.zeros(case.global_words, dtype=np.float64)
        inputs = np.asarray(case.inputs, dtype=np.float64)
        self.global_mem[case.input_base:case.input_base + inputs.size] = inputs
        self.const_mem = np.asarray(case.const, dtype=np.float64)
        self.shared_mem = np.zeros(ONCHIP_WORDS, dtype=np.float64)
        self.spawn_mem = np.zeros(
            max(64, case.num_threads * max(case.state_words, 1) + 64),
            dtype=np.float64)
        self.state_words = case.state_words
        self.queue: deque[tuple[str, int]] = deque()
        self.next_formation = case.num_threads * case.state_words
        self.threads_spawned = 0
        self.total_steps = 0

    # -- memory ------------------------------------------------------------

    def _spawn_slot(self, address: int) -> int:
        if address < 0:
            raise MemoryError_(f"negative spawn-memory address {address}")
        if address >= self.spawn_mem.size:
            grown = np.zeros(max(self.spawn_mem.size * 2, address + 64),
                             dtype=np.float64)
            grown[:self.spawn_mem.size] = self.spawn_mem
            self.spawn_mem = grown
        return address

    def _space_array(self, space: str, address: int) -> np.ndarray:
        if space in ("global", "local"):
            array = self.global_mem
        elif space == "const":
            array = self.const_mem
        elif space == "shared":
            array = self.shared_mem
        elif space == "spawn":
            return self.spawn_mem[self._spawn_slot(address):]
        else:
            raise ExecutionError(f"unknown memory space {space!r}")
        if not 0 <= address < array.size:
            raise MemoryError_(
                f"reference: {space} address {address} outside "
                f"[0, {array.size})")
        return array[address:]

    # -- execution ---------------------------------------------------------

    def _fetch(self, thread: _Thread, operand) -> np.float64:
        kind = operand.kind
        if kind == "r":
            return thread.regs[operand.value]
        if kind == "imm":
            return np.float64(operand.value)
        if kind == "p":
            return np.float64(thread.preds[operand.value])
        name = operand.value
        if name == "tid":
            return np.float64(thread.tid)
        if name == "spawnMemAddr":
            return np.float64(thread.spawn_addr)
        raise ExecutionError(
            f"reference does not model SREG.{name} (its value is "
            f"model-dependent)")

    def _store_result(self, thread: _Thread, dst, value) -> None:
        if dst.kind == "p":
            thread.preds[dst.value] = bool(value != 0.0)
        else:
            thread.regs[dst.value] = np.float64(value)

    def step(self, thread: _Thread) -> str:
        """Execute one instruction; returns 'run', 'bar', or 'exit'."""
        thread.steps += 1
        self.total_steps += 1
        if (thread.steps > MAX_STEPS_PER_THREAD
                or self.total_steps > MAX_TOTAL_STEPS):
            raise ReferenceLimitError(
                f"reference step cap exceeded at pc={thread.pc} "
                f"(tid={thread.tid})")
        inst = self.program[thread.pc]
        op = inst.op
        guarded = True
        if inst.pred is not None:
            value = bool(thread.preds[inst.pred.value])
            guarded = (not value) if inst.pred_neg else value
        if op == "bra":
            thread.pc = inst.target if guarded else thread.pc + 1
            return "run"
        if op == "exit":
            if guarded:
                return "exit"
            thread.pc += 1
            return "run"
        if op == "bar":
            thread.pc += 1
            return "bar"
        if op == "nop" or not guarded:
            thread.pc += 1
            return "run"
        if op == "spawn":
            pointer = int(np.int64(thread.regs[inst.srcs[0].value]))
            cell = self._spawn_slot(self.next_formation)
            self.next_formation += 1
            self.spawn_mem[cell] = float(pointer)
            self.queue.append((inst.label, cell))
            self.threads_spawned += 1
            thread.pc += 1
            return "run"
        if op in ("ld", "st"):
            self._memory(thread, inst)
            thread.pc += 1
            return "run"
        if op == "setp":
            a = self._fetch(thread, inst.srcs[0])
            b = self._fetch(thread, inst.srcs[1])
            thread.preds[inst.dst.value] = bool(_COMPARES[inst.cmp](a, b))
        elif op == "selp":
            chooser = bool(thread.preds[inst.srcs[2].value])
            picked = inst.srcs[0] if chooser else inst.srcs[1]
            self._store_result(thread, inst.dst,
                               self._fetch(thread, picked))
        elif op == "mad":
            a = self._fetch(thread, inst.srcs[0])
            b = self._fetch(thread, inst.srcs[1])
            c = self._fetch(thread, inst.srcs[2])
            self._store_result(thread, inst.dst, a * b + c)
        elif len(inst.srcs) == 2:
            fn = _BINARY_OPS.get(op)
            if fn is None:
                raise ExecutionError(f"reference: unhandled binary {op!r}")
            self._store_result(
                thread, inst.dst, fn(self._fetch(thread, inst.srcs[0]),
                                     self._fetch(thread, inst.srcs[1])))
        else:
            fn = _UNARY_OPS.get(op)
            if fn is None:
                raise ExecutionError(f"reference: unhandled op {op!r}")
            self._store_result(
                thread, inst.dst, fn(self._fetch(thread, inst.srcs[0])))
        thread.pc += 1
        return "run"

    def _memory(self, thread: _Thread, inst) -> None:
        base = int(np.int64(thread.regs[inst.srcs[0].value])
                   if inst.srcs[0].kind != "imm"
                   else np.int64(np.float64(inst.srcs[0].value)))
        address = base + inst.offset
        if inst.op == "st":
            if inst.space == "const":
                raise ExecutionError("constant memory is read-only")
            src = inst.srcs[1]
            for word in range(inst.width):
                value = (np.float64(src.value) if src.kind == "imm"
                         else thread.regs[src.value + word])
                window = self._space_array(inst.space, address + word)
                window[0] = value
        else:
            for word in range(inst.width):
                window = self._space_array(inst.space, address + word)
                thread.regs[inst.dst.value + word] = window[0]

    def run_until_break(self, thread: _Thread) -> str:
        with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
            while True:
                status = self.step(thread)
                if status != "run":
                    return status


def run_reference(case) -> ReferenceResult:
    """Run ``case`` on the scalar reference machine.

    Raises :class:`ReferenceLimitError` when a step cap trips and
    :class:`~repro.errors.MemoryError_` on out-of-range accesses — both
    mean the *case* is unusable, not that a model diverged.
    """
    if case.num_threads <= 0:
        raise ConfigError("reference run needs at least one thread; "
                          f"got num_threads={case.num_threads}")
    if case.block_size <= 0:
        raise ConfigError("reference run needs a positive block_size; "
                          f"got {case.block_size}")
    interp = _Interpreter(case)
    entry_pc = case.program.kernels[case.entry].entry_pc
    exit_state: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    for block_start in range(0, case.num_threads, case.block_size):
        block_end = min(block_start + case.block_size, case.num_threads)
        alive = []
        for tid in range(block_start, block_end):
            slot = tid * case.state_words if case.state_words else -1
            alive.append(_Thread(tid, entry_pc, interp.num_regs, slot))
        while alive:
            waiting = []
            for thread in alive:
                status = interp.run_until_break(thread)
                if status == "bar":
                    waiting.append(thread)
                else:
                    exit_state[thread.tid] = (thread.regs.copy(),
                                              thread.preds.copy())
            alive = waiting  # all at-barrier threads resume together

    dynamic_id = 0
    while interp.queue:
        kernel, cell = interp.queue.popleft()
        dynamic_id += 1
        thread = _Thread(-dynamic_id,
                         case.program.kernels[kernel].entry_pc,
                         interp.num_regs, cell)
        status = interp.run_until_break(thread)
        if status != "exit":
            raise ExecutionError("reference: dynamic thread hit a barrier")

    return ReferenceResult(
        global_mem=interp.global_mem, shared_mem=interp.shared_mem,
        exit_state=exit_state, threads_spawned=interp.threads_spawned,
        total_steps=interp.total_steps)
