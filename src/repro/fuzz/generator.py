"""Seeded random µ-kernel program generator.

Programs are built with :class:`repro.isa.builder.KernelBuilder` under a
discipline that makes them *deterministic across execution models and
schedules*, so the differential oracle can demand exact equality:

- Registers are partitioned into an **integer class** (thread ids, small
  immediates, input-table loads; ops restricted to add/sub/min/max and
  bitwise and/or/xor, wrapped with ``rem`` immediately before use as an
  address index or loop bound) and a **float class** (arbitrary values
  including NaN/inf; no bitwise/shift/``rem``/``cvt`` ops, whose
  float→int64 casts are undefined for non-finite values).
- Global memory is a read-only input table plus a private per-thread
  scratch/output strip (``out_base + tid*out_stride + k``); shared memory
  is private per-thread cells, except in barrier programs where
  cross-thread reads only happen *after* a ``bar`` within one block.
- Spawn programs follow the state-passing protocol of
  :mod:`repro.kernels.microkernels`: the parent stores a hop counter, its
  ray id, and data words through ``SREG.spawnMemAddr``, then spawns;
  children load the state, compute, write their output at the *ray id's*
  strip (never at a pointer-derived address — spawn-memory addresses are
  model-specific), decrement the counter, and conditionally re-spawn.
- Only ``SREG.tid`` / ``SREG.spawnMemAddr`` are read (``SREG.ntid``
  would break warp-size metamorphism); no atomics.

All randomness flows from one :class:`numpy.random.Generator` derived
from the case seed, so a case is reproducible from ``(seed, kind)``
alone; the serialized corpus nevertheless stores the full program.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.builder import KernelBuilder
from repro.isa.program import Program

#: Program shapes the generator emits. "roulette" is a plain-model program
#: wrapped in a data-dependent termination loop shaped like the path
#: tracer's russian roulette: an exact integer LCG draws a uniform each
#: iteration and the thread keeps looping while ``u < q`` under an
#: iteration cap, so warp-mates retire from the loop at seed-dependent,
#: divergent trip counts.
CASE_KINDS = ("plain", "spawn", "barrier", "roulette")

#: Park–Miller constants for the roulette kind (exact in float64: the
#: state stays below 2**31, the product below 2**47).
_LCG_MODULUS = 2147483647.0
_LCG_MULTIPLIER = 48271.0

# Fixed register map (class discipline, see module docstring).
_R_TID = "r0"
_INT_REGS = ("r1", "r2", "r3")
_FLOAT_REGS = ("r4", "r5", "r6", "r7")
_R_ADDR = "r8"   # address scratch (always freshly computed before use)
_R_T0 = "r9"     # barrier neighbour / selector scratch
_R_T1 = "r10"    # loop counter / selector scratch
_R_COUNT = "r11"  # spawn hop counter
_R_PTR = "r12"   # spawn state pointer
_R_TMP = "r13"   # SREG.spawnMemAddr landing register
_NUM_REGISTERS = 16
_PREDS = ("p1", "p2", "p3")

_INT_OPS = ("add", "sub", "min", "max", "and", "or", "xor")
_FLOAT_BINOPS = ("add", "sub", "mul", "div", "min", "max")
_FLOAT_UNOPS = ("neg", "abs", "sqrt", "rsqrt", "rcp", "floor")
_CMPS = ("lt", "le", "gt", "ge", "eq", "ne")
_SPECIAL_FLOATS = (0.0, -0.0, 1.0, float("nan"), float("inf"), float("-inf"))


@dataclass
class Case:
    """One generated conformance-test case (program + workload layout)."""

    seed: int
    kind: str
    num_threads: int
    block_size: int
    registers: int
    state_words: int
    entry: str
    input_base: int
    num_inputs: int
    out_base: int
    out_stride: int
    shared_cells: int
    global_words: int
    inputs: list[int]
    const: list[float]
    program: Program

    def describe(self) -> str:
        return (f"case(seed={self.seed}, kind={self.kind}, "
                f"threads={self.num_threads}, block={self.block_size}, "
                f"instructions={len(self.program)})")


class _Gen:
    """Emission state for one case (builder + rng + layout)."""

    def __init__(self, rng: np.random.Generator, builder: KernelBuilder,
                 num_inputs: int, out_base: int, out_stride: int,
                 shared_cells: int):
        self.rng = rng
        self.b = builder
        self.num_inputs = num_inputs
        self.out_base = out_base
        self.out_stride = out_stride
        self.shared_cells = shared_cells
        self._labels = 0

    # -- small helpers -----------------------------------------------------

    def label(self) -> str:
        self._labels += 1
        return f"L{self._labels}"

    def pick(self, options):
        return options[int(self.rng.integers(len(options)))]

    def ri(self) -> str:
        return self.pick(_INT_REGS)

    def rf(self) -> str:
        return self.pick(_FLOAT_REGS)

    def pred(self) -> str:
        return self.pick(_PREDS)

    def float_imm(self) -> float:
        if self.rng.random() < 0.12:
            return self.pick(_SPECIAL_FLOATS)
        return float(np.round(self.rng.uniform(-8.0, 8.0), 3))

    # -- reusable fragments ------------------------------------------------

    def load_input(self, dst: str, index_src: str) -> None:
        """``dst = inputs[index_src mod num_inputs]`` (data-dependent)."""
        self.b.rem(_R_ADDR, index_src, float(self.num_inputs))
        self.b.ld("global", dst, _R_ADDR)

    def init_registers(self, *, tid_reg: str = _R_TID,
                       with_tid_mov: bool = True,
                       ints_only: bool = False) -> None:
        if with_tid_mov:
            self.b.mov(tid_reg, "SREG.tid")
        for reg in _INT_REGS:
            choice = self.rng.random()
            if choice < 0.4:
                self.b.add(reg, tid_reg, float(int(self.rng.integers(0, 8))))
            elif choice < 0.7:
                self.b.mov(reg, float(int(self.rng.integers(0, 16))))
            else:
                self.load_input(reg, tid_reg)
        if ints_only:
            return
        for reg in _FLOAT_REGS:
            choice = self.rng.random()
            if choice < 0.35:
                # The executor's memory path needs a register address, so
                # data-dependent constant reads go through r8.
                self.b.rem(_R_ADDR, self.pick(_INT_REGS), 8.0)
                self.b.ld("const", reg, _R_ADDR)
            elif choice < 0.7:
                self.b.mov(reg, self.float_imm())
            else:
                self.b.mul(reg, self.pick(_INT_REGS), self.float_imm())

    def own_output_address(self, tid_reg: str, slot: int) -> None:
        """``r8 = out_base + tid_reg*out_stride + slot``."""
        self.b.mad(_R_ADDR, tid_reg, float(self.out_stride),
                   float(self.out_base + slot))

    def epilogue(self, tid_reg: str = _R_TID) -> None:
        values = _FLOAT_REGS + _INT_REGS
        for slot in range(self.out_stride):
            self.own_output_address(tid_reg, slot)
            self.b.st("global", _R_ADDR, self.pick(values))
        self.b.exit()

    # -- straight-line / structured segments -------------------------------

    def segment(self, depth: int, *, in_loop: bool,
                allow_exit: bool) -> None:
        roll = self.rng.random()
        if roll < 0.16:
            op = self.pick(_INT_OPS)
            rhs = (self.ri() if self.rng.random() < 0.7
                   else float(int(self.rng.integers(0, 32))))
            getattr(self.b, op)(self.ri(), self.ri(), rhs)
        elif roll < 0.38:
            self.float_op()
        elif roll < 0.50:
            lhs, rhs = ((self.ri(), self.ri())
                        if self.rng.random() < 0.5
                        else (self.rf(), self.float_imm()))
            self.b.setp(self.pick(_CMPS), self.pred(), lhs, rhs)
        elif roll < 0.58:
            self.load_input(self.ri(), self.ri())
        elif roll < 0.68 and self.shared_cells:
            cell = int(self.rng.integers(self.shared_cells))
            self.b.mad(_R_ADDR, _R_TID, float(self.shared_cells),
                       float(cell))
            if self.rng.random() < 0.5:
                self.b.st("shared", _R_ADDR, self.rf())
            else:
                self.b.ld("shared", self.rf(), _R_ADDR)
        elif roll < 0.76:
            slot = int(self.rng.integers(self.out_stride))
            self.own_output_address(_R_TID, slot)
            if self.rng.random() < 0.5:
                self.b.st("global", _R_ADDR, self.pick(_FLOAT_REGS))
            else:
                self.b.ld("global", self.rf(), _R_ADDR)
        elif roll < 0.88 and depth < 2:
            self.diamond(depth, in_loop=in_loop, allow_exit=allow_exit)
        elif roll < 0.95 and depth == 0 and not in_loop:
            self.loop(depth)
        elif allow_exit and depth == 0 and self.rng.random() < 0.3:
            self.b.setp(self.pick(_CMPS), "p2", self.ri(),
                        float(int(self.rng.integers(1, 48))))
            self.b.exit(pred="p2")
        else:
            self.float_op()

    def float_op(self) -> None:
        guard = None
        if self.rng.random() < 0.25:
            guard = self.pred()
            if self.rng.random() < 0.5:
                guard = "!" + guard
        roll = self.rng.random()
        if roll < 0.45:
            rhs = self.rf() if self.rng.random() < 0.7 else self.float_imm()
            getattr(self.b, self.pick(_FLOAT_BINOPS))(self.rf(), self.rf(),
                                                      rhs, pred=guard)
        elif roll < 0.7:
            getattr(self.b, self.pick(_FLOAT_UNOPS))(self.rf(), self.rf(),
                                                     pred=guard)
        elif roll < 0.85:
            self.b.mad(self.rf(), self.rf(), self.rf(), self.rf(),
                       pred=guard)
        else:
            self.b.selp(self.rf(), self.rf(), self.float_imm(), self.pred(),
                        pred=guard)

    def diamond(self, depth: int, *, in_loop: bool, allow_exit: bool) -> None:
        """A structured if/else that reconverges before continuing."""
        else_label, end_label = self.label(), self.label()
        pred = self.pred()
        lhs, rhs = ((self.ri(), float(int(self.rng.integers(0, 24))))
                    if self.rng.random() < 0.6
                    else (self.rf(), self.float_imm()))
        self.b.setp(self.pick(_CMPS), pred, lhs, rhs)
        self.b.bra(else_label, pred="!" + pred)
        for _ in range(int(self.rng.integers(1, 3))):
            self.segment(depth + 1, in_loop=in_loop, allow_exit=False)
        self.b.bra(end_label)
        self.b.label(else_label)
        for _ in range(int(self.rng.integers(0, 3))):
            self.segment(depth + 1, in_loop=in_loop, allow_exit=False)
        self.b.label(end_label)

    def loop(self, depth: int) -> None:
        """A data-dependent loop: 1..bound iterations from an int reg."""
        bound = int(self.rng.integers(2, 5))
        top = self.label()
        self.b.rem(_R_T1, self.ri(), float(bound))
        self.b.add(_R_T1, _R_T1, 1.0)
        self.b.label(top)
        for _ in range(int(self.rng.integers(1, 3))):
            self.segment(depth + 1, in_loop=True, allow_exit=False)
        self.b.sub(_R_T1, _R_T1, 1.0)
        self.b.setp("gt", "p3", _R_T1, 0.0)
        self.b.bra(top, pred="p3")


def _emit_plain(gen: _Gen) -> None:
    gen.b.kernel("main", registers=_NUM_REGISTERS)
    gen.init_registers()
    for _ in range(int(gen.rng.integers(3, 9))):
        gen.segment(0, in_loop=False, allow_exit=True)
    gen.epilogue()


def _emit_roulette(gen: _Gen) -> None:
    """A data-dependent-depth loop shaped like roulette termination.

    The loop body is ordinary generated code; the continuation decision is
    an exact Park–Miller draw per iteration (state in ``_R_COUNT``,
    iteration count in ``_R_T1``): keep looping while ``u < q`` and the
    iteration cap is not hit. The trip count lands in output slot 0 (and
    in the exit register snapshot), so any model that mis-executes the
    divergent loop shows up in the differential compare.
    """
    b = gen.b
    cap = int(gen.rng.integers(2, 7))
    q = float(np.round(gen.rng.uniform(0.2, 0.9), 3))
    offset = float(int(gen.rng.integers(1, 1000)))
    b.kernel("main", registers=_NUM_REGISTERS)
    gen.init_registers()
    # Seed: state = max((tid*9973 + offset) mod M, 1) — per-thread streams.
    b.mad(_R_COUNT, _R_TID, 9973.0, offset)
    b.rem(_R_COUNT, _R_COUNT, _LCG_MODULUS)
    b.max(_R_COUNT, _R_COUNT, 1.0)
    b.mov(_R_T1, 0.0)
    top, out = gen.label(), gen.label()
    b.label(top)
    for _ in range(int(gen.rng.integers(1, 4))):
        gen.segment(1, in_loop=True, allow_exit=False)
    b.mul(_R_COUNT, _R_COUNT, _LCG_MULTIPLIER)
    b.rem(_R_COUNT, _R_COUNT, _LCG_MODULUS)
    b.div(_R_T0, _R_COUNT, _LCG_MODULUS)
    b.add(_R_T1, _R_T1, 1.0)
    # Terminate on an unlucky draw, else iterate while budget remains;
    # both paths reconverge at ``out``.
    b.setp("ge", "p3", _R_T0, q)
    b.bra(out, pred="p3")
    b.setp("lt", "p3", _R_T1, float(cap))
    b.bra(top, pred="p3")
    b.label(out)
    values = _FLOAT_REGS + _INT_REGS
    for slot in range(1, gen.out_stride):
        gen.own_output_address(_R_TID, slot)
        b.st("global", _R_ADDR, gen.pick(values))
    gen.own_output_address(_R_TID, 0)
    b.st("global", _R_ADDR, _R_T1)
    b.exit()


def _emit_barrier(gen: _Gen, block_size: int, padded_threads: int) -> None:
    gen.b.kernel("main", registers=_NUM_REGISTERS)
    gen.init_registers()
    for _ in range(int(gen.rng.integers(0, 3))):
        gen.segment(0, in_loop=False, allow_exit=False)
    phases = int(gen.rng.integers(2, 4))
    for phase in range(phases):
        base = phase * padded_threads
        # Publish: write this thread's fresh cell for the phase ...
        gen.b.st("shared", _R_TID, gen.pick(_FLOAT_REGS), offset=base)
        gen.b.bar()
        # ... and only after the barrier read a neighbour's cell from the
        # same block: nbr = block_base + (lane_offset + step) mod block.
        step = int(gen.rng.integers(1, block_size)) if block_size > 1 else 0
        gen.b.rem(_R_T0, _R_TID, float(block_size))
        gen.b.sub(_R_ADDR, _R_TID, _R_T0)
        gen.b.add(_R_T1, _R_T0, float(step))
        gen.b.rem(_R_T1, _R_T1, float(block_size))
        gen.b.add(_R_T1, _R_T1, _R_ADDR)
        gen.b.ld("shared", gen.rf(), _R_T1, offset=base)
        for _ in range(int(gen.rng.integers(1, 3))):
            gen.segment(0, in_loop=False, allow_exit=False)
    gen.epilogue()


def _emit_spawn(gen: _Gen, state_words: int, max_chain: int,
                children: list[str]) -> None:
    data_words = state_words - 2
    data_regs = _FLOAT_REGS[:data_words]
    b = gen.b
    b.kernel("main", registers=_NUM_REGISTERS, state_words=state_words)
    gen.init_registers()
    for _ in range(int(gen.rng.integers(0, 3))):
        gen.segment(0, in_loop=False, allow_exit=False)
    b.mov(_R_PTR, "SREG.spawnMemAddr")
    b.rem(_R_COUNT, gen.ri(), float(max_chain))
    b.add(_R_COUNT, _R_COUNT, 1.0)
    b.st("spawn", _R_PTR, _R_COUNT, offset=0)
    b.st("spawn", _R_PTR, _R_TID, offset=1)
    for word in range(data_words):
        b.st("spawn", _R_PTR, data_regs[word], offset=2 + word)
    if len(children) == 2:
        b.setp(gen.pick(_CMPS), "p1", gen.ri(),
               float(int(gen.rng.integers(0, 24))))
        b.spawn(children[0], _R_PTR, pred="p1")
        b.spawn(children[1], _R_PTR, pred="!p1")
    else:
        b.spawn(children[0], _R_PTR)
    b.exit()

    for index, child in enumerate(children):
        b.kernel(child, registers=_NUM_REGISTERS, state_words=state_words)
        b.mov(_R_TMP, "SREG.spawnMemAddr")
        b.ld("spawn", _R_PTR, _R_TMP, offset=0)
        b.ld("spawn", _R_COUNT, _R_PTR, offset=0)
        b.ld("spawn", _R_TID, _R_PTR, offset=1)  # ray id, not SREG.tid
        for word in range(data_words):
            b.ld("spawn", data_regs[word], _R_PTR, offset=2 + word)
        gen.init_registers(with_tid_mov=False, ints_only=True)
        for _ in range(int(gen.rng.integers(1, 4))):
            gen.segment(1, in_loop=False, allow_exit=False)
        gen.own_output_address(_R_TID, 1 + index)
        b.st("global", _R_ADDR, gen.pick(data_regs))
        b.sub(_R_COUNT, _R_COUNT, 1.0)
        b.st("spawn", _R_PTR, _R_COUNT, offset=0)
        for word in range(data_words):
            b.st("spawn", _R_PTR, data_regs[word], offset=2 + word)
        b.setp("gt", "p1", _R_COUNT, 0.0)
        if len(children) == 2 and gen.rng.random() < 0.6:
            # Two-target continuation without divergence: fold the
            # continue flag (p1) and the selector (p2) into disjoint
            # predicates arithmetically so the spawn pair stays at stack
            # depth 1 (keeps the uniform-spawn conversion reachable).
            b.setp(gen.pick(_CMPS), "p2", gen.pick(data_regs),
                   gen.float_imm())
            b.selp(_R_T0, 1.0, 0.0, "p1")
            b.selp(_R_T1, 1.0, 0.0, "p2")
            b.mul(_R_T1, _R_T1, _R_T0)
            b.sub(_R_T0, _R_T0, _R_T1)
            b.setp("gt", "p2", _R_T1, 0.0)
            b.setp("gt", "p3", _R_T0, 0.0)
            b.spawn(children[0], _R_PTR, pred="p2")
            b.spawn(children[1], _R_PTR, pred="p3")
        else:
            target = children[int(gen.rng.integers(len(children)))]
            b.spawn(target, _R_PTR, pred="p1")
        b.exit()


def make_case(seed: int, kind: str | None = None) -> Case:
    """Generate one case; all randomness derives from ``seed``."""
    rng = np.random.default_rng(np.random.SeedSequence(int(seed)))
    if kind is None:
        kind = rng.choice(CASE_KINDS, p=(0.4, 0.25, 0.18, 0.17))
    kind = str(kind)
    if kind not in CASE_KINDS:
        raise ValueError(f"unknown case kind {kind!r}")

    num_inputs = int(rng.integers(4, 17))
    out_stride = int(rng.integers(3, 7))
    state_words = 0
    shared_cells = 0
    if kind in ("plain", "roulette"):
        num_threads = int(rng.choice((8, 16, 24, 32, 48)))
        block_size = int(rng.choice((16, 32, 64)))
        shared_cells = int(rng.integers(0, 3))
    elif kind == "barrier":
        block_size = int(rng.choice((8, 16, 32)))
        blocks = int(rng.integers(1, 3))
        num_threads = block_size * blocks - int(
            rng.integers(0, max(1, block_size // 2)))
    else:
        num_threads = int(rng.choice((8, 16, 32)))
        block_size = 32
        state_words = 2 + int(rng.integers(2, 5))

    builder = KernelBuilder()
    gen = _Gen(rng, builder, num_inputs=num_inputs,
               out_base=num_inputs, out_stride=out_stride,
               shared_cells=shared_cells)
    if kind == "plain":
        _emit_plain(gen)
    elif kind == "roulette":
        _emit_roulette(gen)
    elif kind == "barrier":
        padded = -(-num_threads // block_size) * block_size
        _emit_barrier(gen, block_size, padded)
    else:
        children = [f"child{i}" for i in range(int(rng.integers(1, 3)))]
        _emit_spawn(gen, state_words, max_chain=int(rng.integers(2, 5)),
                    children=children)
    program = builder.build()

    inputs = [int(v) for v in rng.integers(0, 32, size=num_inputs)]
    const = [float(np.round(rng.uniform(-6.0, 6.0), 3)) for _ in range(8)]
    for slot in range(8):
        if rng.random() < 0.08:
            const[slot] = float(rng.choice((0.0, float("inf"),
                                            float("nan"))))
    return Case(
        seed=int(seed), kind=kind, num_threads=num_threads,
        block_size=block_size, registers=_NUM_REGISTERS,
        state_words=state_words, entry="main",
        input_base=0, num_inputs=num_inputs, out_base=num_inputs,
        out_stride=out_stride, shared_cells=shared_cells,
        global_words=num_inputs + num_threads * out_stride + 8,
        inputs=inputs, const=const, program=program)
