"""JSON regression corpus for fuzzer cases.

A corpus file is a complete, self-contained case: seed, kind, workload
layout, input/constant data, and the full serialized program (see
:mod:`repro.isa.serialize`). Serialization is canonical — re-encoding a
loaded case yields byte-identical text — and loading validates every
field, raising :class:`~repro.errors.ProgramError` naming the offending
path. The test suite replays every file under ``tests/fuzz/corpus``
through the full oracle battery, so a shrunk failure committed there
becomes a permanent regression test.
"""

from __future__ import annotations

import json
import math
import os

from repro.errors import ProgramError
from repro.fuzz.generator import CASE_KINDS, Case
from repro.isa.serialize import program_from_dict, program_to_dict

#: Document schema identifier embedded in every corpus file.
CASE_SCHEMA = "repro-fuzz-case/1"

_INT_FIELDS = ("seed", "num_threads", "block_size", "registers",
               "state_words")
_LAYOUT_FIELDS = ("input_base", "num_inputs", "out_base", "out_stride",
                  "shared_cells", "global_words")


def case_to_dict(case: Case) -> dict:
    """Canonical JSON-compatible encoding of a case."""
    return {
        "schema": CASE_SCHEMA,
        "seed": case.seed,
        "kind": case.kind,
        "entry": case.entry,
        "num_threads": case.num_threads,
        "block_size": case.block_size,
        "registers": case.registers,
        "state_words": case.state_words,
        "layout": {name: getattr(case, name) for name in _LAYOUT_FIELDS},
        "inputs": [int(value) for value in case.inputs],
        "const": [_encode_float(value) for value in case.const],
        "program": program_to_dict(case.program),
    }


def _encode_float(value: float):
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return float(value)


def _decode_float(value, path: str) -> float:
    if value == "nan":
        return float("nan")
    if value == "inf":
        return float("inf")
    if value == "-inf":
        return float("-inf")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    raise ProgramError(f"{path}: number or 'nan'/'inf'/'-inf' expected, "
                       f"got {value!r}")


def _expect_int(doc: dict, key: str, path: str) -> int:
    value = doc.get(key)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProgramError(f"{path}.{key}: integer expected, "
                           f"got {type(value).__name__}")
    return value


def case_from_dict(doc) -> Case:
    """Rebuild a case; raises :class:`ProgramError` naming bad fields."""
    if not isinstance(doc, dict):
        raise ProgramError("case: object expected, "
                           f"got {type(doc).__name__}")
    known = {"schema", "seed", "kind", "entry", "num_threads", "block_size",
             "registers", "state_words", "layout", "inputs", "const",
             "program"}
    for key in doc:
        if key not in known:
            raise ProgramError(f"case.{key}: unknown case field")
    if doc.get("schema") != CASE_SCHEMA:
        raise ProgramError(f"case.schema: expected {CASE_SCHEMA!r}, "
                           f"got {doc.get('schema')!r}")
    kind = doc.get("kind")
    if kind not in CASE_KINDS:
        raise ProgramError(f"case.kind: one of {CASE_KINDS} expected, "
                           f"got {kind!r}")
    entry = doc.get("entry")
    if not isinstance(entry, str):
        raise ProgramError("case.entry: kernel name string expected, "
                           f"got {type(entry).__name__}")
    ints = {name: _expect_int(doc, name, "case") for name in _INT_FIELDS}
    if ints["num_threads"] <= 0:
        raise ProgramError("case.num_threads: must be positive")
    if ints["block_size"] <= 0:
        raise ProgramError("case.block_size: must be positive")
    layout_doc = doc.get("layout")
    if not isinstance(layout_doc, dict):
        raise ProgramError("case.layout: object expected, "
                           f"got {type(layout_doc).__name__}")
    for key in layout_doc:
        if key not in _LAYOUT_FIELDS:
            raise ProgramError(f"case.layout.{key}: unknown layout field")
    layout = {name: _expect_int(layout_doc, name, "case.layout")
              for name in _LAYOUT_FIELDS}
    if layout["global_words"] <= 0:
        raise ProgramError("case.layout.global_words: must be positive")
    inputs_doc = doc.get("inputs")
    if not isinstance(inputs_doc, list):
        raise ProgramError("case.inputs: integer list expected, "
                           f"got {type(inputs_doc).__name__}")
    inputs = []
    for index, value in enumerate(inputs_doc):
        if not isinstance(value, int) or isinstance(value, bool):
            raise ProgramError(f"case.inputs[{index}]: integer expected, "
                               f"got {type(value).__name__}")
        inputs.append(int(value))
    const_doc = doc.get("const")
    if not isinstance(const_doc, list):
        raise ProgramError("case.const: number list expected, "
                           f"got {type(const_doc).__name__}")
    const = [_decode_float(value, f"case.const[{index}]")
             for index, value in enumerate(const_doc)]
    program = program_from_dict(doc.get("program"))
    if entry not in program.kernels:
        raise ProgramError(f"case.entry: kernel {entry!r} not declared in "
                           f"case.program")
    return Case(seed=ints["seed"], kind=kind,
                num_threads=ints["num_threads"],
                block_size=ints["block_size"], registers=ints["registers"],
                state_words=ints["state_words"], entry=entry,
                inputs=inputs, const=const, program=program, **layout)


def case_to_json(case: Case) -> str:
    """Canonical JSON text (sorted keys, two-space indent)."""
    return json.dumps(case_to_dict(case), sort_keys=True, indent=2) + "\n"


def case_from_json(text: str) -> Case:
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as error:
        raise ProgramError(f"case: invalid JSON: {error}") from error
    return case_from_dict(doc)


def save_case(case: Case, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(case_to_json(case))


def load_case(path: str) -> Case:
    with open(path, encoding="utf-8") as handle:
        return case_from_json(handle.read())


def load_corpus(directory: str) -> list[tuple[str, Case]]:
    """Load every ``*.json`` corpus file under ``directory``, sorted."""
    if not os.path.isdir(directory):
        return []
    entries = []
    for name in sorted(os.listdir(directory)):
        if name.endswith(".json"):
            path = os.path.join(directory, name)
            entries.append((path, load_case(path)))
    return entries
