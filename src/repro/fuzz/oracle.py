"""Differential and metamorphic oracles over generated cases.

Every applicable execution model runs each case several times — a base
configuration (with cycle-attribution probes attached) plus metamorphic
variants (different warp size, exact instead of fast-forward clock,
shuffled block launch order, uniform-spawn conversion toggled). All runs
must produce *exactly* the reference interpreter's final global memory,
shared memory, and (for spawn-free programs) per-thread exit register
files; NaNs compare positionally. Every run must additionally satisfy the
structural counter identities of :mod:`repro.obs.invariants`.

Model applicability follows the repo's compatibility matrix: plain
programs run on pdom_block / pdom_warp / dwf, ``bar`` programs need block
scheduling (pdom_block), and ``spawn`` programs run on the spawn model.
The MIMD reference runs everything.

The executor backend (:data:`repro.config.EXECUTORS`) is a metamorphic
axis of its own: each case additionally re-runs under every non-primary
backend (fast and exact clock) and the resulting
:func:`~repro.harness.sweep.run_stats_digest` must equal the primary
backend's digest exactly — the two backends promise bit-identical
statistics, not merely equal memory images. DWF is exempt: it re-forms a
transient warp per issue, so ``config.executor`` has no effect there by
construction (see :func:`repro.simt.dwf.run_dwf`).

The warp scheduler (:data:`repro.config.SCHEDULERS`) is the same kind of
axis: every non-primary scheduler re-runs the base parameters across
*every* requested backend on both clocks — the scheduler shares state
with the executor through ``ready_at``, so the cross product is exactly
where a composition bug would hide — under the same bit-identical digest
requirement. DWF is exempt for the same reason as above: it never
constructs an :class:`~repro.simt.sm.SM`, so ``config.scheduler`` has no
effect there by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import EXECUTORS, SCHEDULERS, SchedulingModel, scaled_config
from repro.errors import ConfigError, MemoryError_
from repro.fuzz.generator import Case, make_case
from repro.fuzz.reference import (
    ReferenceLimitError,
    ReferenceResult,
    run_reference,
)
from repro.obs.invariants import check_run
from repro.obs.probe import TraceSession
from repro.simt.banked import BankedMemory
from repro.simt.dwf import run_dwf
from repro.simt.gpu import GPU, LaunchSpec
from repro.simt.memory import GlobalMemory
from repro.simt.snapshot import SnapshotRecorder

#: SIMT models the fuzzer differentiates against the reference.
FUZZ_MODELS = ("pdom_block", "pdom_warp", "spawn", "dwf")

#: Executor backends the fuzzer cross-checks (first entry is primary).
FUZZ_BACKENDS = EXECUTORS

#: Warp schedulers the fuzzer cross-checks (first entry is primary).
FUZZ_SCHEDULERS = SCHEDULERS

_MAX_CYCLES = 2_000_000


def models_for(case: Case) -> tuple[str, ...]:
    """SIMT models that can execute this case's program."""
    if case.kind == "spawn":
        return ("spawn",)
    if case.kind == "barrier":
        return ("pdom_block",)
    return ("pdom_block", "pdom_warp", "dwf")


@dataclass
class ModelRun:
    """Observable outcome of one model execution."""

    model: str
    variant: str
    global_mem: np.ndarray
    shared_mem: np.ndarray
    recorder: SnapshotRecorder
    stats: object
    session: TraceSession | None
    threads_spawned: int


@dataclass
class CaseResult:
    """Outcome of the full oracle battery for one case."""

    case: Case
    failures: list[str] = field(default_factory=list)
    skipped: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures and not self.skipped


@dataclass
class FuzzReport:
    """Outcome of a fuzzing campaign."""

    cases_run: int = 0
    skipped: int = 0
    failures: list[CaseResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def run_model(case: Case, model: str, *, warp_size: int = 32,
              fast_forward: bool = True, shuffle_seed: int | None = None,
              spawn_when_uniform: bool = True,
              block_size: int | None = None, trace: bool = False,
              executor: str = "reference", scheduler: str = "scan",
              variant: str = "base") -> ModelRun:
    """Execute ``case`` on one SIMT model and capture its final state.

    ``executor`` selects the instruction-execution backend
    (:data:`repro.config.EXECUTORS`) and ``scheduler`` the warp-scheduler
    implementation (:data:`repro.config.SCHEDULERS`); DWF accepts but
    ignores both.
    """
    if model not in FUZZ_MODELS:
        raise ValueError(f"unknown fuzz model {model!r}")
    global_mem = GlobalMemory(case.global_words)
    global_mem.load_array(case.input_base,
                          np.asarray(case.inputs, dtype=np.float64))
    const_mem = np.asarray(case.const, dtype=np.float64)
    overrides = dict(warp_size=warp_size, sps_per_sm=4,
                     fast_forward=fast_forward, max_cycles=_MAX_CYCLES,
                     executor=executor, scheduler=scheduler)

    if model == "dwf":
        config = scaled_config(1, **overrides)
        shared = BankedMemory(config.onchip_memory_bytes // 4,
                              model_conflicts=False)
        recorder = SnapshotRecorder()
        result = run_dwf(config, case.program, case.entry, global_mem,
                         const_mem, case.num_threads, shared_mem=shared,
                         snapshot=recorder)
        return ModelRun(model=model, variant=variant,
                        global_mem=global_mem.words.copy(),
                        shared_mem=shared.words.copy(), recorder=recorder,
                        stats=result.stats, session=None,
                        threads_spawned=0)

    overrides["scheduling"] = (SchedulingModel.WARP
                               if model == "pdom_warp"
                               else SchedulingModel.BLOCK)
    if model == "spawn":
        overrides["scheduling"] = SchedulingModel.WARP
        overrides["spawn_enabled"] = True
        overrides["spawn_spawn_when_uniform"] = spawn_when_uniform
    config = scaled_config(1, **overrides)
    launch = LaunchSpec(
        program=case.program, entry_kernel=case.entry,
        num_threads=case.num_threads,
        registers_per_thread=case.registers,
        block_size=block_size if block_size is not None else case.block_size,
        state_words=case.state_words if model == "spawn" else 0)
    session = TraceSession() if trace else None
    gpu = GPU(config, launch, global_mem, const_mem, trace=session)
    recorder = SnapshotRecorder()
    gpu.sms[0].machine.snapshot = recorder
    if shuffle_seed is not None:
        queue = gpu.sms[0].launch_queue
        blocks = list(queue)
        order = np.random.default_rng(
            np.random.SeedSequence(shuffle_seed)).permutation(len(blocks))
        queue.clear()
        queue.extend(blocks[index] for index in order)
    stats = gpu.run()
    return ModelRun(model=model, variant=variant,
                    global_mem=global_mem.words.copy(),
                    shared_mem=gpu.sms[0].machine.shared_mem.words.copy(),
                    recorder=recorder, stats=stats, session=session,
                    threads_spawned=int(stats.sm_stats.threads_spawned))


def _nan_equal(a: np.ndarray, b: np.ndarray) -> bool:
    if a.shape != b.shape:
        return False
    a_nan = np.isnan(a)
    b_nan = np.isnan(b)
    if not bool((a_nan == b_nan).all()):
        return False
    return bool((a[~a_nan] == b[~b_nan]).all())


def _first_mismatch(a: np.ndarray, b: np.ndarray) -> str:
    both = min(a.size, b.size)
    av, bv = a[:both], b[:both]
    differ = np.nonzero(~((av == bv) | (np.isnan(av) & np.isnan(bv))))[0]
    if differ.size == 0:
        return f"length {a.size} vs {b.size}"
    index = int(differ[0])
    return (f"{differ.size} word(s) differ, first at [{index}]: "
            f"{av[index]!r} vs {bv[index]!r}")


def _compare_to_reference(case: Case, reference: ReferenceResult,
                          run: ModelRun) -> list[str]:
    tag = f"{run.model}/{run.variant}"
    problems = []
    if not _nan_equal(run.global_mem, reference.global_mem):
        problems.append(f"{tag}: global memory diverges "
                        f"({_first_mismatch(run.global_mem, reference.global_mem)})")
    if not _nan_equal(run.shared_mem, reference.shared_mem):
        problems.append(f"{tag}: shared memory diverges "
                        f"({_first_mismatch(run.shared_mem, reference.shared_mem)})")
    if case.kind != "spawn":
        # Spawn-state registers hold model-specific addresses; register
        # files are only comparable for spawn-free programs.
        num_regs = case.program.max_register_index() + 1
        for tid in range(case.num_threads):
            ref_state = reference.exit_state.get(tid)
            model_state = run.recorder.exit_state.get(tid)
            if ref_state is None or model_state is None:
                problems.append(f"{tag}: thread {tid} missing exit snapshot "
                                f"(reference={ref_state is not None}, "
                                f"model={model_state is not None})")
                continue
            if not _nan_equal(model_state[0][:num_regs], ref_state[0]):
                problems.append(
                    f"{tag}: thread {tid} exit registers diverge "
                    f"({_first_mismatch(model_state[0][:num_regs], ref_state[0])})")
            if not bool((model_state[1] == ref_state[1]).all()):
                problems.append(f"{tag}: thread {tid} exit predicates "
                                f"diverge")
    else:
        if (run.variant != "uniform" and
                run.threads_spawned != reference.threads_spawned):
            problems.append(
                f"{tag}: spawn count {run.threads_spawned} != reference "
                f"{reference.threads_spawned}")
    return problems


def _variants(case: Case, model: str) -> list[dict]:
    alt_warp = (4, 8, 16)[case.seed % 3]
    variants = [
        dict(variant=f"warp{alt_warp}", warp_size=alt_warp),
        dict(variant="exact", fast_forward=False),
    ]
    if model != "dwf":
        variants.append(dict(variant="shuffle",
                             shuffle_seed=(case.seed ^ 0x5EED) & 0xFFFF))
    if model == "spawn":
        # spawn_when_uniform=False enables the uniform-spawn -> branch
        # conversion; spawn counts then legitimately differ, so the
        # oracle skips the count check for this variant.
        variants.append(dict(variant="uniform", spawn_when_uniform=False))
    if case.kind == "plain" and model != "dwf":
        variants.append(dict(
            variant="block",
            block_size=16 if case.block_size != 16 else 32))
    return variants


def _resolve_backends(backends) -> tuple[str, ...]:
    """Normalize and validate the executor-backend axis of a campaign."""
    if backends is None:
        return FUZZ_BACKENDS
    resolved = tuple(backends)
    if not resolved:
        raise ConfigError("backends must name at least one executor")
    for backend in resolved:
        if backend not in EXECUTORS:
            raise ConfigError(
                f"unknown executor backend {backend!r}; choose from "
                f"{', '.join(EXECUTORS)}")
    return resolved


def _resolve_schedulers(schedulers) -> tuple[str, ...]:
    """Normalize and validate the warp-scheduler axis of a campaign."""
    if schedulers is None:
        return FUZZ_SCHEDULERS
    resolved = tuple(schedulers)
    if not resolved:
        raise ConfigError("schedulers must name at least one scheduler")
    for scheduler in resolved:
        if scheduler not in SCHEDULERS:
            raise ConfigError(
                f"unknown scheduler {scheduler!r}; choose from "
                f"{', '.join(SCHEDULERS)}")
    return resolved


def run_case(case: Case, models=None, backends=None,
             schedulers=None) -> CaseResult:
    """Run the full oracle battery for one case.

    ``backends`` orders the executor backends to differentiate (default
    :data:`FUZZ_BACKENDS`): the first runs the whole variant battery, and
    each further backend re-runs the base parameters on both clocks with
    a bit-identical ``run_stats_digest`` requirement against the first.

    ``schedulers`` orders the warp schedulers the same way (default
    :data:`FUZZ_SCHEDULERS`): the first underlies every run above, and
    each further scheduler re-runs the base parameters across every
    requested backend on both clocks, again digest-identical to the
    primary.
    """
    from repro.harness.sweep import run_stats_digest

    backends = _resolve_backends(backends)
    schedulers = _resolve_schedulers(schedulers)
    try:
        reference = run_reference(case)
    except (ReferenceLimitError, MemoryError_):
        return CaseResult(case, skipped=True)
    applicable = [model for model in models_for(case)
                  if models is None or model in models]
    if not applicable:
        return CaseResult(case, skipped=True)
    result = CaseResult(case)
    primary = backends[0]
    primary_scheduler = schedulers[0]
    for model in applicable:
        runs = [dict(variant="base", trace=True)]
        runs += _variants(case, model)
        digests: dict[str, dict] = {}
        for kwargs in runs:
            variant = kwargs.get("variant", "base")
            try:
                run = run_model(case, model, executor=primary,
                                scheduler=primary_scheduler, **kwargs)
            except Exception as error:  # a crash is a conformance failure
                result.failures.append(
                    f"{model}/{variant}: {type(error).__name__}: {error}")
                continue
            if model != "dwf" and variant in ("base", "exact"):
                digests[variant] = run_stats_digest(run.stats)
            result.failures += _compare_to_reference(case, reference, run)
            for problem in check_run(run.stats, run.recorder, run.session,
                                     grid_threads=case.num_threads):
                result.failures.append(f"{model}/{variant}: {problem}")
        if model == "dwf":
            continue  # executor backend and scheduler are no-ops for DWF

        def cross_check(variant, base_variant, **kwargs):
            try:
                run = run_model(case, model, variant=variant, **kwargs)
            except Exception as error:
                result.failures.append(
                    f"{model}/{variant}: {type(error).__name__}: {error}")
                return
            result.failures += _compare_to_reference(case, reference, run)
            for problem in check_run(run.stats, run.recorder, run.session,
                                     grid_threads=case.num_threads):
                result.failures.append(f"{model}/{variant}: {problem}")
            want = digests.get(base_variant)
            if want is not None and run_stats_digest(run.stats) != want:
                result.failures.append(
                    f"{model}/{variant}: RunStats diverge from the "
                    f"{primary_scheduler}/{primary} run (schedulers and "
                    f"backends must be bit-identical)")

        clocks = (("base", {}), ("exact", dict(fast_forward=False)))
        for backend in backends[1:]:
            for base_variant, kwargs in clocks:
                cross_check(f"{base_variant}+{backend}", base_variant,
                            executor=backend,
                            scheduler=primary_scheduler, **kwargs)
        for scheduler in schedulers[1:]:
            # The full backend list, not just the primary: the scheduler
            # and the executor share warp wake state, so their cross
            # product is where a composition bug would hide.
            for backend in backends:
                for base_variant, kwargs in clocks:
                    cross_check(f"{base_variant}+{scheduler}+{backend}",
                                base_variant, executor=backend,
                                scheduler=scheduler, **kwargs)
    return result


def run_fuzz(num_cases: int, seed: int = 0, *, models=None, kinds=None,
             backends=None, schedulers=None, on_case=None) -> FuzzReport:
    """Run a fuzzing campaign of ``num_cases`` generated cases.

    All stochastic choices derive from ``seed`` through one
    :class:`numpy.random.SeedSequence`; the same ``(num_cases, seed)``
    replays the identical campaign. ``backends`` and ``schedulers``
    forward to :func:`run_case` (default: differentiate every executor
    backend and every warp scheduler). ``on_case`` is an optional
    callback ``(index, CaseResult) -> None`` for progress reporting.
    """
    report = FuzzReport()
    backends = _resolve_backends(backends)
    schedulers = _resolve_schedulers(schedulers)
    children = np.random.SeedSequence(seed).spawn(num_cases)
    for index, child in enumerate(children):
        case_seed = int(child.generate_state(1)[0])
        kind = None if not kinds else kinds[index % len(kinds)]
        case = make_case(case_seed, kind)
        result = run_case(case, models=models, backends=backends,
                          schedulers=schedulers)
        report.cases_run += 1
        if result.skipped:
            report.skipped += 1
        elif result.failures:
            report.failures.append(result)
        if on_case is not None:
            on_case(index, result)
    return report
