"""Greedy reduction of failing fuzzer cases.

The shrinker works on the *serialized* form of a case (the corpus dict),
so every candidate is rebuilt through
:func:`repro.fuzz.corpus.case_from_dict` — a reduction that orphans a
label, drops the final ``exit``, or un-declares a spawn target simply
fails validation and is rejected, with no bespoke consistency code here.
A candidate must additionally still run on the reference interpreter
(within its step caps) and still satisfy the caller's failure predicate.

Passes, applied greedily to fixpoint under an evaluation budget:

1. delete a whole basic block,
2. delete a single instruction,
3. drop a guard predicate,
4. replace a source operand with ``0.0`` / ``1.0`` (addresses, spawn
   pointers, and ``selp`` choosers are left alone),
5. halve the thread count.

Deleting instructions shifts label PCs: a label at ``p`` maps to ``p``
below the deleted range ``[a, b)``, to ``a`` inside it, and to
``p - (b - a)`` above it.
"""

from __future__ import annotations

import copy

from repro.fuzz.corpus import case_from_dict, case_to_dict
from repro.fuzz.generator import Case
from repro.fuzz.reference import run_reference
from repro.isa.cfg import basic_block_leaders

DEFAULT_MAX_EVALS = 300


def _rebuild(doc: dict) -> Case | None:
    """Doc -> Case if it is a valid, reference-runnable candidate."""
    try:
        case = case_from_dict(doc)
        run_reference(case)
    except Exception:
        return None
    return case


def _delete_range(doc: dict, start: int, stop: int) -> dict:
    candidate = copy.deepcopy(doc)
    removed = stop - start
    candidate["program"]["instructions"] = (
        doc["program"]["instructions"][:start]
        + copy.deepcopy(doc["program"]["instructions"][stop:]))
    labels = {}
    for name, pc in doc["program"]["labels"].items():
        if pc < start:
            labels[name] = pc
        elif pc < stop:
            labels[name] = start
        else:
            labels[name] = pc - removed
    candidate["program"]["labels"] = labels
    return candidate


def _block_ranges(case: Case) -> list[tuple[int, int]]:
    leaders = sorted(basic_block_leaders(case.program))
    ends = leaders[1:] + [len(case.program)]
    return list(zip(leaders, ends))


def _candidate_docs(case: Case, doc: dict):
    """Yield reduction candidates, coarsest first."""
    instructions = doc["program"]["instructions"]
    for start, stop in _block_ranges(case):
        if stop - start < len(instructions):
            yield _delete_range(doc, start, stop)
    for index in range(len(instructions)):
        yield _delete_range(doc, index, index + 1)
    for index, inst in enumerate(instructions):
        if "guard" in inst:
            candidate = copy.deepcopy(doc)
            del candidate["program"]["instructions"][index]["guard"]
            yield candidate
        srcs = inst.get("srcs", [])
        protect_first = inst.get("op") in ("ld", "st", "atom", "spawn")
        for slot, value in enumerate(srcs):
            if slot == 0 and protect_first:
                continue
            if inst.get("op") == "selp" and slot == 2:
                continue
            for replacement in (0.0, 1.0):
                if value == replacement:
                    continue
                candidate = copy.deepcopy(doc)
                candidate["program"]["instructions"][index]["srcs"][slot] = \
                    replacement
                yield candidate
    if doc["num_threads"] > 1:
        candidate = copy.deepcopy(doc)
        candidate["num_threads"] = max(1, doc["num_threads"] // 2)
        candidate["layout"] = dict(doc["layout"])
        yield candidate


def shrink_case(case: Case, still_fails, *,
                max_evals: int = DEFAULT_MAX_EVALS) -> Case:
    """Reduce ``case`` while ``still_fails(candidate)`` stays true.

    ``still_fails`` re-runs whatever oracle observed the original
    failure. Returns the smallest case found (possibly the input).
    """
    best_case = case
    best_doc = case_to_dict(case)
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for candidate_doc in _candidate_docs(best_case, best_doc):
            if evals >= max_evals:
                break
            candidate = _rebuild(candidate_doc)
            if candidate is None:
                continue
            evals += 1
            try:
                if not still_fails(candidate):
                    continue
            except Exception:
                continue
            best_case = candidate
            best_doc = case_to_dict(candidate)
            improved = True
            break  # restart scanning from the reduced program
    return best_case
