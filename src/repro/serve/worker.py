"""The ``repro worker`` claim loop: one shard of a manifest campaign.

A worker is deliberately dumb: point it at a shard manifest, and it
repeatedly (a) reloads the manifest, (b) picks the first job nobody has
claimed, (c) bids for it with an atomic ``O_APPEND`` claim record, and
(d) executes it and appends the result if — and only if — its claim
landed first in file order (see :mod:`repro.serve.manifest` for the
protocol). Losing a claim race costs one wasted append, nothing else.

Workers are stateless and interchangeable: run one per core on one host,
or point several hosts at the same file on a shared filesystem. A worker
that crashes mid-job leaves its claim behind; the driver re-executes the
job during the merge, so the campaign still completes.
"""

from __future__ import annotations

import os
import pathlib
import socket
import time
from typing import Callable

from repro.errors import ConfigError
from repro.results.store import maybe_record
from repro.serve.manifest import ShardManifest
from repro.harness.sweep import (
    FailedJob,
    JobResult,
    RetryPolicy,
    execute_job,
)


def worker_ident(name: str | None = None) -> str:
    """A claim ident unique across hosts and processes.

    Built from hostname, pid, and a nanosecond timestamp — no RNG (the
    repo-wide RNG discipline bans ambient randomness in ``src/repro``),
    and no coordination needed. An explicit ``name`` (e.g. ``shard0``
    from the sharded-sweep driver) is used verbatim so manifests stay
    readable.
    """
    if name:
        return str(name)
    return f"{socket.gethostname()}-{os.getpid()}-{time.time_ns():x}"


def run_worker(manifest_path, worker: str | None = None,
               poll_seconds: float = 0.5, once: bool = False,
               retry: RetryPolicy | None = None,
               progress: Callable[[str], None] | None = None) -> int:
    """Claim and execute manifest jobs until none remain open.

    With ``once=True`` (how the sharded-sweep driver runs shards) the
    worker exits as soon as a full pass over the manifest finds no open
    job. Without it the worker keeps polling every ``poll_seconds`` —
    the long-running "join this campaign from another terminal/host"
    mode; stop it with Ctrl-C once the driver has merged.

    Returns the number of jobs this worker executed (successes and
    permanent failures both count — each produced a manifest record).
    """
    if not pathlib.Path(manifest_path).exists():
        # A missing manifest must not look like a successfully drained
        # campaign (a typo'd --manifest would otherwise exit 0 having
        # done nothing). The driver creates the file before any worker
        # is spawned, so at claim time it always exists.
        raise ConfigError(f"shard manifest not found: {manifest_path} "
                          "(create it with ShardManifest.create or "
                          "run_sharded_sweep first)")
    manifest = ShardManifest(manifest_path)
    ident = worker_ident(worker)
    retry = RetryPolicy() if retry is None else retry
    emit = progress if progress is not None else (lambda line: None)
    executed = 0
    while True:
        state = manifest.load()
        candidates = [job for job in state.jobs if state.is_open(job)]
        if not candidates:
            # Nothing open: claimed-but-unfinished jobs belong to other
            # workers (or to the driver's merge pass if those workers
            # died); this worker must not steal them.
            if once or state.settled == len(state.jobs):
                return executed
            time.sleep(poll_seconds)
            continue
        job = candidates[0]
        if not manifest.claim(job, ident):
            continue  # lost the race; re-scan for the next open job
        emit(f"[{ident}] claimed {job.describe()}")
        outcome = _run_claimed(job, retry, emit, ident)
        if isinstance(outcome, JobResult):
            manifest.record_result(outcome)
            # Opt-in results warehouse: one store line per job this worker
            # actually executed (no-op without REPRO_RESULTS_DIR).
            maybe_record(outcome, source="worker")
            emit(f"[{ident}] {job.describe()}  {outcome.stats.cycles} "
                 f"cycles  {outcome.wall_seconds:.2f}s")
        else:
            manifest.record_failure(job, outcome.kind, outcome.error,
                                    attempts=outcome.attempts)
            emit(f"[{ident}] {outcome.describe()}")
        executed += 1


def _run_claimed(job, retry: RetryPolicy,
                 emit: Callable[[str], None],
                 ident: str) -> JobResult | FailedJob:
    """Execute one claimed job under the worker's retry budget."""
    error, kind = "", "exception"
    for attempt in range(1, retry.max_attempts + 1):
        try:
            return execute_job(job)
        except Exception as exc:
            kind = "timeout" if isinstance(exc, TimeoutError) else "exception"
            error = f"{type(exc).__name__}: {exc}"
            if attempt < retry.max_attempts:
                emit(f"[{ident}] retry {job.describe()}  attempt "
                     f"{attempt + 1}/{retry.max_attempts} after {error}")
                delay = retry.backoff_for(attempt)
                if delay:
                    time.sleep(delay)
    return FailedJob(job=job, attempts=retry.max_attempts, kind=kind,
                     error=error)


__all__ = ["run_worker", "worker_ident"]
