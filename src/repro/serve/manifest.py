"""Shared JSONL manifest: shard one sweep across worker processes/hosts.

The manifest is a single append-only JSONL file (``repro-wire/1``
records, see :mod:`repro.serve.wire`) living on a filesystem every
participant can reach. The protocol has three record kinds:

- the driver publishes one ``job`` record per sweep job (atomically, so
  workers never observe a half-written job list);
- a worker bids for a job by appending a ``claim`` record with
  ``O_APPEND`` (atomic for lines this short, the same guarantee PR 4's
  crash breadcrumbs rely on). Ties are resolved by file order: after
  appending, the worker re-reads the file, and **the first claim line
  for a (key, digest) owns the job** — every racer sees the same order,
  so exactly one worker executes each job and the losers move on;
- the owner appends a ``result`` record (the versioned ``RunStats``
  payload) on success, or a ``failure`` record when its retry budget is
  spent.

The driver (:func:`run_sharded_sweep`) merges partials in the original
job order and *locally re-executes* any job that has no usable result —
a worker that died after claiming, or a result line torn by a crash,
costs wasted work, never correctness. The simulator is deterministic, so
the merged :class:`~repro.harness.sweep.SweepResults` is bit-identical
to a serial ``jobs_n=1`` run (locked down by
``tests/serve/test_manifest.py`` and the CI service-smoke job).
"""

from __future__ import annotations

import pathlib
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import ConfigError, SweepError
from repro.harness.cache import atomic_write_text
from repro.harness.sweep import (
    FailedJob,
    JobResult,
    RetryPolicy,
    SweepJob,
    SweepResults,
    _check_duplicate_jobs,
    execute_job,
    warm_workloads,
)
from repro.serve import wire


@dataclass
class ManifestState:
    """One parsed snapshot of a shard manifest."""

    jobs: list[SweepJob] = field(default_factory=list)
    claims: dict[tuple, str] = field(default_factory=dict)
    results: dict[tuple, dict] = field(default_factory=dict)
    failures: dict[tuple, dict] = field(default_factory=dict)

    @staticmethod
    def ident(job: SweepJob) -> tuple:
        return (job.key, job.config_digest())

    def is_open(self, job: SweepJob) -> bool:
        """True when nobody has claimed or finished ``job`` yet."""
        ident = self.ident(job)
        return (ident not in self.claims and ident not in self.results
                and ident not in self.failures)

    def is_settled(self, job: SweepJob) -> bool:
        """True when ``job`` has a result or a recorded failure."""
        ident = self.ident(job)
        return ident in self.results or ident in self.failures

    @property
    def settled(self) -> int:
        return sum(1 for job in self.jobs if self.is_settled(job))


class ShardManifest:
    """Append-only claim/result manifest shared by sweep workers.

    All mutation is line-append (``open(..., "a")`` → ``O_APPEND``);
    :meth:`load` tolerates torn tail lines and foreign records, so a
    crashing writer can never corrupt the campaign — at worst its last
    line is ignored and the job is re-executed by someone else.
    """

    def __init__(self, path: str | pathlib.Path):
        self.path = pathlib.Path(path)

    @classmethod
    def create(cls, path: str | pathlib.Path,
               jobs: Iterable[SweepJob]) -> "ShardManifest":
        """Publish a fresh manifest holding one ``job`` record per job.

        The initial file appears atomically (temp sibling + rename), so a
        worker that races the driver sees either no manifest or the whole
        job list — never a prefix.
        """
        job_list = list(jobs)
        _check_duplicate_jobs(job_list)
        if not job_list:
            raise ConfigError("refusing to create an empty shard manifest")
        manifest = cls(path)
        lines = [wire.dump_line(wire.job_to_wire(job)) for job in job_list]
        atomic_write_text(manifest.path, "\n".join(lines) + "\n")
        return manifest

    @classmethod
    def attach(cls, path: str | pathlib.Path,
               jobs: Iterable[SweepJob]) -> "ShardManifest":
        """Open an existing manifest, appending any job specs it lacks.

        This is the resume path: completed ``result`` records stay valid
        (they are matched by key + config digest), new jobs join the
        campaign, and jobs whose digest changed are simply re-published
        under their new digest.
        """
        manifest = cls(path)
        if not manifest.path.exists():
            return cls.create(path, jobs)
        state = manifest.load()
        known = {ManifestState.ident(job) for job in state.jobs}
        for job in jobs:
            if ManifestState.ident(job) not in known:
                manifest._append(wire.job_to_wire(job))
        return manifest

    def _append(self, record: dict) -> None:
        with open(self.path, "a") as handle:
            handle.write(wire.dump_line(record) + "\n")

    def load(self) -> ManifestState:
        """Parse the manifest; first claim per job wins, last result sticks."""
        state = ManifestState()
        if not self.path.exists():
            return state
        seen_jobs = set()
        for line in self.path.read_text().splitlines():
            record = wire.parse_line(line)
            if record is None:
                continue
            kind = record.get("kind")
            try:
                if kind == "job":
                    job = wire.job_from_wire(record)
                    ident = ManifestState.ident(job)
                    if ident not in seen_jobs:
                        seen_jobs.add(ident)
                        state.jobs.append(job)
                elif kind == "claim":
                    ident = wire.record_key(record)
                    state.claims.setdefault(ident, str(record["worker"]))
                elif kind == "result":
                    state.results[wire.record_key(record)] = record
                elif kind == "failure":
                    state.failures[wire.record_key(record)] = record
            except (ConfigError, KeyError, TypeError, ValueError):
                continue  # damaged record: skip, never fail the campaign
        return state

    def claim(self, job: SweepJob, worker: str) -> bool:
        """Bid for ``job``; True iff this worker's claim landed first.

        Appending is the bid, the re-read is the adjudication: every
        worker that appended sees the same file order, so they all agree
        on the single winner without any locking.
        """
        self._append(wire.claim_to_wire(job, worker))
        state = self.load()
        return state.claims.get(ManifestState.ident(job)) == str(worker)

    def record_result(self, result: JobResult) -> None:
        self._append(wire.result_to_wire(result))

    def record_failure(self, job: SweepJob, kind: str, error: str,
                       attempts: int = 1) -> None:
        self._append(wire.failure_to_wire(job, kind, error,
                                          attempts=attempts))


def _execute_with_retry(job: SweepJob, retry: RetryPolicy,
                        emit: Callable[[str], None]):
    """Serial execute-with-backoff; returns a JobResult or a FailedJob."""
    error, kind = "", "exception"
    for attempt in range(1, retry.max_attempts + 1):
        try:
            return execute_job(job)
        except Exception as exc:
            kind = "timeout" if isinstance(exc, TimeoutError) else "exception"
            error = f"{type(exc).__name__}: {exc}"
            if attempt < retry.max_attempts:
                emit(f"[retry] {job.describe()}  attempt "
                     f"{attempt + 1}/{retry.max_attempts} after {error}")
                delay = retry.backoff_for(attempt)
                if delay:
                    time.sleep(delay)
    return FailedJob(job=job, attempts=retry.max_attempts, kind=kind,
                     error=error)


def worker_command(manifest_path: str | pathlib.Path, ident: str,
                   retries: int = 3) -> list[str]:
    """The ``repro worker`` argv that joins this campaign (any host)."""
    return [sys.executable, "-m", "repro.cli", "worker",
            "--manifest", str(manifest_path), "--once",
            "--id", str(ident), "--retries", str(retries)]


def run_sharded_sweep(jobs: Iterable[SweepJob],
                      manifest_path: str | pathlib.Path,
                      shards: int = 2,
                      progress: Callable[[str], None] | None = None, *,
                      strict: bool = True, retry: RetryPolicy | None = None,
                      resume: bool = False,
                      spawn_workers: bool = True,
                      worker_timeout: float | None = None) -> SweepResults:
    """Fan one sweep over ``shards`` worker processes via a shared manifest.

    With ``spawn_workers=True`` (default) the driver launches ``shards``
    local ``repro worker --manifest ... --once`` subprocesses and waits
    for them; with ``spawn_workers=False`` it only publishes the manifest
    and merges whatever external workers (other hosts pointing at the
    same file) have produced — plus everything still missing, which the
    driver executes itself. Either way the merged results keep the input
    job order and are bit-identical to ``run_sweep(jobs, jobs_n=1)``.
    """
    job_list = list(jobs)
    _check_duplicate_jobs(job_list)
    retry = RetryPolicy() if retry is None else retry
    emit = progress if progress is not None else (lambda line: None)
    path = pathlib.Path(manifest_path)
    if path.exists() and not resume:
        raise ConfigError(
            f"shard manifest {path} already exists; pass resume=True to "
            f"continue that campaign or remove the file to start over")
    manifest = ShardManifest.attach(path, job_list) if resume \
        else ShardManifest.create(path, job_list)

    procs: list[subprocess.Popen] = []
    if spawn_workers and shards > 0:
        # Pre-populate the workload cache so racing shards don't all
        # rebuild the same scenes (racing is correct, just wasted work).
        warm_workloads(sorted({job.scene for job in job_list}),
                       job_list[0].preset,
                       ray_kinds=sorted({job.ray_kind for job in job_list}),
                       jobs_n=shards)
        for index in range(shards):
            procs.append(subprocess.Popen(
                worker_command(path, f"shard{index}",
                               retries=retry.max_attempts)))
        deadline = None if worker_timeout is None \
            else time.monotonic() + worker_timeout
        for proc in procs:
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
                emit(f"[shard] worker pid {proc.pid} exceeded "
                     f"{worker_timeout:.1f}s; killed (its claimed jobs "
                     f"will be re-executed by the driver)")

    # Merge: results in input order; anything missing runs right here.
    state = manifest.load()
    results: list[JobResult] = []
    failures: list[FailedJob] = []
    done = 0
    total = len(job_list)
    for job in job_list:
        ident = ManifestState.ident(job)
        record = state.results.get(ident)
        merged: JobResult | FailedJob | None = None
        if record is not None:
            try:
                merged = wire.result_from_wire(record, job=job)
            except (ConfigError, KeyError, TypeError, ValueError):
                merged = None  # torn/stale record: recompute below
        if merged is None:
            merged = _execute_with_retry(job, retry, emit)
            if isinstance(merged, JobResult):
                manifest.record_result(merged)
                # Jobs the driver re-executed during the merge (their worker
                # died) record into the opt-in results warehouse too, so a
                # campaign's store covers every executed job exactly once.
                from repro.results.store import maybe_record
                maybe_record(merged, source="sweep")
        done += 1
        if isinstance(merged, JobResult):
            results.append(merged)
            emit(f"[{done}/{total}] {job.describe()}  "
                 f"{merged.stats.cycles} cycles  merged")
        else:
            failures.append(merged)
            emit(f"[{done}/{total}] {merged.describe()}")

    swept = SweepResults(results, failures=failures)
    if strict and failures:
        names = ", ".join(failure.job.describe() for failure in failures)
        error = SweepError(
            f"{len(failures)} of {total} sharded sweep jobs permanently "
            f"failed: {names} (pass strict=False for partial results)",
            failures)
        error.results = swept
        raise error
    return swept
