"""The ``repro serve`` job daemon: simulations over a versioned HTTP API.

A stdlib-only (``http.server``) daemon that accepts the same
scene/mode/preset/ray-kind/config-override surface as
:func:`repro.api.simulate` and :func:`repro.api.sweep`, runs each
submission on a worker thread, and answers with the versioned
``repro-wire/1`` payloads (:mod:`repro.serve.wire`):

===========================  ===============================================
endpoint                     behaviour
===========================  ===============================================
``GET  /v1/ping``            liveness + schema negotiation
``POST /v1/jobs``            submit a ``simulate-request`` or
                             ``sweep-request`` wire record; answers with the
                             job status (``202``, or ``200`` when the same
                             request was already submitted — dedup by
                             content digest)
``GET  /v1/jobs``            list job statuses
``GET  /v1/jobs/<id>``       one job's status
``GET  /v1/jobs/<id>/events``  NDJSON progress stream; follows a running
                             job live until it finishes (``?start=N``
                             resumes after a dropped connection)
``GET  /v1/jobs/<id>/result``  the completed job's results (one wire
                             ``result`` record per sweep job, each with its
                             ``run_stats_digest``)
===========================  ===============================================

Caching: every job checkpoints through the standard sweep manifest
(:class:`~repro.harness.sweep.SweepCheckpoint`) keyed by the request's
content digest, so resubmitting a finished request — to the same daemon
*or a freshly restarted one* — answers from the checkpoint without
re-simulating, bit-identically. The job status reports ``cached_jobs``
vs ``executed_jobs`` so callers (and the CI smoke test) can assert that
no re-execution happened.
"""

from __future__ import annotations

import json
import pathlib
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.errors import ConfigError, ReproError
from repro.harness.sweep import (
    RetryPolicy,
    SweepCheckpoint,
    default_checkpoint_path,
    run_stats_digest,
    run_sweep,
)
from repro.obs.progress import EventLog
from repro.serve import wire

#: Largest request body the daemon will read, in bytes. A sweep request
#: is a few hundred bytes per job; this bounds hostile/broken clients.
MAX_REQUEST_BYTES = 4 * 1024 * 1024

#: Progress events retained per job. One line per sweep job plus a
#: handful of lifecycle lines fits comfortably; a campaign that emits
#: more evicts the oldest lines (the stream carries an explicit dropped
#: marker) instead of growing the daemon's heap without bound.
MAX_JOB_EVENTS = 4096


def _job_event_log() -> EventLog:
    return EventLog(max_events=MAX_JOB_EVENTS)


@dataclass
class Job:
    """One submitted request and everything the API reports about it."""

    id: str
    digest: str
    kind: str                      # "simulate-request" | "sweep-request"
    request: object                # SimulateRequest | SweepRequest
    state: str = "queued"          # queued | running | done | failed
    error: str | None = None
    cached_jobs: int = 0
    executed_jobs: int = 0
    total_jobs: int = 0
    results: list = field(default_factory=list)   # wire result records
    events: EventLog = field(default_factory=_job_event_log)

    def status(self) -> dict:
        return {
            "schema": wire.WIRE_SCHEMA,
            "kind": "job-status",
            "id": self.id,
            "digest": self.digest,
            "request_kind": self.kind,
            "state": self.state,
            "error": self.error,
            "total_jobs": self.total_jobs,
            "cached_jobs": self.cached_jobs,
            "executed_jobs": self.executed_jobs,
            "events": len(self.events),
            "dropped_events": self.events.dropped,
        }


class JobManager:
    """Owns the job table; executes each submission on a worker thread.

    ``checkpoint_dir`` overrides where per-request checkpoint manifests
    live (default: :func:`~repro.harness.sweep.default_checkpoint_path`,
    which itself honours ``REPRO_CHECKPOINT_DIR``). ``inline=True`` runs
    jobs synchronously inside :meth:`submit` — no threads, used by tests
    that want deterministic completion without polling.
    """

    def __init__(self, checkpoint_dir: str | pathlib.Path | None = None,
                 inline: bool = False):
        self.checkpoint_dir = pathlib.Path(checkpoint_dir) \
            if checkpoint_dir is not None else None
        self.inline = inline
        self._jobs: dict[str, Job] = {}
        self._by_digest: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._counter = 0

    # -- submission ---------------------------------------------------------

    def submit(self, record: dict) -> tuple[Job, bool]:
        """Queue one wire request; returns ``(job, deduplicated)``.

        A record whose content digest matches an already-submitted
        request returns that existing job (running or finished) instead
        of spawning a duplicate — the HTTP layer answers 200 instead of
        202 so clients can tell.
        """
        request = wire.request_from_wire(record)
        digest = wire.request_digest(request)
        with self._lock:
            existing = self._by_digest.get(digest)
            if existing is not None:
                return existing, True
            self._counter += 1
            job = Job(id=f"job-{self._counter:04d}-{digest[:8]}",
                      digest=digest,
                      kind=record.get("kind", "simulate-request"),
                      request=request)
            job.total_jobs = len(self._sweep_jobs(request))
            self._jobs[job.id] = job
            self._by_digest[digest] = job
        if self.inline:
            self._run(job)
        else:
            thread = threading.Thread(target=self._run, args=(job,),
                                      daemon=True,
                                      name=f"repro-serve-{job.id}")
            thread.start()
        return job, False

    @staticmethod
    def _sweep_jobs(request) -> list:
        if isinstance(request, wire.SimulateRequest):
            return [request.to_job()]
        return list(request.jobs)

    def _checkpoint_path(self, digest: str) -> pathlib.Path:
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
            return self.checkpoint_dir / f"serve-{digest}.jsonl"
        return default_checkpoint_path(f"serve-{digest}")

    # -- execution ----------------------------------------------------------

    def _run(self, job: Job) -> None:
        job.state = "running"
        job.events.emit(f"{job.id} started", state="running")
        try:
            self._execute(job)
        except ReproError as exc:
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            job.events.emit(job.error, state="failed")
        except Exception as exc:  # an internal bug must not kill the daemon
            job.state = "failed"
            job.error = f"internal error: {type(exc).__name__}: {exc}"
            job.events.emit(job.error, state="failed")
        finally:
            job.events.close()

    def _execute(self, job: Job) -> None:
        request = job.request
        sweep_jobs = self._sweep_jobs(request)
        checkpoint = SweepCheckpoint(self._checkpoint_path(job.digest))
        checkpoint.load()
        job.cached_jobs = sum(
            1 for spec in sweep_jobs if checkpoint.lookup(spec) is not None)
        job.executed_jobs = len(sweep_jobs) - job.cached_jobs
        if job.cached_jobs:
            job.events.emit(
                f"{job.cached_jobs}/{len(sweep_jobs)} job(s) already "
                f"checkpointed; serving them without re-execution")

        retry = RetryPolicy()
        jobs_n = 1
        if isinstance(request, wire.SweepRequest):
            retry = RetryPolicy(max_attempts=request.retries,
                                timeout_seconds=request.job_timeout)
            jobs_n = request.jobs_n

        if isinstance(request, wire.SweepRequest) and request.shards > 0:
            from repro.serve.manifest import run_sharded_sweep

            manifest = self._checkpoint_path(job.digest).with_suffix(
                ".shards.jsonl")
            results = run_sharded_sweep(
                sweep_jobs, manifest, shards=request.shards,
                progress=job.events.emit, strict=False, retry=retry,
                resume=True)
            # Sharded results flow into the request checkpoint too, so a
            # resubmission is served instantly regardless of sharding.
            for result in results:
                if checkpoint.lookup(result.job) is None:
                    checkpoint.record(result)
        else:
            results = run_sweep(sweep_jobs, jobs_n=jobs_n,
                                progress=job.events.emit, strict=False,
                                retry=retry, checkpoint=checkpoint,
                                resume=True)

        job.results = []
        for result in results:
            record = wire.result_to_wire(result)
            record["run_stats_digest"] = run_stats_digest(result.stats)
            job.results.append(record)
        if results.failures:
            job.state = "failed"
            job.error = "; ".join(f.describe() for f in results.failures)
            job.events.emit(job.error, state="failed")
        else:
            job.state = "done"
            job.events.emit(f"{job.id} done", state="done")

    # -- queries ------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            if job_id not in self._jobs:
                raise KeyError(job_id)
            return self._jobs[job_id]

    def list_jobs(self) -> list[dict]:
        with self._lock:
            jobs = list(self._jobs.values())
        return [job.status() for job in jobs]


class _Handler(BaseHTTPRequestHandler):
    """Routes the ``/v1`` API onto the server's :class:`JobManager`."""

    protocol_version = "HTTP/1.1"
    server: "ReproServer"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, payload, status: int = 200) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, message: str, status: int) -> None:
        self._send_json({"schema": wire.WIRE_SCHEMA, "kind": "error",
                         "error": message}, status=status)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise ConfigError("request body is empty; POST a wire record")
        if length > MAX_REQUEST_BYTES:
            raise ConfigError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_REQUEST_BYTES}-byte limit")
        try:
            record = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            raise ConfigError(f"request body is not JSON: {exc}") from None
        if not isinstance(record, dict):
            raise ConfigError("request body must be a JSON object")
        return record

    # -- routes -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        try:
            if parts == ["v1", "ping"]:
                self._send_json({"schema": wire.WIRE_SCHEMA, "kind": "pong",
                                 "ok": True})
            elif parts == ["v1", "jobs"]:
                self._send_json({"schema": wire.WIRE_SCHEMA,
                                 "kind": "job-list",
                                 "jobs": self.server.manager.list_jobs()})
            elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                self._send_json(self.server.manager.get(parts[2]).status())
            elif len(parts) == 4 and parts[:2] == ["v1", "jobs"] \
                    and parts[3] == "events":
                self._stream_events(self.server.manager.get(parts[2]), url)
            elif len(parts) == 4 and parts[:2] == ["v1", "jobs"] \
                    and parts[3] == "result":
                self._send_result(self.server.manager.get(parts[2]))
            else:
                self._send_error_json(f"no such endpoint: {url.path}", 404)
        except KeyError as exc:
            self._send_error_json(f"no such job: {exc.args[0]}", 404)
        except BrokenPipeError:
            pass  # client hung up mid-stream; nothing to answer

    def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch name
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        if parts != ["v1", "jobs"]:
            self._send_error_json(f"no such endpoint: {url.path}", 404)
            return
        try:
            record = self._read_body()
            job, deduplicated = self.server.manager.submit(record)
        except ConfigError as exc:
            self._send_error_json(str(exc), 400)
            return
        status = job.status()
        status["deduplicated"] = deduplicated
        self._send_json(status, status=200 if deduplicated else 202)

    def _send_result(self, job: Job) -> None:
        if job.state in ("queued", "running"):
            self._send_error_json(
                f"{job.id} is still {job.state}; poll its status or follow "
                f"/v1/jobs/{job.id}/events", 409)
            return
        self._send_json({
            "schema": wire.WIRE_SCHEMA,
            "kind": "job-result",
            "id": job.id,
            "state": job.state,
            "error": job.error,
            "results": job.results,
        })

    def _stream_events(self, job: Job, url) -> None:
        query = parse_qs(url.query)
        try:
            start = int(query.get("start", ["0"])[0])
        except ValueError:
            self._send_error_json("start must be an integer", 400)
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        # Stream until the job finishes; length is unknowable up front.
        self.send_header("Connection", "close")
        self.end_headers()
        for event in job.events.follow(start=start):
            self.wfile.write(
                (json.dumps(event, sort_keys=True) + "\n").encode())
            self.wfile.flush()
        self.close_connection = True


class ReproServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` bound to one :class:`JobManager`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int],
                 manager: JobManager | None = None, verbose: bool = False):
        self.manager = manager if manager is not None else JobManager()
        self.verbose = verbose
        super().__init__(address, _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve_forever(host: str = "127.0.0.1", port: int = 8732,
                  checkpoint_dir: str | pathlib.Path | None = None,
                  verbose: bool = False,
                  ready=None) -> int:
    """Run the daemon until interrupted (the ``repro serve`` entry point).

    ``ready`` (a callable given the bound URL) fires after the socket is
    listening — tests and the CI smoke job use it instead of sleeping.
    """
    server = ReproServer((host, port), JobManager(checkpoint_dir),
                         verbose=verbose)
    if ready is not None:
        ready(server.url)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


__all__ = ["Job", "JobManager", "MAX_REQUEST_BYTES", "ReproServer",
           "serve_forever"]
