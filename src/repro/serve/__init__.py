"""Simulation-as-a-service: job daemon, wire schema, sharded sweeps.

The package turns the single-process harness into a campaign manager:

- :mod:`repro.serve.wire` — the versioned ``repro-wire/1`` JSON schema
  that job specs, checkpoint records, claim records, and results all
  travel through (one schema, one compat story);
- :mod:`repro.serve.manifest` — a shared, append-only JSONL manifest
  that lets worker processes on any host *claim* sweep jobs atomically
  and publish results; the driver merges partials bit-identically to a
  serial run;
- :mod:`repro.serve.worker` — the ``repro worker --manifest PATH`` claim
  loop run by each shard;
- :mod:`repro.serve.server` — the stdlib-only ``repro serve`` HTTP
  daemon (``POST /v1/jobs``, NDJSON event streams, instant answers on
  checkpoint hits);
- :mod:`repro.serve.client` — a stdlib ``urllib`` client for the wire
  API, used by ``repro submit``.
"""

from repro.serve.client import ServeClient
from repro.serve.manifest import ShardManifest, run_sharded_sweep
from repro.serve.server import JobManager, ReproServer, serve_forever
from repro.serve.wire import (
    WIRE_SCHEMA,
    SimulateRequest,
    SweepRequest,
    from_wire,
    request_digest,
    to_wire,
)
from repro.serve.worker import run_worker, worker_ident

__all__ = [
    "JobManager",
    "ReproServer",
    "ServeClient",
    "ShardManifest",
    "SimulateRequest",
    "SweepRequest",
    "WIRE_SCHEMA",
    "from_wire",
    "request_digest",
    "run_sharded_sweep",
    "run_worker",
    "serve_forever",
    "to_wire",
    "worker_ident",
]
