"""A stdlib ``urllib`` client for the ``repro serve`` wire API.

Thin by design: every method maps onto exactly one endpoint of
:mod:`repro.serve.server` and traffics in the same ``repro-wire/1``
records, so the client needs no schema layer of its own. HTTP failures
and error answers surface as :class:`~repro.errors.ServeError` carrying
the HTTP status (0 when the daemon was unreachable).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator

from repro.errors import ServeError
from repro.serve import wire


class ServeClient:
    """Client for one ``repro serve`` daemon, e.g.
    ``ServeClient("http://127.0.0.1:8732")``."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def _request(self, path: str, body: dict | None = None):
        url = f"{self.base_url}{path}"
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body, sort_keys=True).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read()).get("error", "")
            except (ValueError, AttributeError):
                detail = ""
            message = detail or f"{exc.code} {exc.reason}"
            raise ServeError(f"{url}: {message}",
                             status=exc.code) from None
        except (urllib.error.URLError, OSError) as exc:
            raise ServeError(
                f"cannot reach {url}: {exc}; is `repro serve` running?"
            ) from None

    def _json(self, path: str, body: dict | None = None) -> dict:
        with self._request(path, body) as response:
            return json.loads(response.read())

    # -- endpoints ----------------------------------------------------------

    def ping(self) -> dict:
        """Liveness + schema check; raises :class:`ServeError` when down."""
        answer = self._json("/v1/ping")
        schema = answer.get("schema")
        if schema != wire.WIRE_SCHEMA:
            raise ServeError(
                f"{self.base_url} speaks {schema!r}, this client speaks "
                f"{wire.WIRE_SCHEMA!r}")
        return answer

    def submit(self, request) -> dict:
        """POST one request; returns the job status (with ``id``).

        ``request`` may be a :class:`~repro.serve.wire.SimulateRequest`,
        a :class:`~repro.serve.wire.SweepRequest`, or an already-encoded
        wire record. A resubmission of an identical request comes back
        with ``deduplicated: true`` and the original job's id.
        """
        record = request if isinstance(request, dict) \
            else wire.request_to_wire(request)
        return self._json("/v1/jobs", body=record)

    def jobs(self) -> list[dict]:
        return self._json("/v1/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._json(f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The finished job's results; 409 → :class:`ServeError` if not."""
        return self._json(f"/v1/jobs/{job_id}/result")

    def events(self, job_id: str, start: int = 0) -> Iterator[dict]:
        """Stream the job's NDJSON progress events (follows a live job)."""
        with self._request(f"/v1/jobs/{job_id}/events?start={start}") \
                as response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)

    def wait(self, job_id: str, timeout: float | None = None,
             poll_seconds: float = 0.2) -> dict:
        """Poll until the job leaves queued/running; returns its status."""
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["state"] not in ("queued", "running"):
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise ServeError(
                    f"{job_id} still {status['state']} after {timeout:.1f}s")
            time.sleep(poll_seconds)

    def run(self, request, timeout: float | None = None) -> dict:
        """Submit, wait, and fetch results in one call (CLI convenience)."""
        status = self.submit(request)
        final = self.wait(status["id"], timeout=timeout)
        result = self.result(status["id"])
        result["deduplicated"] = status.get("deduplicated", False)
        result.update({"cached_jobs": final["cached_jobs"],
                       "executed_jobs": final["executed_jobs"]})
        return result


__all__ = ["ServeClient"]
