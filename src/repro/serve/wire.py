"""The versioned ``repro-wire/1`` JSON schema for everything that travels.

Before this module there were three ad-hoc JSON shapes in the tree:
checkpoint-manifest lines (``repro-sweep-checkpoint/1``), the versioned
``RunStats.to_dict`` payload, and the job specs the CLI/api accepted as
dicts. This module unifies them behind one envelope so the job server,
the shard manifest, and the checkpoint files all speak one language::

    {"schema": "repro-wire/1", "kind": <kind>, ...}

Kinds
=====

=================  =========================================================
kind               payload
=================  =========================================================
job                one :class:`~repro.harness.sweep.SweepJob` spec, plus its
                   ``key`` and ``config_digest`` for manifest matching
claim              a worker's bid to execute one job (``key``/``digest`` +
                   ``worker`` ident); first claim line in the file wins
result             a completed :class:`~repro.harness.sweep.JobResult`:
                   job key/digest + the versioned ``RunStats.to_dict``
                   payload (bit-identical round trip)
failure            a quarantined job (worker-side failure record)
simulate-request   one ``api.simulate`` call by value
sweep-request      one ``api.sweep`` call by value (a list of job specs
                   plus worker/shard counts and retry policy)
=================  =========================================================

Compatibility: :func:`parse_line` additionally accepts the legacy
``repro-sweep-checkpoint/1`` records PR 4 wrote and normalizes them into
``result`` records, so existing manifests keep resuming bit-identically.
Torn or foreign lines parse to ``None``, never raise — append-only files
written by crashing workers must stay loadable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields

from repro.errors import ConfigError, did_you_mean
from repro.harness.sweep import JobResult, SweepJob
from repro.simt.gpu import RunStats

#: Schema tag carried by every wire record.
WIRE_SCHEMA = "repro-wire/1"

#: The checkpoint schema PR 4 wrote; still accepted on read.
LEGACY_CHECKPOINT_SCHEMA = "repro-sweep-checkpoint/1"

_JOB_FIELDS = tuple(f.name for f in fields(SweepJob))


@dataclass(frozen=True)
class SimulateRequest:
    """One ``api.simulate`` call, by value (the server-side job spec).

    Mirrors the keyword surface of :func:`repro.api.simulate` minus the
    things that cannot travel (a prepared ``Workload`` object, a live
    ``TraceSession``).
    """

    scene: str
    mode: str
    preset: str = "fast"
    ray_kind: str = "primary"
    seed: int = 0
    max_cycles: int | None = None
    fast_forward: bool | None = None
    executor: str | None = None
    scheduler: str | None = None

    def to_job(self) -> SweepJob:
        """The equivalent sweep job (one request == a one-job sweep)."""
        return SweepJob(scene=self.scene, mode=self.mode, preset=self.preset,
                        ray_kind=self.ray_kind, seed=self.seed,
                        max_cycles=self.max_cycles,
                        fast_forward=self.fast_forward,
                        executor=self.executor, scheduler=self.scheduler)


@dataclass(frozen=True)
class SweepRequest:
    """One ``api.sweep`` call, by value.

    ``jobs_n`` picks the in-process worker-pool size (the ``--jobs`` knob);
    ``shards`` > 1 instead fans the sweep over that many *worker
    processes* claiming from a shared manifest (see
    :func:`repro.serve.manifest.run_sharded_sweep`). ``retries`` and
    ``job_timeout`` feed the sweep's :class:`~repro.harness.sweep.RetryPolicy`.
    """

    jobs: tuple[SweepJob, ...]
    jobs_n: int | None = None
    shards: int = 0
    retries: int = 3
    job_timeout: float | None = None

    def __post_init__(self):
        if not self.jobs:
            raise ConfigError("a sweep request needs at least one job")
        object.__setattr__(self, "jobs", tuple(self.jobs))
        if self.shards < 0:
            raise ConfigError(f"shards must be >= 0, got {self.shards}")
        if self.retries < 1:
            raise ConfigError(f"retries must be >= 1, got {self.retries}")


# -- encoding ----------------------------------------------------------------


def job_to_wire(job: SweepJob) -> dict:
    record = {"schema": WIRE_SCHEMA, "kind": "job",
              "key": list(job.key), "digest": job.config_digest()}
    record.update(asdict(job))
    return record


def claim_to_wire(job: SweepJob, worker: str) -> dict:
    """A worker's bid for one job; ties resolve by file order (first wins)."""
    return {"schema": WIRE_SCHEMA, "kind": "claim", "key": list(job.key),
            "digest": job.config_digest(), "worker": str(worker)}


def result_to_wire(result: JobResult) -> dict:
    """A completed job, embedding the versioned ``RunStats`` payload.

    Carries the full job spec too, so a result line can be rehydrated
    standalone (the shard driver merges results for jobs *it* enumerated,
    but a human or a cross-host tool only has the file).
    """
    return {
        "schema": WIRE_SCHEMA,
        "kind": "result",
        "key": list(result.job.key),
        "preset": result.job.preset,
        "digest": result.job.config_digest(),
        "job": asdict(result.job),
        "num_rays": result.num_rays,
        "verified": result.verified,
        "wall_seconds": result.wall_seconds,
        "stats": result.stats.to_dict(),
    }


def failure_to_wire(job: SweepJob, kind: str, error: str,
                    attempts: int = 1) -> dict:
    return {"schema": WIRE_SCHEMA, "kind": "failure", "key": list(job.key),
            "digest": job.config_digest(), "failure_kind": str(kind),
            "error": str(error), "attempts": int(attempts)}


def request_to_wire(request: SimulateRequest | SweepRequest) -> dict:
    if isinstance(request, SimulateRequest):
        record = {"schema": WIRE_SCHEMA, "kind": "simulate-request"}
        record.update(asdict(request))
        return record
    if isinstance(request, SweepRequest):
        return {
            "schema": WIRE_SCHEMA,
            "kind": "sweep-request",
            "jobs": [asdict(job) for job in request.jobs],
            "jobs_n": request.jobs_n,
            "shards": request.shards,
            "retries": request.retries,
            "job_timeout": request.job_timeout,
        }
    raise ConfigError(f"not a wire request: {type(request).__name__}")


def to_wire(obj) -> dict:
    """Encode any wire-capable object as a ``repro-wire/1`` record."""
    if isinstance(obj, SweepJob):
        return job_to_wire(obj)
    if isinstance(obj, JobResult):
        return result_to_wire(obj)
    if isinstance(obj, (SimulateRequest, SweepRequest)):
        return request_to_wire(obj)
    if isinstance(obj, RunStats):
        return {"schema": WIRE_SCHEMA, "kind": "stats",
                "stats": obj.to_dict()}
    raise ConfigError(
        f"cannot encode {type(obj).__name__} as a wire record; expected "
        f"SweepJob, JobResult, SimulateRequest, SweepRequest, or RunStats")


def dump_line(obj) -> str:
    """One canonical JSONL line (sorted keys, no trailing newline)."""
    record = obj if isinstance(obj, dict) else to_wire(obj)
    return json.dumps(record, sort_keys=True)


# -- decoding ----------------------------------------------------------------


def _dataclass_from(cls, data: dict, *, what: str):
    """Strictly build a dataclass from wire fields (typo'd keys raise)."""
    names = {f.name for f in fields(cls)}
    unknown = [key for key in data if key not in names]
    if unknown:
        raise ConfigError(f"unknown {what} field {unknown[0]!r}."
                          f"{did_you_mean(unknown[0], names)}")
    return cls(**data)


def job_from_wire(record: dict) -> SweepJob:
    data = {name: record[name] for name in _JOB_FIELDS if name in record}
    missing = [name for name in ("scene", "mode", "preset")
               if name not in data]
    if missing:
        raise ConfigError(f"job record is missing {missing[0]!r}")
    job = _dataclass_from(SweepJob, data, what="job")
    digest = record.get("digest")
    if digest is not None and digest != job.config_digest():
        raise ConfigError(
            f"job record digest {digest!r} does not match the spec "
            f"({job.config_digest()!r}); the manifest was written by an "
            f"incompatible build")
    return job


def _result_field(record: dict, name: str, convert):
    """Extract + convert one result field, diagnosing instead of raising raw.

    A missing key gets the wire format's did-you-mean treatment (catching
    the ``wall_secondss`` class of hand-edited manifest typo); a present
    but unconvertible value names the field and the offending value. Both
    raise :class:`~repro.errors.ConfigError`, which every manifest loader
    already treats as "skip or recompute this record" — never a bare
    ``KeyError``/``ValueError`` escaping to the caller.
    """
    if name not in record:
        raise ConfigError(f"result record is missing {name!r}."
                          f"{did_you_mean(name, record.keys())}")
    try:
        return convert(record[name])
    except (TypeError, ValueError, KeyError) as exc:
        raise ConfigError(
            f"result record field {name!r} is malformed: "
            f"{record[name]!r} ({type(exc).__name__}: {exc})") from None


def result_from_wire(record: dict, job: SweepJob | None = None) -> JobResult:
    """Rehydrate a result record; ``RunStats`` round-trips bit-identically.

    ``job`` overrides the embedded spec (the resume path matches records
    by key+digest and wants *its* job object back, not a reparsed one).
    Malformed or legacy records raise :class:`~repro.errors.ConfigError`
    with a did-you-mean diagnostic, never a bare ``KeyError``.
    """
    if job is None:
        embedded = record.get("job")
        if embedded is None:
            raise ConfigError("result record embeds no job spec; pass job=")
        job = _dataclass_from(SweepJob, dict(embedded), what="job")
    return JobResult(job=job,
                     stats=_result_field(record, "stats", RunStats.from_dict),
                     num_rays=_result_field(record, "num_rays", int),
                     verified=_result_field(record, "verified", bool),
                     wall_seconds=_result_field(record, "wall_seconds",
                                                float))


def request_from_wire(record: dict) -> SimulateRequest | SweepRequest:
    kind = record.get("kind")
    body = {key: value for key, value in record.items()
            if key not in ("schema", "kind")}
    if kind == "simulate-request":
        return _dataclass_from(SimulateRequest, body,
                               what="simulate request")
    if kind == "sweep-request":
        jobs = body.pop("jobs", None)
        if not jobs:
            raise ConfigError("sweep request carries no jobs")
        body["jobs"] = tuple(
            _dataclass_from(SweepJob, dict(spec), what="job")
            for spec in jobs)
        return _dataclass_from(SweepRequest, body, what="sweep request")
    raise ConfigError(f"not a wire request record: kind={kind!r}")


def from_wire(record: dict):
    """Decode one wire record into its domain object.

    ``job``/``result``/requests come back as their dataclasses; ``claim``
    and ``failure`` records are protocol-level and come back as plain
    dicts (there is no richer domain object for them).
    """
    if not isinstance(record, dict):
        raise ConfigError(f"wire records are JSON objects, got "
                          f"{type(record).__name__}")
    schema = record.get("schema")
    if schema == LEGACY_CHECKPOINT_SCHEMA:
        record = normalize_legacy_checkpoint(record)
        schema = record["schema"]
    if schema != WIRE_SCHEMA:
        raise ConfigError(f"unsupported wire schema {schema!r} (this build "
                          f"reads {WIRE_SCHEMA})")
    kind = record.get("kind")
    if kind == "job":
        return job_from_wire(record)
    if kind == "result":
        return result_from_wire(record)
    if kind in ("simulate-request", "sweep-request"):
        return request_from_wire(record)
    if kind == "stats":
        return RunStats.from_dict(record["stats"])
    if kind in ("claim", "failure"):
        return dict(record)
    raise ConfigError(f"unknown wire record kind {kind!r}")


def normalize_legacy_checkpoint(record: dict) -> dict:
    """Lift a PR 4 ``repro-sweep-checkpoint/1`` line into a wire record.

    The legacy shape is exactly a ``result`` record without the envelope
    and without an embedded job spec; key, digest, and the stats payload
    carry over untouched, so resumed lookups stay bit-identical.
    """
    lifted = dict(record)
    lifted["schema"] = WIRE_SCHEMA
    lifted["kind"] = "result"
    return lifted


def parse_line(line: str) -> dict | None:
    """Parse one manifest line into a normalized wire record, or ``None``.

    Tolerates torn tail lines from interrupted writers, non-JSON noise,
    and foreign schemas — all of those return ``None`` (callers skip
    them). Legacy checkpoint lines are normalized so callers only ever
    see ``repro-wire/1`` records.
    """
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict):
        return None
    schema = record.get("schema")
    if schema == LEGACY_CHECKPOINT_SCHEMA:
        return normalize_legacy_checkpoint(record)
    if schema != WIRE_SCHEMA:
        return None
    return record


def record_key(record: dict) -> tuple:
    """The ``(job key, config digest)`` identity of a job-scoped record."""
    return (tuple(record["key"]), record["digest"])


def request_digest(request: SimulateRequest | SweepRequest | dict) -> str:
    """Content hash identifying a service request.

    Two submissions with byte-identical canonical wire encodings get the
    same digest — the job server uses this to serve a resubmitted request
    from its existing job (and its checkpoint) instead of recomputing.
    """
    record = request if isinstance(request, dict) \
        else request_to_wire(request)
    return hashlib.sha256(dump_line(record).encode()).hexdigest()[:16]
