"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
distinguishing the assembler, simulator, and rendering layers.
"""

from __future__ import annotations

import difflib


def did_you_mean(name: str, options) -> str:
    """`` Did you mean 'x'?`` suffix for an unknown-name error, or ``""``.

    Append to the message of a :class:`ConfigError` (or similar) raised for
    an unrecognized keyword so typos get an actionable fix instead of a
    bare rejection.
    """
    matches = difflib.get_close_matches(str(name), [str(o) for o in options],
                                        n=1)
    return f" Did you mean {matches[0]!r}?" if matches else ""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent simulator configuration."""


class AssemblerError(ReproError):
    """A syntax or semantic error while assembling kernel text."""

    def __init__(self, message: str, line_number: int | None = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class ProgramError(ReproError):
    """A structurally invalid program (bad label, missing kernel, ...)."""


class ExecutionError(ReproError):
    """A fault raised while functionally executing an instruction."""

    def __init__(self, message: str, pc: int | None = None):
        if pc is not None:
            message = f"pc={pc}: {message}"
        super().__init__(message)
        self.pc = pc


class MemoryError_(ReproError):
    """An out-of-range or malformed simulated memory access."""


class SchedulingError(ReproError):
    """The SM scheduler reached an inconsistent state (e.g. deadlock)."""


class SweepError(ReproError):
    """One or more sweep jobs permanently failed in ``strict`` mode.

    Carries the :class:`repro.harness.sweep.FailedJob` records as
    ``failures`` so callers that want the partial results anyway can
    re-run with ``strict=False`` instead of parsing the message.
    """

    def __init__(self, message: str, failures=()):
        super().__init__(message)
        self.failures = list(failures)


class ServeError(ReproError):
    """A job-service failure: a rejected request, a dead daemon, or an
    HTTP error answer from ``repro serve``.

    Carries the HTTP ``status`` (0 when the daemon was unreachable) so
    clients can distinguish "bad request" from "service down" without
    string-matching the message.
    """

    def __init__(self, message: str, status: int = 0):
        super().__init__(message)
        self.status = status


class FaultInjectionError(ReproError):
    """An error raised deliberately by the test fault injector.

    Never raised in production runs — only when ``REPRO_FAULT_SPEC`` (or an
    explicit :class:`repro.harness.sweep.FaultInjector`) asks a sweep job
    to fail, so the retry/quarantine/resume machinery can be exercised
    deterministically in CI.
    """


class SceneError(ReproError):
    """Invalid scene or acceleration-structure construction parameters."""
