"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

- ``experiments [--preset P] [--only table1,fig8,...] [--jobs N]
  [--checkpoint PATH] [--resume] [--retries N] [--job-timeout S]`` —
  regenerate the paper's tables and figures; ``--jobs`` fans the
  simulations over worker processes (default ``os.cpu_count()``,
  ``REPRO_JOBS`` override; results are bit-identical to ``--jobs 1``).
  Failed jobs retry with backoff and are quarantined, completed jobs
  stream into the checkpoint manifest, and ``--resume`` skips everything
  already checkpointed; the command exits non-zero (with a summary) when
  any job permanently fails or comes back unverified,
- ``run --scene S --mode M [--preset P] [--rays shadow] [--fast|--exact]
  [--executor E] [--scheduler S] [--profile [N]]`` — one simulation with
  full metrics (``--fast``, the default, uses the event-driven clock;
  ``--exact`` ticks every cycle; ``--executor``/``--scheduler`` pick the
  bit-identical execution backend and warp scheduler; ``--profile`` runs
  under cProfile and prints the top-N cumulative hot spots),
- ``render --scene S [--width W --height H] [--out f.ppm]`` — reference
  render of a benchmark scene,
- ``trace <scene> [--mode M] [--interval N] [--out trace.json]`` — run one
  simulation with cycle-attribution probes attached and export a Chrome
  ``trace_event`` file plus a stacked per-interval breakdown,
- ``fuzz [--cases N] [--seed S] [--models m1,m2] [--kinds k1,k2]
  [--backends b1,b2] [--schedulers s1,s2] [--replay PATH] [--out DIR]``
  — generative differential conformance:
  run randomly generated µ-kernel programs on every applicable SIMT
  model and compare against the MIMD reference (functional equivalence,
  metamorphic variants, structural counter identities). Divergences are
  auto-shrunk and written as JSON repro files to ``--out``; ``--replay``
  re-runs a corpus file or directory instead of generating,
- ``disasm {traditional|microkernels}`` — print a benchmark kernel's
  assembly,
- ``cache {info,clear}`` — inspect or empty the persistent workload cache
  (``$REPRO_CACHE_DIR``, default ``~/.cache/repro``),
- ``compare [--store DIR] [REV_A REV_B] [--tolerance T] [--metrics ...]``
  — print a rev-vs-rev (or latest-vs-previous) regression table from the
  ``repro-results/1`` store that ``REPRO_RESULTS_DIR`` runs record into;
  exits 1 when any metric regressed beyond the tolerance,
- ``serve [--host H] [--port P] [--checkpoint-dir DIR]`` — run the
  simulation job daemon (``POST /v1/jobs``, NDJSON event streams,
  checkpoint-backed instant answers; see :mod:`repro.serve.server`),
- ``submit --url URL --scene S --mode M [...]`` — submit one simulation
  to a running daemon and (by default) wait for its result,
- ``worker --manifest PATH [--once] [--id NAME]`` — claim and execute
  jobs from a shared shard manifest; point several workers (on any
  hosts sharing the filesystem) at the same file to split a sweep.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import api
from repro.analysis.divergence import breakdown_from_stats, render_breakdown
from repro.config import EXECUTORS, SCHEDULERS
from repro.harness import experiments
from repro.harness.presets import PRESETS, get_preset
from repro.harness.runner import MODES
from repro.rt import BENCHMARK_SCENES
from repro.workloads import GRAPH_SCENES

#: Every scene a simulation verb accepts: the three rendering scenes plus
#: the procedural CSR graphs (rendering-only verbs keep BENCHMARK_SCENES).
SIM_SCENES = BENCHMARK_SCENES + GRAPH_SCENES

#: Every workload family: single-bounce ray batches, multi-bounce
#: roulette path tracing, and frontier BFS over the graph scenes.
RAY_KINDS = ("primary", "shadow", "reflection", "gi", "path", "bfs")


def _cmd_experiments(args) -> int:
    from repro.harness.sweep import (
        RetryPolicy,
        default_checkpoint_path,
        resolve_jobs,
        stderr_progress,
    )
    from repro.obs import render_sweep_summary

    preset = get_preset(args.preset)
    jobs = resolve_jobs(args.jobs)  # default: REPRO_JOBS, else all cores
    checkpoint = args.checkpoint or None
    if args.resume and checkpoint is None:
        # A stable per-preset default so plain `--resume` just works.
        checkpoint = str(default_checkpoint_path(
            f"experiments-{preset.name}"))
    retry = RetryPolicy(max_attempts=args.retries,
                        timeout_seconds=args.job_timeout)
    if args.csv_dir:
        for path in experiments.export_all_csv(preset, args.csv_dir,
                                               jobs=jobs):
            print(f"wrote {path}")
        return 0
    names = ([name.strip() for name in args.only.split(",")] if args.only
             else list(experiments.EXPERIMENTS))
    unknown = [name for name in names
               if name not in experiments.EXPERIMENTS]
    if unknown:
        print(f"unknown experiment {unknown[0]!r}; choose from "
              f"{', '.join(experiments.EXPERIMENTS)}", file=sys.stderr)
        return 2
    swept: list = []
    for _, data in experiments.run_selected(names, preset, jobs=jobs,
                                            progress=stderr_progress,
                                            strict=False, retry=retry,
                                            checkpoint=checkpoint,
                                            resume=args.resume,
                                            results_out=swept):
        print(data["render"])
        print()
    # Exit non-zero when any sweep job permanently failed or came back
    # unverified — a green exit code must mean every simulation is good.
    if swept and (swept[0].failures or swept[0].unverified):
        print(render_sweep_summary(swept[0]), file=sys.stderr)
        return 1
    return 0


def _cmd_cache(args) -> int:
    from repro.harness.cache import default_cache

    cache = default_cache()
    if args.verb == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entries from {cache.cache_dir}")
        return 0
    info = cache.info()
    del info["files"]  # keep `repro cache info` one screen tall
    print(json.dumps(info, indent=2, sort_keys=True))
    return 0


def _cmd_compare(args) -> int:
    from repro.errors import ConfigError
    from repro.results import (
        DEFAULT_METRICS,
        DEFAULT_TOLERANCE,
        compare_records,
        compare_revisions,
        render_comparison,
        revisions_in,
    )
    from repro.results.store import ResultsStore, default_store

    tolerance = DEFAULT_TOLERANCE if args.tolerance is None \
        else args.tolerance
    if args.store:
        store = ResultsStore(args.store)
    else:
        store = default_store()
        if store is None:
            print("no results store: pass --store DIR or set "
                  "REPRO_RESULTS_DIR", file=sys.stderr)
            return 2
    records = store.load()
    if not records:
        print(f"no records in {store.path}; record runs by setting "
              f"REPRO_RESULTS_DIR", file=sys.stderr)
        return 2
    metrics = tuple(name.strip() for name in args.metrics.split(",")) \
        if args.metrics else DEFAULT_METRICS
    revs = args.revs
    try:
        if len(revs) == 1:
            print("compare takes zero revisions (latest vs previous) or "
                  "two (REV_A REV_B), not one", file=sys.stderr)
            return 2
        if len(revs) == 2:
            comparison = compare_revisions(records, revs[0], revs[1],
                                           metrics=metrics,
                                           tolerance=tolerance)
        else:
            known = revisions_in(records)
            if len(known) >= 2:
                comparison = compare_revisions(records, known[-2], known[-1],
                                               metrics=metrics,
                                               tolerance=tolerance)
            else:
                # One revision only: compare each configuration's first
                # recorded run against its latest (run-vs-run drift).
                firsts: dict[str, dict] = {}
                for record in records:
                    firsts.setdefault(record.get("config_digest"), record)
                comparison = compare_records(list(firsts.values()), records,
                                             metrics=metrics,
                                             tolerance=tolerance)
    except ConfigError as exc:
        print(f"compare failed: {exc}", file=sys.stderr)
        return 2
    print(render_comparison(comparison, tolerance=tolerance))
    return 1 if comparison["regressions"] else 0


def _cmd_run(args) -> int:
    preset = get_preset(args.preset)
    def simulate():
        return api.simulate(args.scene, args.mode, preset=preset,
                            ray_kind=args.rays,
                            fast_forward=args.fast_forward,
                            executor=args.executor,
                            scheduler=args.scheduler)
    if args.profile:
        import cProfile
        import pstats

        # Prepare the workload outside the profile so the hot-spot table
        # shows the simulator loop, not scene construction or cache IO.
        api.prepare_workload(args.scene, preset, ray_kind=args.rays)
        profiler = cProfile.Profile()
        profiler.enable()
        result = simulate()
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(args.profile)
        if args.profile_out:
            stats.dump_stats(args.profile_out)
            print(f"wrote {args.profile_out} (load with pstats or snakeviz)")
    else:
        result = simulate()
    workload = result.workload
    clock = "fast" if args.fast_forward else "exact"
    print(f"scene={args.scene} rays={args.rays} mode={args.mode} "
          f"preset={preset.name} clock={clock} executor={args.executor} "
          f"scheduler={args.scheduler}")
    print(f"  cycles             {result.stats.cycles}")
    print(f"  IPC                {result.ipc:.2f}")
    print(f"  SIMT efficiency    {result.simt_efficiency:.3f}")
    print(f"  rays completed     {result.stats.rays_completed}"
          f"/{workload.num_rays}")
    print(f"  Mrays/s (30 SMs)   {result.rays_per_second / 1e6:.1f}")
    print(f"  DRAM read/write    {result.stats.dram_read_bytes}"
          f"/{result.stats.dram_write_bytes} bytes")
    print(f"  verified           {result.verify()}")
    if args.divergence:
        print(render_breakdown(breakdown_from_stats(result.stats)))
    return 0 if result.verify() else 1


def _cmd_render(args) -> int:
    import numpy as np

    from repro.rt import Camera, build_kdtree, make_scene, trace_rays
    from repro.rt.image import shade_hits

    scene = make_scene(args.scene, detail=args.detail)
    tree = build_kdtree(scene.triangles, max_depth=args.depth, leaf_size=8)
    camera = Camera.for_scene(scene)
    origins, directions = camera.primary_rays(args.width, args.height)
    result = trace_rays(tree, origins, directions)
    frame = shade_hits(args.width, args.height, scene.triangles,
                       result.triangle, result.t, directions)
    frame.write_ppm(args.out)
    hits = int(result.hit_mask.sum())
    print(f"{args.scene}: {scene.num_triangles} triangles, "
          f"{hits}/{origins.shape[0]} rays hit, wrote {args.out}")
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import (
        render_interval_plot,
        write_chrome_trace,
        write_intervals_csv,
        write_intervals_json,
    )

    result = api.simulate(args.scene, args.mode, preset=args.preset,
                          ray_kind=args.rays,
                          fast_forward=args.fast_forward,
                          probes=args.interval)
    session = result.trace
    path = write_chrome_trace(args.out, session)
    print(f"wrote {path} (open in chrome://tracing or ui.perfetto.dev)")
    if args.csv:
        print(f"wrote {write_intervals_csv(args.csv, session)}")
    if args.json:
        print(f"wrote {write_intervals_json(args.json, session, result.stats)}")
    summary = session.summary()
    print(f"scene={args.scene} rays={args.rays} mode={args.mode} "
          f"preset={args.preset} interval={session.interval}")
    print(f"  cycles             {summary['cycles']}")
    print(f"  intervals          {summary['intervals']}")
    print(f"  events             {summary['events']}"
          + (f" (+{summary['dropped_events']} dropped)"
             if summary["dropped_events"] else ""))
    print(f"  IPC                {result.ipc:.2f}")
    attribution = session.stall_attribution()
    print(f"  idle cycles        {attribution['idle_cycles']}")
    print(f"  stall cycles       {attribution['stall_cycles']}")
    print(render_interval_plot(session))
    return 0


def _cmd_fuzz(args) -> int:
    import os

    from repro.fuzz import (
        FUZZ_BACKENDS,
        FUZZ_MODELS,
        FUZZ_SCHEDULERS,
        load_case,
        load_corpus,
        run_case,
        run_fuzz,
        save_case,
        shrink_case,
    )
    from repro.fuzz.generator import CASE_KINDS

    models = None
    if args.models:
        models = tuple(name.strip() for name in args.models.split(","))
        unknown = [name for name in models if name not in FUZZ_MODELS]
        if unknown:
            print(f"unknown model {unknown[0]!r}; choose from "
                  f"{', '.join(FUZZ_MODELS)}", file=sys.stderr)
            return 2
    kinds = None
    if args.kinds:
        kinds = tuple(name.strip() for name in args.kinds.split(","))
        unknown = [name for name in kinds if name not in CASE_KINDS]
        if unknown:
            print(f"unknown kind {unknown[0]!r}; choose from "
                  f"{', '.join(CASE_KINDS)}", file=sys.stderr)
            return 2
    backends = None
    if args.backends:
        backends = tuple(name.strip() for name in args.backends.split(","))
        unknown = [name for name in backends if name not in FUZZ_BACKENDS]
        if unknown:
            print(f"unknown backend {unknown[0]!r}; choose from "
                  f"{', '.join(FUZZ_BACKENDS)}", file=sys.stderr)
            return 2
    schedulers = None
    if args.schedulers:
        schedulers = tuple(name.strip()
                           for name in args.schedulers.split(","))
        unknown = [name for name in schedulers
                   if name not in FUZZ_SCHEDULERS]
        if unknown:
            print(f"unknown scheduler {unknown[0]!r}; choose from "
                  f"{', '.join(FUZZ_SCHEDULERS)}", file=sys.stderr)
            return 2

    if args.replay:
        if os.path.isdir(args.replay):
            entries = load_corpus(args.replay)
        else:
            entries = [(args.replay, load_case(args.replay))]
        if not entries:
            print(f"no corpus files under {args.replay}", file=sys.stderr)
            return 2
        failed = 0
        for path, case in entries:
            result = run_case(case, models=models, backends=backends,
                              schedulers=schedulers)
            status = ("skip" if result.skipped
                      else "ok" if result.ok else "FAIL")
            print(f"{status:5s} {path} ({case.describe()})")
            for failure in result.failures:
                print(f"      {failure}")
            failed += bool(result.failures)
        print(f"replayed {len(entries)} case(s), {failed} failure(s)")
        return 1 if failed else 0

    def progress(index, result):
        if not args.quiet:
            mark = "s" if result.skipped else "." if result.ok else "F"
            print(mark, end="", flush=True)
            if (index + 1) % 50 == 0:
                print(f" {index + 1}/{args.cases}")

    report = run_fuzz(args.cases, args.seed, models=models, kinds=kinds,
                      backends=backends, schedulers=schedulers,
                      on_case=progress)
    if not args.quiet:
        print()
    print(f"ran {report.cases_run} case(s), {report.skipped} skipped, "
          f"{len(report.failures)} with divergences")
    if report.ok:
        return 0
    os.makedirs(args.out, exist_ok=True)
    for result in report.failures:
        case = result.case
        for failure in result.failures[:4]:
            print(f"  seed={case.seed}: {failure}")
        if args.shrink:
            def still_fails(candidate):
                # Re-runs the oracle with the same backend and scheduler
                # pairs, so a backend- or scheduler-only divergence keeps
                # reproducing as it shrinks.
                return bool(run_case(candidate, models=models,
                                     backends=backends,
                                     schedulers=schedulers).failures)
            case = shrink_case(case, still_fails,
                               max_evals=args.max_shrink_evals)
        path = os.path.join(args.out, f"case-{case.seed}.json")
        save_case(case, path)
        print(f"  wrote {path} ({len(case.program)} instructions)")
    return 1


def _cmd_disasm(args) -> int:
    from repro.isa import disassemble
    from repro.kernels.microkernels import microkernel_program
    from repro.kernels.traditional import traditional_program

    program = (traditional_program() if args.kernel == "traditional"
               else microkernel_program())
    print(disassemble(program))
    return 0


def _cmd_serve(args) -> int:
    from repro.serve.server import serve_forever

    def ready(url):
        print(f"repro serve listening on {url} "
              f"(POST {url}/v1/jobs)", flush=True)

    return serve_forever(host=args.host, port=args.port,
                         checkpoint_dir=args.checkpoint_dir or None,
                         verbose=args.verbose, ready=ready)


def _cmd_worker(args) -> int:
    from repro.errors import ConfigError
    from repro.harness.sweep import RetryPolicy, stderr_progress
    from repro.serve.worker import run_worker

    try:
        executed = run_worker(args.manifest, worker=args.id or None,
                              poll_seconds=args.poll, once=args.once,
                              retry=RetryPolicy(max_attempts=args.retries),
                              progress=stderr_progress)
    except ConfigError as exc:
        print(f"worker failed: {exc}", file=sys.stderr)
        return 2
    print(f"executed {executed} job(s) from {args.manifest}")
    return 0


def _cmd_submit(args) -> int:
    from repro.errors import ServeError
    from repro.serve.client import ServeClient
    from repro.serve.wire import SimulateRequest

    client = ServeClient(args.url, timeout=args.http_timeout)
    request = SimulateRequest(
        scene=args.scene, mode=args.mode, preset=args.preset,
        ray_kind=args.rays, seed=args.seed,
        executor=args.executor or None, scheduler=args.scheduler or None)
    try:
        if args.no_wait:
            status = client.submit(request)
            print(json.dumps(status, indent=2, sort_keys=True))
            return 0
        answer = client.run(request, timeout=args.timeout)
    except ServeError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(answer, indent=2, sort_keys=True))
    return 0 if answer["state"] == "done" else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="regenerate tables/figures")
    p_exp.add_argument("--preset", default="fast", choices=sorted(PRESETS))
    p_exp.add_argument("--only", default="",
                       help="comma-separated subset, e.g. table1,fig8")
    p_exp.add_argument("--csv-dir", default="",
                       help="write figure/table data as CSV files here "
                            "instead of printing")
    p_exp.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for the simulation sweep "
                            "(default: REPRO_JOBS or all cores; 1 = serial; "
                            "results are bit-identical either way)")
    p_exp.add_argument("--checkpoint", default="", metavar="PATH",
                       help="stream completed sweep jobs into this JSONL "
                            "manifest (enables crash-safe restarts)")
    p_exp.add_argument("--resume", action="store_true",
                       help="skip jobs already recorded in the checkpoint "
                            "manifest (default manifest: "
                            "<cache-dir>/checkpoints/experiments-<preset>"
                            ".jsonl); resumed results are bit-identical")
    p_exp.add_argument("--retries", type=int, default=3, metavar="N",
                       help="executions per job before it is quarantined "
                            "(default 3; failures exit non-zero)")
    p_exp.add_argument("--job-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-job wall-clock budget; hung jobs are "
                            "killed and retried (default: no timeout)")
    p_exp.set_defaults(func=_cmd_experiments)

    p_run = sub.add_parser("run", help="simulate one workload/mode pair")
    p_run.add_argument("--scene", default="conference",
                       choices=SIM_SCENES)
    p_run.add_argument("--mode", default="spawn", choices=MODES)
    p_run.add_argument("--preset", default="fast", choices=sorted(PRESETS))
    p_run.add_argument("--rays", default="primary", choices=RAY_KINDS)
    p_run.add_argument("--divergence", action="store_true",
                       help="print the warp-occupancy breakdown")
    p_run.add_argument("--executor", default="reference",
                       choices=EXECUTORS,
                       help="instruction-execution backend (default "
                            "reference; batched is bit-identical)")
    p_run.add_argument("--scheduler", default="scan", choices=SCHEDULERS,
                       help="warp-scheduler implementation (default scan; "
                            "calendar is bit-identical and event-driven)")
    p_run.add_argument("--profile", type=int, nargs="?", const=25, default=0,
                       metavar="N",
                       help="run under cProfile and print the top N "
                            "cumulative hot spots (default 25 with no "
                            "value); workload preparation is excluded")
    p_run.add_argument("--profile-out", default="", metavar="PATH",
                       help="with --profile, also dump the raw pstats "
                            "data here for later analysis")
    clock = p_run.add_mutually_exclusive_group()
    clock.add_argument("--fast", dest="fast_forward", action="store_true",
                       help="event-driven clock: skip idle cycles (default)")
    clock.add_argument("--exact", dest="fast_forward", action="store_false",
                       help="tick every cycle (reference mode; statistics "
                            "are identical to --fast)")
    p_run.set_defaults(func=_cmd_run, fast_forward=True)

    p_trace = sub.add_parser("trace",
                             help="simulate with probes; export a trace")
    p_trace.add_argument("scene", choices=SIM_SCENES)
    p_trace.add_argument("--mode", default="spawn", choices=MODES)
    p_trace.add_argument("--preset", default="fast", choices=sorted(PRESETS))
    p_trace.add_argument("--rays", default="primary", choices=RAY_KINDS)
    p_trace.add_argument("--interval", type=int, default=512, metavar="N",
                         help="cycles per metrics interval (default 512)")
    p_trace.add_argument("--out", default="trace.json",
                         help="Chrome trace_event output path")
    p_trace.add_argument("--csv", default="",
                         help="also write the interval table as CSV here")
    p_trace.add_argument("--json", default="",
                         help="also write intervals + stats as JSON here")
    t_clock = p_trace.add_mutually_exclusive_group()
    t_clock.add_argument("--fast", dest="fast_forward", action="store_true",
                         help="event-driven clock (default; interval "
                              "metrics are identical to --exact)")
    t_clock.add_argument("--exact", dest="fast_forward",
                         action="store_false", help="tick every cycle")
    p_trace.set_defaults(func=_cmd_trace, fast_forward=True)

    p_render = sub.add_parser("render", help="reference-render a scene")
    p_render.add_argument("--scene", default="conference",
                          choices=BENCHMARK_SCENES)
    p_render.add_argument("--width", type=int, default=64)
    p_render.add_argument("--height", type=int, default=64)
    p_render.add_argument("--detail", type=float, default=0.5)
    p_render.add_argument("--depth", type=int, default=13)
    p_render.add_argument("--out", default="render.ppm")
    p_render.set_defaults(func=_cmd_render)

    p_fuzz = sub.add_parser(
        "fuzz", help="differential conformance fuzzing of the SIMT models")
    p_fuzz.add_argument("--cases", type=int, default=100, metavar="N",
                        help="number of generated cases (default 100)")
    p_fuzz.add_argument("--seed", type=int, default=0, metavar="S",
                        help="campaign seed; same (cases, seed) replays the "
                             "identical campaign (default 0)")
    p_fuzz.add_argument("--models", default="", metavar="M1,M2",
                        help="comma-separated model subset "
                             "(default: all applicable per case)")
    p_fuzz.add_argument("--backends", default="", metavar="B1,B2",
                        help="comma-separated executor backends to "
                             "differentiate, e.g. reference,batched "
                             "(default: all; first entry is primary)")
    p_fuzz.add_argument("--schedulers", default="", metavar="S1,S2",
                        help="comma-separated warp schedulers to "
                             "differentiate, e.g. scan,calendar "
                             "(default: all; first entry is primary)")
    p_fuzz.add_argument("--kinds", default="", metavar="K1,K2",
                        help="restrict generated program kinds "
                             "(plain,spawn,barrier)")
    p_fuzz.add_argument("--replay", default="", metavar="PATH",
                        help="replay a corpus JSON file or directory "
                             "instead of generating cases")
    p_fuzz.add_argument("--out", default="fuzz-failures", metavar="DIR",
                        help="directory for shrunk failing-case JSON files "
                             "(default fuzz-failures)")
    p_fuzz.add_argument("--no-shrink", dest="shrink", action="store_false",
                        help="write failing cases without shrinking them")
    p_fuzz.add_argument("--max-shrink-evals", type=int, default=300,
                        metavar="N", help="shrinker evaluation budget per "
                                          "case (default 300)")
    p_fuzz.add_argument("--quiet", action="store_true",
                        help="suppress per-case progress marks")
    p_fuzz.set_defaults(func=_cmd_fuzz, shrink=True)

    p_dis = sub.add_parser("disasm", help="print a benchmark kernel")
    p_dis.add_argument("kernel", choices=("traditional", "microkernels"))
    p_dis.set_defaults(func=_cmd_disasm)

    p_cache = sub.add_parser("cache",
                             help="inspect or clear the workload cache")
    p_cache.add_argument("verb", choices=("info", "clear"))
    p_cache.set_defaults(func=_cmd_cache)

    p_cmp = sub.add_parser(
        "compare",
        help="rev-vs-rev regression table from the results store")
    p_cmp.add_argument("revs", nargs="*", metavar="REV",
                       help="two git revisions (baseline, candidate); with "
                            "none, compares the two most recent revisions "
                            "in the store (or first-vs-latest run when the "
                            "store holds a single revision)")
    p_cmp.add_argument("--store", default="", metavar="DIR",
                       help="results store directory (default: "
                            "REPRO_RESULTS_DIR)")
    p_cmp.add_argument("--tolerance", type=float, default=None,
                       metavar="FRACTION",
                       help="relative shortfall tolerated per metric before "
                            "it counts as a regression (default 0.05)")
    p_cmp.add_argument("--metrics", default="", metavar="M1,M2",
                       help="comma-separated metric subset (default: "
                            "cycles_per_second,simt_efficiency,"
                            "rays_per_second)")
    p_cmp.set_defaults(func=_cmd_compare)

    p_serve = sub.add_parser("serve", help="run the simulation job daemon")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8732,
                         help="TCP port (default 8732; 0 picks a free one)")
    p_serve.add_argument("--checkpoint-dir", default="", metavar="DIR",
                         help="directory for per-request checkpoint "
                              "manifests (default: REPRO_CHECKPOINT_DIR or "
                              "<cache-dir>/checkpoints); resubmitted "
                              "requests answer from here without "
                              "re-simulating")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every HTTP request to stderr")
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit one simulation to a running daemon")
    p_submit.add_argument("--url", default="http://127.0.0.1:8732",
                          help="daemon base URL (default "
                               "http://127.0.0.1:8732)")
    p_submit.add_argument("--scene", default="conference",
                          choices=SIM_SCENES)
    p_submit.add_argument("--mode", default="spawn", choices=MODES)
    p_submit.add_argument("--preset", default="fast",
                          choices=sorted(PRESETS))
    p_submit.add_argument("--rays", default="primary", choices=RAY_KINDS)
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--executor", default="", choices=("",) + EXECUTORS,
                          help="execution backend override (default: the "
                               "server-side default, reference)")
    p_submit.add_argument("--scheduler", default="",
                          choices=("",) + SCHEDULERS,
                          help="warp-scheduler override (default: scan)")
    p_submit.add_argument("--no-wait", action="store_true",
                          help="print the job status and exit instead of "
                               "waiting for the result")
    p_submit.add_argument("--timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="give up waiting after this long "
                               "(default: wait forever)")
    p_submit.add_argument("--http-timeout", type=float, default=30.0,
                          metavar="SECONDS",
                          help="per-request socket timeout (default 30)")
    p_submit.set_defaults(func=_cmd_submit)

    p_worker = sub.add_parser(
        "worker", help="claim and execute jobs from a shard manifest")
    p_worker.add_argument("--manifest", required=True, metavar="PATH",
                          help="shared JSONL shard manifest (see "
                               "repro.serve.manifest)")
    p_worker.add_argument("--id", default="", metavar="NAME",
                          help="claim ident (default: a unique "
                               "host-pid-time ident)")
    p_worker.add_argument("--once", action="store_true",
                          help="exit when no open job remains instead of "
                               "polling for new ones")
    p_worker.add_argument("--retries", type=int, default=3, metavar="N",
                          help="executions per claimed job before a "
                               "failure record is written (default 3)")
    p_worker.add_argument("--poll", type=float, default=0.5,
                          metavar="SECONDS",
                          help="manifest poll interval when idle "
                               "(default 0.5)")
    p_worker.set_defaults(func=_cmd_worker)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
