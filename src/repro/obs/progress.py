"""Thread-safe progress event logs for long-running service jobs.

The job server (:mod:`repro.serve.server`) runs each submitted job on a
worker thread and needs to hand its progress lines to any number of
concurrent HTTP readers — including readers that connect *while* the job
is still running and want to stream the tail (``GET
/v1/jobs/<id>/events``). :class:`EventLog` is the buffer between them:
writers :meth:`emit` structured events, readers either :meth:`snapshot`
the history or :meth:`follow` it live until the log is :meth:`close`-d.

Events are plain dicts (``{"seq": N, "message": ...}`` plus whatever
fields the writer attached) so they serialize straight to NDJSON without
a schema layer; ordering is the append order and ``seq`` is dense, which
lets a reconnecting reader resume exactly where it stopped.

Memory is bounded: a log constructed with ``max_events=N`` keeps only the
newest ``N`` events (a ring), so a sweep that emits one line per job can
run for days inside the daemon without growing its heap. Eviction is
explicit, never silent — :attr:`dropped` counts evicted events, and a
reader that asks for history older than the ring (``snapshot(0)`` after
eviction, or a ``follow`` resuming too far back) first receives a
synthetic ``dropped``-marker event telling it exactly how many events it
missed and where the retained history resumes. ``max_events=None`` keeps
the original unbounded behaviour.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterator


class EventLog:
    """An append-only, closeable event buffer with live followers.

    All methods are thread-safe. ``max_events`` bounds the retained
    history (oldest events are evicted and counted in :attr:`dropped`);
    ``None`` retains everything — fine for CLI-lifetime logs, wrong for
    daemon jobs (the server caps its per-job logs). Anything truly
    unbounded (per-cycle telemetry) belongs in
    :class:`repro.obs.probe.TraceSession`, not here.
    """

    def __init__(self, max_events: int | None = None):
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1 or None, "
                             f"got {max_events}")
        self.max_events = max_events
        self._events: deque[dict] = deque(maxlen=max_events)
        self._next_seq = 0
        self._closed = False
        self._cond = threading.Condition()

    def emit(self, message: str, **fields) -> dict:
        """Append one event; returns the stored record (with its seq)."""
        with self._cond:
            if self._closed:
                raise RuntimeError("EventLog is closed; no further events "
                                   "may be emitted")
            event = {"seq": self._next_seq, "message": str(message)}
            event.update(fields)
            self._next_seq += 1
            self._events.append(event)  # deque evicts the oldest if full
            self._cond.notify_all()
            return event

    def close(self) -> None:
        """Mark the log complete and wake every follower. Idempotent."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    @property
    def dropped(self) -> int:
        """Events evicted from the ring so far (0 while unbounded)."""
        with self._cond:
            return self._first_seq()

    def __len__(self) -> int:
        """Total events ever emitted (dropped ones included)."""
        with self._cond:
            return self._next_seq

    def _first_seq(self) -> int:
        # seq of the oldest retained event == how many were evicted.
        return self._next_seq - len(self._events)

    def _dropped_marker(self, start: int, first: int) -> dict:
        return {
            "seq": start,
            "message": (f"[dropped] {first - start} event(s) evicted from "
                        f"the ring buffer; resuming at seq {first}"),
            "dropped": first - start,
            "resume_seq": first,
        }

    def snapshot(self, start: int = 0) -> list[dict]:
        """Copy of the events from ``start`` onward (no blocking).

        If events at/after ``start`` were already evicted, the first
        element is a synthetic ``dropped``-marker (fields ``dropped`` and
        ``resume_seq``) followed by the retained tail.
        """
        with self._cond:
            first = self._first_seq()
            tail = [event for event in self._events
                    if event["seq"] >= start]
            if start < first:
                return [self._dropped_marker(start, first)] + tail
            return tail

    def follow(self, start: int = 0,
               poll_seconds: float = 0.25) -> Iterator[dict]:
        """Yield events from ``start`` onward until the log closes.

        Blocks between events (waking at least every ``poll_seconds`` so
        a streaming HTTP handler can notice a dead client) and returns
        once every event has been yielded *and* the log is closed — a
        follower never misses a tail event emitted just before close.

        A follower that falls behind a bounded log (or resumes from a
        ``start`` already evicted) receives a synthetic
        ``dropped``-marker event before the stream continues from the
        oldest retained event — the gap is surfaced, never silent.
        """
        position = start
        while True:
            with self._cond:
                while position >= self._next_seq and not self._closed:
                    self._cond.wait(timeout=poll_seconds)
                first = self._first_seq()
                batch: list[dict] = []
                if position < first:
                    batch.append(self._dropped_marker(position, first))
                    position = first
                batch.extend(event for event in self._events
                             if event["seq"] >= position)
                position = self._next_seq
                finished = self._closed and position >= self._next_seq
            yield from batch
            if finished:
                return


__all__ = ["EventLog"]
