"""Thread-safe progress event logs for long-running service jobs.

The job server (:mod:`repro.serve.server`) runs each submitted job on a
worker thread and needs to hand its progress lines to any number of
concurrent HTTP readers — including readers that connect *while* the job
is still running and want to stream the tail (``GET
/v1/jobs/<id>/events``). :class:`EventLog` is the buffer between them:
writers :meth:`emit` structured events, readers either :meth:`snapshot`
the history or :meth:`follow` it live until the log is :meth:`close`-d.

Events are plain dicts (``{"seq": N, "message": ...}`` plus whatever
fields the writer attached) so they serialize straight to NDJSON without
a schema layer; ordering is the append order and ``seq`` is dense, which
lets a reconnecting reader resume exactly where it stopped.
"""

from __future__ import annotations

import threading
from typing import Iterator


class EventLog:
    """An append-only, closeable event buffer with live followers.

    All methods are thread-safe. The log never drops events — service
    jobs emit tens of lines, not millions; anything unbounded (per-cycle
    telemetry) belongs in :class:`repro.obs.probe.TraceSession`, not here.
    """

    def __init__(self):
        self._events: list[dict] = []
        self._closed = False
        self._cond = threading.Condition()

    def emit(self, message: str, **fields) -> dict:
        """Append one event; returns the stored record (with its seq)."""
        with self._cond:
            if self._closed:
                raise RuntimeError("EventLog is closed; no further events "
                                   "may be emitted")
            event = {"seq": len(self._events), "message": str(message)}
            event.update(fields)
            self._events.append(event)
            self._cond.notify_all()
            return event

    def close(self) -> None:
        """Mark the log complete and wake every follower. Idempotent."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._events)

    def snapshot(self, start: int = 0) -> list[dict]:
        """Copy of the events from ``start`` onward (no blocking)."""
        with self._cond:
            return list(self._events[start:])

    def follow(self, start: int = 0,
               poll_seconds: float = 0.25) -> Iterator[dict]:
        """Yield events from ``start`` onward until the log closes.

        Blocks between events (waking at least every ``poll_seconds`` so
        a streaming HTTP handler can notice a dead client) and returns
        once every event has been yielded *and* the log is closed — a
        follower never misses a tail event emitted just before close.
        """
        position = start
        while True:
            with self._cond:
                while position >= len(self._events) and not self._closed:
                    self._cond.wait(timeout=poll_seconds)
                batch = list(self._events[position:])
                finished = self._closed and \
                    position + len(batch) >= len(self._events)
            yield from batch
            position += len(batch)
            if finished:
                return


__all__ = ["EventLog"]
