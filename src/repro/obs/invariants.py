"""Structural invariants over run statistics and probe attributions.

The simulator's counters are not independent measurements: the SM issue
loop makes every cycle exactly one of issue/stall/idle, thread counts are
conserved across spawning, and the cycle-attribution probes are defined to
partition the idle/stall totals. This module states those identities as
checkable predicates. They hold for *every* program on *every* model, so
the conformance fuzzer (:mod:`repro.fuzz`) asserts them on each run — a
violated identity is a simulator bug even when the functional outputs
happen to agree.

Each checker returns a list of human-readable violation strings (empty
means the invariant holds) so callers can aggregate across checks without
try/except scaffolding.
"""

from __future__ import annotations

from repro.obs.constants import IDLE_CAUSES, STALL_CAUSES


def check_cycle_partition(per_sm) -> list[str]:
    """Per SM: every cycle is exactly one issue, stall, or idle cycle."""
    problems = []
    for sm_id, stats in enumerate(per_sm):
        accounted = (stats.issued_instructions + stats.idle_cycles
                     + stats.stall_cycles)
        if stats.cycles != accounted:
            problems.append(
                f"sm{sm_id}: cycles={stats.cycles} but issued+idle+stall="
                f"{stats.issued_instructions}+{stats.idle_cycles}+"
                f"{stats.stall_cycles}={accounted}")
    return problems


def check_thread_conservation(stats, recorder=None,
                              grid_threads=None) -> list[str]:
    """Every launched thread exits exactly once, and spawns are conserved.

    ``threads_launched`` counts dynamically admitted warps too (the SM
    launches them through the same path as grid warps), so the identities
    are ``exited == launched`` and — when the grid size is known —
    ``launched == grid_threads + spawned``. ``stats`` is an aggregate
    :class:`~repro.simt.stats.SMStats`; ``recorder`` is an optional
    :class:`~repro.simt.snapshot.SnapshotRecorder` whose independently
    counted exits and per-warp stack balances are cross-checked.
    """
    problems = []
    if stats.threads_exited != stats.threads_launched:
        problems.append(
            f"thread conservation: exited={stats.threads_exited} but "
            f"launched={stats.threads_launched}")
    if grid_threads is not None:
        expected = grid_threads + stats.threads_spawned
        if stats.threads_launched != expected:
            problems.append(
                f"spawn conservation: launched={stats.threads_launched} "
                f"but grid+spawned={grid_threads}+{stats.threads_spawned}"
                f"={expected}")
    if recorder is not None:
        if recorder.exit_count != stats.threads_exited:
            problems.append(
                f"snapshot exits={recorder.exit_count} disagree with "
                f"stats.threads_exited={stats.threads_exited}")
        for pushes, pops, left in recorder.unbalanced_warps():
            problems.append(
                f"reconvergence stack unbalanced on finished warp: "
                f"pushes={pushes} pops={pops} entries_left={left}")
    return problems


def check_stall_attribution(session, per_sm) -> list[str]:
    """The probe layer's per-cause cycles partition the stat totals.

    ``session`` is a finalized :class:`~repro.obs.probe.TraceSession`;
    ``per_sm`` the per-SM stats of the same run.
    """
    problems = []
    attribution = session.stall_attribution()
    stall_total = sum(int(stats.stall_cycles) for stats in per_sm)
    idle_total = sum(int(stats.idle_cycles) for stats in per_sm)
    stall_sum = sum(int(attribution[cause]) for cause in STALL_CAUSES)
    idle_sum = sum(int(attribution[cause]) for cause in IDLE_CAUSES)
    if int(attribution["stall_cycles"]) != stall_total:
        problems.append(
            f"attribution stall_cycles={attribution['stall_cycles']} but "
            f"stats record {stall_total}")
    if int(attribution["idle_cycles"]) != idle_total:
        problems.append(
            f"attribution idle_cycles={attribution['idle_cycles']} but "
            f"stats record {idle_total}")
    if stall_sum != int(attribution["stall_cycles"]):
        problems.append(
            f"stall causes sum to {stall_sum}, not "
            f"stall_cycles={attribution['stall_cycles']}")
    if idle_sum != int(attribution["idle_cycles"]):
        problems.append(
            f"idle causes sum to {idle_sum}, not "
            f"idle_cycles={attribution['idle_cycles']}")
    return problems


def check_run(stats, recorder=None, session=None,
              grid_threads=None) -> list[str]:
    """All structural invariants for one finished simulation.

    ``stats`` may be a :class:`~repro.simt.gpu.RunStats` (its ``per_sm``
    and aggregate ``sm_stats`` are used) or a bare
    :class:`~repro.simt.stats.SMStats` from a single-core model like DWF.
    """
    per_sm = getattr(stats, "per_sm", None)
    aggregate = getattr(stats, "sm_stats", stats)
    if per_sm is None:
        per_sm = [aggregate]
    problems = check_cycle_partition(per_sm)
    problems += check_thread_conservation(aggregate, recorder, grid_threads)
    if session is not None:
        problems += check_stall_attribution(session, per_sm)
    return problems
