"""Leaf constants shared by the simulator hot path and the probe layer.

The SM imports these (``repro.simt.sm``) while the probe machinery
(:mod:`repro.obs.probe`) imports simulator modules; keeping the shared
names in a module with no simulator imports breaks that cycle. Import the
public names from :mod:`repro.obs` (or ``repro.obs.probe``) in user code.
"""

from __future__ import annotations

#: What a warp is waiting for between issues (``Warp.wait_kind``).
WAIT_PIPE = "pipe"
WAIT_DRAM = "dram"

#: Stall causes (issue port blocked by serialization).
STALL_BANK_CONFLICT = "bank_conflict"
STALL_SPAWN_CONFLICT = "spawn_conflict"
STALL_CAUSES = (STALL_BANK_CONFLICT, STALL_SPAWN_CONFLICT)

#: Idle causes (no warp ready to issue), highest priority first.
IDLE_DRAM_PENDING = "dram_pending"
IDLE_ISSUE_PORT = "issue_port"
IDLE_BARRIER = "barrier"
IDLE_DRAINED = "drained"
IDLE_CAUSES = (IDLE_DRAM_PENDING, IDLE_ISSUE_PORT, IDLE_BARRIER,
               IDLE_DRAINED)

#: Default interval width in cycles.
DEFAULT_INTERVAL = 512
